// Adaptive policy: the paper's future-work direction (Sections 4.6 and 6)
// in action. No single update method wins everywhere — Push wastes messages
// on cold content, Invalidation is slow on hot content, TTL is always
// mediocre — so each server probes its own visit and update rates and picks
// its regime. This example runs a hot scenario (readers outnumber updates)
// and a cold one (updates outnumber readers) and shows the controller
// landing next to the best fixed method in both.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/workload"
)

func main() {
	type scenario struct {
		name    string
		users   int
		userTTL time.Duration
		meanGap time.Duration
	}
	scenarios := []scenario{
		{"hot (reads >> updates)", 4, 10 * time.Second, 60 * time.Second},
		{"cold (updates >> reads)", 1, 3 * time.Minute, 5 * time.Second},
	}
	methods := []consistency.Method{
		consistency.MethodRegime, consistency.MethodPush,
		consistency.MethodInvalidation, consistency.MethodTTL,
	}

	for _, sc := range scenarios {
		fmt.Printf("--- %s ---\n", sc.name)
		fmt.Println("method        update_msgs  staleness_s")
		game := workload.GameConfig{
			Phases: []workload.Phase{{Name: "live", Duration: 30 * time.Minute, MeanGap: sc.meanGap}},
			SizeKB: 1,
		}
		for _, m := range methods {
			res, err := core.Run(
				core.System{Name: m.String(), Method: m, Infra: consistency.InfraUnicast},
				core.WithServers(60),
				core.WithUsersPerServer(sc.users),
				core.WithUserTTL(sc.userTTL),
				core.WithGame(game),
				core.WithSeed(17),
			)
			if err != nil {
				log.Fatalf("%v: %v", m, err)
			}
			fmt.Printf("%-12s  %11d  %11.2f\n",
				m, res.UpdateMsgsToServers, res.MeanServerInconsistency())
		}
		fmt.Println()
	}
	fmt.Println("The regime controller converges toward Push on hot content and toward")
	fmt.Println("Invalidation on cold content — the per-content optimum the paper's")
	fmt.Println("conclusion calls for, without an operator choosing a method up front.")
}
