// Quickstart: run the paper's proposed HAT system (hybrid infrastructure +
// self-adaptive update method) against the measured CDN's baseline (TTL
// polling over unicast) on a short live-game day, and print the headline
// trade-off: consistency vs network load.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/workload"
)

func main() {
	// A 30-minute live event: two bursts of updates with a break between,
	// the update pattern that motivates the self-adaptive method.
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "first-half", Duration: 12 * time.Minute, MeanGap: 20 * time.Second},
			{Name: "break", Duration: 6 * time.Minute, MeanGap: 0},
			{Name: "second-half", Duration: 12 * time.Minute, MeanGap: 20 * time.Second},
		},
		SizeKB: 1,
	}

	opts := []core.Option{
		core.WithServers(100),
		core.WithUsersPerServer(3),
		core.WithClusters(10),
		core.WithGame(game),
		core.WithSeed(7),
	}

	baseline, err := core.Run(core.SystemTTL, opts...)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	hat, err := core.RunHAT(opts...)
	if err != nil {
		log.Fatalf("hat: %v", err)
	}

	updateKm := func(r *cdn.Result) float64 {
		return r.Accounting.ByClass[netmodel.ClassUpdate].Km
	}
	fmt.Println("system  server_staleness_s  update_msgs  provider_msgs  update_load_km")
	for _, row := range []struct {
		name string
		r    *cdn.Result
	}{{"TTL", baseline}, {"HAT", hat}} {
		fmt.Printf("%-6s  %18.1f  %11d  %13d  %14.0f\n",
			row.name, row.r.MeanServerInconsistency(),
			row.r.UpdateMsgsToServers, row.r.UpdateMsgsFromProvider, updateKm(row.r))
	}

	fmt.Println()
	fmt.Printf("HAT cuts provider update messages by %.0f%% and update network load by %.0f%%,\n",
		100*(1-float64(hat.UpdateMsgsFromProvider)/float64(baseline.UpdateMsgsFromProvider)),
		100*(1-updateKm(hat)/updateKm(baseline)))
	fmt.Println("while keeping server staleness in the same TTL-bounded band (paper Section 5.3).")
}
