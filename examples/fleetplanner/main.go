// Fleet planner: the multi-content ending of the paper's story. A CDN
// serves the paper's motivating mix — live games, e-commerce storefronts,
// auctions, news — with Zipf popularity and per-customer staleness budgets.
// The analytic cost model (internal/costmodel) picks each content's update
// method; the discrete-event simulation then verifies the plan beats any
// one-size-fits-all fleet on bandwidth while holding every budget.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/catalog"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/topology"
)

func main() {
	cat, err := catalog.Generate(catalog.GenerateConfig{
		Contents: 24,
		Duration: 20 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		log.Fatalf("generate catalog: %v", err)
	}
	topoCfg := topology.Config{Servers: 60, Seed: 7}
	ttl := 60 * time.Second

	plan, err := catalog.PlanCatalog(cat, topoCfg.Servers, ttl)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}

	// Show a slice of the plan: one hot content per profile plus the
	// first cold (unread) content, where the choice flips.
	fmt.Println("sample of the plan:")
	seen := map[catalog.Profile]bool{}
	coldShown := false
	for _, c := range cat.Contents {
		cold := c.UsersPerServer == 0
		if (seen[c.Profile] || cold) && (!cold || coldShown) {
			continue
		}
		if cold {
			coldShown = true
		} else {
			seen[c.Profile] = true
		}
		fmt.Printf("  %-12s %-10s users/srv=%d size=%3.0fKB budget=%-4s -> %v\n",
			c.ID, c.Profile, c.UsersPerServer, c.UpdateSizeKB, c.StalenessBudget, plan[c.ID])
	}
	fmt.Println()

	fleets := []struct {
		name   string
		assign func(catalog.Content) consistency.Method
	}{
		{"planned", func(c catalog.Content) consistency.Method { return plan[c.ID] }},
		{"all-push", func(catalog.Content) consistency.Method { return consistency.MethodPush }},
		{"all-ttl", func(catalog.Content) consistency.Method { return consistency.MethodTTL }},
		{"all-invalidation", func(catalog.Content) consistency.Method { return consistency.MethodInvalidation }},
	}
	fmt.Println("fleet              total_KB  mean_staleness_s  worst_budget_miss_s")
	for _, f := range fleets {
		res, err := catalog.RunFleet(cat, f.assign, topoCfg, ttl, 7)
		if err != nil {
			log.Fatalf("fleet %s: %v", f.name, err)
		}
		fmt.Printf("%-16s  %9.0f  %16.2f  %19.2f\n",
			f.name, res.TotalKB, res.MeanStaleness, res.WorstBudgetMiss)
	}
	fmt.Println()
	fmt.Println("The planned fleet is the cheapest that violates no customer's staleness")
	fmt.Println("budget — the per-content selection guidance the paper's conclusion asks for.")
}
