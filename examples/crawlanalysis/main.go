// Crawl analysis: the paper's Section-3 measurement pipeline end to end.
// Generate a synthetic crawl of a TTL-based CDN (the proprietary trace's
// stand-in), then — pretending we do not know how the CDN works — recover
// its mechanism from the polled snapshots alone: the inconsistency
// distribution, the TTL in use, the cause breakdown, and the verdict that
// no multicast tree distributes the updates.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/analysis"
	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/tracegen"
)

func main() {
	// Crawl 200 servers for 2 days, polling every 10 s, with 50 user
	// vantage points — a scaled-down version of the paper's 3000-server,
	// 15-day crawl.
	gen, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 200, Seed: 21},
		Days:     2,
		Users:    50,
		Seed:     21,
	})
	if err != nil {
		log.Fatalf("generate crawl: %v", err)
	}
	ds, err := analysis.NewDataset(gen.Trace)
	if err != nil {
		log.Fatalf("index crawl: %v", err)
	}

	// 1. How stale is the CDN? (Figure 3)
	ri := ds.RequestInconsistenciesAll()
	cdf, err := stats.NewCDF(ri.Lengths)
	if err != nil {
		log.Fatalf("cdf: %v", err)
	}
	fmt.Printf("inconsistency: mean %.1fs, %0.1f%% under 10s, %0.1f%% over 50s\n",
		ri.Mean(), 100*cdf.At(10), 100*(1-cdf.At(50)))

	// 2. What TTL does the CDN use? (Figure 6)
	ttl, err := analysis.InferTTL(ri.Lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		log.Fatalf("infer ttl: %v", err)
	}
	share, _ := analysis.TTLShare(ri.Lengths, ttl)
	fmt.Printf("inferred TTL: %v (explains ~%.0f%% of mean inconsistency)\n", ttl, 100*share)

	// 3. Is the provider to blame? (Figure 7)
	prov, err := ds.ProviderInconsistencies(0)
	if err != nil {
		log.Fatalf("provider: %v", err)
	}
	fmt.Printf("provider inconsistency: mean %.1fs over %d polls — negligible\n",
		prov.Mean(), prov.Total)

	// 4. Does distance matter? (Figure 8)
	_, corr, err := ds.DistanceCorrelation(1000)
	if err != nil {
		log.Fatalf("distance: %v", err)
	}
	fmt.Printf("distance vs consistency correlation: r = %+.2f — weak\n", corr)

	// 5. Is there a multicast tree? (Figures 11-12)
	clusters := map[string][]string{}
	for _, s := range ds.Trace.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		clusters[key] = append(clusters[key], s.ID)
	}
	verdict, err := ds.TreeExistence(clusters, ttl)
	if err != nil {
		log.Fatalf("tree test: %v", err)
	}
	fmt.Printf("tree existence: static=%v dynamic=%v (rank spread %.2f, %.0f%% of maxima under 2*TTL)\n",
		verdict.StaticTreeLikely, verdict.DynamicTreeLikely,
		verdict.ServerRankSpread, 100*verdict.FracUnder2TTL)
	fmt.Println("conclusion: the CDN polls the provider directly over unicast with a fixed TTL,")
	fmt.Println("matching the paper's Section 3.6 finding.")
}
