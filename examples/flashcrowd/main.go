// Flash crowd: the scalability story of Figures 19-20. A provider pushing a
// large update payload to every replica over unicast serializes the
// transmissions on its uplink, so the last replica's staleness grows with
// fanout x size; the proximity-aware multicast tree spreads the relay work
// and stays flat. TTL polling never concentrates load at all.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/workload"
)

func main() {
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "live", Duration: 10 * time.Minute, MeanGap: 30 * time.Second},
		},
		SizeKB: 1,
	}
	// A constrained uplink (2 MB/s) makes the serialization visible:
	// 500 KB x 150 children = 37.5 s to drain one push wave.
	net := netmodel.Config{DefaultUplinkKBps: 2000}

	fmt.Println("update_size_kb  infra      push_staleness_s  ttl_staleness_s")
	for _, size := range []float64{1, 100, 250, 500} {
		for _, infra := range []consistency.Infra{consistency.InfraUnicast, consistency.InfraMulticast} {
			staleness := map[consistency.Method]float64{}
			for _, m := range []consistency.Method{consistency.MethodPush, consistency.MethodTTL} {
				res, err := core.Run(core.System{Name: m.String(), Method: m, Infra: infra},
					core.WithServers(150),
					core.WithUsersPerServer(1),
					core.WithGame(game),
					core.WithSeed(5),
					core.WithServerTTL(10*time.Second),
					core.WithUpdateSizeKB(size),
					core.WithNetConfig(net),
				)
				if err != nil {
					log.Fatalf("%v/%v: %v", m, infra, err)
				}
				staleness[m] = res.MeanServerInconsistency()
			}
			fmt.Printf("%14.0f  %-9s  %16.3f  %15.3f\n",
				size, infra,
				staleness[consistency.MethodPush],
				staleness[consistency.MethodTTL])
		}
	}
	fmt.Println()
	fmt.Println("Push degrades with payload size in unicast (queuing at the provider uplink)")
	fmt.Println("but barely in multicast; TTL is insensitive because polls spread over the TTL")
	fmt.Println("window — the crossover the paper uses to argue no single method wins everywhere.")
}
