// Failover: the paper's Section-1 criticism of multicast trees, measured.
// Crash a slice of the servers mid-game and compare how each update
// machinery copes: unicast push is immune (the provider reaches every live
// server directly), an unrepaired multicast tree strands whole subtrees,
// tree repair re-attaches the orphans, and cluster flooding routes around
// the dead. DNS-routed users keep being served either way.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/workload"
)

func main() {
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "live", Duration: 20 * time.Minute, MeanGap: 20 * time.Second},
		},
		SizeKB: 1,
	}
	base := []core.Option{
		core.WithServers(120),
		core.WithUsersPerServer(2),
		core.WithClusters(12),
		core.WithGame(game),
		core.WithSeed(13),
		core.WithDNSRouting(30 * time.Second),
	}

	type scenario struct {
		name string
		sys  core.System
		opts []core.Option
	}
	scenarios := []scenario{
		{"push/unicast", core.SystemPush, []core.Option{core.WithFailures(15, false)}},
		{"push/multicast (no repair)",
			core.System{Name: "PushMulti", Method: consistency.MethodPush, Infra: consistency.InfraMulticast},
			[]core.Option{core.WithFailures(15, false)}},
		{"push/multicast (repair)",
			core.System{Name: "PushMulti", Method: consistency.MethodPush, Infra: consistency.InfraMulticast},
			[]core.Option{core.WithFailures(15, true)}},
		{"push/broadcast",
			core.System{Name: "PushBcast", Method: consistency.MethodPush, Infra: consistency.InfraBroadcast},
			[]core.Option{core.WithFailures(15, false)}},
	}

	fmt.Println("scenario                      failed  live  at_final  converged")
	for _, sc := range scenarios {
		res, err := core.Run(sc.sys, append(append([]core.Option(nil), base...), sc.opts...)...)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Printf("%-28s  %6d  %4d  %8d  %8.0f%%\n",
			sc.name, res.FailedServers, res.LiveServers,
			res.LiveServersAtFinalVersion, 100*convergedFrac(res))
	}
	fmt.Println()
	fmt.Println("The unrepaired tree strands every server below a dead relay — the paper's")
	fmt.Println("argument that multicast needs structure maintenance; repair closes the gap.")
}

func convergedFrac(r *cdn.Result) float64 {
	if r.LiveServers == 0 {
		return 0
	}
	return float64(r.LiveServersAtFinalVersion) / float64(r.LiveServers)
}
