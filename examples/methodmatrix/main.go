// Method matrix: the paper's Section 5.3 comparison. Run all six systems —
// Push, Invalidation, TTL, Self, Hybrid, HAT — over a shared topology and
// update schedule, and print the metrics behind Figures 22-24 so the
// orderings are directly visible.
package main

import (
	"fmt"
	"log"
	"time"

	"cdnconsistency/internal/core"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/workload"
)

func main() {
	// The paper's bursty live-game day, scaled to run in seconds.
	var phases []workload.Phase
	for i := 0; i < 3; i++ {
		phases = append(phases,
			workload.Phase{Name: "play", Duration: 8 * time.Minute, MeanGap: 20 * time.Second},
			workload.Phase{Name: "break", Duration: 5 * time.Minute, MeanGap: 0},
		)
	}

	comps, err := core.RunAll(
		core.WithServers(120),
		core.WithUsersPerServer(3),
		core.WithClusters(12),
		core.WithGame(workload.GameConfig{Phases: phases, SizeKB: 1}),
		core.WithSeed(11),
		core.WithUserSwitching(), // the Figure 24 scenario
	)
	if err != nil {
		log.Fatalf("matrix: %v", err)
	}

	fmt.Println("system        update_msgs  provider_msgs  update_km    light_km     staleness_s  user_incons%")
	for _, c := range comps {
		up := c.Result.Accounting.ByClass[netmodel.ClassUpdate]
		light := c.Result.Accounting.ByClass[netmodel.ClassLight]
		fmt.Printf("%-12s  %11d  %13d  %11.2e  %11.2e  %11.2f  %11.2f\n",
			c.System.Name,
			c.Result.UpdateMsgsToServers,
			c.Result.UpdateMsgsFromProvider,
			up.Km, light.Km,
			c.Result.MeanServerInconsistency(),
			100*c.Result.InconsistentObservationFrac())
	}

	fmt.Println()
	fmt.Println("Expected orderings (paper Figures 22-24):")
	fmt.Println("  messages:        Push > Invalidation > Hybrid ~ TTL > HAT > Self")
	fmt.Println("  provider load:   Hybrid/HAT lightest (only the supernode-tree children)")
	fmt.Println("  network load km: HAT lightest overall")
	fmt.Println("  user-observed:   TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0")
}
