package cdnconsistency_test

// The engine's allocation-free event storage, the netmodel's dense indexing,
// and the parallel figure runner must all be invisible in the output:
// identical seeds produce byte-identical tables. These tests pin that
// guarantee on the figures the performance work touches hardest.

import (
	"testing"

	"cdnconsistency/internal/figures"
)

func tinyScale() figures.SimScale {
	scale := figures.SmallSimScale()
	scale.Servers = 30
	scale.UsersPerServer = 1
	scale.Clusters = 5
	return scale
}

// renderTwice runs a figure twice from the same scale (same seeds) and
// returns both rendered tables.
func renderTwice(t *testing.T, fn func(figures.SimScale) (*figures.Table, error)) (string, string) {
	t.Helper()
	first, err := fn(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	second, err := fn(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return first.String(), second.String()
}

// TestFig20Deterministic diffs the Figure 20 grid — the heaviest simulation
// sweep, covering every update method and infrastructure — byte for byte
// across two runs with identical seeds.
func TestFig20Deterministic(t *testing.T) {
	a, b := renderTwice(t, figures.Fig20)
	if a != b {
		t.Fatalf("Fig20 output differs between identically-seeded runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if a == "" {
		t.Fatal("Fig20 rendered an empty table")
	}
}

// TestFig19Deterministic pins the Figure 19 sweep (the profiling target)
// the same way.
func TestFig19Deterministic(t *testing.T) {
	a, b := renderTwice(t, figures.Fig19)
	if a != b {
		t.Fatalf("Fig19 output differs between identically-seeded runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestFig20ParallelMatchesSerial verifies the parallelized sweep cannot
// perturb results: the same grid computed serially and with the worker pool
// renders identically.
func TestFig20ParallelMatchesSerial(t *testing.T) {
	serial := tinyScale()
	serial.Parallel = 1
	parallel := tinyScale()
	parallel.Parallel = 4

	st, err := figures.Fig20(serial)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := figures.Fig20(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != pt.String() {
		t.Fatalf("Fig20 differs between -parallel 1 and -parallel 4:\n--- serial\n%s\n--- parallel\n%s", st, pt)
	}
}
