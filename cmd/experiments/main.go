// Command experiments regenerates every data figure in the paper — the
// Section-3 measurement figures from a synthetic crawl and the Section-4/5
// evaluation figures from the cdn simulation — plus the design ablations.
// Its output is the source for EXPERIMENTS.md.
//
// Figures are independent simulation grids, so they run through a bounded
// worker pool (-parallel, default GOMAXPROCS). Every simulation is
// deterministic from its explicit seed and results are emitted in
// submission order, so stdout is byte-identical at any parallelism.
//
// Runs are interruptible and resumable: SIGINT/SIGTERM cancels in-flight
// simulations promptly, and with -checkpoint every finished figure is
// journaled (atomic rename) so a later -resume re-emits recorded outputs
// verbatim and computes only the missing figures — the resumed sweep's
// stdout is byte-identical to an uninterrupted run's.
//
// Usage:
//
//	experiments                      # everything at default (paper-like) scale
//	experiments -scale small         # fast pass
//	experiments -only fig22,fig23    # a comma-separated figure subset
//	experiments -parallel 1          # serial run (identical output)
//	experiments -metrics             # per-figure wall/event/alloc summary on stderr
//	experiments -audit               # run every simulation under the invariant auditor
//	experiments -shards 4            # sharded multi-core engine for the ext-scale sweep
//	experiments -checkpoint d        # journal finished figures into directory d
//	experiments -resume d            # continue an interrupted sweep from d
//	experiments -timeout 10m         # per-figure deadline
//	experiments -stuck 2m            # report (not kill) figures still running after 2m
//	experiments -import crawl.jsonl  # replay an imported deployment as the import-replay figure
//	experiments -cpuprofile cpu.out  # pprof CPU profile of the whole run
//	experiments -memprofile mem.out  # pprof heap profile (post-GC, at exit)
//	experiments -trace trace.out     # runtime execution trace
//
// Plan mode replaces the figure sweep with a declarative scenario matrix:
// each plan file pins a workload, population, fault scenario and system set,
// plus SLO assertions over the run's results. See the plans/ catalog.
//
//	experiments -plan plans/10-baseline.json      # one plan
//	experiments -plan-catalog plans               # every plan in the directory
//	experiments -plan-catalog plans -junit r.xml  # plus a junit-style report
//
// Profiling never changes results: simulations are deterministic from
// their seeds, so output stays byte-identical with collectors attached.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"cdnconsistency/internal/checkpoint"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/figures"
	"cdnconsistency/internal/profiling"
	"cdnconsistency/internal/runner"
	"cdnconsistency/internal/traceimport"
)

func main() {
	// First signal: cancel the sweep — in-flight simulations abort at their
	// next event-loop tick, the journal already holds every finished figure,
	// and run returns with a resume hint. Second signal: the default handler
	// kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// syncWriter serializes writes from the ordered-emit path and the stuck-job
// watchdog (which reports from a timer goroutine).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "paper", "scale: paper or small")
		only      = fs.String("only", "", "comma-separated figure ids to run (e.g. fig03,fig22,ablation-queue)")
		format    = fs.String("format", "text", "output format: text or markdown")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation jobs (1 = serial; output is identical at any value)")
		metrics   = fs.Bool("metrics", false, "print a per-figure timing/event/allocation summary to stderr")
		faults    = fs.String("faults", "", "comma-separated fault scenarios to run as fault-<name> figures ("+strings.Join(fault.ScenarioNames(), ", ")+"; \"all\" for every one)")
		shards    = fs.Int("shards", 0, "run the ext-scale sweep on the sharded multi-core engine with this many workers (0 = serial engine; any value >= 1 yields identical tables)")
		fedFlag   = fs.String("federation", "", "multi-CDN federation for the federation-* figures: a provider count or @file.json spec (default: 3 real-city providers; serial-only)")
		audit     = fs.Bool("audit", false, "run every simulation under the runtime invariant auditor (fails fast on a violated conservation property; metrics are unchanged)")
		auditCad  = fs.Duration("audit-cadence", 0, "auditor sweep cadence in simulated time (0 = auditor default)")
		ckDirFlag = fs.String("checkpoint", "", "journal finished figures into this directory (atomic; survives SIGKILL)")
		resumeDir = fs.String("resume", "", "resume an interrupted sweep from this checkpoint directory, re-emitting recorded figures verbatim")
		timeout   = fs.Duration("timeout", 0, "per-figure deadline; a figure exceeding it aborts the sweep (0 = none)")
		stuck     = fs.Duration("stuck", 0, "report a figure still running after this wall-clock duration to stderr with its sim-clock probe and goroutine stacks; the figure is not killed (0 = off)")
		cpuprof   = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprof   = fs.String("memprofile", "", "write a pprof heap profile (post-GC, at exit) to this file")
		traceOut  = fs.String("trace", "", "write a runtime execution trace to this file")
		importArg = fs.String("import", "", "replay an imported deployment — a crawl trace (JSONL or #cdnlog access log) or a pre-inferred bundle JSON — as the single import-replay figure; figure-selection flags it replaces are rejected")
		planFile  = fs.String("plan", "", "run one scenario plan file (JSON) as a system x seed matrix with SLO assertions, instead of figures")
		planDir   = fs.String("plan-catalog", "", "run every *.json scenario plan in this directory (sorted by filename), instead of figures")
		junitOut  = fs.String("junit", "", "write a junit-style XML report of plan cells to this file (plan mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	profStop, profErr := profiling.Start(profiling.Config{CPUProfile: *cpuprof, MemProfile: *memprof, Trace: *traceOut})
	if profErr != nil {
		return profErr
	}
	defer func() {
		if perr := profStop(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	switch *format {
	case "text", "markdown":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *timeout < 0 || *stuck < 0 || *auditCad < 0 {
		return fmt.Errorf("-timeout, -stuck and -audit-cadence must be >= 0")
	}

	errw := &syncWriter{w: stderr}

	// Plan mode: -plan/-plan-catalog replaces the figure sweep with a scenario
	// matrix; figure-shaping flags are rejected rather than silently ignored.
	if *planFile != "" || *planDir != "" {
		if *planFile != "" && *planDir != "" {
			return fmt.Errorf("-plan and -plan-catalog are mutually exclusive")
		}
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale", "only", "format", "faults", "shards", "audit", "audit-cadence", "federation", "import":
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			sort.Strings(bad)
			return fmt.Errorf("%s: figure-sweep flags cannot be combined with -plan/-plan-catalog", strings.Join(bad, ", "))
		}
		return runPlans(ctx, planRunConfig{
			file:      *planFile,
			dir:       *planDir,
			junit:     *junitOut,
			parallel:  *parallel,
			metrics:   *metrics,
			ckDir:     *ckDirFlag,
			resumeDir: *resumeDir,
			timeout:   *timeout,
			stuck:     *stuck,
		}, stdout, errw)
	}
	if *junitOut != "" {
		return fmt.Errorf("-junit requires -plan or -plan-catalog")
	}

	var (
		traceScale figures.TraceScale
		simScale   figures.SimScale
	)
	switch *scaleName {
	case "paper":
		traceScale = figures.DefaultTraceScale()
		simScale = figures.DefaultSimScale()
	case "small":
		traceScale = figures.SmallTraceScale()
		simScale = figures.SmallSimScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	// Figures fan their own simulation grids through the same budget.
	simScale.Parallel = *parallel
	simScale.Audit = *audit
	simScale.AuditCadence = *auditCad
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if *shards > 0 && *fedFlag != "" {
		// Provider selection and degradation are global state, so the
		// federation layer is serial-only. (-audit composes with -shards:
		// sharded runs sweep at window barriers.)
		return fmt.Errorf("-shards and -federation are mutually exclusive (the federation layer is serial-only)")
	}
	simScale.Shards = *shards
	fedSpec := federation.DefaultSpec(3)
	if *fedFlag != "" {
		var err error
		if fedSpec, err = resolveFederation(*fedFlag); err != nil {
			return err
		}
	}

	// Import mode: the sweep collapses to the single import-replay figure,
	// so figure-selection flags are rejected rather than silently ignored.
	var importBundle *traceimport.Bundle
	if *importArg != "" {
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "only", "faults", "federation", "shards":
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			sort.Strings(bad)
			return fmt.Errorf("%s: figure-selection flags cannot be combined with -import", strings.Join(bad, ", "))
		}
		var err error
		if importBundle, _, err = traceimport.LoadAny(*importArg); err != nil {
			return err
		}
	}

	// Open the checkpoint journal, if any. -resume implies journaling to the
	// same directory; a fresh -checkpoint refuses a directory that already
	// holds progress so recorded outputs are never silently replayed without
	// the operator asking for it.
	ckDir := *ckDirFlag
	resume := false
	if *resumeDir != "" {
		if ckDir != "" && ckDir != *resumeDir {
			return fmt.Errorf("-checkpoint (%s) and -resume (%s) name different directories", ckDir, *resumeDir)
		}
		ckDir = *resumeDir
		resume = true
	}
	var journal *checkpoint.Journal
	if ckDir != "" {
		// The fingerprint covers everything that shapes a figure's bytes.
		// -only is deliberately excluded: records are keyed per figure, so an
		// interrupted sweep may be resumed with a different subset.
		meta := checkpoint.Meta{Tool: "experiments", Fingerprint: map[string]string{
			"scale":         *scaleName,
			"format":        *format,
			"faults":        *faults,
			"audit":         strconv.FormatBool(*audit),
			"audit-cadence": auditCad.String(),
			"federation":    *fedFlag,
			"import":        *importArg,
		}}
		var err error
		journal, err = checkpoint.Open(ckDir, meta)
		if err != nil {
			return err
		}
		if !resume && journal.Len() > 0 {
			return fmt.Errorf("checkpoint directory %s already records %d finished figures; use -resume %s to continue it",
				ckDir, journal.Len(), ckDir)
		}
	}

	type job struct {
		id  string
		run func(ctx context.Context, m *runner.Metrics) (*figures.Table, error)
	}
	// The trace environment is shared by all Section-3 figures and built
	// once, by whichever trace job gets there first.
	traceEnv := sync.OnceValues(func() (*figures.TraceEnv, error) {
		return figures.NewTraceEnv(traceScale)
	})
	traceJob := func(id string, fn func(*figures.TraceEnv) (*figures.Table, error)) job {
		return job{id: id, run: func(context.Context, *runner.Metrics) (*figures.Table, error) {
			e, err := traceEnv()
			if err != nil {
				return nil, err
			}
			return fn(e)
		}}
	}
	simJob := func(id string, fn func(figures.SimScale) (*figures.Table, error)) job {
		return job{id: id, run: func(ctx context.Context, m *runner.Metrics) (*figures.Table, error) {
			s := simScale
			s.Ctx = ctx
			s.Probe = func(now time.Duration, events uint64) {
				m.SetProbe(fmt.Sprintf("sim-clock %v, %d events", now, events))
			}
			return fn(s)
		}}
	}

	jobs := []job{
		traceJob("fig03", figures.Fig03),
		traceJob("fig04", figures.Fig04),
		traceJob("fig05", figures.Fig05),
		traceJob("fig06", figures.Fig06),
		traceJob("fig07", figures.Fig07),
		traceJob("fig08", figures.Fig08),
		traceJob("fig09", figures.Fig09),
		traceJob("fig10", figures.Fig10),
		traceJob("fig11", figures.Fig11),
		traceJob("fig12", figures.Fig12),
		traceJob("tree-verdict", figures.TreeVerdictTable),
		simJob("fig14", figures.Fig14),
		simJob("fig15", figures.Fig15),
		simJob("fig16", figures.Fig16),
		simJob("fig17", figures.Fig17),
		simJob("fig18", figures.Fig18),
		simJob("fig19", figures.Fig19),
		simJob("fig20", figures.Fig20),
		simJob("fig22", figures.Fig22),
		simJob("fig23", figures.Fig23),
		simJob("fig24", figures.Fig24),
		simJob("ext-broadcast", figures.ExtBroadcast),
		simJob("ext-tree-failure", figures.ExtTreeFailure),
		simJob("ext-lease", figures.ExtLease),
		simJob("ext-dns", figures.ExtDNS),
		simJob("ext-regime", figures.ExtRegime),
		simJob("ext-catalog", figures.ExtCatalog),
		simJob("ext-faults", figures.ExtFaults),
		simJob("ext-failover", figures.ExtFailover),
		simJob("federation-storm", func(s figures.SimScale) (*figures.Table, error) {
			return figures.FederationStorm(s, fedSpec)
		}),
		simJob("federation-flap", func(s figures.SimScale) (*figures.Table, error) {
			return figures.FederationFlap(s, fedSpec)
		}),
		simJob("ext-scale", figures.ExtScale),
		simJob("ablation-queue", figures.AblationQueue),
		simJob("ablation-proximity", figures.AblationProximity),
		simJob("ablation-adaptive", figures.AblationAdaptive),
		simJob("ablation-hilbert", figures.AblationHilbert),
		simJob("ablation-depth", figures.AblationFailure),
	}
	if importBundle != nil {
		jobs = []job{simJob("import-replay", func(s figures.SimScale) (*figures.Table, error) {
			return figures.ImportReplay(s, importBundle)
		})}
	}
	if *faults != "" {
		names := strings.Split(*faults, ",")
		if *faults == "all" {
			names = fault.ScenarioNames()
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := fault.Scenario(name); err != nil {
				return err
			}
			n := name
			jobs = append(jobs, simJob("fault-"+n, func(s figures.SimScale) (*figures.Table, error) {
				return figures.FaultScenario(s, n)
			}))
		}
	}

	// -only is a comma-separated id subset. Selection preserves the canonical
	// figure order above, so stdout ordering never depends on how the flag
	// was spelled.
	selected := jobs
	if *only != "" {
		want := make(map[string]bool)
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				want[id] = true
			}
		}
		selected = nil
		for _, j := range jobs {
			if want[j.id] {
				selected = append(selected, j)
				delete(want, j.id)
			}
		}
		if len(want) > 0 {
			// Name every unknown id (sorted, so the error is deterministic)
			// and the full valid set, so a typo is a one-round-trip fix.
			unknown := make([]string, 0, len(want))
			for id := range want {
				unknown = append(unknown, strconv.Quote(id))
			}
			sort.Strings(unknown)
			valid := make([]string, len(jobs))
			for i, j := range jobs {
				valid[i] = j.id
			}
			return fmt.Errorf("-only: no figure matches %s; valid ids: %s",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no figure matches %q", *only)
	}

	render := func(t *figures.Table) string {
		if *format == "markdown" {
			return t.Markdown()
		}
		return t.String()
	}

	restored := make([]bool, len(selected))
	pjobs := make([]runner.Job[string], len(selected))
	for i, j := range selected {
		i, j := i, j
		pjobs[i] = runner.Job[string]{
			ID: j.id,
			Run: func(m *runner.Metrics) (string, error) {
				if journal != nil {
					if rec, ok := journal.Done(j.id); ok {
						restored[i] = true
						return rec.Output, nil
					}
				}
				jobCtx := ctx
				if *timeout > 0 {
					var cancel context.CancelFunc
					jobCtx, cancel = context.WithTimeout(ctx, *timeout)
					defer cancel()
				}
				tab, err := j.run(jobCtx, m)
				if err != nil {
					return "", err
				}
				m.AddEvents(tab.SimEvents)
				return render(tab), nil
			},
		}
	}

	opts := runner.Options{
		Workers:    *parallel,
		FailFast:   true,
		Context:    ctx,
		StuckAfter: *stuck,
		OnStuck: func(id string, elapsed time.Duration, probe string, stacks []byte) {
			if probe == "" {
				probe = "none"
			}
			fmt.Fprintf(errw, "experiments: %s still running after %v (last probe: %s); goroutine dump:\n%s\n",
				id, elapsed.Round(time.Second), probe, stacks)
		},
	}
	var summary []runner.Result[string]
	err := runner.ForEachOrdered(pjobs, opts,
		func(i int, r runner.Result[string]) error {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			fmt.Fprintln(stdout, r.Value)
			if restored[i] {
				fmt.Fprintf(errw, "experiments: %s restored from checkpoint\n", r.ID)
			} else {
				if journal != nil {
					if err := journal.Record(checkpoint.Record{
						ID:      r.ID,
						Output:  r.Value,
						WallMS:  r.Metrics.Wall.Milliseconds(),
						AllocMB: float64(r.Metrics.AllocBytes) / (1 << 20),
					}); err != nil {
						return err
					}
				}
				fmt.Fprintf(errw, "experiments: %s done in %v\n", r.ID, r.Metrics.Wall.Round(time.Millisecond))
			}
			summary = append(summary, r)
			return nil
		})
	if err != nil {
		if journal != nil && (errors.Is(err, context.Canceled) || errors.Is(err, runner.ErrCanceled)) {
			return fmt.Errorf("%w\n%d finished figures are checkpointed; rerun with -resume %s to continue", err, journal.Len(), ckDir)
		}
		return err
	}
	if *metrics {
		printMetrics(errw, summary, *parallel)
	}
	return nil
}

// resolveFederation turns the -federation flag value into a provider spec:
// "@path" parses a JSON spec file, anything else must be a provider count
// (>= 1) expanded through the real-city default sites.
func resolveFederation(arg string) (federation.Spec, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return federation.Spec{}, err
		}
		return federation.ParseSpec(data)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return federation.Spec{}, fmt.Errorf("-federation wants a provider count >= 1 or @file.json, got %q", arg)
	}
	return federation.DefaultSpec(n), nil
}

// printMetrics writes the per-job summary table. It goes to stderr so that
// stdout stays byte-identical across -parallel values even with -metrics.
func printMetrics(w io.Writer, results []runner.Result[string], workers int) {
	fmt.Fprintf(w, "experiments: per-job metrics (%d workers; alloc is approximate under parallelism)\n", workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\twall\tsim_events\talloc_MB")
	var (
		totalWall   time.Duration
		totalEvents uint64
		totalAlloc  uint64
	)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f\n",
			r.ID, r.Metrics.Wall.Round(time.Millisecond), r.Metrics.Events,
			float64(r.Metrics.AllocBytes)/(1<<20))
		totalWall += r.Metrics.Wall
		totalEvents += r.Metrics.Events
		totalAlloc += r.Metrics.AllocBytes
	}
	fmt.Fprintf(tw, "total (cpu)\t%v\t%d\t%.1f\n",
		totalWall.Round(time.Millisecond), totalEvents, float64(totalAlloc)/(1<<20))
	tw.Flush() //nolint:errcheck // best-effort diagnostics
}
