// Command experiments regenerates every data figure in the paper — the
// Section-3 measurement figures from a synthetic crawl and the Section-4/5
// evaluation figures from the cdn simulation — plus the design ablations.
// Its output is the source for EXPERIMENTS.md.
//
// Figures are independent simulation grids, so they run through a bounded
// worker pool (-parallel, default GOMAXPROCS). Every simulation is
// deterministic from its explicit seed and results are emitted in
// submission order, so stdout is byte-identical at any parallelism.
//
// Usage:
//
//	experiments                 # everything at default (paper-like) scale
//	experiments -scale small    # fast pass
//	experiments -only fig22     # a single figure
//	experiments -parallel 1     # serial run (identical output)
//	experiments -metrics        # per-figure wall/event/alloc summary on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/figures"
	"cdnconsistency/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "paper", "scale: paper or small")
		only      = fs.String("only", "", "run a single figure id (e.g. fig03, fig22, ablation-queue)")
		format    = fs.String("format", "text", "output format: text or markdown")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation jobs (1 = serial; output is identical at any value)")
		metrics   = fs.Bool("metrics", false, "print a per-figure timing/event/allocation summary to stderr")
		faults    = fs.String("faults", "", "comma-separated fault scenarios to run as fault-<name> figures ("+strings.Join(fault.ScenarioNames(), ", ")+"; \"all\" for every one)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	switch *format {
	case "text", "markdown":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	var (
		traceScale figures.TraceScale
		simScale   figures.SimScale
	)
	switch *scaleName {
	case "paper":
		traceScale = figures.DefaultTraceScale()
		simScale = figures.DefaultSimScale()
	case "small":
		traceScale = figures.SmallTraceScale()
		simScale = figures.SmallSimScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	// Figures fan their own simulation grids through the same budget.
	simScale.Parallel = *parallel

	type job struct {
		id  string
		run func() (*figures.Table, error)
	}
	// The trace environment is shared by all Section-3 figures and built
	// once, by whichever trace job gets there first.
	traceEnv := sync.OnceValues(func() (*figures.TraceEnv, error) {
		return figures.NewTraceEnv(traceScale)
	})
	traceJob := func(id string, fn func(*figures.TraceEnv) (*figures.Table, error)) job {
		return job{id: id, run: func() (*figures.Table, error) {
			e, err := traceEnv()
			if err != nil {
				return nil, err
			}
			return fn(e)
		}}
	}
	simJob := func(id string, fn func(figures.SimScale) (*figures.Table, error)) job {
		return job{id: id, run: func() (*figures.Table, error) { return fn(simScale) }}
	}

	jobs := []job{
		traceJob("fig03", figures.Fig03),
		traceJob("fig04", figures.Fig04),
		traceJob("fig05", figures.Fig05),
		traceJob("fig06", figures.Fig06),
		traceJob("fig07", figures.Fig07),
		traceJob("fig08", figures.Fig08),
		traceJob("fig09", figures.Fig09),
		traceJob("fig10", figures.Fig10),
		traceJob("fig11", figures.Fig11),
		traceJob("fig12", figures.Fig12),
		traceJob("tree-verdict", figures.TreeVerdictTable),
		simJob("fig14", figures.Fig14),
		simJob("fig15", figures.Fig15),
		simJob("fig16", figures.Fig16),
		simJob("fig17", figures.Fig17),
		simJob("fig18", figures.Fig18),
		simJob("fig19", figures.Fig19),
		simJob("fig20", figures.Fig20),
		simJob("fig22", figures.Fig22),
		simJob("fig23", figures.Fig23),
		simJob("fig24", figures.Fig24),
		simJob("ext-broadcast", figures.ExtBroadcast),
		simJob("ext-tree-failure", figures.ExtTreeFailure),
		simJob("ext-lease", figures.ExtLease),
		simJob("ext-dns", figures.ExtDNS),
		simJob("ext-regime", figures.ExtRegime),
		simJob("ext-catalog", figures.ExtCatalog),
		simJob("ext-faults", figures.ExtFaults),
		simJob("ext-failover", figures.ExtFailover),
		simJob("ablation-queue", figures.AblationQueue),
		simJob("ablation-proximity", figures.AblationProximity),
		simJob("ablation-adaptive", figures.AblationAdaptive),
		simJob("ablation-hilbert", figures.AblationHilbert),
		simJob("ablation-depth", figures.AblationFailure),
	}
	if *faults != "" {
		names := strings.Split(*faults, ",")
		if *faults == "all" {
			names = fault.ScenarioNames()
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := fault.Scenario(name); err != nil {
				return err
			}
			n := name
			jobs = append(jobs, job{id: "fault-" + n, run: func() (*figures.Table, error) {
				return figures.FaultScenario(simScale, n)
			}})
		}
	}

	var selected []job
	for _, j := range jobs {
		if *only != "" && j.id != *only {
			continue
		}
		selected = append(selected, j)
	}
	if len(selected) == 0 {
		return fmt.Errorf("no figure matches %q", *only)
	}

	pjobs := make([]runner.Job[*figures.Table], len(selected))
	for i, j := range selected {
		j := j
		pjobs[i] = runner.Job[*figures.Table]{
			ID: j.id,
			Run: func(m *runner.Metrics) (*figures.Table, error) {
				tab, err := j.run()
				if err != nil {
					return nil, err
				}
				m.AddEvents(tab.SimEvents)
				return tab, nil
			},
		}
	}

	var summary []runner.Result[*figures.Table]
	err := runner.ForEachOrdered(pjobs, runner.Options{Workers: *parallel, FailFast: true},
		func(i int, r runner.Result[*figures.Table]) error {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			switch *format {
			case "markdown":
				fmt.Println(r.Value.Markdown())
			default:
				fmt.Println(r.Value.String())
			}
			fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", r.ID, r.Metrics.Wall.Round(time.Millisecond))
			summary = append(summary, r)
			return nil
		})
	if err != nil {
		return err
	}
	if *metrics {
		printMetrics(os.Stderr, summary, *parallel)
	}
	return nil
}

// printMetrics writes the per-job summary table. It goes to stderr so that
// stdout stays byte-identical across -parallel values even with -metrics.
func printMetrics(w io.Writer, results []runner.Result[*figures.Table], workers int) {
	fmt.Fprintf(w, "experiments: per-job metrics (%d workers; alloc is approximate under parallelism)\n", workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\twall\tsim_events\talloc_MB")
	var (
		totalWall   time.Duration
		totalEvents uint64
		totalAlloc  uint64
	)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f\n",
			r.ID, r.Metrics.Wall.Round(time.Millisecond), r.Metrics.Events,
			float64(r.Metrics.AllocBytes)/(1<<20))
		totalWall += r.Metrics.Wall
		totalEvents += r.Metrics.Events
		totalAlloc += r.Metrics.AllocBytes
	}
	fmt.Fprintf(tw, "total (cpu)\t%v\t%d\t%.1f\n",
		totalWall.Round(time.Millisecond), totalEvents, float64(totalAlloc)/(1<<20))
	tw.Flush() //nolint:errcheck // best-effort diagnostics
}
