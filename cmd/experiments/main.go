// Command experiments regenerates every data figure in the paper — the
// Section-3 measurement figures from a synthetic crawl and the Section-4/5
// evaluation figures from the cdn simulation — plus the design ablations.
// Its output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # everything at default (paper-like) scale
//	experiments -scale small    # fast pass
//	experiments -only fig22     # a single figure
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdnconsistency/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "paper", "scale: paper or small")
		only      = fs.String("only", "", "run a single figure id (e.g. fig03, fig22, ablation-queue)")
		format    = fs.String("format", "text", "output format: text or markdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		traceScale figures.TraceScale
		simScale   figures.SimScale
	)
	switch *scaleName {
	case "paper":
		traceScale = figures.DefaultTraceScale()
		simScale = figures.DefaultSimScale()
	case "small":
		traceScale = figures.SmallTraceScale()
		simScale = figures.SmallSimScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	type job struct {
		id  string
		run func() (*figures.Table, error)
	}
	var env *figures.TraceEnv
	traceEnv := func() (*figures.TraceEnv, error) {
		if env != nil {
			return env, nil
		}
		var err error
		env, err = figures.NewTraceEnv(traceScale)
		return env, err
	}
	traceJob := func(id string, fn func(*figures.TraceEnv) (*figures.Table, error)) job {
		return job{id: id, run: func() (*figures.Table, error) {
			e, err := traceEnv()
			if err != nil {
				return nil, err
			}
			return fn(e)
		}}
	}
	simJob := func(id string, fn func(figures.SimScale) (*figures.Table, error)) job {
		return job{id: id, run: func() (*figures.Table, error) { return fn(simScale) }}
	}

	jobs := []job{
		traceJob("fig03", figures.Fig03),
		traceJob("fig04", figures.Fig04),
		traceJob("fig05", figures.Fig05),
		traceJob("fig06", figures.Fig06),
		traceJob("fig07", figures.Fig07),
		traceJob("fig08", figures.Fig08),
		traceJob("fig09", figures.Fig09),
		traceJob("fig10", figures.Fig10),
		traceJob("fig11", figures.Fig11),
		traceJob("fig12", figures.Fig12),
		traceJob("tree-verdict", figures.TreeVerdictTable),
		simJob("fig14", figures.Fig14),
		simJob("fig15", figures.Fig15),
		simJob("fig16", figures.Fig16),
		simJob("fig17", figures.Fig17),
		simJob("fig18", figures.Fig18),
		simJob("fig19", figures.Fig19),
		simJob("fig20", figures.Fig20),
		simJob("fig22", figures.Fig22),
		simJob("fig23", figures.Fig23),
		simJob("fig24", figures.Fig24),
		simJob("ext-broadcast", figures.ExtBroadcast),
		simJob("ext-tree-failure", figures.ExtTreeFailure),
		simJob("ext-lease", figures.ExtLease),
		simJob("ext-dns", figures.ExtDNS),
		simJob("ext-regime", figures.ExtRegime),
		simJob("ext-catalog", figures.ExtCatalog),
		simJob("ablation-queue", figures.AblationQueue),
		simJob("ablation-proximity", figures.AblationProximity),
		simJob("ablation-adaptive", figures.AblationAdaptive),
		simJob("ablation-hilbert", figures.AblationHilbert),
		simJob("ablation-depth", figures.AblationFailure),
	}

	matched := false
	for _, j := range jobs {
		if *only != "" && j.id != *only {
			continue
		}
		matched = true
		start := time.Now()
		tab, err := j.run()
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		switch *format {
		case "markdown":
			fmt.Println(tab.Markdown())
		case "text":
			fmt.Println(tab.String())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", j.id, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("no figure matches %q", *only)
	}
	return nil
}
