package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"cdnconsistency/internal/checkpoint"
	"cdnconsistency/internal/plan"
	"cdnconsistency/internal/runner"
)

// planRunConfig is the plan-mode slice of the experiments flag surface.
type planRunConfig struct {
	file      string // -plan: one plan file
	dir       string // -plan-catalog: a directory of plans
	junit     string // -junit: junit-style XML report path
	parallel  int
	metrics   bool
	ckDir     string
	resumeDir string
	timeout   time.Duration
	stuck     time.Duration
}

// runPlans executes a plan file or catalog as a cell matrix through the same
// ordered worker pool as the figure sweep. Stdout carries one PASS/FAIL block
// per cell plus a one-line summary, byte-identical at any -parallel value and
// across checkpoint resume; assertion failures complete the matrix and fail
// the exit code, while execution aborts (cancellation, -timeout) stop it.
func runPlans(ctx context.Context, cfg planRunConfig, stdout io.Writer, errw *syncWriter) error {
	var (
		plans []*plan.Plan
		err   error
	)
	if cfg.file != "" {
		p, err := plan.LoadFile(cfg.file)
		if err != nil {
			return err
		}
		plans = []*plan.Plan{p}
	} else {
		plans, err = plan.LoadDir(cfg.dir)
		if err != nil {
			return err
		}
	}
	var cells []plan.Cell
	for _, p := range plans {
		cs, err := p.Cells()
		if err != nil {
			return err
		}
		cells = append(cells, cs...)
	}

	// The journal fingerprint is a digest of every plan's canonical bytes:
	// resuming after any plan edit is refused rather than replaying stale
	// results.
	journal, err := openPlanJournal(cfg, plans)
	if err != nil {
		return err
	}

	restored := make([]bool, len(cells))
	pjobs := make([]runner.Job[string], len(cells))
	for i, c := range cells {
		i, c := i, c
		pjobs[i] = runner.Job[string]{
			ID: c.ID(),
			Run: func(m *runner.Metrics) (string, error) {
				if journal != nil {
					if rec, ok := journal.Done(c.ID()); ok {
						restored[i] = true
						return rec.Output, nil
					}
				}
				jobCtx := ctx
				if cfg.timeout > 0 {
					var cancel context.CancelFunc
					jobCtx, cancel = context.WithTimeout(ctx, cfg.timeout)
					defer cancel()
				}
				r, err := plan.RunCell(c, plan.RunOptions{
					Ctx: jobCtx,
					Probe: func(now time.Duration, events uint64) {
						m.SetProbe(fmt.Sprintf("sim-clock %v, %d events", now, events))
					},
				})
				if err != nil {
					// Cancellation or deadline: not recorded, re-runs on resume.
					return "", err
				}
				m.AddEvents(r.Events)
				// The journaled payload is the CellResult itself; rendering is
				// a pure function of it, so resumed cells replay byte-identically
				// and the junit report can be rebuilt from the journal.
				b, err := json.Marshal(r)
				if err != nil {
					return "", err
				}
				return string(b), nil
			},
		}
	}

	opts := runner.Options{
		Workers:    cfg.parallel,
		FailFast:   true,
		Context:    ctx,
		StuckAfter: cfg.stuck,
		OnStuck: func(id string, elapsed time.Duration, probe string, stacks []byte) {
			if probe == "" {
				probe = "none"
			}
			fmt.Fprintf(errw, "experiments: %s still running after %v (last probe: %s); goroutine dump:\n%s\n",
				id, elapsed.Round(time.Second), probe, stacks)
		},
	}
	var (
		results []*plan.CellResult
		summary []runner.Result[string]
	)
	err = runner.ForEachOrdered(pjobs, opts,
		func(i int, r runner.Result[string]) error {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			var cr plan.CellResult
			if err := json.Unmarshal([]byte(r.Value), &cr); err != nil {
				return fmt.Errorf("%s: corrupt cell record: %w", r.ID, err)
			}
			fmt.Fprint(stdout, cr.Render())
			if restored[i] {
				fmt.Fprintf(errw, "experiments: %s restored from checkpoint\n", r.ID)
			} else {
				if journal != nil {
					if err := journal.Record(checkpoint.Record{
						ID:      r.ID,
						Output:  r.Value,
						WallMS:  r.Metrics.Wall.Milliseconds(),
						AllocMB: float64(r.Metrics.AllocBytes) / (1 << 20),
					}); err != nil {
						return err
					}
				}
				fmt.Fprintf(errw, "experiments: %s done in %v\n", r.ID, r.Metrics.Wall.Round(time.Millisecond))
			}
			results = append(results, &cr)
			summary = append(summary, r)
			return nil
		})
	if err != nil {
		if journal != nil && (errors.Is(err, context.Canceled) || errors.Is(err, runner.ErrCanceled)) {
			return fmt.Errorf("%w\n%d finished cells are checkpointed; rerun with -resume %s to continue",
				err, journal.Len(), journal.Dir())
		}
		return err
	}

	// Cross-system compares run after the whole matrix: each plan's compare
	// block is a pure function of its cells' recorded metrics, so the output
	// stays byte-identical across -parallel values and checkpoint resume.
	for _, p := range plans {
		if cr := plan.EvalCompares(p, results); cr != nil {
			fmt.Fprint(stdout, cr.Render())
			results = append(results, cr)
		}
	}

	if cfg.junit != "" {
		data, err := plan.JUnit(results)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.junit, data, 0o644); err != nil {
			return fmt.Errorf("writing junit report: %w", err)
		}
		fmt.Fprintf(errw, "experiments: junit report written to %s\n", cfg.junit)
	}
	failed := 0
	for _, r := range results {
		if r.Failed() {
			failed++
		}
	}
	fmt.Fprintf(stdout, "plans: %d cells, %d passed, %d failed\n", len(results), len(results)-failed, failed)
	if cfg.metrics {
		printMetrics(errw, summary, cfg.parallel)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d plan cells failed", failed, len(results))
	}
	return nil
}

// openPlanJournal opens the plan-mode checkpoint journal with the same
// fresh-vs-resume semantics as the figure sweep.
func openPlanJournal(cfg planRunConfig, plans []*plan.Plan) (*checkpoint.Journal, error) {
	ckDir := cfg.ckDir
	resume := false
	if cfg.resumeDir != "" {
		if ckDir != "" && ckDir != cfg.resumeDir {
			return nil, fmt.Errorf("-checkpoint (%s) and -resume (%s) name different directories", ckDir, cfg.resumeDir)
		}
		ckDir = cfg.resumeDir
		resume = true
	}
	if ckDir == "" {
		return nil, nil
	}
	h := sha256.New()
	for _, p := range plans {
		b, err := p.Marshal()
		if err != nil {
			return nil, err
		}
		h.Write(b)
	}
	meta := checkpoint.Meta{Tool: "experiments-plan", Fingerprint: map[string]string{
		"plans": hex.EncodeToString(h.Sum(nil)),
	}}
	journal, err := checkpoint.Open(ckDir, meta)
	if err != nil {
		return nil, err
	}
	if !resume && journal.Len() > 0 {
		return nil, fmt.Errorf("checkpoint directory %s already records %d finished cells; use -resume %s to continue it",
			ckDir, journal.Len(), ckDir)
	}
	return journal, nil
}
