package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// writeTestPlan drops a fast plan file into dir and returns its path.
func writeTestPlan(t *testing.T, dir, file, name, systems, extra string) string {
	t.Helper()
	js := `{
	  "name": "` + name + `",
	  "systems": [` + systems + `],
	  "servers": 12,
	  "users_per_server": 1,
	  "clusters": 3,
	  "server_ttl": "5s",
	  "game": {"phases": [{"name": "play", "duration": "90s", "mean_gap": "15s"}]},
	  ` + extra + `
	}`
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingAsserts = `"assert": [
	  {"metric": "user_observations", "op": ">", "value": 0},
	  {"metric": "crashes", "op": "==", "value": 0}
	]`

func writeTestCatalog(t *testing.T, dir string) {
	t.Helper()
	writeTestPlan(t, dir, "10-a.json", "alpha", `"TTL", "Push"`, passingAsserts)
	writeTestPlan(t, dir, "20-b.json", "beta", `"HAT"`, passingAsserts)
}

func TestPlanCatalogRuns(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	junit := filepath.Join(t.TempDir(), "report.xml")
	out, _, err := runCLI(t, "-plan-catalog", dir, "-junit", junit)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"== plan alpha/TTL/s1 ==", "== plan alpha/Push/s1 ==", "== plan beta/HAT/s1 ==",
		"plans: 3 cells, 3 passed, 0 failed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("unexpected failure in stdout:\n%s", out)
	}
	// Catalog order follows filenames, not plan names.
	if strings.Index(out, "alpha/TTL") > strings.Index(out, "beta/HAT") {
		t.Errorf("catalog emitted out of order:\n%s", out)
	}
	report, err := os.ReadFile(junit)
	if err != nil {
		t.Fatalf("junit report: %v", err)
	}
	if !strings.Contains(string(report), `tests="3" failures="0" errors="0"`) {
		t.Errorf("junit counts wrong:\n%s", report)
	}
}

func TestPlanParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	serial, _, err := runCLI(t, "-plan-catalog", dir, "-parallel", "1")
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, _, err := runCLI(t, "-plan-catalog", dir, "-parallel", "4")
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial != par {
		t.Errorf("stdout differs across -parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}

func TestPlanSeededViolationFails(t *testing.T) {
	dir := t.TempDir()
	writeTestPlan(t, dir, "bad.json", "bad", `"TTL"`,
		`"assert": [{"metric": "p99_user_inconsistency", "op": "<=", "value": 0.001}]`)
	junit := filepath.Join(t.TempDir(), "report.xml")
	out, _, err := runCLI(t, "-plan", filepath.Join(dir, "bad.json"), "-junit", junit)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 plan cells failed") {
		t.Fatalf("seeded violation did not fail the run: %v", err)
	}
	if !strings.Contains(out, "FAIL\tp99_user_inconsistency <= 0.001") {
		t.Errorf("stdout missing FAIL line:\n%s", out)
	}
	report, rerr := os.ReadFile(junit)
	if rerr != nil {
		t.Fatalf("junit report not written on failure: %v", rerr)
	}
	if !strings.Contains(string(report), `<failure message="1 assertion(s) failed">`) ||
		!strings.Contains(string(report), "p99_user_inconsistency &lt;= 0.001: got ") {
		t.Errorf("junit missing failure message with assertion detail:\n%s", report)
	}
}

// cancelOnFirstWrite cancels a context the moment the first stdout byte lands,
// interrupting a catalog mid-matrix the way a SIGTERM would.
type cancelOnFirstWrite struct {
	w      io.Writer
	once   sync.Once
	cancel context.CancelFunc
}

func (c *cancelOnFirstWrite) Write(p []byte) (int, error) {
	c.once.Do(c.cancel)
	return c.w.Write(p)
}

func TestPlanResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	// A deliberately heavier trailing plan: with one worker the cancellation
	// fired by the first cell's emission always lands while this one is
	// still simulating, so the interruption is genuinely mid-matrix.
	if err := os.WriteFile(filepath.Join(dir, "30-c.json"), []byte(`{
	  "name": "gamma",
	  "systems": ["TTL"],
	  "servers": 100,
	  "users_per_server": 3,
	  "clusters": 10,
	  "server_ttl": "5s",
	  "game": {"phases": [{"name": "play", "duration": "20m", "mean_gap": "10s"}]},
	  `+passingAsserts+`
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	full, _, err := runCLI(t, "-plan-catalog", dir, "-parallel", "1")
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ck := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var partial bytes.Buffer
	err = run(ctx, []string{"-plan-catalog", dir, "-parallel", "1", "-checkpoint", ck},
		&cancelOnFirstWrite{w: &partial, cancel: cancel}, io.Discard)
	if err == nil {
		t.Fatal("interrupted run finished cleanly; cancellation came too late to test resume")
	}
	if !strings.Contains(err.Error(), "-resume "+ck) {
		t.Fatalf("interrupted run did not hint at -resume: %v", err)
	}

	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-plan-catalog", dir, "-parallel", "1", "-resume", ck}, &out, &errb); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if out.String() != full {
		t.Errorf("resumed stdout differs from uninterrupted run:\n--- resumed ---\n%s\n--- full ---\n%s", out.String(), full)
	}
	if !strings.Contains(errb.String(), "restored from checkpoint") {
		t.Errorf("resume recomputed every cell (no restores):\n%s", errb.String())
	}
}

func TestPlanResumeRefusesEditedPlans(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	ck := t.TempDir()
	if _, _, err := runCLI(t, "-plan-catalog", dir, "-checkpoint", ck); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	// Any plan edit changes the catalog fingerprint; stale results must not
	// be replayed against the new plans.
	writeTestPlan(t, dir, "20-b.json", "beta", `"HAT"`,
		`"assert": [{"metric": "user_observations", "op": ">", "value": 1}]`)
	if _, _, err := runCLI(t, "-plan-catalog", dir, "-resume", ck); err == nil {
		t.Fatal("resume accepted a checkpoint for edited plans")
	}
}

func TestPlanModeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	writeTestCatalog(t, dir)
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-plan", "x.json", "-plan-catalog", dir}, "mutually exclusive"},
		{[]string{"-junit", "r.xml"}, "-junit requires"},
		{[]string{"-plan-catalog", dir, "-scale", "small"}, "cannot be combined"},
		{[]string{"-plan-catalog", dir, "-only", "fig16"}, "cannot be combined"},
		{[]string{"-plan-catalog", dir, "-audit", "-shards", "2"}, "cannot be combined"},
		{[]string{"-plan-catalog", t.TempDir()}, "no *.json plans"},
	}
	for _, tc := range cases {
		_, _, err := runCLI(t, tc.args...)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%v: error %v does not mention %q", tc.args, err, tc.wantErr)
		}
	}
}

func TestOnlyUnknownIDsListed(t *testing.T) {
	_, _, err := runCLI(t, "-only", "zzz,fig16,fig99")
	if err == nil {
		t.Fatal("unknown ids accepted")
	}
	msg := err.Error()
	// Every unknown id is named (sorted), and the valid set is listed.
	if !strings.Contains(msg, `"fig99", "zzz"`) {
		t.Errorf("error does not list all unknown ids sorted: %q", msg)
	}
	if !strings.Contains(msg, "valid ids: ") || !strings.Contains(msg, "fig03") ||
		!strings.Contains(msg, "ablation-depth") {
		t.Errorf("error does not list valid ids: %q", msg)
	}
	if strings.Contains(msg, `"fig16"`) {
		t.Errorf("error names a valid id as unknown: %q", msg)
	}
}

// TestTimeoutedJobNotJournaled pins the -timeout x -checkpoint contract: a
// job killed by its per-job deadline is not journaled, and a later -resume
// recomputes it, yielding stdout byte-identical to an uninterrupted run.
func TestTimeoutedJobNotJournaled(t *testing.T) {
	full, _, err := runCLI(t, "-scale", "small", "-only", "fig16")
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ck := t.TempDir()
	_, _, err = runCLI(t, "-scale", "small", "-only", "fig16", "-checkpoint", ck, "-timeout", "1ns")
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("1ns deadline did not kill the job: %v", err)
	}

	out, errb, err := runCLI(t, "-scale", "small", "-only", "fig16", "-resume", ck)
	if err != nil {
		t.Fatalf("resume after timeout: %v", err)
	}
	if strings.Contains(errb, "restored from checkpoint") {
		t.Errorf("timed-out job was journaled and replayed:\n%s", errb)
	}
	if out != full {
		t.Errorf("resumed stdout differs from uninterrupted run:\n--- resumed ---\n%s\n--- full ---\n%s", out, full)
	}
}
