package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestRunSingleTraceFigure(t *testing.T) {
	out, _, err := runCLI(t, "-scale", "small", "-only", "fig03")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "fig03") || !strings.Contains(out, "mean_s") {
		t.Errorf("fig03 output malformed:\n%s", out)
	}
}

func TestRunSingleSimFigure(t *testing.T) {
	out, _, err := runCLI(t, "-scale", "small", "-only", "fig16")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "multicast_kmKB") {
		t.Errorf("fig16 output malformed:\n%s", out)
	}
}

func TestRunSingleExtension(t *testing.T) {
	out, _, err := runCLI(t, "-scale", "small", "-only", "ext-tree-failure")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "final_frac") {
		t.Errorf("ext-tree-failure output malformed:\n%s", out)
	}
}

// -only takes a comma-separated subset; selection order is canonical, not
// flag order.
func TestRunOnlyCommaSeparated(t *testing.T) {
	forward, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16,ext-regime")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(forward, "fig16") || !strings.Contains(forward, "ext-regime") {
		t.Fatalf("subset output missing a figure:\n%s", forward)
	}
	reversed, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", " ext-regime , fig16 ")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if forward != reversed {
		t.Error("-only order changed stdout")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-scale", "enormous"},
		{"-only", "fig99"},
		{"-only", "fig16,fig99"},
		{"-notaflag"},
		{"-parallel", "0"},
		{"-format", "csv"},
		{"-timeout", "-1s"},
		{"-checkpoint", "a", "-resume", "b"},
		{"-federation", "0"},
		{"-federation", "x"},
		{"-federation", "@no-such-file.json"},
		{"-shards", "2", "-federation", "3"},
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Parallelism must never change stdout: simulations are deterministic from
// their seeds and tables are emitted in submission order.
func TestRunParallelOutputMatchesSerial(t *testing.T) {
	for _, fig := range []string{"fig17", "ext-regime"} {
		serial, _, err := runCLI(t, "-scale", "small", "-only", fig, "-parallel", "1")
		if err != nil {
			t.Fatalf("%s serial: %v", fig, err)
		}
		par, _, err := runCLI(t, "-scale", "small", "-only", fig, "-parallel", "4", "-metrics")
		if err != nil {
			t.Fatalf("%s parallel: %v", fig, err)
		}
		if serial != par {
			t.Errorf("%s: parallel stdout differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", fig, serial, par)
		}
	}
}

// The invariant auditor observes without perturbing: an audited sweep's
// stdout is byte-identical to an unaudited one.
func TestRunAuditedOutputMatchesPlain(t *testing.T) {
	plain, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16,ablation-depth")
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	audited, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16,ablation-depth",
		"-audit", "-audit-cadence", "10s")
	if err != nil {
		t.Fatalf("audited: %v", err)
	}
	if plain != audited {
		t.Errorf("-audit changed stdout:\n--- plain ---\n%s--- audited ---\n%s", plain, audited)
	}
}

// A per-figure -timeout that cannot be met aborts the sweep with a deadline
// error instead of hanging.
func TestRunPerJobTimeout(t *testing.T) {
	_, _, err := runCLI(t, "-scale", "small", "-only", "fig17", "-timeout", "1ns")
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want per-job deadline exceeded", err)
	}
}

// Resume determinism, the crash-safety contract: a sweep that checkpointed
// only some figures and is then resumed produces stdout byte-identical to
// an uninterrupted sweep over the full set.
func TestRunResumeIsByteIdenticalToUninterrupted(t *testing.T) {
	full, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16,fig22,ext-regime")
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}

	dir := t.TempDir()
	if _, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16",
		"-checkpoint", dir); err != nil {
		t.Fatalf("partial checkpointed run: %v", err)
	}

	resumed, stderr, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", "fig16,fig22,ext-regime",
		"-resume", dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed != full {
		t.Errorf("resumed stdout differs from uninterrupted:\n--- full ---\n%s--- resumed ---\n%s", full, resumed)
	}
	if !strings.Contains(stderr, "fig16 restored from checkpoint") {
		t.Errorf("resume recomputed the checkpointed figure:\n%s", stderr)
	}
	for _, fresh := range []string{"fig22 done in", "ext-regime done in"} {
		if !strings.Contains(stderr, fresh) {
			t.Errorf("resume did not run %q:\n%s", fresh, stderr)
		}
	}
}

// interruptOnFirstWrite fires the given interrupt the moment the first
// figure lands on stdout, standing in for an operator's Ctrl-C mid-sweep.
type interruptOnFirstWrite struct {
	w         io.Writer
	interrupt func()
	once      sync.Once
}

func (c *interruptOnFirstWrite) Write(p []byte) (int, error) {
	c.once.Do(c.interrupt)
	return c.w.Write(p)
}

// Interrupt-then-resume, end to end: a real SIGTERM mid-sweep (delivered
// through the same signal.NotifyContext wiring main uses) leaves a journal
// of the finished figures and a resume hint; resuming yields stdout
// byte-identical to an uninterrupted sweep.
func TestRunInterruptedThenResumed(t *testing.T) {
	const figs = "fig16,fig17,fig22,ext-regime"
	full, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", figs)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}

	dir := t.TempDir()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	var partial bytes.Buffer
	sigterm := func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Errorf("raise SIGTERM: %v", err)
		}
	}
	err = run(ctx, []string{"-scale", "small", "-parallel", "1", "-only", figs, "-checkpoint", dir},
		&interruptOnFirstWrite{w: &partial, interrupt: sigterm}, io.Discard)
	if err == nil {
		t.Fatal("cancellation mid-sweep did not abort the run")
	}
	if !strings.Contains(err.Error(), "-resume "+dir) {
		t.Errorf("abort error lacks the resume hint: %v", err)
	}
	if !strings.HasPrefix(full, partial.String()) {
		t.Errorf("interrupted stdout is not a prefix of the uninterrupted sweep:\n--- interrupted ---\n%s", partial.String())
	}

	resumed, _, err := runCLI(t, "-scale", "small", "-parallel", "1", "-only", figs, "-resume", dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed != full {
		t.Errorf("resumed stdout differs from uninterrupted:\n--- full ---\n%s--- resumed ---\n%s", full, resumed)
	}
}

// A fresh -checkpoint refuses a directory that already holds progress, and
// -resume refuses a journal recorded under different sweep parameters.
func TestRunCheckpointSafetyChecks(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runCLI(t, "-scale", "small", "-only", "fig16", "-checkpoint", dir); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, _, err := runCLI(t, "-scale", "small", "-only", "fig16", "-checkpoint", dir); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Errorf("fresh -checkpoint reused a populated directory: %v", err)
	}
	if _, _, err := runCLI(t, "-scale", "small", "-format", "markdown", "-only", "fig16", "-resume", dir); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Errorf("resume across a format change accepted: %v", err)
	}
	// Same parameters resume cleanly and replay the recorded figure.
	out, _, err := runCLI(t, "-scale", "small", "-only", "fig16", "-resume", dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out, "fig16") {
		t.Errorf("resume did not re-emit the recorded figure:\n%s", out)
	}
}

// TestRunImportReplay drives the import-replay figure end to end from a
// generated crawl trace: the sweep collapses to that one figure, the output
// is deterministic, and conflicting flags are rejected.
func TestRunImportReplay(t *testing.T) {
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 12, Seed: 21},
		Days:     1,
		Users:    10,
		Seed:     21,
	})
	if err != nil {
		t.Fatalf("tracegen.Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, res.Trace); err != nil {
		t.Fatalf("trace.Write: %v", err)
	}
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-scale", "small", "-import", path)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"import-replay", "inferred spec: 12 servers", "HAT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	again, _, err := runCLI(t, "-scale", "small", "-import", path)
	if err != nil {
		t.Fatalf("run #2: %v", err)
	}
	if out != again {
		t.Errorf("import-replay output differs across runs:\n%s\nvs\n%s", out, again)
	}
	for _, args := range [][]string{
		{"-import", path, "-only", "fig16"},
		{"-import", path, "-faults", "churn"},
		{"-import", path, "-shards", "2"},
		{"-import", path, "-plan", "x.json"},
		{"-import", filepath.Join(t.TempDir(), "missing.jsonl")},
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
