package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestRunSingleTraceFigure(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "small", "-only", "fig03"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "fig03") || !strings.Contains(out, "mean_s") {
		t.Errorf("fig03 output malformed:\n%s", out)
	}
}

func TestRunSingleSimFigure(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "small", "-only", "fig16"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "multicast_kmKB") {
		t.Errorf("fig16 output malformed:\n%s", out)
	}
}

func TestRunSingleExtension(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "small", "-only", "ext-tree-failure"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "final_frac") {
		t.Errorf("ext-tree-failure output malformed:\n%s", out)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "enormous"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-only", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-notaflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-parallel", "0"}); err == nil {
		t.Error("-parallel 0 accepted")
	}
	if err := run([]string{"-format", "csv"}); err == nil {
		t.Error("bad format accepted")
	}
}

// Parallelism must never change stdout: simulations are deterministic from
// their seeds and tables are emitted in submission order.
func TestRunParallelOutputMatchesSerial(t *testing.T) {
	for _, fig := range []string{"fig17", "ext-regime"} {
		serial, err := captureStdout(t, func() error {
			return run([]string{"-scale", "small", "-only", fig, "-parallel", "1"})
		})
		if err != nil {
			t.Fatalf("%s serial: %v", fig, err)
		}
		par, err := captureStdout(t, func() error {
			return run([]string{"-scale", "small", "-only", fig, "-parallel", "4", "-metrics"})
		})
		if err != nil {
			t.Fatalf("%s parallel: %v", fig, err)
		}
		if serial != par {
			t.Errorf("%s: parallel stdout differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", fig, serial, par)
		}
	}
}
