// Command benchjson converts `go test -bench` output into the repo's
// machine-readable BENCH_<n>.json format and compares two such files for
// performance regressions.
//
// Parse mode (default) reads benchmark text on stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem -count 3 . | benchjson -out BENCH_1.json
//
// With -count > 1 the per-benchmark numbers are medians across runs,
// which makes ns/op robust against scheduler noise; allocs/op and B/op
// are deterministic for this repo's benchmarks and identical across runs.
//
// Compare mode checks a candidate file against a committed baseline:
//
//	benchjson -compare BENCH_0.json,BENCH_1.json -max-regress 0.20 -guard Fig19,Fig20
//
// It exits non-zero if any guarded benchmark regressed by more than the
// threshold in ns/op or allocs/op (missing guarded benchmarks also fail).
// Without -guard every benchmark present in both files is checked.
//
// Emit mode re-prints a JSON file in standard Go benchmark format so
// external tools (e.g. benchstat) can consume it:
//
//	benchjson -gobench BENCH_0.json > old.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one aggregated benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`          // without the "Benchmark" prefix
	Runs        int     `json:"runs"`          // -count: how many lines were aggregated
	Iterations  int64   `json:"iterations"`    // b.N of the median run
	NsPerOp     float64 `json:"ns_per_op"`     // median across runs
	BytesPerOp  float64 `json:"bytes_per_op"`  // median across runs (-benchmem)
	AllocsPerOp float64 `json:"allocs_per_op"` // median across runs (-benchmem)
	// Extra holds the benchmark's custom b.ReportMetric units (the figure
	// benchmarks report a headline shape metric, e.g. "mean_s"), medians
	// across runs.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "parse mode: write JSON to this file instead of stdout")
		note       = fs.String("note", "", "parse mode: free-form note recorded in the JSON")
		compare    = fs.String("compare", "", "compare mode: baseline.json,candidate.json")
		maxRegress = fs.Float64("max-regress", 0.20, "compare mode: maximum tolerated fractional regression (0.20 = +20%)")
		guard      = fs.String("guard", "", "compare mode: comma-separated benchmark names that must be present and within threshold (default: all common)")
		gobench    = fs.String("gobench", "", "emit mode: re-print this JSON file in Go benchmark text format")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *compare != "" && *gobench != "":
		return fmt.Errorf("-compare and -gobench are mutually exclusive")
	case *compare != "":
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-compare wants baseline.json,candidate.json, got %q", *compare)
		}
		return compareFiles(stdout, parts[0], parts[1], *maxRegress, *guard)
	case *gobench != "":
		return emitGobench(stdout, *gobench)
	default:
		return parse(stdin, stdout, *out, *note)
	}
}

// cpuSuffix strips the GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFig19-8" -> "Fig19").
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine decodes one `go test -bench` result line. The format is
// "BenchmarkName[-P]  N  value unit  value unit ...", where -benchmem and
// b.ReportMetric contribute extra value/unit pairs in any order.
func parseBenchLine(line string) (name string, iters int64, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, nil, false
	}
	name = cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
	if name == "" {
		return "", 0, nil, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, nil, false
	}
	metrics = make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, hasNs := metrics["ns/op"]; !hasNs {
		return "", 0, nil, false
	}
	return name, iters, metrics, true
}

// parse aggregates stdin benchmark lines into a File, taking medians
// across repeated -count runs of the same benchmark.
func parse(stdin io.Reader, stdout io.Writer, outPath, note string) error {
	type sample struct {
		iters   int64
		metrics map[string]float64
	}
	var (
		f       File
		order   []string
		samples = make(map[string][]sample)
	)
	f.Note = note
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			if pkg := strings.TrimPrefix(line, "pkg: "); f.Pkg == "" {
				f.Pkg = pkg
			} else if f.Pkg != pkg {
				f.Pkg = "(multiple)"
			}
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		name, iters, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], sample{iters: iters, metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(order) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	median := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		sort.Float64s(xs)
		n := len(xs)
		if n%2 == 1 {
			return xs[n/2]
		}
		return (xs[n/2-1] + xs[n/2]) / 2
	}
	for _, name := range order {
		ss := samples[name]
		units := make(map[string][]float64)
		for _, s := range ss {
			for unit, v := range s.metrics {
				units[unit] = append(units[unit], v)
			}
		}
		b := Benchmark{
			Name:        name,
			Runs:        len(ss),
			Iterations:  ss[len(ss)/2].iters,
			NsPerOp:     median(units["ns/op"]),
			BytesPerOp:  median(units["B/op"]),
			AllocsPerOp: median(units["allocs/op"]),
		}
		delete(units, "ns/op")
		delete(units, "B/op")
		delete(units, "allocs/op")
		for unit, vs := range units {
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = median(vs)
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compareFiles reports per-benchmark deltas and fails if any checked
// benchmark regressed past the threshold in ns/op or allocs/op.
func compareFiles(stdout io.Writer, basePath, candPath string, maxRegress float64, guard string) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cand, err := load(candPath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	candBy := make(map[string]Benchmark, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		candBy[b.Name] = b
	}

	var names []string
	if guard != "" {
		for _, n := range strings.Split(guard, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		for _, b := range base.Benchmarks {
			if _, ok := candBy[b.Name]; ok {
				names = append(names, b.Name)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks to compare between %s and %s", basePath, candPath)
	}

	delta := func(old, new float64) float64 {
		if old == 0 {
			if new == 0 {
				return 0
			}
			return 1 // regression from zero is always out of budget
		}
		return (new - old) / old
	}

	var failures []string
	fmt.Fprintf(stdout, "%-28s %14s %14s %8s   %14s %14s %8s\n",
		"benchmark", "ns/op(old)", "ns/op(new)", "Δns", "allocs(old)", "allocs(new)", "Δallocs")
	for _, name := range names {
		b, okB := baseBy[name]
		c, okC := candBy[name]
		if !okB || !okC {
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, map[bool]string{false: basePath, true: candPath}[okB]))
			continue
		}
		dns := delta(b.NsPerOp, c.NsPerOp)
		dal := delta(b.AllocsPerOp, c.AllocsPerOp)
		fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %+7.1f%%   %14.0f %14.0f %+7.1f%%\n",
			name, b.NsPerOp, c.NsPerOp, dns*100, b.AllocsPerOp, c.AllocsPerOp, dal*100)
		if dns > maxRegress {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (budget %.0f%%)", name, dns*100, maxRegress*100))
		}
		if dal > maxRegress {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.1f%% (budget %.0f%%)", name, dal*100, maxRegress*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "OK: %d benchmarks within %.0f%% of %s\n", len(names), maxRegress*100, basePath)
	return nil
}

// emitGobench re-prints a JSON file as standard Go benchmark text so
// benchstat and similar tools can consume committed baselines.
func emitGobench(stdout io.Writer, path string) error {
	f, err := load(path)
	if err != nil {
		return err
	}
	if f.Goos != "" {
		fmt.Fprintf(stdout, "goos: %s\n", f.Goos)
	}
	if f.Goarch != "" {
		fmt.Fprintf(stdout, "goarch: %s\n", f.Goarch)
	}
	if f.Pkg != "" {
		fmt.Fprintf(stdout, "pkg: %s\n", f.Pkg)
	}
	if f.CPU != "" {
		fmt.Fprintf(stdout, "cpu: %s\n", f.CPU)
	}
	for _, b := range f.Benchmarks {
		fmt.Fprintf(stdout, "Benchmark%s \t%d\t%.0f ns/op\t%.0f B/op\t%.0f allocs/op\n",
			b.Name, b.Iterations, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	return nil
}
