package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cdnconsistency
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkFig19-8         	       2	 123000000 ns/op	95000000 B/op	  854000 allocs/op
BenchmarkFig19-8         	       2	 125000000 ns/op	95000008 B/op	  854000 allocs/op
BenchmarkFig19-8         	       2	 121000000 ns/op	95000016 B/op	  854001 allocs/op
BenchmarkFig20-8         	       1	 694000000 ns/op	420000000 B/op	 4280000 allocs/op
BenchmarkFig03-8         	       1	 171764452 ns/op	        35.08 mean_s	49518752 B/op	    5254 allocs/op
PASS
ok  	cdnconsistency	2.000s
`

func parseSample(t *testing.T, text string) File {
	t.Helper()
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(text), &out, &out); err != nil {
		t.Fatalf("parse: %v\n%s", err, out.String())
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out.String())
	}
	return f
}

func TestParseMedians(t *testing.T) {
	f := parseSample(t, sampleBench)
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "cdnconsistency" {
		t.Errorf("header = %q/%q/%q", f.Goos, f.Goarch, f.Pkg)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(f.Benchmarks))
	}
	fig19 := f.Benchmarks[0]
	if fig19.Name != "Fig19" || fig19.Runs != 3 {
		t.Fatalf("first = %+v", fig19)
	}
	if fig19.NsPerOp != 123000000 {
		t.Errorf("Fig19 median ns/op = %v, want 123000000", fig19.NsPerOp)
	}
	if fig19.AllocsPerOp != 854000 {
		t.Errorf("Fig19 median allocs/op = %v, want 854000", fig19.AllocsPerOp)
	}
	if f.Benchmarks[1].Name != "Fig20" || f.Benchmarks[1].Runs != 1 {
		t.Errorf("second = %+v", f.Benchmarks[1])
	}
	// Custom b.ReportMetric columns interleaved with -benchmem columns land
	// in Extra and do not corrupt the standard metrics.
	fig03 := f.Benchmarks[2]
	if fig03.Name != "Fig03" || fig03.AllocsPerOp != 5254 || fig03.BytesPerOp != 49518752 {
		t.Errorf("Fig03 = %+v", fig03)
	}
	if fig03.Extra["mean_s"] != 35.08 {
		t.Errorf("Fig03 Extra = %v, want mean_s=35.08", fig03.Extra)
	}
}

func TestParseNoBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &out, &out); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}

func writeBenchFile(t *testing.T, name string, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	base := writeBenchFile(t, "base.json", File{Benchmarks: []Benchmark{
		{Name: "Fig19", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "Fig20", NsPerOp: 500, AllocsPerOp: 4000},
	}})
	better := writeBenchFile(t, "better.json", File{Benchmarks: []Benchmark{
		{Name: "Fig19", NsPerOp: 60, AllocsPerOp: 200},
		{Name: "Fig20", NsPerOp: 300, AllocsPerOp: 900},
	}})
	worse := writeBenchFile(t, "worse.json", File{Benchmarks: []Benchmark{
		{Name: "Fig19", NsPerOp: 150, AllocsPerOp: 1000},
		{Name: "Fig20", NsPerOp: 500, AllocsPerOp: 4000},
	}})
	missing := writeBenchFile(t, "missing.json", File{Benchmarks: []Benchmark{
		{Name: "Fig20", NsPerOp: 500, AllocsPerOp: 4000},
	}})

	var out bytes.Buffer
	if err := run([]string{"-compare", base + "," + better}, nil, &out, &out); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}
	if err := run([]string{"-compare", base + "," + worse}, nil, &out, &out); err == nil {
		t.Error("50%% ns/op regression passed the 20%% budget")
	}
	// A regression within budget passes.
	if err := run([]string{"-compare", base + "," + worse, "-max-regress", "0.6"}, nil, &out, &out); err != nil {
		t.Errorf("in-budget regression failed: %v", err)
	}
	// A guarded benchmark missing from the candidate fails.
	if err := run([]string{"-compare", base + "," + missing, "-guard", "Fig19,Fig20"}, nil, &out, &out); err == nil {
		t.Error("missing guarded benchmark passed")
	}
	// Without -guard only common benchmarks are compared, so it passes.
	if err := run([]string{"-compare", base + "," + missing}, nil, &out, &out); err != nil {
		t.Errorf("common-only compare failed: %v", err)
	}
}

func TestGobenchRoundTrip(t *testing.T) {
	f := parseSample(t, sampleBench)
	path := writeBenchFile(t, "b.json", f)
	var out bytes.Buffer
	if err := run([]string{"-gobench", path}, nil, &out, &out); err != nil {
		t.Fatalf("gobench: %v", err)
	}
	text := out.String()
	for _, want := range []string{"goos: linux", "BenchmarkFig19 \t2\t123000000 ns/op", "854000 allocs/op"} {
		if !strings.Contains(text, want) {
			t.Errorf("gobench output missing %q:\n%s", want, text)
		}
	}
	// The emitted text parses back to the same aggregates (runs collapse to 1).
	f2 := parseSample(t, text)
	if len(f2.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round-trip lost benchmarks: %d != %d", len(f2.Benchmarks), len(f.Benchmarks))
	}
	for i := range f.Benchmarks {
		if f2.Benchmarks[i].NsPerOp != f.Benchmarks[i].NsPerOp ||
			f2.Benchmarks[i].AllocsPerOp != f.Benchmarks[i].AllocsPerOp {
			t.Errorf("round-trip mismatch for %s: %+v vs %+v",
				f.Benchmarks[i].Name, f2.Benchmarks[i], f.Benchmarks[i])
		}
	}
}
