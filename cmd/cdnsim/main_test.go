package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
)

func runCLI(t *testing.T, args []string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func small(extra ...string) []string {
	return append([]string{"-servers", "25", "-users", "2", "-clusters", "5"}, extra...)
}

func TestRunNamedSystem(t *testing.T) {
	out, err := runCLI(t, small("-system", "HAT"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"system\tHAT", "supernodes", "server_inconsistency_s", "traffic_update"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMethodInfraCombos(t *testing.T) {
	combos := [][2]string{
		{"TTL", "Unicast"}, {"Push", "Multicast"}, {"Invalidation", "Unicast"},
		{"Self", "Hybrid"}, {"AdaptiveTTL", "Unicast"},
	}
	for _, c := range combos {
		out, err := runCLI(t, small("-method", c[0], "-infra", c[1]))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !strings.Contains(out, "update_msgs_to_servers") {
			t.Errorf("%v: missing metrics", c)
		}
	}
}

func TestRunSwitchScenario(t *testing.T) {
	out, err := runCLI(t, small("-system", "TTL", "-switch"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "user_inconsistent_observation_frac") {
		t.Error("missing observation metric")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-system", "NotASystem"},
		{"-method", "NotAMethod"},
		{"-infra", "NotAnInfra"},
		{"-servers", "0"},
		{"-badflag"},
		{"-timeout", "-1s"},
		{"-federation", "0"},
		{"-federation", "x"},
		{"-federation", "@no-such-file.json"},
		{"-federation", "3", "-shards", "2"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunFederation(t *testing.T) {
	out, err := runCLI(t, small("-system", "TTL", "-federation", "3",
		"-faults", "provider-storm", "-failover"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"federation\t", "degraded_s=", "stranded=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFederationSpecFile(t *testing.T) {
	spec := `{"providers": [
	  {"name": "a", "lat": 33.7, "lon": -84.4, "ttl": "10s"},
	  {"name": "b", "lat": 50.1, "lon": 8.7, "ttl": "30s", "propagation": "5s"}
	], "broker": {"period": "20s", "hysteresis": 0.2, "min_dwell": "1m"}}`
	path := filepath.Join(t.TempDir(), "providers.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, small("-system", "Invalidation", "-federation", "@"+path,
		"-faults", "broker-flap", "-failover"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "switches=") {
		t.Errorf("output missing federation switch counter:\n%s", out)
	}
}

func TestRunExtensionMethods(t *testing.T) {
	combos := [][2]string{
		{"Lease", "Unicast"}, {"Regime", "Unicast"}, {"Push", "Broadcast"},
	}
	for _, c := range combos {
		out, err := runCLI(t, small("-method", c[0], "-infra", c[1]))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !strings.Contains(out, "update_msgs_to_servers") {
			t.Errorf("%v: missing metrics", c)
		}
	}
	// Invalid pairings surface as errors.
	if _, err := runCLI(t, small("-method", "Lease", "-infra", "Multicast")); err == nil {
		t.Error("Lease/Multicast accepted")
	}
}

// -audit runs the whole simulation under the invariant auditor; a healthy
// run (even with faults and failover) prints the same metrics it would
// without it.
func TestRunWithAudit(t *testing.T) {
	plain, err := runCLI(t, small("-system", "HAT"))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	audited, err := runCLI(t, small("-system", "HAT", "-audit", "-audit-cadence", "5s"))
	if err != nil {
		t.Fatalf("audited run: %v", err)
	}
	// The auditor adds engine events, so the trailing events line differs;
	// everything above it must be identical.
	trim := func(s string) string {
		i := strings.LastIndex(s, "events\t")
		if i < 0 {
			t.Fatalf("no events line in:\n%s", s)
		}
		return s[:i]
	}
	if trim(plain) != trim(audited) {
		t.Errorf("auditing changed the metrics:\n--- plain ---\n%s--- audited ---\n%s", plain, audited)
	}
	if _, err := runCLI(t, small("-system", "TTL", "-faults", "mixed", "-failover", "-audit")); err != nil {
		t.Errorf("audited faulty run reported a violation: %v", err)
	}
}

// A cancelled context aborts the run instead of printing partial metrics.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, small("-system", "TTL"), &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if buf.Len() != 0 {
		t.Errorf("cancelled run printed output:\n%s", buf.String())
	}
}

func TestRunPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(`{
	  "name": "tiny",
	  "systems": ["TTL", "HAT"],
	  "servers": 12,
	  "users_per_server": 1,
	  "clusters": 3,
	  "server_ttl": "5s",
	  "game": {"phases": [{"name": "play", "duration": "90s", "mean_gap": "15s"}]},
	  "assert": [{"metric": "user_observations", "op": ">", "value": 0}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, []string{"-plan", path})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"== plan tiny/TTL/s1 ==", "== plan tiny/HAT/s1 ==",
		"PASS\tuser_observations > 0",
		"metric\tp99_user_inconsistency",
		"metric\tprovider_km_kb",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlanFailingExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(`{
	  "name": "doomed",
	  "systems": ["TTL"],
	  "servers": 12,
	  "users_per_server": 1,
	  "clusters": 3,
	  "game": {"phases": [{"name": "play", "duration": "90s", "mean_gap": "15s"}]},
	  "assert": [{"metric": "user_observations", "op": "<", "value": 0}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, []string{"-plan", path})
	if err == nil || !strings.Contains(err.Error(), "1 of 1 plan cells failed") {
		t.Fatalf("failing plan did not fail the run: %v", err)
	}
	if !strings.Contains(out, "FAIL\tuser_observations < 0") {
		t.Errorf("output missing FAIL line:\n%s", out)
	}
}

// writeImportTrace writes a small generated crawl trace for -import tests.
func writeImportTrace(t *testing.T) string {
	t.Helper()
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 12, Seed: 21},
		Days:     1,
		Users:    10,
		Seed:     21,
	})
	if err != nil {
		t.Fatalf("tracegen.Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, res.Trace); err != nil {
		t.Fatalf("trace.Write: %v", err)
	}
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunImport(t *testing.T) {
	path := writeImportTrace(t)
	out, err := runCLI(t, []string{"-system", "TTL", "-import", path, "-clusters", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"import\t" + path, "format=jsonl", "servers=12", "users=10",
		"system\tTTL", "server_inconsistency_s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The replay is deterministic: a second identical invocation prints
	// identical bytes — the import smoke test's diff contract.
	again, err := runCLI(t, []string{"-system", "TTL", "-import", path, "-clusters", "4"})
	if err != nil {
		t.Fatalf("run #2: %v", err)
	}
	if out != again {
		t.Errorf("imported replay output differs across runs:\n%s\nvs\n%s", out, again)
	}
}

func TestRunImportRejectsConflicts(t *testing.T) {
	path := writeImportTrace(t)
	cases := [][]string{
		{"-import", path, "-servers", "10"},
		{"-import", path, "-serverttl", "30s"},
		{"-import", path, "-faults", "churn"},
		{"-import", path, "-federation", "3"},
		{"-import", path, "-shards", "2"},
		{"-import", path, "-switch"},
		{"-import", path, "-plan", "x.json"},
		{"-import", filepath.Join(t.TempDir(), "missing.jsonl")},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
