package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func small(extra ...string) []string {
	return append([]string{"-servers", "25", "-users", "2", "-clusters", "5"}, extra...)
}

func TestRunNamedSystem(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(small("-system", "HAT")) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"system\tHAT", "supernodes", "server_inconsistency_s", "traffic_update"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMethodInfraCombos(t *testing.T) {
	combos := [][2]string{
		{"TTL", "Unicast"}, {"Push", "Multicast"}, {"Invalidation", "Unicast"},
		{"Self", "Hybrid"}, {"AdaptiveTTL", "Unicast"},
	}
	for _, c := range combos {
		out, err := captureStdout(t, func() error {
			return run(small("-method", c[0], "-infra", c[1]))
		})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !strings.Contains(out, "update_msgs_to_servers") {
			t.Errorf("%v: missing metrics", c)
		}
	}
}

func TestRunSwitchScenario(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(small("-system", "TTL", "-switch"))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "user_inconsistent_observation_frac") {
		t.Error("missing observation metric")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-system", "NotASystem"},
		{"-method", "NotAMethod"},
		{"-infra", "NotAnInfra"},
		{"-servers", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunExtensionMethods(t *testing.T) {
	combos := [][2]string{
		{"Lease", "Unicast"}, {"Regime", "Unicast"}, {"Push", "Broadcast"},
	}
	for _, c := range combos {
		out, err := captureStdout(t, func() error {
			return run(small("-method", c[0], "-infra", c[1]))
		})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !strings.Contains(out, "update_msgs_to_servers") {
			t.Errorf("%v: missing metrics", c)
		}
	}
	// Invalid pairings surface as errors.
	if _, err := captureStdout(t, func() error {
		return run(small("-method", "Lease", "-infra", "Multicast"))
	}); err == nil {
		t.Error("Lease/Multicast accepted")
	}
}
