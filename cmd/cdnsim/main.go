// Command cdnsim runs one trace-driven CDN consistency simulation — an
// update method on an update infrastructure — and prints the metrics the
// paper reports: per-server/per-user inconsistency, traffic cost, message
// counts, and user-observed inconsistency.
//
// Usage:
//
//	cdnsim -method TTL -infra Unicast -servers 170 -users 5
//	cdnsim -system HAT                     # one of the paper's named systems
//	cdnsim -system TTL -faults churn -failover
//	cdnsim -faults @scenario.json          # hand-written fault spec
//	cdnsim -system TTL -federation 3 -faults provider-storm -failover
//	cdnsim -federation @providers.json     # hand-written multi-CDN spec
//	cdnsim -system HAT -audit              # run under the invariant auditor
//	cdnsim -system HAT -shards 4           # sharded multi-core engine, 4 workers
//	cdnsim -system HAT -shards 4 -audit    # sharded AND audited (barrier sweeps)
//	cdnsim -system HAT -timeout 2m         # abort if the run exceeds 2 minutes
//	cdnsim -plan plans/10-baseline.json    # run a scenario plan's cells serially
//	cdnsim -system HAT -import crawl.jsonl # replay an imported deployment (trace or bundle)
//	cdnsim -system HAT -cpuprofile cpu.out # pprof CPU profile (also -memprofile, -trace)
//
// SIGINT/SIGTERM cancels the simulation promptly at its next event-loop
// tick; -timeout bounds the run's wall-clock time the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/plan"
	"cdnconsistency/internal/profiling"
	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/traceimport"
	"cdnconsistency/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdnsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("cdnsim", flag.ContinueOnError)
	var (
		system    = fs.String("system", "", "named system: Push, Invalidation, TTL, Self, Hybrid, HAT")
		method    = fs.String("method", "TTL", "update method: TTL, Push, Invalidation, Self, AdaptiveTTL, Lease, Regime")
		infra     = fs.String("infra", "Unicast", "infrastructure: Unicast, Multicast, Hybrid, Broadcast")
		servers   = fs.Int("servers", 170, "content servers")
		users     = fs.Int("users", 5, "end-users per server")
		serverTTL = fs.Duration("serverttl", 60*time.Second, "content-server TTL")
		userTTL   = fs.Duration("userttl", 10*time.Second, "end-user visit period")
		updateKB  = fs.Float64("updatekb", 1, "update payload size (KB)")
		clusters  = fs.Int("clusters", 20, "hybrid cluster count")
		seed      = fs.Int64("seed", 1, "deterministic seed")
		switching = fs.Bool("switch", false, "users switch servers every visit (Figure 24 scenario)")
		usermodel = fs.String("usermodel", "explicit", "end-user model: explicit (one actor per user) or cohort (weighted per-server cohorts; scales to millions of users)")
		popFile   = fs.String("population", "", "@file.json population spec (see workload.Population); default for -usermodel cohort: a heavy-tailed draw of servers*users total users")
		cohorts   = fs.Int("cohorts", 8, "cohorts per server for the generated population")
		shards    = fs.Int("shards", 0, "sharded multi-core engine worker count (0 = serial engine; results are identical for any value >= 1)")
		cells     = fs.Int("shardcells", 0, "sharded partition cell count (0 = default 8); the cell count, not the worker count, shapes sharded results")
		faults    = fs.String("faults", "", "fault scenario: a built-in name ("+strings.Join(fault.ScenarioNames(), ", ")+") or @file.json")
		fed       = fs.String("federation", "", "multi-CDN federation: a provider count (default real-city sites) or @file.json spec; serial-only")
		failover  = fs.Bool("failover", false, "enable failure-aware failover reactions")
		audit     = fs.Bool("audit", false, "run under the runtime invariant auditor (fails fast on a violated conservation property; metrics are unchanged; composes with -shards)")
		auditCad  = fs.Duration("audit-cadence", 0, "auditor sweep cadence in simulated time (0 = auditor default)")
		auditSelf = fs.String("audit-self-test", "", "inject a named deliberate corruption mid-run to prove the auditor tripwire fires; the run must fail (requires -audit; names: "+strings.Join(cdn.AuditSelfTestNames(), ", ")+")")
		planFile  = fs.String("plan", "", "run one scenario plan file (JSON) serially, printing every check and metric per cell; other simulation flags are ignored")
		importArg = fs.String("import", "", "replay an imported deployment: a crawl trace (JSONL or #cdnlog access log, inferred on the fly) or a pre-inferred bundle JSON; supplies the topology, TTLs, workload, population, and fault windows, so the flags those replace are rejected")
		timeout   = fs.Duration("timeout", 0, "wall-clock deadline for the run (0 = none)")
		cpuprof   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof   = fs.String("memprofile", "", "write a pprof heap profile (post-GC, at exit) to this file")
		traceOut  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	profStop, profErr := profiling.Start(profiling.Config{CPUProfile: *cpuprof, MemProfile: *memprof, Trace: *traceOut})
	if profErr != nil {
		return profErr
	}
	defer func() {
		if perr := profStop(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	if *timeout < 0 || *auditCad < 0 {
		return fmt.Errorf("-timeout and -audit-cadence must be >= 0")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *planFile != "" {
		if *importArg != "" {
			return fmt.Errorf("-plan and -import are mutually exclusive (a plan names its import inside the file)")
		}
		return runPlan(ctx, *planFile, stdout)
	}

	sys, err := resolveSystem(*system, *method, *infra)
	if err != nil {
		return err
	}

	var opts []core.Option
	if *importArg != "" {
		if err := rejectImportConflicts(fs); err != nil {
			return err
		}
		b, format, err := traceimport.LoadAny(*importArg)
		if err != nil {
			return err
		}
		s := b.Summary
		fmt.Fprintf(stdout, "import\t%s format=%s servers=%d sites=%d users=%d server_ttl=%v updates_per_day=%.0f fault_windows=%d\n",
			*importArg, format, s.Servers, s.Sites, s.Users, s.ServerTTL.D(), s.UpdatesPerDay, len(b.CrashWindows()))
		bopts, err := b.Options()
		if err != nil {
			return err
		}
		// Seed first: the bundle's game schedule is drawn from the seed
		// in effect when its option applies.
		opts = append(opts, core.WithClusters(*clusters), core.WithSeed(*seed))
		opts = append(opts, bopts...)
		if *usermodel != "" {
			opts = append(opts, core.WithUserModel(*usermodel))
		}
	} else {
		opts = []core.Option{
			core.WithServers(*servers),
			core.WithUsersPerServer(*users),
			core.WithServerTTL(*serverTTL),
			core.WithUserTTL(*userTTL),
			core.WithUpdateSizeKB(*updateKB),
			core.WithClusters(*clusters),
			core.WithSeed(*seed),
		}
		if *switching {
			opts = append(opts, core.WithUserSwitching())
		}
		pop, err := resolvePopulation(*usermodel, *popFile, *servers, *users, *cohorts, *userTTL, *seed)
		if err != nil {
			return err
		}
		if pop != nil {
			opts = append(opts, core.WithPopulation(pop))
		}
		if *usermodel != "" {
			opts = append(opts, core.WithUserModel(*usermodel))
		}
		if *faults != "" {
			spec, err := resolveFaults(*faults)
			if err != nil {
				return err
			}
			opts = append(opts, core.WithFaults(spec))
		}
		if *fed != "" {
			if *shards > 0 {
				// Fail the flag combination up front instead of run by run inside
				// the cdn layer. (-audit has no such gate: sharded runs sweep at
				// window barriers.)
				return fmt.Errorf("-shards and -federation are mutually exclusive (the federation layer is serial-only)")
			}
			spec, err := resolveFederation(*fed)
			if err != nil {
				return err
			}
			opts = append(opts, core.WithFederation(spec))
		}
	}
	if *failover {
		opts = append(opts, core.WithFailover())
	}
	if *shards > 0 {
		opts = append(opts, core.WithShards(*shards))
	}
	if *cells > 0 {
		opts = append(opts, core.WithShardCells(*cells))
	}
	if *auditSelf != "" && !*audit {
		return fmt.Errorf("-audit-self-test requires -audit")
	}
	if *audit {
		opts = append(opts, core.WithAudit(*auditCad))
		if *auditSelf != "" {
			opts = append(opts, core.WithAuditSelfTest(*auditSelf))
		}
	}
	opts = append(opts, core.WithContext(ctx))
	res, err := core.Run(sys, opts...)
	if err != nil {
		return err
	}
	printResult(stdout, sys, res)
	return nil
}

// runPlan executes one scenario plan's cells serially — the calibration view:
// every assertion verdict plus the full metric map per cell, so an operator
// can read off the numbers an SLO should pin. Exits non-zero if any cell
// fails.
func runPlan(ctx context.Context, path string, stdout io.Writer) error {
	p, err := plan.LoadFile(path)
	if err != nil {
		return err
	}
	cells, err := p.Cells()
	if err != nil {
		return err
	}
	failed, total := 0, 0
	var results []*plan.CellResult
	for _, c := range cells {
		r, err := plan.RunCell(c, plan.RunOptions{Ctx: ctx})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, r.Render())
		fmt.Fprint(stdout, r.RenderMetrics())
		results = append(results, r)
		total++
		if r.Failed() {
			failed++
		}
	}
	// Cross-system compares are judged once the whole matrix has run.
	if cr := plan.EvalCompares(p, results); cr != nil {
		fmt.Fprint(stdout, cr.Render())
		total++
		if cr.Failed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d plan cells failed", failed, total)
	}
	return nil
}

// rejectImportConflicts fails up front when -import is combined with a flag
// the imported bundle already supplies. Only flags the user actually set
// are conflicts; defaults pass through untouched.
func rejectImportConflicts(fs *flag.FlagSet) error {
	conflicts := map[string]bool{
		"servers": true, "users": true, "serverttl": true, "userttl": true,
		"updatekb": true, "population": true, "cohorts": true, "switch": true,
		"faults": true, "federation": true, "shards": true, "shardcells": true,
	}
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if conflicts[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("-import supplies the deployment; drop the conflicting flags: %s", strings.Join(bad, ", "))
	}
	return nil
}

func resolveSystem(system, method, infra string) (core.System, error) {
	if system != "" {
		return core.SystemByName(system)
	}
	var m consistency.Method
	switch method {
	case "TTL":
		m = consistency.MethodTTL
	case "Push":
		m = consistency.MethodPush
	case "Invalidation":
		m = consistency.MethodInvalidation
	case "Self":
		m = consistency.MethodSelfAdaptive
	case "AdaptiveTTL":
		m = consistency.MethodAdaptiveTTL
	case "Lease":
		m = consistency.MethodLease
	case "Regime":
		m = consistency.MethodRegime
	default:
		return core.System{}, fmt.Errorf("unknown method %q", method)
	}
	var inf consistency.Infra
	switch infra {
	case "Unicast":
		inf = consistency.InfraUnicast
	case "Multicast":
		inf = consistency.InfraMulticast
	case "Hybrid":
		inf = consistency.InfraHybrid
	case "Broadcast":
		inf = consistency.InfraBroadcast
	default:
		return core.System{}, fmt.Errorf("unknown infra %q", infra)
	}
	return core.System{Name: method + "/" + infra, Method: m, Infra: inf}, nil
}

// resolvePopulation maps the -population/-usermodel flags to a population
// spec: "@path" loads a JSON spec file; an empty -population under the
// cohort model draws a heavy-tailed population matching -servers and -users
// in total.
func resolvePopulation(usermodel, popFile string, servers, users, cohorts int, userTTL time.Duration, seed int64) (*workload.Population, error) {
	if popFile != "" {
		path, ok := strings.CutPrefix(popFile, "@")
		if !ok {
			return nil, fmt.Errorf("-population wants @file.json, got %q", popFile)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return workload.ParsePopulation(data)
	}
	if usermodel != cdn.UserModelCohort {
		return nil, nil
	}
	return workload.GeneratePopulation(workload.PopulationConfig{
		Servers:          servers,
		TotalUsers:       servers * users,
		Alpha:            1.2,
		CohortsPerServer: cohorts,
		Period:           userTTL,
		Seed:             seed,
	})
}

// resolveFederation maps the -federation flag to a spec: "@path" loads a
// JSON federation spec, anything else is a provider count handed to
// federation.DefaultSpec's real-city site list.
func resolveFederation(arg string) (federation.Spec, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return federation.Spec{}, err
		}
		return federation.ParseSpec(data)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return federation.Spec{}, fmt.Errorf("-federation wants a provider count >= 1 or @file.json, got %q", arg)
	}
	return federation.DefaultSpec(n), nil
}

// resolveFaults maps the -faults flag to a spec: "@path" loads a JSON
// scenario file, anything else is a built-in scenario name.
func resolveFaults(arg string) (fault.Spec, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return fault.Spec{}, err
		}
		return fault.ParseSpec(data)
	}
	return fault.Scenario(arg)
}

func printResult(w io.Writer, sys core.System, res *cdn.Result) {
	fmt.Fprintf(w, "system\t%s (%v on %v)\n", sys.Name, sys.Method, sys.Infra)
	fmt.Fprintf(w, "tree_depth\t%d\n", res.TreeDepth)
	if res.Supernodes > 0 {
		fmt.Fprintf(w, "supernodes\t%d\n", res.Supernodes)
	}
	ss, err := stats.Summarize(res.ServerAvgInconsistency)
	if err == nil {
		fmt.Fprintf(w, "server_inconsistency_s\tmean=%.3f p5=%.3f median=%.3f p95=%.3f\n",
			res.MeanServerInconsistency(), ss.P5, ss.Median, ss.P95)
	}
	us, err := stats.Summarize(res.UserAvgInconsistency)
	if err == nil {
		fmt.Fprintf(w, "user_inconsistency_s\tmean=%.3f p5=%.3f median=%.3f p95=%.3f\n",
			res.MeanUserInconsistency(), us.P5, us.Median, us.P95)
	}
	fmt.Fprintf(w, "update_msgs_to_servers\t%d\n", res.UpdateMsgsToServers)
	fmt.Fprintf(w, "update_msgs_from_provider\t%d\n", res.UpdateMsgsFromProvider)
	fmt.Fprintf(w, "light_msgs\t%d\n", res.LightMsgs)
	for _, class := range res.Accounting.Classes() {
		tot := res.Accounting.ByClass[class]
		fmt.Fprintf(w, "traffic_%v\tmsgs=%d km=%.0f kmKB=%.0f\n", class, tot.Messages, tot.Km, tot.KmKB)
	}
	fmt.Fprintf(w, "user_inconsistent_observation_frac\t%.4f\n", res.InconsistentObservationFrac())
	if res.Crashes > 0 || res.FailedVisits > 0 || res.StaleObservations > 0 {
		fmt.Fprintf(w, "crashes\t%d recovered=%d mean_recovery_s=%.1f\n",
			res.Crashes, res.Recoveries, res.MeanRecoverySeconds())
		fmt.Fprintf(w, "failed_visits\t%d frac=%.4f user_failovers=%d\n",
			res.FailedVisits, res.FailedVisitFrac(), res.UserFailovers)
		fmt.Fprintf(w, "stale_serve_frac\t%.4f\n", res.StaleServeFrac())
		fmt.Fprintf(w, "failover_actions\treparents=%d ttl_fallbacks=%d\n",
			res.ServerReparents, res.TTLFallbacks)
	}
	if res.DegradedSeconds > 0 || res.ProviderSwitches > 0 || res.PeerHandoffs > 0 || res.StrandedUsers > 0 {
		fmt.Fprintf(w, "federation\tdegraded_s=%.1f intervals=%d switches=%d handoffs=%d stranded=%d\n",
			res.DegradedSeconds, res.DegradedEnters, res.ProviderSwitches, res.PeerHandoffs, res.StrandedUsers)
	}
	fmt.Fprintf(w, "events\t%d\n", res.Events)
}
