// Command cdnsim runs one trace-driven CDN consistency simulation — an
// update method on an update infrastructure — and prints the metrics the
// paper reports: per-server/per-user inconsistency, traffic cost, message
// counts, and user-observed inconsistency.
//
// Usage:
//
//	cdnsim -method TTL -infra Unicast -servers 170 -users 5
//	cdnsim -system HAT                     # one of the paper's named systems
//	cdnsim -system TTL -faults churn -failover
//	cdnsim -faults @scenario.json          # hand-written fault spec
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdnsim", flag.ContinueOnError)
	var (
		system    = fs.String("system", "", "named system: Push, Invalidation, TTL, Self, Hybrid, HAT")
		method    = fs.String("method", "TTL", "update method: TTL, Push, Invalidation, Self, AdaptiveTTL, Lease, Regime")
		infra     = fs.String("infra", "Unicast", "infrastructure: Unicast, Multicast, Hybrid, Broadcast")
		servers   = fs.Int("servers", 170, "content servers")
		users     = fs.Int("users", 5, "end-users per server")
		serverTTL = fs.Duration("serverttl", 60*time.Second, "content-server TTL")
		userTTL   = fs.Duration("userttl", 10*time.Second, "end-user visit period")
		updateKB  = fs.Float64("updatekb", 1, "update payload size (KB)")
		clusters  = fs.Int("clusters", 20, "hybrid cluster count")
		seed      = fs.Int64("seed", 1, "deterministic seed")
		switching = fs.Bool("switch", false, "users switch servers every visit (Figure 24 scenario)")
		faults    = fs.String("faults", "", "fault scenario: a built-in name ("+strings.Join(fault.ScenarioNames(), ", ")+") or @file.json")
		failover  = fs.Bool("failover", false, "enable failure-aware failover reactions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := resolveSystem(*system, *method, *infra)
	if err != nil {
		return err
	}

	opts := []core.Option{
		core.WithServers(*servers),
		core.WithUsersPerServer(*users),
		core.WithServerTTL(*serverTTL),
		core.WithUserTTL(*userTTL),
		core.WithUpdateSizeKB(*updateKB),
		core.WithClusters(*clusters),
		core.WithSeed(*seed),
	}
	if *switching {
		opts = append(opts, core.WithUserSwitching())
	}
	if *faults != "" {
		spec, err := resolveFaults(*faults)
		if err != nil {
			return err
		}
		opts = append(opts, core.WithFaults(spec))
	}
	if *failover {
		opts = append(opts, core.WithFailover())
	}
	res, err := core.Run(sys, opts...)
	if err != nil {
		return err
	}
	printResult(sys, res)
	return nil
}

func resolveSystem(system, method, infra string) (core.System, error) {
	if system != "" {
		return core.SystemByName(system)
	}
	var m consistency.Method
	switch method {
	case "TTL":
		m = consistency.MethodTTL
	case "Push":
		m = consistency.MethodPush
	case "Invalidation":
		m = consistency.MethodInvalidation
	case "Self":
		m = consistency.MethodSelfAdaptive
	case "AdaptiveTTL":
		m = consistency.MethodAdaptiveTTL
	case "Lease":
		m = consistency.MethodLease
	case "Regime":
		m = consistency.MethodRegime
	default:
		return core.System{}, fmt.Errorf("unknown method %q", method)
	}
	var inf consistency.Infra
	switch infra {
	case "Unicast":
		inf = consistency.InfraUnicast
	case "Multicast":
		inf = consistency.InfraMulticast
	case "Hybrid":
		inf = consistency.InfraHybrid
	case "Broadcast":
		inf = consistency.InfraBroadcast
	default:
		return core.System{}, fmt.Errorf("unknown infra %q", infra)
	}
	return core.System{Name: method + "/" + infra, Method: m, Infra: inf}, nil
}

// resolveFaults maps the -faults flag to a spec: "@path" loads a JSON
// scenario file, anything else is a built-in scenario name.
func resolveFaults(arg string) (fault.Spec, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return fault.Spec{}, err
		}
		return fault.ParseSpec(data)
	}
	return fault.Scenario(arg)
}

func printResult(sys core.System, res *cdn.Result) {
	fmt.Printf("system\t%s (%v on %v)\n", sys.Name, sys.Method, sys.Infra)
	fmt.Printf("tree_depth\t%d\n", res.TreeDepth)
	if res.Supernodes > 0 {
		fmt.Printf("supernodes\t%d\n", res.Supernodes)
	}
	ss, err := stats.Summarize(res.ServerAvgInconsistency)
	if err == nil {
		fmt.Printf("server_inconsistency_s\tmean=%.3f p5=%.3f median=%.3f p95=%.3f\n",
			res.MeanServerInconsistency(), ss.P5, ss.Median, ss.P95)
	}
	us, err := stats.Summarize(res.UserAvgInconsistency)
	if err == nil {
		fmt.Printf("user_inconsistency_s\tmean=%.3f p5=%.3f median=%.3f p95=%.3f\n",
			res.MeanUserInconsistency(), us.P5, us.Median, us.P95)
	}
	fmt.Printf("update_msgs_to_servers\t%d\n", res.UpdateMsgsToServers)
	fmt.Printf("update_msgs_from_provider\t%d\n", res.UpdateMsgsFromProvider)
	fmt.Printf("light_msgs\t%d\n", res.LightMsgs)
	for _, class := range res.Accounting.Classes() {
		tot := res.Accounting.ByClass[class]
		fmt.Printf("traffic_%v\tmsgs=%d km=%.0f kmKB=%.0f\n", class, tot.Messages, tot.Km, tot.KmKB)
	}
	fmt.Printf("user_inconsistent_observation_frac\t%.4f\n", res.InconsistentObservationFrac())
	if res.Crashes > 0 || res.FailedVisits > 0 || res.StaleObservations > 0 {
		fmt.Printf("crashes\t%d recovered=%d mean_recovery_s=%.1f\n",
			res.Crashes, res.Recoveries, res.MeanRecoverySeconds())
		fmt.Printf("failed_visits\t%d frac=%.4f user_failovers=%d\n",
			res.FailedVisits, res.FailedVisitFrac(), res.UserFailovers)
		fmt.Printf("stale_serve_frac\t%.4f\n", res.StaleServeFrac())
		fmt.Printf("failover_actions\treparents=%d ttl_fallbacks=%d\n",
			res.ServerReparents, res.TTLFallbacks)
	}
	fmt.Printf("events\t%d\n", res.Events)
}
