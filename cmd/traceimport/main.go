// Command traceimport infers a complete simulation spec — topology, TTLs,
// update workload, user population, and fault windows — from a CDN crawl
// trace, and writes it as a strict-JSON bundle the simulator replays with
// cdnsim -import or a plan's "import" field.
//
// The input may be a JSONL trace (the internal/trace schema), a "#cdnlog"
// access log, or an already-inferred bundle (which is re-validated and
// re-emitted byte-canonically). The format is sniffed, never declared.
//
// Usage:
//
//	traceimport -in crawl.jsonl -out bundle.json
//	tracegen -short -servers 24 -days 1 | traceimport > bundle.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cdnconsistency/internal/traceimport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceimport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceimport", flag.ContinueOnError)
	var (
		in  = fs.String("in", "-", "input trace or bundle ('-' for stdin)")
		out = fs.String("out", "-", "output bundle path ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (use -in/-out)", fs.Args())
	}

	var (
		b      *traceimport.Bundle
		format string
		err    error
	)
	if *in == "-" {
		data, rerr := io.ReadAll(stdin)
		if rerr != nil {
			return rerr
		}
		b, format, err = traceimport.ImportAny(data)
	} else {
		b, format, err = traceimport.LoadAny(*in)
	}
	if err != nil {
		return err
	}

	data, err := b.Marshal()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	s := b.Summary
	fmt.Fprintf(stderr, "traceimport: %s input: %d servers at %d sites, %d users, %d days of %v, poll %v, server TTL %v, ~%.0f updates/day, redirect frac %.4f, %d absence runs (%d fault windows)\n",
		format, s.Servers, s.Sites, s.Users, s.Days, s.DayLength.D(), s.PollInterval.D(), s.ServerTTL.D(), s.UpdatesPerDay, s.RedirectFrac, s.Absences, len(b.CrashWindows()))
	return nil
}
