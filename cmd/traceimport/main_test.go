package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
	"cdnconsistency/internal/traceimport"
)

func genTrace(t *testing.T) *trace.Trace {
	t.Helper()
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 12, Seed: 21},
		Days:     1,
		Users:    10,
		Seed:     21,
	})
	if err != nil {
		t.Fatalf("tracegen.Generate: %v", err)
	}
	return res.Trace
}

func TestRunFileToFile(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "crawl.jsonl")
	var buf bytes.Buffer
	if err := trace.Write(&buf, genTrace(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "bundle.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", inPath, "-out", outPath}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := traceimport.LoadBundle(outPath)
	if err != nil {
		t.Fatalf("output bundle does not load: %v", err)
	}
	if b.Summary.Servers != 12 || b.Summary.Users != 10 {
		t.Errorf("bundle summary servers=%d users=%d", b.Summary.Servers, b.Summary.Users)
	}
	for _, want := range []string{"jsonl input", "12 servers", "10 users"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var in bytes.Buffer
	if err := trace.Write(&in, genTrace(t)); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(nil, &in, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := traceimport.ParseBundle(bytes.TrimSuffix(stdout.Bytes(), []byte("\n")))
	if err != nil {
		t.Fatalf("stdout is not a valid bundle: %v", err)
	}
	// Importing the emitted bundle again re-emits it byte-canonically.
	again, format, err := traceimport.ImportAny(stdout.Bytes())
	if err != nil {
		t.Fatalf("re-import: %v", err)
	}
	if format != traceimport.FormatBundle {
		t.Errorf("re-import sniffed %q, want %q", format, traceimport.FormatBundle)
	}
	aj, _ := again.Marshal()
	bj, _ := b.Marshal()
	if !bytes.Equal(aj, bj) {
		t.Error("re-imported bundle deviates")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("junk"), &stdout, &stderr); err == nil {
		t.Error("junk stdin accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing")}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"positional"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
}
