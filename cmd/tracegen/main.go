// Command tracegen generates a synthetic CDN crawl trace with the same
// schema and statistical phenomena as the paper's Section-3 crawl, in
// either the JSONL schema or the "#cdnlog" access-log flavor.
//
// Usage:
//
//	tracegen -servers 600 -days 5 -users 120 -seed 42 -out trace.jsonl
//	tracegen -short -servers 24 -days 1 -format accesslog -out crawl.log
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
	"cdnconsistency/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		servers = fs.Int("servers", 600, "number of content servers to crawl")
		days    = fs.Int("days", 5, "number of crawl days")
		users   = fs.Int("users", 120, "number of user-perspective pollers")
		seed    = fs.Int64("seed", 42, "deterministic seed")
		short   = fs.Bool("short", false, "use a short 12-minute crawl day (two 5-minute play phases around a 2-minute break) instead of the paper's full game day — for quick import fixtures")
		format  = fs.String("format", "jsonl", "output flavor: jsonl (the trace schema) or accesslog (the #cdnlog line format)")
		out     = fs.String("out", "-", "output path ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := tracegen.Config{
		Topology: topology.Config{Servers: *servers, Seed: *seed},
		Days:     *days,
		Users:    *users,
		Seed:     *seed,
	}
	if *short {
		cfg.Game = workload.GameConfig{
			Phases: []workload.Phase{
				{Name: "play1", Duration: 5 * time.Minute, MeanGap: 15 * time.Second},
				{Name: "break", Duration: 2 * time.Minute},
				{Name: "play2", Duration: 5 * time.Minute, MeanGap: 15 * time.Second},
			},
			SizeKB: 1,
			MinGap: time.Second,
		}
	}
	res, err := tracegen.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "jsonl":
		err = trace.Write(w, res.Trace)
	case "accesslog":
		// The access-log flavor is a flat chronological line stream, so
		// records are emitted in time order.
		res.Trace.SortRecords()
		err = trace.WriteAccessLog(w, res.Trace)
	default:
		return fmt.Errorf("unknown -format %q (want jsonl or accesslog)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d servers, %d days, %d records (%s)\n",
		len(res.Trace.Servers), res.Trace.Meta.Days, len(res.Trace.Records), *format)
	return nil
}
