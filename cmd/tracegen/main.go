// Command tracegen generates a synthetic CDN crawl trace (JSONL) with the
// same schema and statistical phenomena as the paper's Section-3 crawl.
//
// Usage:
//
//	tracegen -servers 600 -days 5 -users 120 -seed 42 -out trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		servers = fs.Int("servers", 600, "number of content servers to crawl")
		days    = fs.Int("days", 5, "number of crawl days")
		users   = fs.Int("users", 120, "number of user-perspective pollers")
		seed    = fs.Int64("seed", 42, "deterministic seed")
		out     = fs.String("out", "-", "output path ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: *servers, Seed: *seed},
		Days:     *days,
		Users:    *users,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, res.Trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d servers, %d days, %d records\n",
		len(res.Trace.Servers), res.Trace.Meta.Days, len(res.Trace.Records))
	return nil
}
