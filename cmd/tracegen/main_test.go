package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cdnconsistency/internal/trace"
)

func TestRunWritesValidTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run([]string{"-servers", "20", "-days", "1", "-users", "5", "-seed", "3", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tr.Servers) != 20 || tr.Meta.Days != 1 {
		t.Errorf("servers=%d days=%d", len(tr.Servers), tr.Meta.Days)
	}
}

func TestRunShortAccessLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "crawl.log")
	err := run([]string{"-servers", "10", "-days", "1", "-users", "4", "-seed", "3", "-short", "-format", "accesslog", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseAccessLog(f)
	if err != nil {
		t.Fatalf("ParseAccessLog: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if want := 12 * time.Minute; tr.Meta.DayLength != want {
		t.Errorf("-short day length %v, want %v", tr.Meta.DayLength, want)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-servers", "notanumber"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-servers", "0", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("zero servers accepted")
	}
	if err := run([]string{"-servers", "5", "-out", "/nonexistent-dir/x.jsonl"}); err == nil {
		t.Error("unwritable output accepted")
	}
	if err := run([]string{"-servers", "5", "-format", "csv", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown format accepted")
	}
}
