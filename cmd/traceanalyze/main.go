// Command traceanalyze runs the paper's complete Section-3 measurement
// analysis on a crawl trace and prints every figure's data series
// (Figures 3-12 plus the multicast-tree verdict).
//
// Usage:
//
//	traceanalyze -in trace.jsonl          # analyze a stored trace
//	traceanalyze -synthetic -servers 300  # generate-and-analyze in one step
package main

import (
	"flag"
	"fmt"
	"os"

	"cdnconsistency/internal/analysis"
	"cdnconsistency/internal/figures"
	"cdnconsistency/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceanalyze", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "trace file to analyze (JSONL)")
		synthetic = fs.Bool("synthetic", false, "generate a synthetic trace instead of reading one")
		servers   = fs.Int("servers", 300, "synthetic: number of servers")
		days      = fs.Int("days", 3, "synthetic: number of days")
		users     = fs.Int("users", 80, "synthetic: number of user pollers")
		seed      = fs.Int64("seed", 42, "synthetic: seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	env, err := buildEnv(*in, *synthetic, *servers, *days, *users, *seed)
	if err != nil {
		return err
	}

	// Executive summary first (the paper's Section 3.6 view), then every
	// figure's series.
	summary, err := env.Dataset.Summarize()
	if err != nil {
		return err
	}
	fmt.Println("== summary ==")
	fmt.Println(summary.String())

	type gen func(*figures.TraceEnv) (*figures.Table, error)
	gens := []gen{
		figures.Fig03, figures.Fig04, figures.Fig05, figures.Fig06,
		figures.Fig07, figures.Fig08, figures.Fig09, figures.Fig10,
		figures.Fig11, figures.Fig12, figures.TreeVerdictTable,
	}
	for _, g := range gens {
		tab, err := g(env)
		if err != nil {
			return err
		}
		fmt.Println(tab.String())
	}
	return nil
}

func buildEnv(in string, synthetic bool, servers, days, users int, seed int64) (*figures.TraceEnv, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return nil, err
		}
		ds, err := analysis.NewDataset(tr)
		if err != nil {
			return nil, err
		}
		return &figures.TraceEnv{Dataset: ds}, nil
	case synthetic:
		return figures.NewTraceEnv(figures.TraceScale{
			Servers: servers, Days: days, Users: users, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("pass -in <file> or -synthetic")
	}
}
