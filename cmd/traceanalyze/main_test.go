package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
)

// captureStdout runs f with os.Stdout redirected to a buffer.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func writeTestTrace(t *testing.T) string {
	t.Helper()
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 30, Seed: 2},
		Days:     2,
		Users:    10,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, res.Trace); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnStoredTrace(t *testing.T) {
	path := writeTestTrace(t)
	out, err := captureStdout(t, func() error { return run([]string{"-in", path}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"fig03", "fig06", "fig12", "tree-verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestRunSynthetic(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-synthetic", "-servers", "25", "-days", "1", "-users", "8", "-seed", "5"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "inferred_ttl_s") {
		t.Error("output missing TTL inference")
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"-in", "/nonexistent.jsonl"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunRejectsCorruptTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Error("corrupt trace accepted")
	}
}
