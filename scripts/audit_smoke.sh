#!/usr/bin/env bash
# Audited interrupt/resume smoke test, runnable locally and in CI
# (`make audit-smoke`):
#
#   1. run a short figure sweep under the runtime invariant auditor,
#   2. run the same sweep again with -checkpoint and SIGTERM it as soon as
#      the journal records a finished figure,
#   3. resume from the checkpoint and require the resumed stdout to be
#      byte-identical to the uninterrupted sweep.
#
# Any invariant violation, torn journal, or resume divergence fails the
# script.
set -euo pipefail

cd "$(dirname "$0")/.."

FIGS="fig16,fig17,fig22,ext-regime"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

echo "audit-smoke: uninterrupted audited sweep ($FIGS)"
"$TMP/experiments" -scale small -parallel 1 -audit -only "$FIGS" \
    >"$TMP/full.out" 2>/dev/null

echo "audit-smoke: interrupted sweep (SIGTERM once a figure is checkpointed)"
"$TMP/experiments" -scale small -parallel 1 -audit -only "$FIGS" \
    -checkpoint "$TMP/ck" >"$TMP/partial.out" 2>"$TMP/partial.err" &
pid=$!
for _ in $(seq 1 200); do
    grep -q '"id"' "$TMP/ck/journal.json" 2>/dev/null && break
    sleep 0.1
done
kill -TERM "$pid" 2>/dev/null || true
if wait "$pid"; then
    echo "audit-smoke: sweep finished before the signal landed; resume will replay the full journal"
else
    echo "audit-smoke: sweep interrupted with $(grep -c '"id"' "$TMP/ck/journal.json") figure(s) checkpointed"
fi

echo "audit-smoke: resuming from $TMP/ck"
"$TMP/experiments" -scale small -parallel 1 -audit -only "$FIGS" \
    -resume "$TMP/ck" >"$TMP/resumed.out" 2>/dev/null

cmp "$TMP/full.out" "$TMP/resumed.out"
echo "audit-smoke: OK — resumed stdout is byte-identical to the uninterrupted sweep"
