#!/usr/bin/env bash
# Coverage ratchet (`make cover`, the CI coverage job):
#
#   1. run `go test -coverprofile` on the ratcheted packages,
#   2. fail if any package's statement coverage drops below its floor,
#   3. additionally hold the cohort user-model files (the code the
#      million-user equivalence claim rests on) to their own floor,
#      computed statement-weighted from the merged profiles.
#
# Floors ratchet: they may only move up, and they sit a few points below
# the measured coverage so routine refactors don't trip them while real
# coverage regressions do.
set -euo pipefail

cd "$(dirname "$0")/.."

# package floor%   (measured at ratchet time: cdn 87.7, workload 97.5,
#                   traceimport 91.4 — the import inference path holds a
#                   deliberately tight floor, per the trace-import PR)
PACKAGES=(
    "./internal/cdn 85.0"
    "./internal/workload 95.0"
    "./internal/traceimport 90.0"
)

# The cohort user-model code paths, held to a tighter floor (measured 93+).
COHORT_FILES='internal/cdn/cohort\.go|internal/cdn/usermodel\.go|internal/cdn/users\.go|internal/workload/population\.go'
COHORT_FLOOR=90.0

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
profiles=()
for entry in "${PACKAGES[@]}"; do
    pkg=${entry% *}
    floor=${entry#* }
    out="$TMP/$(echo "$pkg" | tr './' '__').out"
    go test -coverprofile="$out" "$pkg" >/dev/null
    profiles+=("$out")
    pct=$(go tool cover -func="$out" | awk '/^total:/ {gsub(/%/,""); print $NF}')
    if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p < f)}'; then
        echo "cover: FAIL $pkg at ${pct}% (floor ${floor}%)"
        fail=1
    else
        echo "cover: ok   $pkg at ${pct}% (floor ${floor}%)"
    fi
done

# Statement-weighted coverage of the cohort file set across the profiles.
cohort_pct=$(
    { for p in "${profiles[@]}"; do tail -n +2 "$p"; done; } |
    grep -E "$COHORT_FILES" |
    awk '{
        # profile line: name.go:a.b,c.d numStatements hitCount
        n = $(NF-1); hit = $NF
        total += n
        if (hit > 0) covered += n
    } END { if (total == 0) print 0; else printf "%.1f", 100 * covered / total }'
)
if awk -v p="$cohort_pct" -v f="$COHORT_FLOOR" 'BEGIN{exit !(p < f)}'; then
    echo "cover: FAIL cohort user-model files at ${cohort_pct}% (floor ${COHORT_FLOOR}%)"
    fail=1
else
    echo "cover: ok   cohort user-model files at ${cohort_pct}% (floor ${COHORT_FLOOR}%)"
fi

exit $fail
