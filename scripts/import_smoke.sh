#!/usr/bin/env bash
# Import smoke (`make import-smoke`, the CI import-smoke job):
#
#   1. regenerate the committed crawl fixture (tracegen -short, fixed seed)
#      and re-infer its bundle; it must be byte-identical to
#      plans/bundles/smoke.json — the estimators and the fixture move
#      together or not at all,
#   2. the access-log rendering of the same crawl must infer the identical
#      bundle (format convergence),
#   3. replay through cdnsim -import twice; stdout must be byte-identical
#      (deterministic replay), and importing the raw trace must replay
#      identically to importing its pre-inferred bundle,
#   4. run the import-replay plan, which pins the inferred fault windows.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/tracegen" ./cmd/tracegen
go build -o "$TMP/traceimport" ./cmd/traceimport
go build -o "$TMP/cdnsim" ./cmd/cdnsim

GEN_ARGS=(-short -servers 24 -days 1 -users 20 -seed 99)

"$TMP/tracegen" "${GEN_ARGS[@]}" -out "$TMP/crawl.jsonl" 2>/dev/null
"$TMP/traceimport" -in "$TMP/crawl.jsonl" -out "$TMP/bundle.json" 2>/dev/null
if ! cmp -s "$TMP/bundle.json" plans/bundles/smoke.json; then
    echo "import-smoke: FAIL inferred bundle deviates from plans/bundles/smoke.json" >&2
    diff plans/bundles/smoke.json "$TMP/bundle.json" >&2 || true
    echo "import-smoke: refresh it with: go run ./cmd/tracegen ${GEN_ARGS[*]} | go run ./cmd/traceimport > plans/bundles/smoke.json" >&2
    exit 1
fi
echo "import-smoke: ok   inferred bundle matches the committed fixture"

"$TMP/tracegen" "${GEN_ARGS[@]}" -format accesslog -out "$TMP/crawl.log" 2>/dev/null
"$TMP/traceimport" -in "$TMP/crawl.log" -out "$TMP/bundle-from-log.json" 2>/dev/null
cmp "$TMP/bundle-from-log.json" "$TMP/bundle.json"
echo "import-smoke: ok   access-log flavor infers the identical bundle"

"$TMP/cdnsim" -system HAT -import "$TMP/bundle.json" > "$TMP/run1.out"
"$TMP/cdnsim" -system HAT -import "$TMP/bundle.json" > "$TMP/run2.out"
cmp "$TMP/run1.out" "$TMP/run2.out"
# The raw trace replays identically to its pre-inferred bundle; only the
# header line naming the input differs.
"$TMP/cdnsim" -system HAT -import "$TMP/crawl.jsonl" > "$TMP/run3.out"
cmp <(tail -n +2 "$TMP/run1.out") <(tail -n +2 "$TMP/run3.out")
echo "import-smoke: ok   cdnsim -import replays deterministically (bundle and raw trace)"

"$TMP/cdnsim" -plan plans/40-import-replay.json >/dev/null
echo "import-smoke: ok   import-replay plan passes"
echo "import-smoke: PASS"
