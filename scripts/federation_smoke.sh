#!/usr/bin/env bash
# Federation smoke test, runnable locally and in CI (`make federation-smoke`):
#
#   1. run the federation plans (provider storm + broker flap) serially and
#      in parallel and require byte-identical stdout — cross-system compares
#      included — plus a passing junit report,
#   2. run the storm plan again with -checkpoint and SIGTERM it as soon as
#      the journal records a finished cell, then resume and require the
#      resumed stdout (including the compare block, which is recomputed from
#      journaled metrics) to be byte-identical to the uninterrupted run,
#   3. run the seeded bad-compare plan and require a non-zero exit plus a
#      junit <failure> naming the impossible compare.
#
# A stranded user, an auditor violation, a compare divergence across resume,
# or a seeded violation the harness fails to catch fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

echo "federation-smoke: federation plans, serial"
"$TMP/experiments" -plan plans/30-federation-storm.json -parallel 1 \
    >"$TMP/storm-serial.out" 2>/dev/null
"$TMP/experiments" -plan plans/31-federation-flap.json -parallel 1 \
    -junit "$TMP/flap.xml" >"$TMP/flap-serial.out" 2>/dev/null

echo "federation-smoke: federation plans, parallel"
"$TMP/experiments" -plan plans/30-federation-storm.json -parallel 4 \
    >"$TMP/storm-parallel.out" 2>/dev/null
"$TMP/experiments" -plan plans/31-federation-flap.json -parallel 4 \
    >"$TMP/flap-parallel.out" 2>/dev/null

cmp "$TMP/storm-serial.out" "$TMP/storm-parallel.out"
cmp "$TMP/flap-serial.out" "$TMP/flap-parallel.out"
grep -q 'failures="0" errors="0"' "$TMP/flap.xml"
grep -q 'stranded_users == 0' "$TMP/storm-serial.out"
grep -q '^PASS.compare degraded_seconds' "$TMP/storm-serial.out"
echo "federation-smoke: plans pass; stdout is byte-identical across -parallel"

echo "federation-smoke: interrupted storm plan (SIGTERM once a cell is checkpointed)"
"$TMP/experiments" -plan plans/30-federation-storm.json -parallel 1 \
    -checkpoint "$TMP/ck" >"$TMP/partial.out" 2>"$TMP/partial.err" &
pid=$!
for _ in $(seq 1 200); do
    grep -q '"id"' "$TMP/ck/journal.json" 2>/dev/null && break
    sleep 0.05
done
kill -TERM "$pid" 2>/dev/null || true
if wait "$pid"; then
    echo "federation-smoke: plan finished before the signal landed; resume will replay the full journal"
else
    echo "federation-smoke: plan interrupted with $(grep -c '"id"' "$TMP/ck/journal.json") cell(s) checkpointed"
fi

echo "federation-smoke: resuming from $TMP/ck"
"$TMP/experiments" -plan plans/30-federation-storm.json -parallel 1 \
    -resume "$TMP/ck" >"$TMP/resumed.out" 2>/dev/null

cmp "$TMP/storm-serial.out" "$TMP/resumed.out"
echo "federation-smoke: resumed stdout (compares included) is byte-identical to the uninterrupted run"

echo "federation-smoke: seeded bad-compare plan must fail"
if "$TMP/experiments" -plan plans/seeded/bad-compare.json -junit "$TMP/seeded.xml" \
    >"$TMP/seeded.out" 2>/dev/null; then
    echo "federation-smoke: FAIL — seeded bad compare passed" >&2
    exit 1
fi
grep -q '<failure message=' "$TMP/seeded.xml"
grep -q 'compare degraded_seconds' "$TMP/seeded.xml"
echo "federation-smoke: OK — seeded bad compare failed with the compare named in the junit report"
