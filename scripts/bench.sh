#!/usr/bin/env bash
# Machine-readable benchmark snapshots (`make bench`):
#
#   1. run the Go benchmark suite (root figure benchmarks plus the
#      internal engine/netmodel micro-benchmarks) with -benchmem,
#   2. aggregate repeated -count runs into per-benchmark medians via
#      cmd/benchjson,
#   3. write the result as BENCH_<n>.json at the next free index (or to
#      the path given as $1),
#   4. if a committed baseline exists, print an informational comparison.
#
# Environment knobs:
#
#   BENCH_PATTERN      -bench regexp            (default: .)
#   BENCH_TIME         -benchtime               (default: 1x)
#   BENCH_COUNT        -count, medians taken    (default: 3)
#   BENCH_NOTE         free-form note stored in the JSON
#   BENCH_BASELINE     file to diff against     (default: newest BENCH_*.json
#                      before the one being written)
#   BENCH_STRICT=1     fail on >20% regression against the baseline
#                      (CI sets this; locally the diff is informational)
#
# allocs/op and B/op are deterministic for this suite, so they compare
# exactly across machines; ns/op is machine- and load-dependent.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-.}"
BENCHTIME="${BENCH_TIME:-1x}"
COUNT="${BENCH_COUNT:-3}"
NOTE="${BENCH_NOTE:-}"

OUT="${1:-}"
if [[ -z "$OUT" ]]; then
    n=0
    while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
    OUT="BENCH_${n}.json"
fi

BASELINE="${BENCH_BASELINE:-}"
if [[ -z "$BASELINE" ]]; then
    for f in $(ls -1 BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); do
        [[ "$f" == "$OUT" ]] && continue
        BASELINE="$f"
    done
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/benchjson" ./cmd/benchjson

echo "bench: go test -bench '$PATTERN' -benchtime $BENCHTIME -count $COUNT (medians across runs)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./... \
    | tee "$TMP/bench.txt"

"$TMP/benchjson" -note "$NOTE" -out "$OUT" <"$TMP/bench.txt"
echo "bench: wrote $OUT"

if [[ -n "$BASELINE" && -e "$BASELINE" ]]; then
    echo "bench: comparing against $BASELINE"
    if [[ "${BENCH_STRICT:-0}" == "1" ]]; then
        "$TMP/benchjson" -compare "$BASELINE,$OUT" -max-regress "${BENCH_MAX_REGRESS:-0.20}" ${BENCH_GUARD:+-guard "$BENCH_GUARD"}
    else
        "$TMP/benchjson" -compare "$BASELINE,$OUT" -max-regress "${BENCH_MAX_REGRESS:-0.20}" ${BENCH_GUARD:+-guard "$BENCH_GUARD"} \
            || echo "bench: regression vs $BASELINE (informational; set BENCH_STRICT=1 to fail)"
    fi
fi
