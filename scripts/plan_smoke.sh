#!/usr/bin/env bash
# Plan-catalog smoke test, runnable locally and in CI (`make plan-smoke`):
#
#   1. run the curated plans/ catalog serially and in parallel and require
#      byte-identical stdout plus a passing junit report,
#   2. run the catalog again with -checkpoint and SIGTERM it as soon as the
#      journal records a finished cell, then resume and require the resumed
#      stdout and junit report to be byte-identical to the uninterrupted run,
#   3. run a seeded-violation plan and require a non-zero exit plus a junit
#      <failure> carrying the assertion message,
#   4. run the seeded audit-tripwire plan (deliberate mid-run corruption via
#      audit_self_test under the sharded engine) and require the barrier
#      auditor to catch it.
#
# Any SLO regression, torn journal, resume divergence, or a seeded violation
# that the harness fails to catch fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

echo "plan-smoke: curated catalog, serial"
"$TMP/experiments" -plan-catalog plans -parallel 1 -junit "$TMP/serial.xml" \
    >"$TMP/serial.out" 2>/dev/null

echo "plan-smoke: curated catalog, parallel"
"$TMP/experiments" -plan-catalog plans -parallel 4 -junit "$TMP/parallel.xml" \
    >"$TMP/parallel.out" 2>/dev/null

cmp "$TMP/serial.out" "$TMP/parallel.out"
cmp "$TMP/serial.xml" "$TMP/parallel.xml"
grep -q 'failures="0" errors="0"' "$TMP/serial.xml"
echo "plan-smoke: catalog passes; stdout and junit are byte-identical across -parallel"

echo "plan-smoke: interrupted catalog (SIGTERM once a cell is checkpointed)"
"$TMP/experiments" -plan-catalog plans -parallel 1 -checkpoint "$TMP/ck" \
    >"$TMP/partial.out" 2>"$TMP/partial.err" &
pid=$!
for _ in $(seq 1 200); do
    grep -q '"id"' "$TMP/ck/journal.json" 2>/dev/null && break
    sleep 0.05
done
kill -TERM "$pid" 2>/dev/null || true
if wait "$pid"; then
    echo "plan-smoke: catalog finished before the signal landed; resume will replay the full journal"
else
    echo "plan-smoke: catalog interrupted with $(grep -c '"id"' "$TMP/ck/journal.json") cell(s) checkpointed"
fi

echo "plan-smoke: resuming from $TMP/ck"
"$TMP/experiments" -plan-catalog plans -parallel 1 -resume "$TMP/ck" \
    -junit "$TMP/resumed.xml" >"$TMP/resumed.out" 2>/dev/null

cmp "$TMP/serial.out" "$TMP/resumed.out"
cmp "$TMP/serial.xml" "$TMP/resumed.xml"
echo "plan-smoke: resumed stdout and junit are byte-identical to the uninterrupted run"

echo "plan-smoke: seeded-violation plan must fail"
if "$TMP/experiments" -plan plans/seeded/bad-slo.json -junit "$TMP/seeded.xml" \
    >"$TMP/seeded.out" 2>/dev/null; then
    echo "plan-smoke: FAIL — seeded violation passed" >&2
    exit 1
fi
grep -q '<failure message=' "$TMP/seeded.xml"
grep -q 'p99_user_inconsistency' "$TMP/seeded.xml"
echo "plan-smoke: OK — seeded violation failed with the assertion message in the junit report"

echo "plan-smoke: seeded audit tripwire (sharded audit_self_test) must fail"
if "$TMP/experiments" -plan plans/seeded/bad-audit-tripwire.json -junit "$TMP/tripwire.xml" \
    >"$TMP/tripwire.out" 2>/dev/null; then
    echo "plan-smoke: FAIL — audit self-test corruption passed the sharded auditor" >&2
    exit 1
fi
grep -q '<failure message=' "$TMP/tripwire.xml"
grep -q 'audit_violations' "$TMP/tripwire.xml"
echo "plan-smoke: OK — sharded barrier auditor caught the seeded corruption"
