package plan

import (
	"bytes"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJUnitCountsAndMessages(t *testing.T) {
	cells := []*CellResult{
		{
			ID: "a/TTL/s1", Plan: "a", System: "TTL", Seed: 1,
			Metrics: map[string]float64{"crashes": 0, "stale_serve_frac": 0.25},
			Checks:  []CheckResult{{Name: "crashes == 0", OK: true, Detail: "got 0, limit 0"}},
		},
		{
			ID: "a/HAT/s1", Plan: "a", System: "HAT", Seed: 1,
			Checks: []CheckResult{
				{Name: "crashes == 0", OK: true, Detail: "got 0, limit 0"},
				{Name: "stale_serve_frac <= 0.1", OK: false, Detail: "got 0.5, limit 0.1"},
				{Name: "p99_user_inconsistency <= 2*ttl", OK: false, Detail: "got 99, limit 20"},
			},
		},
		{
			ID: "b/TTL/s1", Plan: "b", System: "TTL", Seed: 1,
			Err: `cdn: sharded runs cannot use Audit & "quotes" <tags>`,
		},
	}
	data, err := JUnit(cells)
	if err != nil {
		t.Fatalf("JUnit: %v", err)
	}
	var doc junitSuites
	if err := xml.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report is not valid XML: %v\n%s", err, data)
	}
	if doc.Tests != 3 || doc.Failures != 1 || doc.Errors != 1 {
		t.Errorf("testsuites counts = %d/%d/%d, want 3/1/1", doc.Tests, doc.Failures, doc.Errors)
	}
	if len(doc.Suites) != 2 || doc.Suites[0].Name != "a" || doc.Suites[1].Name != "b" {
		t.Fatalf("suite grouping wrong: %+v", doc.Suites)
	}
	if doc.Suites[0].Tests != 2 || doc.Suites[0].Failures != 1 {
		t.Errorf("suite a counts = %+v", doc.Suites[0])
	}
	fail := doc.Suites[0].Cases[1].Failure
	if fail == nil {
		t.Fatal("failing cell has no <failure>")
	}
	if fail.Message != "2 assertion(s) failed" {
		t.Errorf("failure message = %q", fail.Message)
	}
	if !strings.Contains(fail.Body, "stale_serve_frac <= 0.1: got 0.5, limit 0.1") {
		t.Errorf("failure body missing assertion detail: %q", fail.Body)
	}
	errCase := doc.Suites[1].Cases[0].Error
	if errCase == nil || !strings.Contains(errCase.Body, `"quotes" <tags>`) {
		t.Errorf("error case did not survive XML round trip: %+v", errCase)
	}
	if !strings.Contains(doc.Suites[0].Cases[0].SystemOut, "stale_serve_frac=0.25") {
		t.Errorf("system-out missing metrics: %q", doc.Suites[0].Cases[0].SystemOut)
	}
}

func TestJUnitDeterministic(t *testing.T) {
	cells := []*CellResult{{
		ID: "a/TTL/s1", Plan: "a", System: "TTL", Seed: 1,
		Metrics: map[string]float64{"b": 2, "a": 1, "c": 3},
		Checks:  []CheckResult{{Name: "a == 1", OK: true, Detail: "got 1, limit 1"}},
	}}
	first, err := JUnit(cells)
	if err != nil {
		t.Fatalf("JUnit: %v", err)
	}
	for i := 0; i < 20; i++ {
		again, err := JUnit(cells)
		if err != nil {
			t.Fatalf("JUnit: %v", err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("report not byte-stable:\n%s\nvs\n%s", first, again)
		}
	}
	if strings.Contains(string(first), "time=") {
		t.Errorf("report contains wall-clock attributes:\n%s", first)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	mk := func(name, planName string) {
		js := `{"name":"` + planName + `","systems":["TTL"],"assert":[{"metric":"crashes","op":"==","value":0}]}`
		if err := os.WriteFile(filepath.Join(dir, name), []byte(js), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("20-second.json", "second")
	mk("10-first.json", "first")
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	plans, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(plans) != 2 || plans[0].Name != "first" || plans[1].Name != "second" {
		t.Errorf("catalog order wrong: %+v", plans)
	}

	// Duplicate plan names across files are rejected.
	mk("30-dup.json", "first")
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "both define") {
		t.Errorf("duplicate plan name not rejected: %v", err)
	}

	// An empty catalog is an error, not a silent no-op.
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestLoadFileErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("load error does not name the file: %v", err)
	}
}
