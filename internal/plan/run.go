package plan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/workload"
)

// Cell is one matrix entry of a plan: a system at a seed.
type Cell struct {
	Plan   *Plan
	System core.System
	Seed   int64
}

// ID is the cell's stable identifier: plan name, system label, seed.
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s/s%d", c.Plan.Name, c.System.Name, c.Seed)
}

// Cells expands the plan into its matrix (systems x seeds, in spec order).
// Validate guarantees every system resolves, so expansion cannot fail after
// a successful parse.
func (p *Plan) Cells() ([]Cell, error) {
	var out []Cell
	for _, name := range p.Systems {
		sys, err := resolveSystem(name)
		if err != nil {
			return nil, fmt.Errorf("plan %s: %w", p.Name, err)
		}
		for _, seed := range p.seeds() {
			out = append(out, Cell{Plan: p, System: sys, Seed: seed})
		}
	}
	return out, nil
}

// RunOptions carries the execution context into a cell run.
type RunOptions struct {
	// Ctx, when non-nil, makes the cell's simulations cancellable.
	Ctx context.Context
	// Probe, when non-nil, receives event-loop liveness reports (virtual
	// time, processed events) for stuck-job watchdogs.
	Probe func(now time.Duration, events uint64)
}

// CellResult is one executed cell's outcome. It round-trips through JSON
// losslessly (float64 values use shortest-round-trip encoding), which is how
// checkpointed catalog runs resume byte-identically.
type CellResult struct {
	ID     string `json:"id"`
	Plan   string `json:"plan"`
	System string `json:"system"`
	Seed   int64  `json:"seed"`
	// Metrics holds the primary run's extracted metrics; nil when the run
	// errored before producing a result.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Checks holds one entry per assertion, then per equivalence check.
	Checks []CheckResult `json:"checks,omitempty"`
	// Err records a run that failed outright (invalid configuration, a
	// simulation error) — reported as a junit error, not a failure.
	Err string `json:"error,omitempty"`
	// Events counts the primary run's simulation events (metrics surface).
	Events uint64 `json:"events,omitempty"`
}

// Failed reports whether the cell should fail the catalog: an execution
// error or any unsatisfied check.
func (r *CellResult) Failed() bool {
	if r.Err != "" {
		return true
	}
	for _, c := range r.Checks {
		if !c.OK {
			return true
		}
	}
	return false
}

// FailureDetail joins the failed checks' one-line explanations.
func (r *CellResult) FailureDetail() string {
	var lines []string
	for _, c := range r.Checks {
		if !c.OK {
			lines = append(lines, fmt.Sprintf("%s: %s", c.Name, c.Detail))
		}
	}
	return strings.Join(lines, "\n")
}

// Render prints the cell the way the catalog runner emits it: a header line
// and one PASS/FAIL line per check. Output is a pure function of the
// CellResult, so checkpointed cells replay byte-identically.
func (r *CellResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== plan %s ==\n", r.ID)
	if r.Err != "" {
		fmt.Fprintf(&b, "ERROR\t%s\n", r.Err)
	}
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%s\t%s\t(%s)\n", verdict, c.Name, c.Detail)
	}
	return b.String()
}

// RenderMetrics prints the cell's full metric map, sorted by name — the
// calibration view cdnsim -plan shows.
func (r *CellResult) RenderMetrics() string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "metric\t%s\t%s\n", k, fnum(r.Metrics[k]))
	}
	return b.String()
}

// variant tweaks one cell run relative to the plan (equivalence re-runs).
type variant struct {
	shards    int    // override worker count when > 0
	userModel string // override user model when != ""
}

// coreOptions compiles the plan into the core configuration for one run.
func (c Cell) coreOptions(v variant, opt RunOptions) ([]core.Option, error) {
	p := c.Plan
	opts := []core.Option{core.WithSeed(c.Seed)}
	if p.Import != "" {
		if p.bundle == nil {
			return nil, fmt.Errorf("plan %s: import %q was not resolved (load the plan with LoadFile or attach a bundle with SetImportBundle)", p.Name, p.Import)
		}
		// The bundle's options are materialized per run: WithGame draws
		// from the seed already applied above, and the topology must not
		// be shared across concurrent cell runs.
		bopts, err := p.bundle.Options()
		if err != nil {
			return nil, fmt.Errorf("plan %s: %w", p.Name, err)
		}
		opts = append(opts, bopts...)
	}
	if p.Servers > 0 {
		opts = append(opts, core.WithServers(p.Servers))
	}
	if p.UsersPerServer > 0 {
		opts = append(opts, core.WithUsersPerServer(p.UsersPerServer))
	}
	if p.Clusters > 0 {
		opts = append(opts, core.WithClusters(p.Clusters))
	}
	if p.TreeDegree > 0 {
		opts = append(opts, core.WithTreeDegree(p.TreeDegree))
	}
	if p.SupernodeDegree > 0 {
		opts = append(opts, core.WithSupernodeDegree(p.SupernodeDegree))
	}
	if p.ServerTTL > 0 {
		opts = append(opts, core.WithServerTTL(p.ServerTTL.D()))
	}
	if p.UserTTL > 0 {
		opts = append(opts, core.WithUserTTL(p.UserTTL.D()))
	}
	if p.UpdateSizeKB > 0 {
		opts = append(opts, core.WithUpdateSizeKB(p.UpdateSizeKB))
	}
	if p.Game != nil {
		// WithGame draws the schedule with the run's seed; WithSeed is
		// already ahead of it in the option order.
		opts = append(opts, core.WithGame(p.Game.Config()))
	}
	pop, err := c.population()
	if err != nil {
		return nil, err
	}
	if pop != nil {
		opts = append(opts, core.WithPopulation(pop))
	}
	model := p.UserModel
	if v.userModel != "" {
		model = v.userModel
	}
	if model != "" {
		opts = append(opts, core.WithUserModel(model))
	}
	spec, err := c.faultSpec()
	if err != nil {
		return nil, err
	}
	if spec != nil {
		opts = append(opts, core.WithFaults(*spec))
	}
	if p.Failover {
		opts = append(opts, core.WithFailover())
	}
	if p.Federation != nil {
		opts = append(opts, core.WithFederation(*p.Federation))
	}
	shards := p.Shards
	if v.shards > 0 {
		shards = v.shards
	}
	if shards > 0 {
		opts = append(opts, core.WithShards(shards))
		if p.ShardCells > 0 {
			opts = append(opts, core.WithShardCells(p.ShardCells))
		}
	}
	if p.Audit {
		opts = append(opts, core.WithAudit(p.AuditCadence.D()))
		if p.AuditSelfTest != "" {
			opts = append(opts, core.WithAuditSelfTest(p.AuditSelfTest))
		}
	}
	if opt.Ctx != nil {
		opts = append(opts, core.WithContext(opt.Ctx))
	}
	if opt.Probe != nil {
		opts = append(opts, core.WithTick(opt.Probe))
	}
	return opts, nil
}

// population materializes the cell's population: the inline spec, or a
// generator draw seeded by the cell (so multi-seed plans draw fresh
// populations) unless the generator pins its own seed.
func (c Cell) population() (*workload.Population, error) {
	p := c.Plan
	if p.Population != nil {
		return p.Population, nil
	}
	g := p.PopulationGen
	if g == nil {
		return nil, nil
	}
	servers := p.Servers
	if servers <= 0 {
		servers = 170
	}
	seed := g.Seed
	if seed == 0 {
		seed = c.Seed
	}
	return workload.GeneratePopulation(workload.PopulationConfig{
		Servers:          servers,
		TotalUsers:       g.TotalUsers,
		Alpha:            g.Alpha,
		CohortsPerServer: g.CohortsPerServer,
		Period:           g.Period.D(),
		SpreadMax:        g.SpreadMax.D(),
		Seed:             seed,
	})
}

func (c Cell) faultSpec() (*fault.Spec, error) {
	p := c.Plan
	if p.Faults != nil {
		return p.Faults, nil
	}
	if p.FaultScenario == "" {
		return nil, nil
	}
	spec, err := fault.Scenario(p.FaultScenario)
	if err != nil {
		return nil, err
	}
	return &spec, nil
}

// RunCell executes one cell: the primary simulation, the plan's equivalence
// re-runs, and every assertion. The returned error is non-nil only for
// cancellation/deadline aborts — those must not be recorded as cell
// outcomes, so an interrupted catalog re-runs them on resume. Everything
// else (including simulation errors and audit violations) lands in the
// CellResult.
func RunCell(c Cell, opt RunOptions) (*CellResult, error) {
	r := &CellResult{
		ID:     c.ID(),
		Plan:   c.Plan.Name,
		System: c.System.Name,
		Seed:   c.Seed,
	}
	res, err := c.run(variant{}, opt)
	switch {
	case err == nil:
		r.Metrics = Metrics(res)
		r.Events = res.Events
	case isAbort(err):
		return nil, err
	case isAuditViolation(err):
		// The auditor caught a broken invariant: every metric except the
		// violation counter is unavailable, and assertions on them fail
		// with that explanation.
		r.Metrics = map[string]float64{MetricAuditViolations: 1}
	default:
		r.Err = err.Error()
		return r, nil
	}

	ttl := c.Plan.EffectiveServerTTL()
	for _, a := range c.Plan.Assert {
		r.Checks = append(r.Checks, a.Eval(r.Metrics, ttl))
	}
	for _, eq := range c.Plan.Equivalence {
		if r.Metrics[MetricAuditViolations] != 0 {
			r.Checks = append(r.Checks, CheckResult{
				Name: "equiv " + eq, Detail: "skipped: run aborted by audit violation",
			})
			continue
		}
		check, err := c.runEquivalence(eq, r.Metrics, opt)
		if err != nil {
			return nil, err
		}
		r.Checks = append(r.Checks, check)
	}
	return r, nil
}

// run executes one simulation under the cell's configuration plus a variant
// override.
func (c Cell) run(v variant, opt RunOptions) (*cdn.Result, error) {
	opts, err := c.coreOptions(v, opt)
	if err != nil {
		return nil, err
	}
	return core.Run(c.System, opts...)
}

// runEquivalence executes one cross-run check against the primary run's
// metrics.
func (c Cell) runEquivalence(name string, primary map[string]float64, opt RunOptions) (CheckResult, error) {
	check := CheckResult{Name: "equiv " + name}
	var (
		v variant
		// approx lists metrics compared within float-summation noise
		// instead of exactly; skip lists metrics excluded outright.
		approx, skip map[string]bool
	)
	switch name {
	case EquivShardWorkers:
		// Same partition, different worker count: the sharded engine
		// promises bit-identical results, so every metric must match
		// exactly.
		v.shards = c.Plan.Shards + 1
	case EquivCohortExplicit:
		// The cohort model is an exact refactoring of the explicit one:
		// counters and per-entry values match exactly, but aggregate
		// means and traffic sums accumulate in a different order, so
		// they are compared within relative float noise. Event counts
		// differ by construction (one event per cohort, not per user).
		v.userModel = cdn.UserModelExplicit
		skip = map[string]bool{"events": true}
		approx = map[string]bool{
			"mean_user_inconsistency": true,
			"total_kb":                true, "total_km_kb": true,
			"update_km_kb": true, "light_km_kb": true, "content_km_kb": true,
			"provider_kb": true, "provider_km_kb": true,
		}
	default:
		check.Detail = fmt.Sprintf("unknown equivalence check %q", name)
		return check, nil
	}
	res, err := c.run(v, opt)
	if err != nil {
		if isAbort(err) {
			return check, err
		}
		check.Detail = fmt.Sprintf("re-run failed: %v", err)
		return check, nil
	}
	other := Metrics(res)
	diffs := compareMetrics(primary, other, skip, approx)
	if len(diffs) == 0 {
		check.OK = true
		check.Detail = fmt.Sprintf("%d metrics match", len(primary)-len(skip))
		return check, nil
	}
	if len(diffs) > 3 {
		diffs = append(diffs[:3], fmt.Sprintf("... and %d more", len(diffs)-3))
	}
	check.Detail = "diverged: " + strings.Join(diffs, "; ")
	return check, nil
}

// relTol is the relative tolerance for approx-compared metrics: aggregates
// whose float additions associate differently between equivalent runs.
const relTol = 1e-9

// compareMetrics diffs two metric maps, exactly by default, within relTol
// for approx entries, ignoring skip entries. Diffs are sorted by metric name
// so reports are deterministic.
func compareMetrics(a, b map[string]float64, skip, approx map[string]bool) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var diffs []string
	for _, k := range keys {
		if skip[k] {
			continue
		}
		av, bv := a[k], b[k]
		if av == bv {
			continue
		}
		if approx[k] {
			scale := abs(av)
			if s := abs(bv); s > scale {
				scale = s
			}
			if abs(av-bv) <= relTol*scale {
				continue
			}
		}
		diffs = append(diffs, fmt.Sprintf("%s: %s vs %s", k, fnum(av), fnum(bv)))
	}
	return diffs
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// isAbort reports a cancellation or deadline error — the caller interrupted
// the catalog, so the cell must re-run on resume rather than be recorded.
func isAbort(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func isAuditViolation(err error) bool {
	var v *audit.Violation
	return errors.As(err, &v)
}
