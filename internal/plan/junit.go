package plan

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// JUnit report rendering: one testsuite per plan, one testcase per cell,
// failed assertions as <failure> with the assertion messages, execution
// errors as <error>, and the cell's full metric map in <system-out> so a CI
// artifact is enough to recalibrate an SLO. No wall-clock attributes are
// emitted: the report is a pure function of the cell results, byte-identical
// across -parallel settings and across checkpoint resume.

type junitSuites struct {
	XMLName  xml.Name     `xml:"testsuites"`
	Tests    int          `xml:"tests,attr"`
	Failures int          `xml:"failures,attr"`
	Errors   int          `xml:"errors,attr"`
	Suites   []junitSuite `xml:"testsuite"`
}

type junitSuite struct {
	Name     string      `xml:"name,attr"`
	Tests    int         `xml:"tests,attr"`
	Failures int         `xml:"failures,attr"`
	Errors   int         `xml:"errors,attr"`
	Cases    []junitCase `xml:"testcase"`
}

type junitCase struct {
	Name      string    `xml:"name,attr"`
	Classname string    `xml:"classname,attr"`
	Failure   *junitMsg `xml:"failure,omitempty"`
	Error     *junitMsg `xml:"error,omitempty"`
	SystemOut string    `xml:"system-out,omitempty"`
}

type junitMsg struct {
	Message string `xml:"message,attr"`
	Body    string `xml:",chardata"`
}

// JUnit renders the cells as a junit-style XML document. Cells are grouped
// into testsuites by plan, preserving first-appearance order.
func JUnit(cells []*CellResult) ([]byte, error) {
	doc := junitSuites{}
	index := map[string]int{}
	for _, r := range cells {
		i, ok := index[r.Plan]
		if !ok {
			i = len(doc.Suites)
			index[r.Plan] = i
			doc.Suites = append(doc.Suites, junitSuite{Name: r.Plan})
		}
		tc := junitCase{Name: r.ID, Classname: r.Plan, SystemOut: systemOut(r)}
		doc.Tests++
		doc.Suites[i].Tests++
		switch {
		case r.Err != "":
			tc.Error = &junitMsg{Message: "run failed", Body: r.Err}
			doc.Errors++
			doc.Suites[i].Errors++
		case r.Failed():
			failed := 0
			for _, c := range r.Checks {
				if !c.OK {
					failed++
				}
			}
			tc.Failure = &junitMsg{
				Message: fmt.Sprintf("%d assertion(s) failed", failed),
				Body:    r.FailureDetail(),
			}
			doc.Failures++
			doc.Suites[i].Failures++
		}
		doc.Suites[i].Cases = append(doc.Suites[i].Cases, tc)
	}
	data, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("plan: junit: %w", err)
	}
	return append([]byte(xml.Header), append(data, '\n')...), nil
}

// systemOut renders the cell's metrics as sorted "name=value" lines.
func systemOut(r *CellResult) string {
	if len(r.Metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, fnum(r.Metrics[k]))
	}
	return b.String()
}
