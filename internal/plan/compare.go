package plan

import "fmt"

// factor resolves the right-side scale: nil means 1, an explicit 0 pins the
// threshold at zero ("left must be 0 whenever right is finite").
func (c Compare) factor() float64 {
	if c.Factor == nil {
		return 1
	}
	return *c.Factor
}

// String renders the compare the way plan reports print it, e.g.
// "provider_kb: HAT <= 0.5*Push".
func (c Compare) String() string {
	right := c.Right
	if f := c.factor(); f != 1 {
		right = fnum(f) + "*" + c.Right
	}
	return fmt.Sprintf("%s: %s %s %s", c.Metric, c.Left, c.Op, right)
}

// Eval judges the compare for one seed given both sides' extracted metrics.
// A side whose cell produced no result (nil map, or the metric missing after
// an audit abort) fails the check rather than passing it vacuously.
func (c Compare) Eval(seed int64, left, right map[string]float64) CheckResult {
	res := CheckResult{Name: fmt.Sprintf("compare %s s%d", c.String(), seed)}
	lv, lok := left[c.Metric]
	rv, rok := right[c.Metric]
	if !lok || !rok {
		res.Detail = "metric unavailable (a compared cell produced no result)"
		return res
	}
	limit := c.factor() * rv
	switch c.Op {
	case "<=":
		res.OK = lv <= limit
	case "<":
		res.OK = lv < limit
	case ">=":
		res.OK = lv >= limit
	case ">":
		res.OK = lv > limit
	case "==":
		res.OK = lv == limit
	case "!=":
		res.OK = lv != limit
	}
	res.Detail = fmt.Sprintf("left %s, right %s, limit %s", fnum(lv), fnum(rv), fnum(limit))
	return res
}

// EvalCompares judges a plan's cross-system compares against its executed
// cells, returning a synthetic CellResult (ID "<plan>/compare") with one
// check per compare x seed — or nil when the plan declares none. It is a
// pure function of the cells' recorded metrics, so checkpoint-resumed
// catalogs render the compare block byte-identically, at any parallelism.
func EvalCompares(p *Plan, cells []*CellResult) *CellResult {
	if len(p.Compare) == 0 {
		return nil
	}
	metrics := make(map[string]map[string]float64)
	for _, c := range cells {
		if c.Plan == p.Name {
			metrics[fmt.Sprintf("%s/s%d", c.System, c.Seed)] = c.Metrics
		}
	}
	r := &CellResult{
		ID:     p.Name + "/compare",
		Plan:   p.Name,
		System: "compare",
	}
	for _, c := range p.Compare {
		for _, seed := range p.seeds() {
			left := metrics[fmt.Sprintf("%s/s%d", c.Left, seed)]
			right := metrics[fmt.Sprintf("%s/s%d", c.Right, seed)]
			r.Checks = append(r.Checks, c.Eval(seed, left, right))
		}
	}
	return r
}
