package plan

import (
	"reflect"
	"testing"
)

// FuzzParsePlan feeds arbitrary bytes through ParsePlan. The contract under
// fuzzing: never panic, never return a plan alongside an error, and any
// accepted plan survives a Marshal/reparse round trip unchanged, expands into
// a non-empty cell matrix, and re-validates.
func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(validPlanJSON))
	f.Add([]byte(`{"name":"x","systems":["TTL"],"assert":[{"metric":"crashes","op":"==","value":0}]}`))
	f.Add([]byte(`{"name":"eq","systems":["Push/Broadcast"],"shards":2,"equivalence":["shard_workers"]}`))
	f.Add([]byte(`{"name":"pop","systems":["HAT"],"user_model":"cohort","population_gen":{"total_users":10,"alpha":1.1},"equivalence":["cohort_explicit"]}`))
	f.Add([]byte(`{"name":"f","systems":["TTL"],"faults":{"random_crashes":{"frac":0.5,"recover_after":30}},"assert":[{"metric":"crashes","op":">","value":0}]}`))
	f.Add([]byte(comparePlanJSON))
	f.Add([]byte(`{"name":"fed","systems":["TTL","Push"],"federation":{"providers":[{"name":"a","lat":1,"lon":2},{"name":"b","lat":3,"lon":4}],"broker":{"period":"20s","hysteresis":0.2,"min_dwell":"1m"},"stale_cap":"30s"},"fault_scenario":"provider-storm","failover":true,"assert":[{"metric":"stranded_users","op":"==","value":0}],"compare":[{"metric":"degraded_seconds","left":"Push","right":"TTL","op":"<=","factor":0}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1, 2]`))
	f.Add([]byte(`{"name":"x","systems":["TTL"],"server_ttl":"-5s"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil plan returned with an error")
			}
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted plan fails Marshal: %v", err)
		}
		q, err := ParsePlan(out)
		if err != nil {
			t.Fatalf("marshaled plan fails reparse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the plan:\nbefore %#v\nafter  %#v", p, q)
		}
		cells, err := p.Cells()
		if err != nil {
			t.Fatalf("accepted plan fails Cells: %v", err)
		}
		if len(cells) == 0 {
			t.Fatal("accepted plan expands to zero cells")
		}
		for _, c := range cells {
			if c.ID() == "" {
				t.Fatal("cell with empty id")
			}
		}
	})
}
