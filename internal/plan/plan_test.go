package plan

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// validPlanJSON is a minimal structurally valid plan.
const validPlanJSON = `{
  "name": "smoke",
  "systems": ["TTL", "HAT"],
  "seeds": [1, 2],
  "servers": 20,
  "users_per_server": 2,
  "server_ttl": "10s",
  "game": {"phases": [{"name": "play", "duration": "2m", "mean_gap": "20s"}]},
  "fault_scenario": "outage",
  "failover": true,
  "assert": [
    {"metric": "p99_user_inconsistency", "op": "<=", "ttl_mult": 4},
    {"metric": "crashes", "op": "==", "value": 0}
  ]
}`

func TestParsePlanAcceptsValid(t *testing.T) {
	p, err := ParsePlan([]byte(validPlanJSON))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Name != "smoke" || len(p.Systems) != 2 || len(p.Assert) != 2 {
		t.Errorf("parsed plan malformed: %+v", p)
	}
	if got := p.EffectiveServerTTL(); got != 10*time.Second {
		t.Errorf("EffectiveServerTTL = %v, want 10s", got)
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	ids := make([]string, len(cells))
	for i, c := range cells {
		ids[i] = c.ID()
	}
	want := []string{"smoke/TTL/s1", "smoke/TTL/s2", "smoke/HAT/s1", "smoke/HAT/s2"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("cell ids = %v, want %v", ids, want)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan([]byte(validPlanJSON))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, q)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown field", `{"name":"x","systems":["TTL"],"bogus":1,"assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown field"},
		{"trailing data", validPlanJSON + `{"more": true}`, "trailing data"},
		{"bad name", `{"name":"a b","systems":["TTL"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "must match"},
		{"no systems", `{"name":"x","systems":[],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "no systems"},
		{"unknown system", `{"name":"x","systems":["NoSuch"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown system"},
		{"bad pair infra", `{"name":"x","systems":["TTL/Nowhere"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown infra"},
		{"duplicate system", `{"name":"x","systems":["TTL","TTL"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "duplicate system"},
		{"duplicate seed", `{"name":"x","systems":["TTL"],"seeds":[1,1],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "duplicate seed"},
		{"negative servers", `{"name":"x","systems":["TTL"],"servers":-1,"assert":[{"metric":"crashes","op":"==","value":0}]}`, "negative servers"},
		{"unknown metric", `{"name":"x","systems":["TTL"],"assert":[{"metric":"nope","op":"==","value":0}]}`, "unknown metric"},
		{"unknown op", `{"name":"x","systems":["TTL"],"assert":[{"metric":"crashes","op":"~=","value":0}]}`, "unknown op"},
		{"no checks", `{"name":"x","systems":["TTL"]}`, "enforce nothing"},
		{"both populations", `{"name":"x","systems":["TTL"],"population":{"servers":[[{"count":1,"offset_ns":0}]]},"population_gen":{"total_users":5},"assert":[{"metric":"crashes","op":"==","value":0}]}`, "mutually exclusive"},
		{"cohort without pop", `{"name":"x","systems":["TTL"],"user_model":"cohort","assert":[{"metric":"crashes","op":"==","value":0}]}`, "requires population"},
		{"bad user model", `{"name":"x","systems":["TTL"],"user_model":"quantum","assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown user_model"},
		{"both faults", `{"name":"x","systems":["TTL"],"fault_scenario":"outage","faults":{},"assert":[{"metric":"crashes","op":"==","value":0}]}`, "mutually exclusive"},
		{"bad scenario", `{"name":"x","systems":["TTL"],"fault_scenario":"meteor","assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown scenario"},
		{"self-test without audit", `{"name":"x","systems":["TTL"],"audit_self_test":"version-bounds","assert":[{"metric":"crashes","op":"==","value":0}]}`, "requires audit"},
		{"unknown self-test", `{"name":"x","systems":["TTL"],"audit":true,"audit_self_test":"meteor","assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown audit_self_test"},
		{"shard equiv without shards", `{"name":"x","systems":["TTL"],"equivalence":["shard_workers"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "requires shards"},
		{"cohort equiv without cohort", `{"name":"x","systems":["TTL"],"equivalence":["cohort_explicit"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "requires user_model"},
		{"unknown equivalence", `{"name":"x","systems":["TTL"],"equivalence":["teleport"],"assert":[{"metric":"crashes","op":"==","value":0}]}`, "unknown equivalence"},
		{"empty game", `{"name":"x","systems":["TTL"],"game":{"phases":[]},"assert":[{"metric":"crashes","op":"==","value":0}]}`, "no phases"},
	}
	for _, tc := range cases {
		p, err := ParsePlan([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted (%+v)", tc.name, p)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestResolveSystemPairs(t *testing.T) {
	for _, name := range []string{"Push", "Invalidation", "TTL", "Self", "Hybrid", "HAT",
		"TTL/Multicast", "Push/Broadcast", "Lease/Unicast", "Regime/Unicast", "AdaptiveTTL/Hybrid"} {
		if _, err := resolveSystem(name); err != nil {
			t.Errorf("resolveSystem(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "ttl", "TTL/", "/Unicast", "TTL/Unicast/Extra"} {
		if _, err := resolveSystem(name); err == nil {
			t.Errorf("resolveSystem(%q) accepted", name)
		}
	}
}

func TestAssertionEval(t *testing.T) {
	metrics := map[string]float64{"crashes": 3, "p99_user_inconsistency": 25}
	ttl := 10 * time.Second
	cases := []struct {
		a      Assertion
		wantOK bool
	}{
		{Assertion{Metric: "crashes", Op: "==", Value: 3}, true},
		{Assertion{Metric: "crashes", Op: "!=", Value: 3}, false},
		{Assertion{Metric: "crashes", Op: "<=", Value: 2}, false},
		{Assertion{Metric: "crashes", Op: "<", Value: 4}, true},
		{Assertion{Metric: "crashes", Op: ">=", Value: 3}, true},
		{Assertion{Metric: "crashes", Op: ">", Value: 3}, false},
		// 2*ttl = 20 < 25: fails; 3*ttl = 30 > 25: passes.
		{Assertion{Metric: "p99_user_inconsistency", Op: "<=", TTLMult: 2}, false},
		{Assertion{Metric: "p99_user_inconsistency", Op: "<=", TTLMult: 3}, true},
		// ttl_mult + value compose: 2*ttl+5 = 25 >= 25.
		{Assertion{Metric: "p99_user_inconsistency", Op: "<=", TTLMult: 2, Value: 5}, true},
		// Absent metric fails, never passes vacuously.
		{Assertion{Metric: "stale_serve_frac", Op: "<=", Value: 1}, false},
	}
	for _, tc := range cases {
		got := tc.a.Eval(metrics, ttl)
		if got.OK != tc.wantOK {
			t.Errorf("%s: OK = %v (%s), want %v", tc.a, got.OK, got.Detail, tc.wantOK)
		}
	}
}

func TestAssertionString(t *testing.T) {
	cases := []struct {
		a    Assertion
		want string
	}{
		{Assertion{Metric: "crashes", Op: "==", Value: 0}, "crashes == 0"},
		{Assertion{Metric: "p99_user_inconsistency", Op: "<=", TTLMult: 2}, "p99_user_inconsistency <= 2*ttl"},
		{Assertion{Metric: "x_y", Op: "<", TTLMult: 1, Value: 3}, "x_y < 1*ttl+3"},
	}
	for _, tc := range cases {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestWeightedPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := weightedPercentile(xs, nil, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := weightedPercentile(xs, nil, 99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := weightedPercentile(xs, nil, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	// Weighted form must match the expanded multiset exactly: {1 x 99, 100 x 1}.
	weighted := weightedPercentile([]float64{1, 100}, []int{99, 1}, 99)
	var expanded []float64
	for i := 0; i < 99; i++ {
		expanded = append(expanded, 1)
	}
	expanded = append(expanded, 100)
	plain := weightedPercentile(expanded, nil, 99)
	if weighted != plain {
		t.Errorf("weighted p99 = %v, expanded p99 = %v", weighted, plain)
	}
	if got := weightedPercentile(nil, nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestMetricNamesSortedAndKnown(t *testing.T) {
	names := MetricNames()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("MetricNames not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	for _, n := range []string{"p99_user_inconsistency", "audit_violations", "provider_km_kb", "stale_serve_frac"} {
		if !knownMetric(n) {
			t.Errorf("metric %q not registered", n)
		}
	}
}
