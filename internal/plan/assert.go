package plan

import (
	"fmt"
	"strconv"
	"time"
)

// CheckResult is one evaluated assertion or equivalence check.
type CheckResult struct {
	// Name is the check's rendered form, e.g.
	// "p99_user_inconsistency <= 2*ttl" or "equiv shard_workers".
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Detail explains the outcome: the observed value and resolved
	// threshold for assertions, the divergence (if any) for equivalence
	// checks. Deterministic, so reports are byte-stable.
	Detail string `json:"detail"`
}

// fnum renders a float with the shortest representation that round-trips,
// keeping rendered reports byte-stable across re-parsing.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the assertion the way plan reports print it.
func (a Assertion) String() string {
	return fmt.Sprintf("%s %s %s", a.Metric, a.Op, a.thresholdExpr())
}

// thresholdExpr renders the threshold's symbolic form ("2*ttl", "0.5",
// "1*ttl+3").
func (a Assertion) thresholdExpr() string {
	switch {
	case a.TTLMult != 0 && a.Value != 0:
		return fmt.Sprintf("%s*ttl+%s", fnum(a.TTLMult), fnum(a.Value))
	case a.TTLMult != 0:
		return fmt.Sprintf("%s*ttl", fnum(a.TTLMult))
	default:
		return fnum(a.Value)
	}
}

// Threshold resolves the assertion's numeric bound against the plan's server
// TTL.
func (a Assertion) Threshold(serverTTL time.Duration) float64 {
	return a.Value + a.TTLMult*serverTTL.Seconds()
}

// Eval judges the assertion against a cell's extracted metrics. A metric
// missing from the map (a run aborted before producing results) fails the
// assertion rather than passing it vacuously.
func (a Assertion) Eval(metrics map[string]float64, serverTTL time.Duration) CheckResult {
	c := CheckResult{Name: a.String()}
	got, ok := metrics[a.Metric]
	if !ok {
		c.Detail = "metric unavailable (run produced no result)"
		return c
	}
	limit := a.Threshold(serverTTL)
	switch a.Op {
	case "<=":
		c.OK = got <= limit
	case "<":
		c.OK = got < limit
	case ">=":
		c.OK = got >= limit
	case ">":
		c.OK = got > limit
	case "==":
		c.OK = got == limit
	case "!=":
		c.OK = got != limit
	}
	c.Detail = fmt.Sprintf("got %s, limit %s", fnum(got), fnum(limit))
	return c
}
