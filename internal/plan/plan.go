// Package plan turns the simulator's scattered configuration surface into
// declarative scenario plans with enforceable SLO assertions.
//
// One Plan is a full scenario: which systems to run (update method x update
// infrastructure), over which topology, workload, and population, under which
// fault scenario, on which engine (serial or sharded, audited or not) — plus
// a list of assertions over the run's metrics ("p99 user inconsistency stays
// under 2x the server TTL", "zero audit violations", "provider traffic within
// budget") and optional cross-run equivalence checks (worker-count invariance
// of the sharded engine, cohort-vs-explicit user-model equality).
//
// A Plan expands into a matrix of cells (systems x seeds); each cell is one
// deterministic simulation whose extracted metrics are judged against the
// plan's assertions. A directory of plans is a catalog — the simulation-side
// analogue of a CDN's consistency-SLO regression suite: CI runs the catalog
// as acceptance tests and fails on the first broken SLO.
//
// Parsing follows the same strict-decoder discipline as internal/fault and
// internal/workload: unknown fields, trailing data, and structurally invalid
// plans are errors, never panics — the parser is fuzzed on that contract.
package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/traceimport"
	"cdnconsistency/internal/workload"
)

// Duration aliases fault.Duration so plan files accept both "90s"-style
// strings and plain numbers of seconds.
type Duration = fault.Duration

// PhaseSpec is one workload phase: updates arrive with exponential gaps of
// MeanGap while it lasts; MeanGap 0 marks a silent break.
type PhaseSpec struct {
	Name     string   `json:"name,omitempty"`
	Duration Duration `json:"duration"`
	MeanGap  Duration `json:"mean_gap,omitempty"`
}

// GameSpec describes the publication workload (see workload.GameConfig).
type GameSpec struct {
	Phases []PhaseSpec `json:"phases"`
	SizeKB float64     `json:"size_kb,omitempty"`
	MinGap Duration    `json:"min_gap,omitempty"`
}

// Config converts the spec into the workload package's native form.
func (g *GameSpec) Config() workload.GameConfig {
	cfg := workload.GameConfig{SizeKB: g.SizeKB, MinGap: g.MinGap.D()}
	for _, p := range g.Phases {
		cfg.Phases = append(cfg.Phases, workload.Phase{
			Name: p.Name, Duration: p.Duration.D(), MeanGap: p.MeanGap.D(),
		})
	}
	return cfg
}

// PopulationGen draws a heavy-tailed population instead of spelling one out
// (see workload.GeneratePopulation). Servers comes from the plan topology;
// Seed 0 uses the cell's seed, so a multi-seed plan draws a fresh population
// per seed.
type PopulationGen struct {
	TotalUsers       int      `json:"total_users"`
	Alpha            float64  `json:"alpha,omitempty"`
	CohortsPerServer int      `json:"cohorts_per_server,omitempty"`
	Period           Duration `json:"period,omitempty"`
	SpreadMax        Duration `json:"spread_max,omitempty"`
	Seed             int64    `json:"seed,omitempty"`
}

// Assertion is one SLO threshold over a cell's extracted metrics. The
// threshold is Value + TTLMult x (server TTL in seconds), so SLOs like
// "p99 user inconsistency <= 2xTTL" stay correct when a plan retunes its TTL.
type Assertion struct {
	// Metric names one of the extracted run metrics (see MetricNames).
	Metric string `json:"metric"`
	// Op is one of <=, <, >=, >, ==, !=.
	Op string `json:"op"`
	// Value is the constant part of the threshold.
	Value float64 `json:"value,omitempty"`
	// TTLMult adds that many server-TTL-seconds to the threshold.
	TTLMult float64 `json:"ttl_mult,omitempty"`
}

// Equivalence check names accepted in Plan.Equivalence.
const (
	// EquivShardWorkers re-runs the cell at a different sharded worker
	// count and requires every metric to match exactly — the engine's
	// "results are a pure function of (seed, partition)" contract.
	EquivShardWorkers = "shard_workers"
	// EquivCohortExplicit re-runs the cell under the explicit per-user
	// model and requires the aggregates to match the cohort model's
	// (exactly for counters, within float-sum noise for means).
	EquivCohortExplicit = "cohort_explicit"
)

// Plan is one declarative scenario with assertions. The zero value is
// invalid; plans come from ParsePlan.
type Plan struct {
	// Name identifies the plan in cell ids, reports, and checkpoints.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Systems lists the systems to run: a named system from the paper's
	// comparison (Push, Invalidation, TTL, Self, Hybrid, HAT) or an
	// explicit "Method/Infra" pair (e.g. "TTL/Multicast"). Each system is
	// one matrix axis entry.
	Systems []string `json:"systems"`

	// Import replays an inferred deployment (internal/traceimport): the
	// path — relative to the plan file's directory — of a bundle JSON, a
	// JSONL crawl trace, or a "#cdnlog" access log. The bundle supplies
	// the topology, TTLs, update workload, user population, and fault
	// windows, so Import is mutually exclusive with the plan fields it
	// replaces (servers, TTLs, game, population, faults, federation,
	// shards). The file is resolved by LoadFile, never by Validate, which
	// keeps plan parsing free of file IO.
	Import string `json:"import,omitempty"`
	// Seeds is the second matrix axis; default [1].
	Seeds []int64 `json:"seeds,omitempty"`

	// Topology. Zero fields keep the simulation defaults (170 servers,
	// 5 users per server, 20 clusters).
	Servers         int `json:"servers,omitempty"`
	UsersPerServer  int `json:"users_per_server,omitempty"`
	Clusters        int `json:"clusters,omitempty"`
	TreeDegree      int `json:"tree_degree,omitempty"`
	SupernodeDegree int `json:"supernode_degree,omitempty"`

	// Protocol parameters. Zero keeps the defaults (60s server TTL, 10s
	// user TTL, 1 KB updates).
	ServerTTL    Duration `json:"server_ttl,omitempty"`
	UserTTL      Duration `json:"user_ttl,omitempty"`
	UpdateSizeKB float64  `json:"update_size_kb,omitempty"`

	// Game replaces the default publication workload (the paper's trace
	// day) with an explicit phase list.
	Game *GameSpec `json:"game,omitempty"`

	// UserModel selects the end-user simulation model: "" or "explicit"
	// (one actor per user) or "cohort" (weighted per-server cohorts;
	// requires Population or PopulationGen).
	UserModel string `json:"user_model,omitempty"`
	// Population pins the user population explicitly; PopulationGen draws
	// one. At most one of the two may be set.
	Population    *workload.Population `json:"population,omitempty"`
	PopulationGen *PopulationGen       `json:"population_gen,omitempty"`

	// Federation runs every cell against a multi-CDN federation: provider
	// origins with distinct TTLs and propagation lags, anycast homing,
	// peering hand-off, an optional meta-CDN broker, and serve-stale
	// degradation (see internal/federation). The federation layer is
	// serial-only: mutually exclusive with Shards.
	Federation *federation.Spec `json:"federation,omitempty"`

	// FaultScenario names a built-in fault scenario (fault.ScenarioNames);
	// Faults spells one out inline. At most one of the two may be set.
	FaultScenario string      `json:"fault_scenario,omitempty"`
	Faults        *fault.Spec `json:"faults,omitempty"`
	// Failover enables the failure-aware protocol reactions.
	Failover bool `json:"failover,omitempty"`

	// Shards > 0 runs cells on the sharded multi-core engine with that
	// many workers over ShardCells partition cells (default 8).
	Shards     int `json:"shards,omitempty"`
	ShardCells int `json:"shard_cells,omitempty"`

	// Audit runs every cell under the runtime invariant auditor, sweeping
	// at AuditCadence (0 = auditor default). Composes with Shards: a
	// sharded run audits at its window barriers. AuditSelfTest names a
	// deliberate corruption (see cdn.AuditOptions.SelfTest) injected
	// mid-run to prove the tripwire fires — a plan carrying it must FAIL.
	Audit         bool     `json:"audit,omitempty"`
	AuditCadence  Duration `json:"audit_cadence,omitempty"`
	AuditSelfTest string   `json:"audit_self_test,omitempty"`

	// Assert lists the SLO assertions every cell must satisfy.
	Assert []Assertion `json:"assert"`
	// Equivalence lists cross-run checks (EquivShardWorkers,
	// EquivCohortExplicit) every cell must satisfy.
	Equivalence []string `json:"equivalence,omitempty"`
	// Compare lists cross-system assertions, evaluated per seed once the
	// whole matrix has run (see EvalCompares): e.g. "HAT's provider load is
	// at most 0.5x Push's".
	Compare []Compare `json:"compare,omitempty"`

	// bundle is the resolved Import spec, loaded by LoadFile (or injected
	// by SetImportBundle). It never marshals: the plan file stays a
	// pointer to the import, not a copy of it.
	bundle *traceimport.Bundle
}

// SetImportBundle attaches a resolved import bundle to the plan, the hook
// LoadFile uses after reading Plan.Import's file. Callers constructing plans
// in memory can use it to skip the file round trip.
func (p *Plan) SetImportBundle(b *traceimport.Bundle) { p.bundle = b }

// ImportBundle returns the resolved import bundle, or nil when the plan has
// no import (or was parsed without LoadFile).
func (p *Plan) ImportBundle() *traceimport.Bundle { return p.bundle }

// Compare is one cross-system SLO: it relates the same metric extracted from
// two of the plan's systems at the same seed — Left Op Factor x Right. Both
// sides must name entries of Plan.Systems; Factor 0 means 1 (and an explicit
// zero threshold is spelled with op against factor 0 on the right, e.g.
// "Push degraded_seconds <= 0 x TTL's").
type Compare struct {
	// Metric names one of the extracted run metrics (see MetricNames).
	Metric string `json:"metric"`
	// Left and Right are system labels from the plan's Systems list.
	Left  string `json:"left"`
	Right string `json:"right"`
	// Op is one of <=, <, >=, >, ==, !=.
	Op string `json:"op"`
	// Factor scales the right side before comparing; 0 means 1.
	Factor *float64 `json:"factor,omitempty"`
}

// nameRE bounds plan names to id-safe characters (they appear in cell ids,
// junit testcase names, and checkpoint fingerprints).
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// validOps are the accepted assertion comparison operators.
var validOps = map[string]bool{"<=": true, "<": true, ">=": true, ">": true, "==": true, "!=": true}

// ParsePlan decodes and validates a JSON plan. Parsing is strict: unknown
// fields, trailing data, and structurally invalid plans are errors, never
// panics — FuzzParsePlan locks that contract.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("plan: parse: trailing data after plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal serializes the plan as indented JSON, the inverse of ParsePlan:
// ParsePlan(Marshal(p)) reproduces p exactly.
func (p *Plan) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// resolveSystem accepts the six named Section 5.3 systems or an explicit
// "Method/Infra" pair.
func resolveSystem(name string) (core.System, error) {
	if sys, err := core.SystemByName(name); err == nil {
		return sys, nil
	}
	method, infra, ok := strings.Cut(name, "/")
	if !ok {
		return core.System{}, fmt.Errorf("plan: unknown system %q (want a named system or \"Method/Infra\")", name)
	}
	m, err := parseMethod(method)
	if err != nil {
		return core.System{}, err
	}
	inf, err := parseInfra(infra)
	if err != nil {
		return core.System{}, err
	}
	return core.System{Name: name, Method: m, Infra: inf}, nil
}

func parseMethod(s string) (consistency.Method, error) {
	switch s {
	case "TTL":
		return consistency.MethodTTL, nil
	case "Push":
		return consistency.MethodPush, nil
	case "Invalidation":
		return consistency.MethodInvalidation, nil
	case "Self":
		return consistency.MethodSelfAdaptive, nil
	case "AdaptiveTTL":
		return consistency.MethodAdaptiveTTL, nil
	case "Lease":
		return consistency.MethodLease, nil
	case "Regime":
		return consistency.MethodRegime, nil
	}
	return 0, fmt.Errorf("plan: unknown method %q", s)
}

func parseInfra(s string) (consistency.Infra, error) {
	switch s {
	case "Unicast":
		return consistency.InfraUnicast, nil
	case "Multicast":
		return consistency.InfraMulticast, nil
	case "Hybrid":
		return consistency.InfraHybrid, nil
	case "Broadcast":
		return consistency.InfraBroadcast, nil
	}
	return 0, fmt.Errorf("plan: unknown infra %q", s)
}

// Validate checks structural soundness without running anything: resolvable
// systems, known metrics and operators, consistent model/fault/engine
// combinations. It mirrors the up-front rejections the cdn layer would make
// run by run, so a broken plan fails at load time, not mid-matrix.
func (p *Plan) Validate() error {
	if !nameRE.MatchString(p.Name) {
		return fmt.Errorf("plan: name %q must match %s", p.Name, nameRE)
	}
	if len(p.Systems) == 0 {
		return fmt.Errorf("plan %s: no systems", p.Name)
	}
	seen := map[string]bool{}
	for _, s := range p.Systems {
		if _, err := resolveSystem(s); err != nil {
			return fmt.Errorf("plan %s: %w", p.Name, err)
		}
		if seen[s] {
			return fmt.Errorf("plan %s: duplicate system %q", p.Name, s)
		}
		seen[s] = true
	}
	seenSeed := map[int64]bool{}
	for _, s := range p.Seeds {
		if seenSeed[s] {
			return fmt.Errorf("plan %s: duplicate seed %d", p.Name, s)
		}
		seenSeed[s] = true
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"servers", p.Servers}, {"users_per_server", p.UsersPerServer},
		{"clusters", p.Clusters}, {"tree_degree", p.TreeDegree},
		{"supernode_degree", p.SupernodeDegree},
		{"shards", p.Shards}, {"shard_cells", p.ShardCells},
	} {
		if v.val < 0 {
			return fmt.Errorf("plan %s: negative %s %d", p.Name, v.name, v.val)
		}
	}
	for _, v := range []struct {
		name string
		val  Duration
	}{
		{"server_ttl", p.ServerTTL}, {"user_ttl", p.UserTTL},
		{"audit_cadence", p.AuditCadence},
	} {
		if v.val < 0 {
			return fmt.Errorf("plan %s: negative %s %v", p.Name, v.name, v.val.D())
		}
	}
	if p.UpdateSizeKB < 0 {
		return fmt.Errorf("plan %s: negative update_size_kb %v", p.Name, p.UpdateSizeKB)
	}
	if p.Game != nil {
		if len(p.Game.Phases) == 0 {
			return fmt.Errorf("plan %s: game has no phases", p.Name)
		}
		for i, ph := range p.Game.Phases {
			if ph.Duration <= 0 {
				return fmt.Errorf("plan %s: game phase %d has non-positive duration", p.Name, i)
			}
			if ph.MeanGap < 0 {
				return fmt.Errorf("plan %s: game phase %d has negative mean gap", p.Name, i)
			}
		}
		if p.Game.SizeKB < 0 || p.Game.MinGap < 0 {
			return fmt.Errorf("plan %s: negative game size_kb or min_gap", p.Name)
		}
	}
	switch p.UserModel {
	case "", "explicit", "cohort":
	default:
		return fmt.Errorf("plan %s: unknown user_model %q (want \"explicit\" or \"cohort\")", p.Name, p.UserModel)
	}
	if p.Import != "" {
		for _, c := range []struct {
			name string
			set  bool
		}{
			{"servers", p.Servers > 0},
			{"users_per_server", p.UsersPerServer > 0},
			{"server_ttl", p.ServerTTL > 0},
			{"user_ttl", p.UserTTL > 0},
			{"update_size_kb", p.UpdateSizeKB > 0},
			{"game", p.Game != nil},
			{"population", p.Population != nil},
			{"population_gen", p.PopulationGen != nil},
			{"fault_scenario", p.FaultScenario != ""},
			{"faults", p.Faults != nil},
			{"federation", p.Federation != nil},
			{"shards", p.Shards > 0},
		} {
			if c.set {
				return fmt.Errorf("plan %s: import and %s are mutually exclusive (the imported bundle supplies it)", p.Name, c.name)
			}
		}
	}
	if p.Population != nil && p.PopulationGen != nil {
		return fmt.Errorf("plan %s: population and population_gen are mutually exclusive", p.Name)
	}
	if p.UserModel == "cohort" && p.Population == nil && p.PopulationGen == nil && p.Import == "" {
		return fmt.Errorf("plan %s: user_model cohort requires population or population_gen", p.Name)
	}
	if p.Population != nil {
		if err := p.Population.Validate(); err != nil {
			return fmt.Errorf("plan %s: %w", p.Name, err)
		}
	}
	if g := p.PopulationGen; g != nil {
		if g.TotalUsers <= 0 {
			return fmt.Errorf("plan %s: population_gen.total_users must be > 0, got %d", p.Name, g.TotalUsers)
		}
		if g.CohortsPerServer < 0 || g.Period < 0 || g.SpreadMax < 0 {
			return fmt.Errorf("plan %s: negative population_gen field", p.Name)
		}
	}
	if p.FaultScenario != "" && p.Faults != nil {
		return fmt.Errorf("plan %s: fault_scenario and faults are mutually exclusive", p.Name)
	}
	if p.FaultScenario != "" {
		if _, err := fault.Scenario(p.FaultScenario); err != nil {
			return fmt.Errorf("plan %s: %w", p.Name, err)
		}
	}
	if p.Faults != nil {
		if err := p.Faults.Validate(); err != nil {
			return fmt.Errorf("plan %s: %w", p.Name, err)
		}
	}
	if p.AuditSelfTest != "" {
		if !p.Audit {
			return fmt.Errorf("plan %s: audit_self_test requires audit", p.Name)
		}
		if !cdn.ValidAuditSelfTest(p.AuditSelfTest) {
			return fmt.Errorf("plan %s: unknown audit_self_test %q (valid: %s)",
				p.Name, p.AuditSelfTest, strings.Join(cdn.AuditSelfTestNames(), ", "))
		}
	}
	if p.Federation != nil {
		if err := p.Federation.Validate(); err != nil {
			return fmt.Errorf("plan %s: %w", p.Name, err)
		}
		if p.Shards > 0 {
			return fmt.Errorf("plan %s: federation and shards are mutually exclusive (the federation layer is serial-only)", p.Name)
		}
	}
	if len(p.Assert) == 0 && len(p.Equivalence) == 0 && len(p.Compare) == 0 {
		return fmt.Errorf("plan %s: no assertions, equivalence checks, or compares — the plan would enforce nothing", p.Name)
	}
	for i, a := range p.Assert {
		if !knownMetric(a.Metric) {
			return fmt.Errorf("plan %s: assert[%d]: unknown metric %q (valid: %s)",
				p.Name, i, a.Metric, strings.Join(MetricNames(), ", "))
		}
		if !validOps[a.Op] {
			return fmt.Errorf("plan %s: assert[%d]: unknown op %q (valid: <=, <, >=, >, ==, !=)", p.Name, i, a.Op)
		}
		if a.TTLMult < 0 {
			return fmt.Errorf("plan %s: assert[%d]: negative ttl_mult %v", p.Name, i, a.TTLMult)
		}
	}
	for i, c := range p.Compare {
		if !knownMetric(c.Metric) {
			return fmt.Errorf("plan %s: compare[%d]: unknown metric %q (valid: %s)",
				p.Name, i, c.Metric, strings.Join(MetricNames(), ", "))
		}
		if !validOps[c.Op] {
			return fmt.Errorf("plan %s: compare[%d]: unknown op %q (valid: <=, <, >=, >, ==, !=)", p.Name, i, c.Op)
		}
		if !seen[c.Left] {
			return fmt.Errorf("plan %s: compare[%d]: left system %q is not in the plan's systems", p.Name, i, c.Left)
		}
		if !seen[c.Right] {
			return fmt.Errorf("plan %s: compare[%d]: right system %q is not in the plan's systems", p.Name, i, c.Right)
		}
		if c.Left == c.Right {
			return fmt.Errorf("plan %s: compare[%d]: left and right are both %q", p.Name, i, c.Left)
		}
		if c.Factor != nil && *c.Factor < 0 {
			return fmt.Errorf("plan %s: compare[%d]: negative factor %v", p.Name, i, *c.Factor)
		}
	}
	seenEq := map[string]bool{}
	for _, eq := range p.Equivalence {
		switch eq {
		case EquivShardWorkers:
			if p.Shards < 1 {
				return fmt.Errorf("plan %s: equivalence %q requires shards >= 1", p.Name, eq)
			}
		case EquivCohortExplicit:
			if p.UserModel != "cohort" {
				return fmt.Errorf("plan %s: equivalence %q requires user_model \"cohort\"", p.Name, eq)
			}
		default:
			return fmt.Errorf("plan %s: unknown equivalence check %q (valid: %s, %s)",
				p.Name, eq, EquivShardWorkers, EquivCohortExplicit)
		}
		if seenEq[eq] {
			return fmt.Errorf("plan %s: duplicate equivalence check %q", p.Name, eq)
		}
		seenEq[eq] = true
	}
	return nil
}

// EffectiveServerTTL is the server TTL assertions with a ttl_mult resolve
// against: the plan's, the imported bundle's, or the simulation default
// (60 s) when unset.
func (p *Plan) EffectiveServerTTL() time.Duration {
	if p.ServerTTL > 0 {
		return p.ServerTTL.D()
	}
	if p.bundle != nil {
		return p.bundle.Summary.ServerTTL.D()
	}
	return 60 * time.Second
}

// seeds returns the seed axis, defaulting to [1].
func (p *Plan) seeds() []int64 {
	if len(p.Seeds) == 0 {
		return []int64{1}
	}
	return p.Seeds
}
