package plan

import (
	"reflect"
	"strings"
	"testing"
)

func fptr(v float64) *float64 { return &v }

// comparePlanJSON is a valid plan whose only checks are cross-system compares.
const comparePlanJSON = `{
  "name": "cmp",
  "systems": ["Push", "TTL"],
  "seeds": [1, 2],
  "servers": 20,
  "users_per_server": 2,
  "server_ttl": "10s",
  "compare": [
    {"metric": "degraded_seconds", "left": "TTL", "right": "Push", "op": ">="},
    {"metric": "provider_kb", "left": "Push", "right": "TTL", "op": "<=", "factor": 0.5},
    {"metric": "degraded_seconds", "left": "Push", "right": "TTL", "op": "<=", "factor": 0}
  ]
}`

func TestParsePlanCompareRoundTrip(t *testing.T) {
	p, err := ParsePlan([]byte(comparePlanJSON))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(p.Compare) != 3 {
		t.Fatalf("got %d compares, want 3", len(p.Compare))
	}
	// An explicit zero factor must survive the marshal round trip: it is the
	// "left must be exactly 0" form and must not collapse into the nil
	// (factor 1) default.
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, q)
	}
	if q.Compare[2].Factor == nil || *q.Compare[2].Factor != 0 {
		t.Errorf("explicit zero factor lost in round trip: %+v", q.Compare[2])
	}
	if q.Compare[0].Factor != nil {
		t.Errorf("absent factor resurfaced as %v", *q.Compare[0].Factor)
	}
}

func TestParsePlanCompareRejects(t *testing.T) {
	base := func(cmp string) string {
		return `{"name":"x","systems":["Push","TTL"],"compare":[` + cmp + `]}`
	}
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown metric", base(`{"metric":"nope","left":"TTL","right":"Push","op":"<="}`), "unknown metric"},
		{"unknown op", base(`{"metric":"crashes","left":"TTL","right":"Push","op":"~="}`), "unknown op"},
		{"left not in plan", base(`{"metric":"crashes","left":"HAT","right":"Push","op":"<="}`), "left system"},
		{"right not in plan", base(`{"metric":"crashes","left":"TTL","right":"HAT","op":"<="}`), "right system"},
		{"self compare", base(`{"metric":"crashes","left":"TTL","right":"TTL","op":"<="}`), "left and right are both"},
		{"negative factor", base(`{"metric":"crashes","left":"TTL","right":"Push","op":"<=","factor":-1}`), "negative factor"},
		{"federation and shards", `{"name":"x","systems":["TTL"],"shards":2,` +
			`"federation":{"providers":[{"name":"a","lat":1,"lon":2}]},` +
			`"assert":[{"metric":"crashes","op":"==","value":0}]}`, "federation and shards are mutually exclusive"},
		{"bad federation", `{"name":"x","systems":["TTL"],"federation":{"providers":[]},` +
			`"assert":[{"metric":"crashes","op":"==","value":0}]}`, "at least one provider"},
	}
	for _, tc := range cases {
		p, err := ParsePlan([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted (%+v)", tc.name, p)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompareString(t *testing.T) {
	cases := []struct {
		c    Compare
		want string
	}{
		{Compare{Metric: "provider_kb", Left: "HAT", Right: "Push", Op: "<="}, "provider_kb: HAT <= Push"},
		{Compare{Metric: "provider_kb", Left: "HAT", Right: "Push", Op: "<=", Factor: fptr(0.5)}, "provider_kb: HAT <= 0.5*Push"},
		{Compare{Metric: "degraded_seconds", Left: "Push", Right: "TTL", Op: "<=", Factor: fptr(0)}, "degraded_seconds: Push <= 0*TTL"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestCompareEval(t *testing.T) {
	left := map[string]float64{"degraded_seconds": 30}
	right := map[string]float64{"degraded_seconds": 20}
	cases := []struct {
		c      Compare
		wantOK bool
	}{
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: ">="}, true},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "<="}, false},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "<=", Factor: fptr(2)}, true},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "==", Factor: fptr(1.5)}, true},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "!=", Factor: fptr(1.5)}, false},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: ">", Factor: fptr(1.5)}, false},
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "<", Factor: fptr(2)}, true},
		// A zero factor demands an exactly-zero left side.
		{Compare{Metric: "degraded_seconds", Left: "TTL", Right: "Push", Op: "<=", Factor: fptr(0)}, false},
	}
	for _, tc := range cases {
		got := tc.c.Eval(7, left, right)
		if got.OK != tc.wantOK {
			t.Errorf("%s: OK = %v (%s), want %v", tc.c, got.OK, got.Detail, tc.wantOK)
		}
		if !strings.Contains(got.Name, "s7") {
			t.Errorf("%s: check name %q does not carry the seed", tc.c, got.Name)
		}
	}
	// A missing metric on either side fails rather than passing vacuously.
	miss := Compare{Metric: "stranded_users", Left: "TTL", Right: "Push", Op: "<="}
	if got := miss.Eval(1, left, right); got.OK {
		t.Errorf("missing metric passed: %+v", got)
	}
	if got := miss.Eval(1, nil, right); got.OK {
		t.Errorf("nil left side passed: %+v", got)
	}
}

func TestEvalCompares(t *testing.T) {
	p, err := ParsePlan([]byte(comparePlanJSON))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	cell := func(system string, seed int64, degraded, kb float64) *CellResult {
		return &CellResult{
			ID: p.Name + "/" + system, Plan: p.Name, System: system, Seed: seed,
			Metrics: map[string]float64{"degraded_seconds": degraded, "provider_kb": kb},
		}
	}
	cells := []*CellResult{
		cell("Push", 1, 0, 40), cell("Push", 2, 0, 44),
		cell("TTL", 1, 30, 100), cell("TTL", 2, 35, 110),
		// A cell from another plan with wild numbers must be ignored.
		{ID: "other/TTL", Plan: "other", System: "TTL", Seed: 1,
			Metrics: map[string]float64{"degraded_seconds": 1e9, "provider_kb": 1e9}},
	}
	cr := EvalCompares(p, cells)
	if cr == nil {
		t.Fatal("EvalCompares returned nil for a plan with compares")
	}
	if cr.ID != "cmp/compare" || cr.System != "compare" {
		t.Errorf("synthetic cell mislabeled: %+v", cr)
	}
	// 3 compares x 2 seeds, all satisfied by the numbers above.
	if len(cr.Checks) != 6 {
		t.Fatalf("got %d checks, want 6", len(cr.Checks))
	}
	if cr.Failed() {
		for _, c := range cr.Checks {
			if !c.OK {
				t.Errorf("unexpected failure: %s (%s)", c.Name, c.Detail)
			}
		}
	}
	// Break one side: Push's provider_kb rises above 0.5x TTL's on seed 2.
	cells[1].Metrics["provider_kb"] = 56
	cr = EvalCompares(p, cells)
	var failed []string
	for _, c := range cr.Checks {
		if !c.OK {
			failed = append(failed, c.Name)
		}
	}
	want := []string{"compare provider_kb: Push <= 0.5*TTL s2"}
	if !reflect.DeepEqual(failed, want) {
		t.Errorf("failed checks = %v, want %v", failed, want)
	}

	// No compares declared: nil, not an empty block.
	q, err := ParsePlan([]byte(validPlanJSON))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if got := EvalCompares(q, cells); got != nil {
		t.Errorf("EvalCompares without compares = %+v, want nil", got)
	}
}

func TestFederationMetricsRegistered(t *testing.T) {
	for _, n := range []string{"degraded_seconds", "provider_switches", "peer_handoffs", "stranded_users"} {
		if !knownMetric(n) {
			t.Errorf("metric %q not registered", n)
		}
	}
}
