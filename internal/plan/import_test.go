package plan

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/traceimport"
	"cdnconsistency/internal/tracegen"
)

// writeImportFixtures generates a small trace, infers its bundle, and lays
// both out in a temp dir the way plans/ lays out plans/bundles/.
func writeImportFixtures(t *testing.T) (dir string, b *traceimport.Bundle) {
	t.Helper()
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 12, Seed: 21},
		Days:     1,
		Users:    10,
		Seed:     21,
	})
	if err != nil {
		t.Fatalf("tracegen.Generate: %v", err)
	}
	b, err = traceimport.Infer(res.Trace)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dir = t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "bundles"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bundles", "smoke.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, b
}

func importPlanJSON(importPath string) string {
	return fmt.Sprintf(`{
  "name": "import-test",
  "systems": ["TTL"],
  "import": %q,
  "assert": [
    {"metric": "mean_user_inconsistency", "op": "<=", "ttl_mult": 2},
    {"metric": "users", "op": "==", "value": 10}
  ]
}`, importPath)
}

// TestPlanImportRuns loads a plan whose import points at a bundle relative
// to the plan file, runs one cell, and checks the assertions resolve against
// the bundle's TTL.
func TestPlanImportRuns(t *testing.T) {
	dir, b := writeImportFixtures(t)
	planPath := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(planPath, []byte(importPlanJSON("bundles/smoke.json")), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(planPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if p.ImportBundle() == nil {
		t.Fatal("LoadFile did not resolve the import bundle")
	}
	if got, want := p.EffectiveServerTTL(), b.Summary.ServerTTL.D(); got != want {
		t.Errorf("EffectiveServerTTL = %v, want the bundle's %v", got, want)
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(cells))
	}
	r, err := RunCell(cells[0], RunOptions{})
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if r.Err != "" {
		t.Fatalf("cell errored: %s", r.Err)
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
}

// TestPlanImportDeterministic pins that an imported cell replays to
// identical metrics — the contract the import smoke script diffs on.
func TestPlanImportDeterministic(t *testing.T) {
	dir, _ := writeImportFixtures(t)
	planPath := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(planPath, []byte(importPlanJSON("bundles/smoke.json")), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(planPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	first, err := RunCell(cells[0], RunOptions{})
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	again, err := RunCell(cells[0], RunOptions{})
	if err != nil {
		t.Fatalf("RunCell #2: %v", err)
	}
	if len(first.Metrics) == 0 {
		t.Fatal("no metrics extracted")
	}
	for k, v := range first.Metrics {
		if again.Metrics[k] != v {
			t.Errorf("metric %s: %v then %v across replays", k, v, again.Metrics[k])
		}
	}
}

// TestPlanImportExclusions checks every field the bundle supplies is
// rejected alongside import, and that an unresolved import fails at run
// time with a pointed error.
func TestPlanImportExclusions(t *testing.T) {
	base := `{"name": "x", "systems": ["TTL"], "import": "b.json", %s "assert": [{"metric": "users", "op": ">=", "value": 0}]}`
	for _, field := range []string{
		`"servers": 10,`,
		`"users_per_server": 3,`,
		`"server_ttl": "30s",`,
		`"user_ttl": "5s",`,
		`"update_size_kb": 2,`,
		`"game": {"phases": [{"duration": "1m"}]},`,
		`"population": {"servers": [[{"count": 1}]]},`,
		`"population_gen": {"total_users": 5},`,
		`"fault_scenario": "single-crash",`,
		`"faults": {"crashes": [{"server": 0, "at": "10s"}]},`,
		`"federation": {"providers": [{"name": "a"}]},`,
		`"shards": 2,`,
	} {
		input := fmt.Sprintf(base, field)
		_, err := ParsePlan([]byte(input))
		if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Errorf("field %s alongside import: err = %v, want mutual-exclusion error", field, err)
		}
	}
	// user_model stays allowed: the bundle carries the population it needs.
	p, err := ParsePlan([]byte(fmt.Sprintf(base, `"user_model": "cohort",`)))
	if err != nil {
		t.Fatalf("user_model cohort alongside import rejected: %v", err)
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if _, err := cells[0].run(variant{}, RunOptions{}); err == nil || !strings.Contains(err.Error(), "not resolved") {
		t.Errorf("run with unresolved import: err = %v, want a not-resolved error", err)
	}
	if got := p.EffectiveServerTTL(); got != 60*time.Second {
		t.Errorf("EffectiveServerTTL without a bundle = %v, want the 60s default", got)
	}
}
