package plan

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cdnconsistency/internal/traceimport"
)

// LoadFile parses one plan file. A plan with an import has its bundle
// resolved here, relative to the plan file's directory — Validate never
// touches the filesystem, so resolution lives with the file loader.
func LoadFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Import != "" {
		spec := p.Import
		if !filepath.IsAbs(spec) {
			spec = filepath.Join(filepath.Dir(path), spec)
		}
		b, _, err := traceimport.LoadAny(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: import: %w", path, err)
		}
		p.SetImportBundle(b)
	}
	return p, nil
}

// LoadDir loads every *.json plan in dir (non-recursive), sorted by
// filename so catalog order — and therefore report order — is stable. An
// empty catalog and duplicate plan names are errors.
func LoadDir(dir string) ([]*Plan, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("plan: no *.json plans in %s", dir)
	}
	var (
		plans []*Plan
		seen  = map[string]string{}
	)
	for _, name := range names {
		p, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[p.Name]; dup {
			return nil, fmt.Errorf("plan: %s and %s both define plan %q", prev, name, p.Name)
		}
		seen[p.Name] = name
		plans = append(plans, p)
	}
	return plans, nil
}
