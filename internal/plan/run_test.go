package plan

import (
	"context"
	"strings"
	"testing"
)

// tinyPlan parses a fast single-cell plan with the given extra JSON fields
// spliced in (assertions, equivalence, fault config...).
func tinyPlan(t *testing.T, extra string) *Plan {
	t.Helper()
	js := `{
	  "name": "tiny",
	  "systems": ["TTL"],
	  "servers": 12,
	  "users_per_server": 1,
	  "clusters": 3,
	  "server_ttl": "5s",
	  "user_ttl": "2s",
	  "game": {"phases": [{"name": "play", "duration": "90s", "mean_gap": "15s"}]},
	  ` + extra + `
	}`
	p, err := ParsePlan([]byte(js))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	return p
}

func runOne(t *testing.T, p *Plan) *CellResult {
	t.Helper()
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(cells))
	}
	r, err := RunCell(cells[0], RunOptions{})
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	return r
}

func TestRunCellPassingAssertions(t *testing.T) {
	p := tinyPlan(t, `"assert": [
	  {"metric": "crashes", "op": "==", "value": 0},
	  {"metric": "user_observations", "op": ">", "value": 0},
	  {"metric": "p99_user_inconsistency", "op": "<=", "ttl_mult": 100}
	]`)
	r := runOne(t, p)
	if r.Failed() {
		t.Fatalf("cell failed:\n%s", r.Render())
	}
	if len(r.Checks) != 3 {
		t.Fatalf("got %d checks, want 3", len(r.Checks))
	}
	if r.Metrics["user_observations"] <= 0 {
		t.Errorf("no user observations recorded: %v", r.Metrics["user_observations"])
	}
	if r.Events == 0 {
		t.Error("no events recorded")
	}
	out := r.Render()
	if !strings.Contains(out, "== plan tiny/TTL/s1 ==") || strings.Contains(out, "FAIL") {
		t.Errorf("unexpected render:\n%s", out)
	}
}

func TestRunCellFailingAssertionShowsGotValue(t *testing.T) {
	p := tinyPlan(t, `"assert": [{"metric": "user_observations", "op": "==", "value": -1}]`)
	r := runOne(t, p)
	if !r.Failed() {
		t.Fatal("impossible assertion passed")
	}
	detail := r.FailureDetail()
	if !strings.Contains(detail, "user_observations == -1") || !strings.Contains(detail, "got ") {
		t.Errorf("failure detail missing assertion or got-value: %q", detail)
	}
	if !strings.Contains(r.Render(), "FAIL\tuser_observations == -1") {
		t.Errorf("render missing FAIL line:\n%s", r.Render())
	}
}

func TestRunCellShardWorkerEquivalence(t *testing.T) {
	p := tinyPlan(t, `"shards": 1, "shard_cells": 4,
	  "equivalence": ["shard_workers"],
	  "assert": [{"metric": "user_observations", "op": ">", "value": 0}]`)
	r := runOne(t, p)
	if r.Failed() {
		t.Fatalf("shard-worker equivalence failed:\n%s", r.Render())
	}
	found := false
	for _, c := range r.Checks {
		if c.Name == "equiv shard_workers" {
			found = true
			if !strings.Contains(c.Detail, "metrics match") {
				t.Errorf("unexpected equivalence detail: %q", c.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no shard_workers check in %v", r.Checks)
	}
}

func TestRunCellCohortExplicitEquivalence(t *testing.T) {
	p := tinyPlan(t, `"user_model": "cohort",
	  "population_gen": {"total_users": 24, "alpha": 1.2, "cohorts_per_server": 2},
	  "equivalence": ["cohort_explicit"],
	  "assert": [{"metric": "users", "op": "==", "value": 24}]`)
	r := runOne(t, p)
	if r.Failed() {
		t.Fatalf("cohort-explicit equivalence failed:\n%s", r.Render())
	}
}

func TestRunCellAudit(t *testing.T) {
	p := tinyPlan(t, `"audit": true,
	  "assert": [
	    {"metric": "audit_violations", "op": "==", "value": 0},
	    {"metric": "audit_checks", "op": ">=", "value": 1}
	  ]`)
	r := runOne(t, p)
	if r.Failed() {
		t.Fatalf("audit plan failed:\n%s", r.Render())
	}
}

func TestRunCellFaultScenario(t *testing.T) {
	p := tinyPlan(t, `"fault_scenario": "crash", "failover": true,
	  "assert": [
	    {"metric": "crashes", "op": ">", "value": 0},
	    {"metric": "failed_visit_frac", "op": "<=", "value": 1}
	  ]`)
	r := runOne(t, p)
	if r.Failed() {
		t.Fatalf("fault plan failed:\n%s", r.Render())
	}
}

func TestRunCellSimulationErrorRecorded(t *testing.T) {
	// Sharded runs cannot mutate the multicast tree; plan validation does not
	// model that cdn-level rule, so it surfaces as a run error — recorded on
	// the cell, not returned.
	js := `{
	  "name": "bad",
	  "systems": ["TTL/Multicast"],
	  "servers": 12,
	  "shards": 1,
	  "failover": true,
	  "game": {"phases": [{"name": "play", "duration": "30s", "mean_gap": "15s"}]},
	  "assert": [{"metric": "crashes", "op": "==", "value": 0}]
	}`
	p, err := ParsePlan([]byte(js))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	r, err := RunCell(cells[0], RunOptions{})
	if err != nil {
		t.Fatalf("RunCell returned abort for a config error: %v", err)
	}
	if r.Err == "" || !r.Failed() {
		t.Fatalf("expected recorded error, got %+v", r)
	}
	if !strings.Contains(r.Render(), "ERROR\t") {
		t.Errorf("render missing ERROR line:\n%s", r.Render())
	}
}

func TestRunCellCancelAborts(t *testing.T) {
	p := tinyPlan(t, `"assert": [{"metric": "crashes", "op": "==", "value": 0}]`)
	cells, err := p.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunCell(cells[0], RunOptions{Ctx: ctx})
	if err == nil {
		t.Fatalf("cancelled run returned a result: %+v", r)
	}
	if !isAbort(err) {
		t.Errorf("cancelled run error %v is not an abort", err)
	}
}

func TestRunCellDeterministic(t *testing.T) {
	p := tinyPlan(t, `"fault_scenario": "churn", "failover": true,
	  "assert": [{"metric": "user_observations", "op": ">", "value": 0}]`)
	a := runOne(t, p)
	b := runOne(t, p)
	if a.Render() != b.Render() {
		t.Errorf("renders differ:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs across identical runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}
