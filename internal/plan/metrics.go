package plan

import (
	"sort"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/netmodel"
)

// The metric registry: every name an Assertion may reference, with its
// extractor. Metrics are pure functions of a deterministic run's Result, so
// asserting exact equality (==) on them is meaningful.
//
// Percentiles use the weighted nearest-rank definition (the smallest value
// whose cumulative user weight reaches the rank), not interpolation: under
// the cohort user model one entry stands for a whole stratum of identical
// users, and nearest-rank makes the cohort and explicit models report
// bit-identical percentiles — which the cohort_explicit equivalence check
// relies on.
var metricDefs = []struct {
	name string
	fn   func(*cdn.Result) float64
}{
	// Inconsistency (seconds).
	{"mean_server_inconsistency", func(r *cdn.Result) float64 { return r.MeanServerInconsistency() }},
	{"p50_server_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.ServerAvgInconsistency, nil, 50) }},
	{"p95_server_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.ServerAvgInconsistency, nil, 95) }},
	{"p99_server_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.ServerAvgInconsistency, nil, 99) }},
	{"mean_user_inconsistency", func(r *cdn.Result) float64 { return r.MeanUserInconsistency() }},
	{"p50_user_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.UserAvgInconsistency, r.UserWeights, 50) }},
	{"p95_user_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.UserAvgInconsistency, r.UserWeights, 95) }},
	{"p99_user_inconsistency", func(r *cdn.Result) float64 { return weightedPercentile(r.UserAvgInconsistency, r.UserWeights, 99) }},

	// User-observed consistency.
	{"stale_serve_frac", func(r *cdn.Result) float64 { return r.StaleServeFrac() }},
	{"inconsistent_observation_frac", func(r *cdn.Result) float64 { return r.InconsistentObservationFrac() }},
	{"failed_visit_frac", func(r *cdn.Result) float64 { return r.FailedVisitFrac() }},
	{"user_observations", func(r *cdn.Result) float64 { return float64(r.UserObservations) }},
	{"users", func(r *cdn.Result) float64 { return float64(totalUsers(r)) }},

	// Fault and failover outcomes.
	{"crashes", func(r *cdn.Result) float64 { return float64(r.Crashes) }},
	{"recoveries", func(r *cdn.Result) float64 { return float64(r.Recoveries) }},
	{"mean_recovery_s", func(r *cdn.Result) float64 { return r.MeanRecoverySeconds() }},
	{"failed_servers", func(r *cdn.Result) float64 { return float64(r.FailedServers) }},
	{"live_servers", func(r *cdn.Result) float64 { return float64(r.LiveServers) }},
	{"live_final_frac", liveFinalFrac},
	{"failed_visits", func(r *cdn.Result) float64 { return float64(r.FailedVisits) }},
	{"user_failovers", func(r *cdn.Result) float64 { return float64(r.UserFailovers) }},
	{"server_reparents", func(r *cdn.Result) float64 { return float64(r.ServerReparents) }},
	{"ttl_fallbacks", func(r *cdn.Result) float64 { return float64(r.TTLFallbacks) }},

	// Federation outcomes (multi-CDN origin layer; zero without a
	// federation spec).
	{"degraded_seconds", func(r *cdn.Result) float64 { return r.DegradedSeconds }},
	{"provider_switches", func(r *cdn.Result) float64 { return float64(r.ProviderSwitches) }},
	{"peer_handoffs", func(r *cdn.Result) float64 { return float64(r.PeerHandoffs) }},
	{"stranded_users", func(r *cdn.Result) float64 { return float64(r.StrandedUsers) }},

	// Traffic cost (the paper's cost axis) and message counts.
	{"update_msgs_to_servers", func(r *cdn.Result) float64 { return float64(r.UpdateMsgsToServers) }},
	{"update_msgs_from_provider", func(r *cdn.Result) float64 { return float64(r.UpdateMsgsFromProvider) }},
	{"light_msgs", func(r *cdn.Result) float64 { return float64(r.LightMsgs) }},
	{"total_msgs", func(r *cdn.Result) float64 { return float64(classTotal(r).Messages) }},
	{"total_kb", func(r *cdn.Result) float64 { return classTotal(r).KB }},
	{"total_km_kb", func(r *cdn.Result) float64 { return classTotal(r).KmKB }},
	{"update_km_kb", func(r *cdn.Result) float64 { return r.Accounting.ByClass[netmodel.ClassUpdate].KmKB }},
	{"light_km_kb", func(r *cdn.Result) float64 { return r.Accounting.ByClass[netmodel.ClassLight].KmKB }},
	{"content_km_kb", func(r *cdn.Result) float64 { return r.Accounting.ByClass[netmodel.ClassContent].KmKB }},
	{"provider_msgs", func(r *cdn.Result) float64 { return float64(r.Accounting.BySender["provider"].Messages) }},
	{"provider_kb", func(r *cdn.Result) float64 { return r.Accounting.BySender["provider"].KB }},
	{"provider_km_kb", func(r *cdn.Result) float64 { return r.Accounting.BySender["provider"].KmKB }},

	// Structure and bookkeeping.
	{"tree_depth", func(r *cdn.Result) float64 { return float64(r.TreeDepth) }},
	{"supernodes", func(r *cdn.Result) float64 { return float64(r.Supernodes) }},
	{"events", func(r *cdn.Result) float64 { return float64(r.Events) }},
	{"audit_checks", func(r *cdn.Result) float64 { return float64(r.AuditChecks) }},
	// audit_violations is 0 for any run that completed; a run aborted by
	// the auditor reports 1 (see RunCell).
	{"audit_violations", func(*cdn.Result) float64 { return 0 }},
}

// MetricAuditViolations is the metric set to 1 when the runtime auditor
// aborts a cell's run with a violated invariant.
const MetricAuditViolations = "audit_violations"

var metricSet = func() map[string]bool {
	m := make(map[string]bool, len(metricDefs))
	for _, d := range metricDefs {
		m[d.name] = true
	}
	return m
}()

// MetricNames lists every assertable metric, sorted.
func MetricNames() []string {
	out := make([]string, 0, len(metricDefs))
	for _, d := range metricDefs {
		out = append(out, d.name)
	}
	sort.Strings(out)
	return out
}

func knownMetric(name string) bool { return metricSet[name] }

// Metrics extracts every assertable metric from a completed run.
func Metrics(r *cdn.Result) map[string]float64 {
	out := make(map[string]float64, len(metricDefs))
	for _, d := range metricDefs {
		out[d.name] = d.fn(r)
	}
	return out
}

func classTotal(r *cdn.Result) netmodel.ClassTotals {
	var t netmodel.ClassTotals
	for _, ct := range r.Accounting.ByClass {
		t.Messages += ct.Messages
		t.KB += ct.KB
		t.Km += ct.Km
		t.KmKB += ct.KmKB
	}
	return t
}

func totalUsers(r *cdn.Result) int {
	if r.UserWeights == nil {
		return len(r.UserAvgInconsistency)
	}
	n := 0
	for _, w := range r.UserWeights {
		n += w
	}
	return n
}

func liveFinalFrac(r *cdn.Result) float64 {
	if r.LiveServers == 0 {
		return 0
	}
	return float64(r.LiveServersAtFinalVersion) / float64(r.LiveServers)
}

// weightedPercentile returns the weighted nearest-rank p-th percentile of
// xs: the smallest value whose cumulative weight reaches ceil(p/100 x total
// weight). weights == nil means unit weights. Empty input returns 0.
func weightedPercentile(xs []float64, weights []int, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	type wv struct {
		v float64
		w int
	}
	pairs := make([]wv, len(xs))
	var total int64
	for i, x := range xs {
		w := 1
		if weights != nil && i < len(weights) {
			w = weights[i]
		}
		pairs[i] = wv{v: x, w: w}
		total += int64(w)
	}
	if total <= 0 {
		return 0
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
	// Nearest rank: ceil(p/100 * total), clamped to [1, total].
	rank := int64(float64(total) * p / 100)
	if float64(rank) < float64(total)*p/100 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for _, pr := range pairs {
		cum += int64(pr.w)
		if cum >= rank {
			return pr.v
		}
	}
	return pairs[len(pairs)-1].v
}
