package audit_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/overlay"
)

// fakeTree is a hand-wired TreeView for corruption fixtures the overlay
// builders would refuse to construct.
type fakeTree struct {
	parent   []int
	children [][]int
}

func (t *fakeTree) NumNodes() int        { return len(t.parent) }
func (t *fakeTree) Parent(i int) int     { return t.parent[i] }
func (t *fakeTree) Children(i int) []int { return t.children[i] }

// star builds a consistent 0-rooted star over n+1 nodes.
func star(n int) *fakeTree {
	t := &fakeTree{parent: make([]int, n+1), children: make([][]int, n+1)}
	t.parent[0] = audit.NoParent
	for i := 1; i <= n; i++ {
		t.parent[i] = 0
		t.children[0] = append(t.children[0], i)
	}
	return t
}

func TestCheckTreeAcceptsHealthyTrees(t *testing.T) {
	if v := audit.CheckTree(star(5), 0, nil, false); v != nil {
		t.Errorf("healthy star rejected: %v", v)
	}
	mt, err := overlay.BuildRandomMulticast(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := audit.CheckTree(mt, 2, nil, false); v != nil {
		t.Errorf("healthy multicast rejected: %v", v)
	}
}

func TestCheckTreeCatchesCycle(t *testing.T) {
	ft := star(3)
	// Wire 2 and 3 into a cycle detached from the root.
	ft.parent[2], ft.parent[3] = 3, 2
	ft.children[0] = []int{1}
	ft.children[2] = []int{3}
	ft.children[3] = []int{2}
	v := audit.CheckTree(ft, 0, nil, false)
	if v == nil || v.Property != "tree-acyclic" {
		t.Fatalf("cycle not flagged as tree-acyclic: %v", v)
	}
	if !strings.Contains(v.Snapshot, "chain") {
		t.Errorf("violation lacks chain snapshot: %q", v.Snapshot)
	}
	// A cycle is corruption even in tolerant (live-audit) mode.
	if v := audit.CheckTree(ft, 0, nil, true); v == nil {
		t.Error("tolerant mode accepted a cycle")
	}
}

func TestCheckTreeCatchesDetachedLiveNode(t *testing.T) {
	ft := star(3)
	ft.parent[2] = audit.NoParent
	ft.children[0] = []int{1, 3}
	if v := audit.CheckTree(ft, 0, nil, false); v == nil || v.Property != "tree-connectivity" {
		t.Fatalf("detached live node not flagged: %v", v)
	}
	// Dead-anchored subtree: node 3 hangs under dead detached node 2.
	ft.parent[3] = 2
	ft.children[0] = []int{1}
	ft.children[2] = []int{3}
	alive := []bool{true, true, false, true}
	if v := audit.CheckTree(ft, 0, alive, false); v == nil {
		t.Error("strict mode accepted a dead-anchored subtree")
	}
	if v := audit.CheckTree(ft, 0, alive, true); v != nil {
		t.Errorf("tolerant mode rejected a documented orphan state: %v", v)
	}
}

func TestCheckTreeCatchesDegreeAndMismatch(t *testing.T) {
	if v := audit.CheckTree(star(4), 3, nil, false); v == nil || v.Property != "tree-degree" {
		t.Fatalf("degree overflow not flagged: %v", v)
	}
	ft := star(3)
	ft.parent[2] = 1 // children[0] still lists 2
	if v := audit.CheckTree(ft, 0, nil, false); v == nil || v.Property != "tree-structure" {
		t.Fatalf("parent/children mismatch not flagged: %v", v)
	}
}

func TestCheckSeries(t *testing.T) {
	if v := audit.CheckSeries("x", []float64{0, 1.5, 2}); v != nil {
		t.Errorf("clean series rejected: %v", v)
	}
	if v := audit.CheckSeries("x", []float64{1, -0.25}); v == nil || v.Server != 1 {
		t.Errorf("negative entry not flagged with its index: %v", v)
	}
	if v := audit.CheckSeries("x", []float64{math.NaN()}); v == nil || v.Property != "series-finite" {
		t.Errorf("NaN not flagged: %v", v)
	}
}

func TestScalarPredicates(t *testing.T) {
	if v := audit.CheckCount("obs", 3, 10); v != nil {
		t.Error(v)
	}
	if v := audit.CheckCount("obs", 11, 10); v == nil {
		t.Error("part > total accepted")
	}
	if v := audit.CheckCount("obs", -1, 10); v == nil {
		t.Error("negative part accepted")
	}
	if v := audit.CheckFraction("f", 1.01); v == nil {
		t.Error("fraction > 1 accepted")
	}
	if v := audit.CheckMonotonicCount("c", 5, 4); v == nil {
		t.Error("counter regression accepted")
	}
	if v := audit.CheckBoundedDelay("d", -time.Second, 0); v == nil {
		t.Error("negative delay accepted")
	}
	if v := audit.CheckBoundedDelay("d", time.Hour, time.Minute); v == nil {
		t.Error("delay beyond bound accepted")
	}
	if v := audit.CheckBoundedDelay("d", time.Second, time.Minute); v != nil {
		t.Error(v)
	}
}

func TestCheckAccountingAgainstRealNetwork(t *testing.T) {
	net, err := netmodel.New(netmodel.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := netmodel.Endpoint{ID: "a"}
	b := netmodel.Endpoint{ID: "b", Loc: geo.Point{Lat: 10, Lon: 20}}
	for i := 0; i < 7; i++ {
		net.Send(a, b, 2, netmodel.ClassUpdate, 0)
		net.Send(b, a, 1, netmodel.ClassLight, 0)
	}
	if v := audit.CheckAccounting(net.Accounting()); v != nil {
		t.Errorf("consistent accounting rejected: %v", v)
	}
}

func TestCheckAccountingCatchesLedgerDrift(t *testing.T) {
	net, err := netmodel.New(netmodel.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := netmodel.Endpoint{ID: "a"}, netmodel.Endpoint{ID: "b"}
	net.Send(a, b, 2, netmodel.ClassUpdate, 0)
	acct := net.Accounting()
	// Seed the deliberate bug: drop one message from the per-sender ledger.
	s := acct.BySender["a"]
	s.Messages--
	acct.BySender["a"] = s
	if v := audit.CheckAccounting(acct); v == nil || v.Property != "accounting-conservation" {
		t.Fatalf("ledger drift not flagged: %v", v)
	}
	// And a negative aggregate.
	acct = net.Accounting()
	c := acct.ByClass[netmodel.ClassUpdate]
	c.KmKB = -1
	acct.ByClass[netmodel.ClassUpdate] = c
	if v := audit.CheckAccounting(acct); v == nil || v.Property != "accounting-nonnegative" {
		t.Fatalf("negative aggregate not flagged: %v", v)
	}
}

func TestViolationErrorRendering(t *testing.T) {
	v := &audit.Violation{
		Property: "tree-acyclic",
		Time:     90 * time.Second,
		Server:   7,
		Detail:   "cycle",
		Snapshot: "chain 7->3->7",
	}
	msg := v.Error()
	for _, want := range []string{"tree-acyclic", "1m30s", "server 7", "cycle", "chain 7->3->7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() missing %q: %s", want, msg)
		}
	}
}
