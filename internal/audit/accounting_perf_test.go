package audit_test

import (
	"fmt"
	"testing"
	"time"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
)

// ledgerWith returns a Network whose per-sender ledger tracks n endpoints.
func ledgerWith(tb testing.TB, senders int) *netmodel.Network {
	tb.Helper()
	net, err := netmodel.New(netmodel.Config{}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sink := netmodel.Endpoint{ID: "origin", Loc: geo.Point{Lat: 40, Lon: -74}, ISP: 1}
	for i := 0; i < senders; i++ {
		ep := netmodel.Endpoint{
			ID:  fmt.Sprintf("srv%04d", i),
			Loc: geo.Point{Lat: float64(i%170) - 85, Lon: float64(i*7%360) - 180},
			ISP: i % 11,
		}
		net.Send(ep, sink, 1, netmodel.ClassLight, time.Duration(i))
	}
	return net
}

// TestSweepAllocsFlatInSenderCount is the regression test for the audit
// sweep's per-cadence ledger clone: checking the accounting through the
// copy-free view must cost the same small constant number of allocations at
// 10 senders and at 1000 — the sweep no longer materializes a snapshot that
// scales with the fleet.
func TestSweepAllocsFlatInSenderCount(t *testing.T) {
	cost := func(senders int) float64 {
		net := ledgerWith(t, senders)
		v := net.View()
		return testing.AllocsPerRun(50, func() {
			if viol := audit.CheckAccounting(v); viol != nil {
				t.Fatalf("unexpected violation: %v", viol)
			}
		})
	}
	small, large := cost(10), cost(1000)
	if large > small {
		t.Fatalf("sweep allocations scale with sender count: %v allocs at 10 senders, %v at 1000", small, large)
	}
	// The absolute ceiling: a handful of allocations (closure headers), not
	// a per-sender map clone.
	if large > 4 {
		t.Fatalf("sweep costs %v allocs/op at 1000 senders, want <= 4", large)
	}
}

// BenchmarkAccountingSweep measures one auditor accounting sweep at several
// fleet sizes. allocs/op staying flat across sub-benchmarks is the point;
// the CI bench gate tracks it.
func BenchmarkAccountingSweep(b *testing.B) {
	for _, senders := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("senders=%d", senders), func(b *testing.B) {
			net := ledgerWith(b, senders)
			v := net.View()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if viol := audit.CheckAccounting(v); viol != nil {
					b.Fatal(viol)
				}
			}
		})
	}
}

// BenchmarkAccountingSnapshot measures what the sweep used to pay: a full
// materialized Accounting() clone per audit cadence, scaling with senders.
// Kept as the contrast figure for the EXPERIMENTS.md performance appendix.
func BenchmarkAccountingSnapshot(b *testing.B) {
	for _, senders := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("senders=%d", senders), func(b *testing.B) {
			net := ledgerWith(b, senders)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acct := net.Accounting()
				if acct.Total().Messages == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}
