package audit

import "fmt"

// NoParent marks a tree root, mirroring overlay.NoParent. Defined here so
// the predicate has no dependency on the overlay package (overlay itself
// calls into audit, and a shared constant avoids the import cycle).
const NoParent = -1

// TreeView is the read-only surface the tree predicates need. overlay.Tree
// satisfies it; tests may supply ad-hoc fixtures.
type TreeView interface {
	NumNodes() int
	Parent(i int) int
	Children(i int) []int
}

// CheckTree verifies the structural invariants of a rooted distribution
// tree over its live nodes: node 0 is the only root, parent and children
// arrays agree, no live node's degree exceeds the bound (degree <= 0 means
// unbounded), and every live node's parent chain terminates without cycling.
//
// allowDeadAnchor controls the connectivity requirement. Offline (strict)
// validation demands every live node reach the root. The live auditor runs
// with allowDeadAnchor=true: a failed best-effort repair may legitimately
// leave a live subtree anchored under a dead, detached relay — the paper's
// "orphaned supernode" state — which is a recorded degradation, not
// corruption. A cycle or a dangling parent index is corruption in either
// mode.
//
// alive may be nil, meaning every node is live.
func CheckTree(t TreeView, degree int, alive []bool, allowDeadAnchor bool) *Violation {
	n := t.NumNodes()
	if n == 0 {
		return violationf("tree-structure", "empty tree")
	}
	if alive != nil && len(alive) != n {
		return violationf("tree-structure", "alive has %d entries for %d nodes", len(alive), n)
	}
	isLive := func(i int) bool { return alive == nil || alive[i] }
	if t.Parent(0) != NoParent {
		return violationf("tree-structure", "root has parent %d", t.Parent(0))
	}
	live := 0
	for i := 0; i < n; i++ {
		if !isLive(i) {
			continue
		}
		live++
		kids := t.Children(i)
		if degree > 0 && len(kids) > degree {
			v := violationf("tree-degree", "node %d has %d children, bound %d", i, len(kids), degree)
			v.Server = i
			v.Snapshot = fmt.Sprintf("children=%v", kids)
			return v
		}
		for _, c := range kids {
			if c < 0 || c >= n {
				v := violationf("tree-structure", "node %d lists child %d outside 0..%d", i, c, n-1)
				v.Server = i
				return v
			}
			if t.Parent(c) != i {
				v := violationf("tree-structure", "child %d of %d has parent %d", c, i, t.Parent(c))
				v.Server = i
				v.Snapshot = fmt.Sprintf("children[%d]=%v parent[%d]=%d", i, kids, c, t.Parent(c))
				return v
			}
		}
		if i == 0 {
			continue
		}
		if v := checkChain(t, i, isLive, allowDeadAnchor); v != nil {
			return v
		}
	}
	if live == 0 {
		return violationf("tree-structure", "no live nodes")
	}
	return nil
}

// checkChain walks node i's parent chain: it must terminate at the root
// within NumNodes steps (no cycle, no dangling index). With allowDeadAnchor
// the chain may instead terminate at a dead detached node.
func checkChain(t TreeView, i int, isLive func(int) bool, allowDeadAnchor bool) *Violation {
	n := t.NumNodes()
	cur := i
	for steps := 0; ; steps++ {
		if steps > n {
			v := violationf("tree-acyclic", "parent chain from %d cycles without reaching the root", i)
			v.Server = i
			v.Snapshot = chainSnapshot(t, i)
			return v
		}
		p := t.Parent(cur)
		if p == NoParent {
			if cur == 0 {
				return nil // reached the root
			}
			if allowDeadAnchor && !isLive(cur) {
				return nil // orphan group under a dead, detached relay
			}
			v := violationf("tree-connectivity", "live node %d's chain ends detached at %d", i, cur)
			v.Server = i
			v.Snapshot = chainSnapshot(t, i)
			return v
		}
		if p < 0 || p >= n || p == cur {
			v := violationf("tree-structure", "node %d has invalid parent %d", cur, p)
			v.Server = cur
			return v
		}
		cur = p
	}
}

// chainSnapshot renders a node's parent chain (bounded) for the violation
// snapshot.
func chainSnapshot(t TreeView, i int) string {
	out := fmt.Sprintf("%d", i)
	cur := i
	for steps := 0; steps <= t.NumNodes() && t.Parent(cur) != NoParent; steps++ {
		cur = t.Parent(cur)
		out += fmt.Sprintf("->%d", cur)
	}
	return "chain " + out
}
