package audit

import (
	"math"

	"cdnconsistency/internal/netmodel"
)

// relTol is the relative tolerance for float aggregate comparisons: the
// per-class and per-sender aggregations accumulate the same messages in a
// different order, so their sums differ by rounding, never by more.
const relTol = 1e-9

// AccountingReader is the read shape the accounting predicates need. Both
// netmodel.Accounting (a materialized snapshot) and netmodel.AccountingView
// (a copy-free window onto the live ledgers) satisfy it, so the runtime
// auditor can sweep without cloning the ledger each cadence.
type AccountingReader interface {
	// Total sums the per-class ledger.
	Total() netmodel.ClassTotals
	// EachSender visits every endpoint with at least one sent message, in a
	// deterministic order.
	EachSender(fn func(id string, t netmodel.ClassTotals))
}

// CheckAccounting verifies the traffic accounting's conservation properties:
// every per-class and per-sender total is finite and non-negative, and the
// two independent aggregations of the same message stream — by class and by
// sending endpoint — agree on message count, payload, distance, and cost.
// A mismatch means a message was recorded in one ledger but not the other:
// exactly the silent corruption that would skew the km·KB figures.
//
// CheckAccounting itself allocates nothing when given a copy-free reader, so
// per-sweep audit cost no longer grows a garbage ledger clone per sweep.
func CheckAccounting(a AccountingReader) *Violation {
	classTotal := a.Total()
	if v := checkTotals("class aggregate", classTotal); v != nil {
		return v
	}
	var senderTotal netmodel.ClassTotals
	var badSender *Violation
	senders := 0
	a.EachSender(func(id string, t netmodel.ClassTotals) {
		senders++
		// Fast numeric check first: the violation label concatenation must
		// only be paid on the failure path, or the sweep allocates one
		// string per sender per cadence.
		if badSender == nil && !totalsOK(t) {
			badSender = checkTotals("sender "+id, t)
			return
		}
		senderTotal.Messages += t.Messages
		senderTotal.KB += t.KB
		senderTotal.Km += t.Km
		senderTotal.KmKB += t.KmKB
	})
	if badSender != nil {
		return badSender
	}
	if senders == 0 && classTotal.Messages == 0 {
		return nil // nothing sent yet
	}
	if senderTotal.Messages != classTotal.Messages {
		return violationf("accounting-conservation",
			"per-sender messages %d != per-class messages %d",
			senderTotal.Messages, classTotal.Messages)
	}
	for _, c := range []struct {
		name        string
		sender, cls float64
	}{
		{"KB", senderTotal.KB, classTotal.KB},
		{"Km", senderTotal.Km, classTotal.Km},
		{"KmKB", senderTotal.KmKB, classTotal.KmKB},
	} {
		if !aggregatesAgree(c.sender, c.cls) {
			return violationf("accounting-conservation",
				"per-sender %s %.6f != per-class %s %.6f", c.name, c.sender, c.name, c.cls)
		}
	}
	return nil
}

// totalsOK is the allocation-free predicate behind checkTotals; callers on
// the hot path gate on it before paying for a labelled Violation.
func totalsOK(t netmodel.ClassTotals) bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }
	return t.Messages >= 0 && finite(t.KB) && finite(t.Km) && finite(t.KmKB)
}

func checkTotals(label string, t netmodel.ClassTotals) *Violation {
	if t.Messages < 0 {
		return violationf("accounting-nonnegative", "%s: %d messages", label, t.Messages)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"KB", t.KB}, {"Km", t.Km}, {"KmKB", t.KmKB}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return violationf("accounting-nonnegative", "%s: %s = %v", label, f.name, f.v)
		}
	}
	return nil
}

func aggregatesAgree(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale || diff < 1e-12
}
