// Package audit defines the runtime invariant auditor's vocabulary: the
// structured Violation a failed invariant produces, and the shared predicate
// functions that verify conservation properties over simulation state.
//
// The predicates are deliberately free of simulation dependencies (they see
// trees through the TreeView interface and metrics as plain numbers) so the
// same checks back three consumers: the unit/property tests that validate
// results offline, overlay.Tree.Validate's structural checks, and the live
// auditor internal/cdn runs at cadence during a simulation. A figure is only
// trustworthy if the run that produced it audited clean — the paper's
// trace-driven claims rest on the simulator never silently corrupting state,
// a risk that grows once faults are injected mid-run.
//
// Every predicate returns *Violation (nil when the property holds) rather
// than a bare error, so callers fail fast with the event time, offending
// server, property name, and a snapshot of the offending state instead of
// producing quietly-wrong figures.
package audit

import (
	"fmt"
	"math"
	"time"
)

// Violation is one failed invariant: what broke, where, when, and a snapshot
// of the offending state. It implements error so simulation entry points can
// return it directly.
type Violation struct {
	// Property names the broken invariant, e.g. "tree-connectivity" or
	// "catchup-accounting".
	Property string
	// Time is the simulation clock when the violation was detected (zero
	// for offline checks).
	Time time.Duration
	// Server is the offending node index, or -1 when the property is
	// global.
	Server int
	// Detail describes the failure in one sentence.
	Detail string
	// Snapshot dumps the offending state (counters, parent chains) for
	// post-mortem debugging.
	Snapshot string
}

// Error renders the violation with all its context.
func (v *Violation) Error() string {
	msg := fmt.Sprintf("audit: %s violated at %v", v.Property, v.Time)
	if v.Server >= 0 {
		msg += fmt.Sprintf(" (server %d)", v.Server)
	}
	msg += ": " + v.Detail
	if v.Snapshot != "" {
		msg += "\n  state: " + v.Snapshot
	}
	return msg
}

// violationf builds a global violation for one property.
func violationf(property, format string, args ...any) *Violation {
	return &Violation{Property: property, Server: -1, Detail: fmt.Sprintf(format, args...)}
}

// CheckSeries verifies a metric series is physically meaningful: every value
// finite and non-negative. Inconsistency lengths, catch-up sums, and recovery
// durations are all durations — a negative or NaN entry means accounting
// corrupted somewhere upstream.
func CheckSeries(name string, xs []float64) *Violation {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v := violationf("series-finite", "%s[%d] = %v is not finite", name, i, x)
			v.Server = i
			return v
		}
		if x < 0 {
			v := violationf("series-nonnegative", "%s[%d] = %v is negative", name, i, x)
			v.Server = i
			return v
		}
	}
	return nil
}

// CheckCount verifies a sub-count never exceeds its total and neither is
// negative (e.g. inconsistent observations vs. all observations).
func CheckCount(name string, part, total int) *Violation {
	if part < 0 || total < 0 {
		return violationf("count-nonnegative", "%s: part=%d total=%d", name, part, total)
	}
	if part > total {
		return violationf("count-bounded", "%s: part %d exceeds total %d", name, part, total)
	}
	return nil
}

// CheckFraction verifies a ratio lies in [0, 1] and is finite.
func CheckFraction(name string, f float64) *Violation {
	if math.IsNaN(f) || f < 0 || f > 1 {
		return violationf("fraction-bounded", "%s = %v outside [0, 1]", name, f)
	}
	return nil
}

// CheckMonotonicCount verifies a cumulative counter never runs backwards
// between two audit observations.
func CheckMonotonicCount(name string, prev, cur int) *Violation {
	if cur < prev {
		return violationf("counter-monotonic", "%s decreased from %d to %d", name, prev, cur)
	}
	return nil
}

// CheckBoundedDelay verifies one recorded catch-up delay against the regime's
// theoretical maximum (TTL plus propagation, scaled by relay depth — computed
// by the caller, which knows the regime). bound <= 0 means only the
// non-negativity half applies.
func CheckBoundedDelay(name string, delay, bound time.Duration) *Violation {
	if delay < 0 {
		return violationf("delay-nonnegative", "%s = %v is negative", name, delay)
	}
	if bound > 0 && delay > bound {
		return violationf("delay-bounded", "%s = %v exceeds the regime max %v", name, delay, bound)
	}
	return nil
}
