// Package geo provides geographic primitives for the CDN model: latitude/
// longitude points, great-circle distances, and a Hilbert space-filling
// curve used for proximity clustering (paper Section 5.2, ref [39]/[44]).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // latitude in [-90, 90]
	Lon float64 // longitude in [-180, 180)
}

// Valid reports whether the point lies in the legal coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon < 360 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String formats the point as "lat,lon" with 4 decimal places.
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometers.
func DistanceKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}
