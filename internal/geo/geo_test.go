package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	atlanta = Point{Lat: 33.7490, Lon: -84.3880}
	london  = Point{Lat: 51.5074, Lon: -0.1278}
	tokyo   = Point{Lat: 35.6762, Lon: 139.6503}
	sydney  = Point{Lat: -33.8688, Lon: 151.2093}
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // km, approximate
		tol  float64
	}{
		{"atlanta-london", atlanta, london, 6760, 50},
		{"atlanta-tokyo", atlanta, tokyo, 11040, 100},
		{"london-sydney", london, sydney, 16990, 100},
		{"same-point", atlanta, atlanta, 0, 1e-9},
		{"equator-degree", Point{0, 0}, Point{0, 1}, 111.19, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DistanceKm(tt.a, tt.b)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("DistanceKm = %.1f, want %.1f +/- %.1f", got, tt.want, tt.tol)
			}
		})
	}
}

func randomPoint(r *rand.Rand) Point {
	return Point{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180}
}

func TestPropertyDistanceSymmetricNonNegBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomPoint(r), randomPoint(r)
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		if d1 < 0 {
			t.Fatalf("negative distance %f", d1)
		}
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("asymmetric: %f vs %f", d1, d2)
		}
		if d1 > math.Pi*EarthRadiusKm+1e-6 {
			t.Fatalf("distance %f exceeds half circumference", d1)
		}
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b, c := randomPoint(r), randomPoint(r), randomPoint(r)
		ab, bc, ac := DistanceKm(a, b), DistanceKm(b, c), DistanceKm(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(a,c)=%f > d(a,b)+d(b,c)=%f", ac, ab+bc)
		}
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, -180}, true},
		{Point{-90, 179.999}, true},
		{Point{91, 0}, false},
		{Point{0, 360}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestHilbertOrderValidation(t *testing.T) {
	for _, order := range []uint{0, 17} {
		if _, err := NewHilbert(order); err == nil {
			t.Errorf("NewHilbert(%d) succeeded, want error", order)
		}
	}
	if _, err := NewHilbert(8); err != nil {
		t.Errorf("NewHilbert(8): %v", err)
	}
}

func TestHilbertOrder1Curve(t *testing.T) {
	h, err := NewHilbert(1)
	if err != nil {
		t.Fatal(err)
	}
	// The order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
	want := [][2]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for d, cell := range want {
		x, y, err := h.Cell(uint64(d))
		if err != nil {
			t.Fatal(err)
		}
		if x != cell[0] || y != cell[1] {
			t.Errorf("Cell(%d) = (%d,%d), want (%d,%d)", d, x, y, cell[0], cell[1])
		}
	}
}

func TestHilbertBijective(t *testing.T) {
	h, err := NewHilbert(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, h.Side()*h.Side())
	for x := uint32(0); x < h.Side(); x++ {
		for y := uint32(0); y < h.Side(); y++ {
			d, err := h.Index(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if seen[d] {
				t.Fatalf("duplicate curve index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
			gx, gy, err := h.Cell(d)
			if err != nil {
				t.Fatal(err)
			}
			if gx != x || gy != y {
				t.Fatalf("Cell(Index(%d,%d)) = (%d,%d)", x, y, gx, gy)
			}
		}
	}
	if len(seen) != int(h.Side())*int(h.Side()) {
		t.Fatalf("curve covered %d cells, want %d", len(seen), h.Side()*h.Side())
	}
}

// Property: consecutive curve positions are grid-adjacent (Manhattan
// distance exactly 1) — the defining continuity property of the curve.
func TestPropertyHilbertContinuity(t *testing.T) {
	h, err := NewHilbert(6)
	if err != nil {
		t.Fatal(err)
	}
	max := uint64(h.Side()) * uint64(h.Side())
	px, py, err := h.Cell(0)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint64(1); d < max; d++ {
		x, y, err := h.Cell(d)
		if err != nil {
			t.Fatal(err)
		}
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("curve jump at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestHilbertBounds(t *testing.T) {
	h, err := NewHilbert(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Index(h.Side(), 0); err == nil {
		t.Error("Index out of grid succeeded")
	}
	if _, _, err := h.Cell(uint64(h.Side()) * uint64(h.Side())); err == nil {
		t.Error("Cell out of range succeeded")
	}
}

func TestPropertyHilbertRoundTrip(t *testing.T) {
	h, err := NewHilbert(10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y uint32) bool {
		x %= h.Side()
		y %= h.Side()
		d, err := h.Index(x, y)
		if err != nil {
			return false
		}
		gx, gy, err := h.Cell(d)
		return err == nil && gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Hilbert locality: points close on the plane should on average be closer on
// the curve than random pairs. This is the property clustering relies on.
func TestHilbertLocality(t *testing.T) {
	h, err := NewHilbert(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	var nearSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		x := r.Uint32() % (h.Side() - 1)
		y := r.Uint32() % (h.Side() - 1)
		d0, _ := h.Index(x, y)
		d1, _ := h.Index(x+1, y)
		nearSum += absDiff(d0, d1)

		x2 := r.Uint32() % h.Side()
		y2 := r.Uint32() % h.Side()
		d2, _ := h.Index(x2, y2)
		farSum += absDiff(d0, d2)
	}
	if nearSum >= farSum {
		t.Errorf("adjacent cells not closer on curve: near avg %.0f vs random avg %.0f",
			nearSum/trials, farSum/trials)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestPointIndex(t *testing.T) {
	h, err := NewHilbert(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PointIndex(Point{Lat: 91, Lon: 0}); err == nil {
		t.Error("PointIndex accepted invalid point")
	}
	// Extreme corners must not panic or exceed the grid.
	for _, p := range []Point{{-90, -180}, {90, 179.999}, {0, 0}} {
		if _, err := h.PointIndex(p); err != nil {
			t.Errorf("PointIndex(%v): %v", p, err)
		}
	}
	// Nearby points should usually have closer indices than antipodal ones.
	a, _ := h.PointIndex(atlanta)
	b, _ := h.PointIndex(Point{Lat: atlanta.Lat + 0.5, Lon: atlanta.Lon + 0.5})
	c, _ := h.PointIndex(sydney)
	if absDiff(a, b) > absDiff(a, c) {
		t.Errorf("nearby point farther on curve than antipodal: |a-b|=%.0f |a-c|=%.0f",
			absDiff(a, b), absDiff(a, c))
	}
}
