package geo_test

import (
	"fmt"

	"cdnconsistency/internal/geo"
)

func ExampleDistanceKm() {
	atlanta := geo.Point{Lat: 33.749, Lon: -84.388}
	london := geo.Point{Lat: 51.5074, Lon: -0.1278}
	fmt.Printf("%.0f km\n", geo.DistanceKm(atlanta, london))
	// Output:
	// 6770 km
}

func ExampleHilbert_PointIndex() {
	h, err := geo.NewHilbert(4)
	if err != nil {
		panic(err)
	}
	// Nearby points land close on the curve; this is what the supernode
	// clustering of the paper's Section 5.2 exploits.
	a, _ := h.PointIndex(geo.Point{Lat: 40.0, Lon: -74.0})
	b, _ := h.PointIndex(geo.Point{Lat: 41.0, Lon: -73.0})
	fmt.Println(a == b)
	// Output:
	// true
}
