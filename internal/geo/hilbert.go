package geo

import "fmt"

// Hilbert maps 2-D grid cells to positions along a Hilbert space-filling
// curve of a given order. Cells that are close on the plane tend to be close
// on the curve, which the paper (Section 5.2, via ref [39]) uses to group
// geographically close content servers under the same supernode.
type Hilbert struct {
	order uint // the grid is 2^order x 2^order
	side  uint32
}

// NewHilbert returns a curve over a 2^order x 2^order grid. Order must be in
// [1, 16] so indices fit comfortably in uint64.
func NewHilbert(order uint) (*Hilbert, error) {
	if order < 1 || order > 16 {
		return nil, fmt.Errorf("geo: hilbert order %d out of range [1,16]", order)
	}
	return &Hilbert{order: order, side: 1 << order}, nil
}

// Side returns the grid side length 2^order.
func (h *Hilbert) Side() uint32 { return h.side }

// Index returns the distance along the curve of grid cell (x, y).
// Coordinates outside the grid are an error.
func (h *Hilbert) Index(x, y uint32) (uint64, error) {
	if x >= h.side || y >= h.side {
		return 0, fmt.Errorf("geo: cell (%d,%d) outside %dx%d grid", x, y, h.side, h.side)
	}
	var d uint64
	for s := h.side / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d, nil
}

// Cell is the inverse of Index: it returns the grid cell at curve distance d.
func (h *Hilbert) Cell(d uint64) (x, y uint32, err error) {
	max := uint64(h.side) * uint64(h.side)
	if d >= max {
		return 0, 0, fmt.Errorf("geo: curve distance %d outside [0,%d)", d, max)
	}
	t := d
	for s := uint32(1); s < h.side; s *= 2 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y, nil
}

// rot rotates/flips a quadrant so the curve stays continuous.
func rot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// PointIndex projects a geographic point onto the curve by binning latitude
// and longitude uniformly over the grid. It is the convenience used for
// supernode clustering.
func (h *Hilbert) PointIndex(p Point) (uint64, error) {
	if !p.Valid() {
		return 0, fmt.Errorf("geo: invalid point %v", p)
	}
	// Normalize to [0,1).
	fx := (p.Lon + 180) / 360
	fy := (p.Lat + 90) / 180
	x := uint32(fx * float64(h.side))
	y := uint32(fy * float64(h.side))
	if x >= h.side {
		x = h.side - 1
	}
	if y >= h.side {
		y = h.side - 1
	}
	return h.Index(x, y)
}
