package topology

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cdnconsistency/internal/geo"
)

// SitePoint is a bare coordinate in a server-map spec.
type SitePoint struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Point converts to the geo primitive.
func (p SitePoint) Point() geo.Point { return geo.Point{Lat: p.Lat, Lon: p.Lon} }

// Site is one deployment location: co-located servers sharing coordinates
// and an ISP — the unit the paper's same-location clusters group by.
type Site struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	// ISP is the site's provider id (>= 0).
	ISP int `json:"isp"`
	// Servers lists the content-server ids deployed at the site.
	Servers []string `json:"servers"`
}

// ServerMap is a declarative server topology: the content provider's
// vantage point plus the deployment sites. It is the topology half of an
// imported spec bundle — unlike topology.Config it names concrete servers
// rather than sampling them, so a simulation can replay an observed
// deployment exactly.
type ServerMap struct {
	Provider SitePoint `json:"provider"`
	Sites    []Site    `json:"sites"`
}

// NumServers counts the servers across all sites.
func (m *ServerMap) NumServers() int {
	n := 0
	for _, s := range m.Sites {
		n += len(s.Servers)
	}
	return n
}

// Validate checks structural soundness: valid coordinates, at least one
// site, every site populated, and globally unique non-empty server ids.
func (m *ServerMap) Validate() error {
	if m == nil {
		return fmt.Errorf("topology: nil server map")
	}
	if !m.Provider.Point().Valid() {
		return fmt.Errorf("topology: server map provider at invalid location %v,%v", m.Provider.Lat, m.Provider.Lon)
	}
	if len(m.Sites) == 0 {
		return fmt.Errorf("topology: server map has no sites")
	}
	seen := make(map[string]bool, m.NumServers())
	for si, s := range m.Sites {
		if !(geo.Point{Lat: s.Lat, Lon: s.Lon}).Valid() {
			return fmt.Errorf("topology: site %d at invalid location %v,%v", si, s.Lat, s.Lon)
		}
		if s.ISP < 0 {
			return fmt.Errorf("topology: site %d has negative isp %d", si, s.ISP)
		}
		if len(s.Servers) == 0 {
			return fmt.Errorf("topology: site %d has no servers", si)
		}
		for _, id := range s.Servers {
			if id == "" {
				return fmt.Errorf("topology: site %d has a server with empty id", si)
			}
			if seen[id] {
				return fmt.Errorf("topology: duplicate server id %q", id)
			}
			seen[id] = true
		}
	}
	return nil
}

// ParseServerMap parses and validates a JSON server map. Parsing is strict:
// unknown fields, trailing data, and structurally invalid maps are errors,
// never panics.
func ParseServerMap(data []byte) (*ServerMap, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m ServerMap
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("topology: parse server map: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("topology: parse server map: trailing data after spec")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Marshal serializes the map as indented JSON, the inverse of
// ParseServerMap: Parse(Marshal(m)) reproduces m exactly.
func (m *ServerMap) Marshal() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Topology materializes the map as a simulation topology: servers in
// site-major order (each site is one city), with no attached users — a
// server-map-driven run supplies its user population explicitly via
// workload.Population.
func (m *ServerMap) Topology() (*Topology, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	topo := &Topology{
		Provider: Node{ID: "provider", Kind: KindProvider, Loc: m.Provider.Point(), ISP: -1, City: -1},
		Servers:  make([]Node, 0, m.NumServers()),
		cities:   make([]cityInfo, 0, len(m.Sites)),
	}
	for si, s := range m.Sites {
		loc := geo.Point{Lat: s.Lat, Lon: s.Lon}
		topo.cities = append(topo.cities, cityInfo{loc: loc, isp: s.ISP})
		for _, id := range s.Servers {
			topo.Servers = append(topo.Servers, Node{
				ID: id, Kind: KindServer, Loc: loc, ISP: s.ISP, City: si,
			})
		}
	}
	topo.Users = make([][]Node, len(topo.Servers))
	return topo, nil
}
