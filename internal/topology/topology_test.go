package topology

import (
	"testing"

	"cdnconsistency/internal/geo"
)

func mustGen(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestGenerateBasics(t *testing.T) {
	topo := mustGen(t, Config{Servers: 200, UsersPerServer: 3, Seed: 1})
	if len(topo.Servers) != 200 {
		t.Fatalf("servers = %d, want 200", len(topo.Servers))
	}
	if len(topo.Users) != 200 {
		t.Fatalf("user groups = %d, want 200", len(topo.Users))
	}
	for i, us := range topo.Users {
		if len(us) != 3 {
			t.Fatalf("server %d has %d users, want 3", i, len(us))
		}
		for _, u := range us {
			if u.Kind != KindUser {
				t.Fatalf("user kind = %v", u.Kind)
			}
			if u.ISP != topo.Servers[i].ISP {
				t.Fatalf("user ISP %d != server ISP %d", u.ISP, topo.Servers[i].ISP)
			}
		}
	}
	if topo.Provider.Kind != KindProvider {
		t.Error("provider kind wrong")
	}
	// Default provider location is Atlanta.
	if d := geo.DistanceKm(topo.Provider.Loc, geo.Point{Lat: 33.749, Lon: -84.388}); d > 1 {
		t.Errorf("provider %v not at Atlanta", topo.Provider.Loc)
	}
	seen := make(map[string]bool)
	for _, s := range topo.Servers {
		if s.Kind != KindServer {
			t.Fatalf("server kind = %v", s.Kind)
		}
		if !s.Loc.Valid() {
			t.Fatalf("invalid server location %v", s.Loc)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate server id %s", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Servers: 0}); err == nil {
		t.Error("Servers=0 accepted")
	}
	if _, err := Generate(Config{Servers: 10, UsersPerServer: -1}); err == nil {
		t.Error("negative UsersPerServer accepted")
	}
	if _, err := Generate(Config{Servers: 10, Regions: []Region{{Name: "bad", Weight: -1, ISPCount: 1}}}); err == nil {
		t.Error("negative region weight accepted")
	}
	if _, err := Generate(Config{Servers: 10, Regions: []Region{{Name: "zero", Weight: 0, ISPCount: 1}}}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGen(t, Config{Servers: 100, UsersPerServer: 2, Seed: 42})
	b := mustGen(t, Config{Servers: 100, UsersPerServer: 2, Seed: 42})
	for i := range a.Servers {
		if a.Servers[i] != b.Servers[i] {
			t.Fatalf("server %d differs across identical seeds", i)
		}
	}
	c := mustGen(t, Config{Servers: 100, UsersPerServer: 2, Seed: 43})
	same := 0
	for i := range a.Servers {
		if a.Servers[i].Loc == c.Servers[i].Loc {
			same++
		}
	}
	if same == len(a.Servers) {
		t.Error("different seeds produced identical topologies")
	}
}

func TestRegionWeights(t *testing.T) {
	topo := mustGen(t, Config{Servers: 3000, Seed: 7})
	counts := map[string]int{}
	for _, s := range topo.Servers {
		switch {
		case s.Loc.Lon < -60:
			counts["us"]++
		case s.Loc.Lon < 60:
			counts["europe"]++
		default:
			counts["asia"]++
		}
	}
	// Expect roughly 45/30/25 with generous tolerance.
	if counts["us"] < 1100 || counts["us"] > 1600 {
		t.Errorf("us count = %d, want ~1350", counts["us"])
	}
	if counts["europe"] < 700 || counts["europe"] > 1100 {
		t.Errorf("europe count = %d, want ~900", counts["europe"])
	}
	if counts["asia"] < 550 || counts["asia"] > 950 {
		t.Errorf("asia count = %d, want ~750", counts["asia"])
	}
}

func TestLocationClusters(t *testing.T) {
	topo := mustGen(t, Config{Servers: 500, Seed: 3})
	clusters := topo.LocationClusters()
	total := 0
	for _, c := range clusters {
		if len(c.Members) == 0 {
			t.Fatalf("empty cluster %q", c.Key)
		}
		loc := topo.Servers[c.Members[0]].Loc
		for _, m := range c.Members {
			if topo.Servers[m].Loc != loc {
				t.Fatalf("cluster %q mixes locations", c.Key)
			}
		}
		total += len(c.Members)
	}
	if total != 500 {
		t.Errorf("clusters cover %d servers, want 500", total)
	}
	if len(clusters) < 2 {
		t.Errorf("only %d location clusters", len(clusters))
	}
}

func TestISPClusters(t *testing.T) {
	topo := mustGen(t, Config{Servers: 500, Seed: 3})
	clusters := topo.ISPClusters()
	total := 0
	for _, c := range clusters {
		isp := topo.Servers[c.Members[0]].ISP
		for _, m := range c.Members {
			if topo.Servers[m].ISP != isp {
				t.Fatalf("cluster %q mixes ISPs", c.Key)
			}
		}
		total += len(c.Members)
	}
	if total != 500 {
		t.Errorf("clusters cover %d servers, want 500", total)
	}
}

func TestHilbertClusters(t *testing.T) {
	topo := mustGen(t, Config{Servers: 400, Seed: 9})
	clusters, err := topo.HilbertClusters(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 20 {
		t.Fatalf("got %d clusters, want 20", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		if len(c.Members) == 0 {
			t.Fatalf("empty hilbert cluster %q", c.Key)
		}
		total += len(c.Members)
	}
	if total != 400 {
		t.Errorf("clusters cover %d, want 400", total)
	}
	// Near-equal sizes: each cluster should hold 20 +/- 1 members.
	for _, c := range clusters {
		if len(c.Members) < 19 || len(c.Members) > 21 {
			t.Errorf("cluster %q size %d, want ~20", c.Key, len(c.Members))
		}
	}

	if _, err := topo.HilbertClusters(0); err == nil {
		t.Error("maxClusters=0 accepted")
	}
}

func TestHilbertClustersMoreThanServers(t *testing.T) {
	topo := mustGen(t, Config{Servers: 5, Seed: 1})
	clusters, err := topo.HilbertClusters(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 5 {
		t.Errorf("got %d clusters for 5 servers, want 5", len(clusters))
	}
}

// Hilbert clusters should be geographically tighter than random grouping.
func TestHilbertClustersLocality(t *testing.T) {
	topo := mustGen(t, Config{Servers: 600, Seed: 11})
	clusters, err := topo.HilbertClusters(30)
	if err != nil {
		t.Fatal(err)
	}
	diameter := func(members []int) float64 {
		var maxD float64
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := geo.DistanceKm(topo.Servers[members[i]].Loc, topo.Servers[members[j]].Loc)
				if d > maxD {
					maxD = d
				}
			}
		}
		return maxD
	}
	var hilbertSum, randomSum float64
	for i, c := range clusters {
		hilbertSum += diameter(c.Members)
		// A "random" cluster: stride through all servers.
		random := make([]int, 0, len(c.Members))
		for j := 0; j < len(c.Members); j++ {
			random = append(random, (i+j*31)%len(topo.Servers))
		}
		randomSum += diameter(random)
	}
	if hilbertSum >= randomSum {
		t.Errorf("hilbert clusters not tighter: %.0f km vs random %.0f km", hilbertSum, randomSum)
	}
}

func TestElectSupernode(t *testing.T) {
	topo := mustGen(t, Config{Servers: 300, Seed: 5})
	clusters, err := topo.HilbertClusters(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		sn, err := topo.ElectSupernode(c)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range c.Members {
			if m == sn {
				found = true
			}
		}
		if !found {
			t.Fatalf("supernode %d not a member of cluster %q", sn, c.Key)
		}
	}
	if _, err := topo.ElectSupernode(Cluster{Key: "empty"}); err == nil {
		t.Error("empty cluster supernode election succeeded")
	}
}

func TestWrapAndClampHelpers(t *testing.T) {
	if got := clampLat(95); got != 90 {
		t.Errorf("clampLat(95) = %v", got)
	}
	if got := clampLat(-95); got != -90 {
		t.Errorf("clampLat(-95) = %v", got)
	}
	if got := wrapLon(185); got != -175 {
		t.Errorf("wrapLon(185) = %v", got)
	}
	if got := wrapLon(-185); got != 175 {
		t.Errorf("wrapLon(-185) = %v", got)
	}
}
