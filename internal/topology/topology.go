// Package topology generates the simulated CDN's node layout: a content
// provider, content servers scattered across world regions with ISP
// affiliations, and end-users attached to servers. It also provides the
// clustering primitives the paper uses — same-location clusters (Section
// 3.4.1), ISP clusters (3.4.3), and Hilbert-curve proximity clusters with
// supernode election (Section 5.2).
package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"cdnconsistency/internal/geo"
)

// NodeKind distinguishes the roles in the topology.
type NodeKind int

// Node roles.
const (
	KindProvider NodeKind = iota + 1
	KindServer
	KindUser
)

// Node is one participant in the CDN.
type Node struct {
	ID   string
	Kind NodeKind
	Loc  geo.Point
	ISP  int
	// City indexes the metro the node was placed in; nodes in the same
	// city share coordinates, matching the paper's same-location clusters.
	City int
}

// Region is a sampling region for server placement.
type Region struct {
	Name   string
	Weight float64 // relative share of servers
	// Bounding box, degrees.
	LatMin, LatMax float64
	LonMin, LonMax float64
	ISPBase        int // first ISP id used in this region
	ISPCount       int // number of ISPs in this region
}

// DefaultRegions mirrors the paper's deployment: servers mainly in the US,
// Europe, and Asia (Section 4).
func DefaultRegions() []Region {
	return []Region{
		{Name: "us", Weight: 0.45, LatMin: 26, LatMax: 48, LonMin: -123, LonMax: -71, ISPBase: 0, ISPCount: 12},
		{Name: "europe", Weight: 0.30, LatMin: 37, LatMax: 59, LonMin: -9, LonMax: 30, ISPBase: 12, ISPCount: 10},
		{Name: "asia", Weight: 0.25, LatMin: 1, LatMax: 45, LonMin: 73, LonMax: 140, ISPBase: 22, ISPCount: 8},
	}
}

// Config controls topology generation.
type Config struct {
	Servers        int      // number of content servers (>0)
	UsersPerServer int      // end-users attached to each server (>=0)
	CitiesPerISP   int      // metros per ISP; default 4
	Regions        []Region // default DefaultRegions()
	ProviderLoc    geo.Point
	Seed           int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Servers <= 0 {
		return c, fmt.Errorf("topology: Servers must be positive, got %d", c.Servers)
	}
	if c.UsersPerServer < 0 {
		return c, fmt.Errorf("topology: UsersPerServer must be >= 0, got %d", c.UsersPerServer)
	}
	if c.CitiesPerISP <= 0 {
		c.CitiesPerISP = 4
	}
	if len(c.Regions) == 0 {
		c.Regions = DefaultRegions()
	}
	var zero geo.Point
	if c.ProviderLoc == zero {
		// Atlanta, as in the paper's PlanetLab deployment (Section 4).
		c.ProviderLoc = geo.Point{Lat: 33.749, Lon: -84.388}
	}
	return c, nil
}

// Topology is a generated CDN layout.
type Topology struct {
	Provider Node
	Servers  []Node
	// Users[i] are the end-users attached to Servers[i].
	Users [][]Node
	// cities holds the metro coordinates, indexed by Node.City.
	cities []cityInfo
}

type cityInfo struct {
	loc geo.Point
	isp int
}

// Generate builds a topology. Servers are placed in cities: each ISP owns
// CitiesPerISP metros inside its region, and servers pick a uniform city of
// a weighted-random region, so co-located servers and ISP clusters both
// arise naturally.
func Generate(cfg Config) (*Topology, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var totalWeight float64
	for _, r := range cfg.Regions {
		if r.Weight < 0 || r.ISPCount <= 0 {
			return nil, fmt.Errorf("topology: bad region %q", r.Name)
		}
		totalWeight += r.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("topology: regions have zero total weight")
	}

	// Build the city list: ISPCount*CitiesPerISP metros per region.
	var cities []cityInfo
	regionCityIdx := make([][]int, len(cfg.Regions))
	for ri, r := range cfg.Regions {
		for i := 0; i < r.ISPCount; i++ {
			for c := 0; c < cfg.CitiesPerISP; c++ {
				loc := geo.Point{
					Lat: r.LatMin + rng.Float64()*(r.LatMax-r.LatMin),
					Lon: r.LonMin + rng.Float64()*(r.LonMax-r.LonMin),
				}
				regionCityIdx[ri] = append(regionCityIdx[ri], len(cities))
				cities = append(cities, cityInfo{loc: loc, isp: r.ISPBase + i})
			}
		}
	}

	topo := &Topology{
		Provider: Node{ID: "provider", Kind: KindProvider, Loc: cfg.ProviderLoc, ISP: -1, City: -1},
		Servers:  make([]Node, 0, cfg.Servers),
		Users:    make([][]Node, cfg.Servers),
		cities:   cities,
	}

	for i := 0; i < cfg.Servers; i++ {
		ri := pickRegion(rng, cfg.Regions, totalWeight)
		ci := regionCityIdx[ri][rng.Intn(len(regionCityIdx[ri]))]
		city := cities[ci]
		topo.Servers = append(topo.Servers, Node{
			ID:   fmt.Sprintf("server-%04d", i),
			Kind: KindServer,
			Loc:  city.loc,
			ISP:  city.isp,
			City: ci,
		})
	}

	for i, s := range topo.Servers {
		users := make([]Node, 0, cfg.UsersPerServer)
		for u := 0; u < cfg.UsersPerServer; u++ {
			// Users sit near their server with small geographic spread.
			loc := geo.Point{
				Lat: clampLat(s.Loc.Lat + rng.NormFloat64()*0.3),
				Lon: wrapLon(s.Loc.Lon + rng.NormFloat64()*0.3),
			}
			users = append(users, Node{
				ID:   fmt.Sprintf("user-%04d-%02d", i, u),
				Kind: KindUser,
				Loc:  loc,
				ISP:  s.ISP,
				City: s.City,
			})
		}
		topo.Users[i] = users
	}
	return topo, nil
}

func pickRegion(rng *rand.Rand, regions []Region, total float64) int {
	x := rng.Float64() * total
	for i, r := range regions {
		x -= r.Weight
		if x < 0 {
			return i
		}
	}
	return len(regions) - 1
}

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon >= 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Cluster is a set of server indices grouped by some affinity.
type Cluster struct {
	Key     string // human-readable label (city id, ISP id, Hilbert bucket)
	Members []int  // indices into Topology.Servers
}

// LocationClusters groups servers that share exact coordinates (the same
// city), matching the paper's same-longitude-and-latitude clustering.
func (t *Topology) LocationClusters() []Cluster {
	return t.clusterBy(func(n Node) string { return fmt.Sprintf("city-%d", n.City) })
}

// ISPClusters groups servers by ISP (Section 3.4.3).
func (t *Topology) ISPClusters() []Cluster {
	return t.clusterBy(func(n Node) string { return fmt.Sprintf("isp-%d", n.ISP) })
}

func (t *Topology) clusterBy(key func(Node) string) []Cluster {
	byKey := make(map[string][]int)
	for i, s := range t.Servers {
		k := key(s)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Cluster, 0, len(keys))
	for _, k := range keys {
		out = append(out, Cluster{Key: k, Members: byKey[k]})
	}
	return out
}

// HilbertClusters groups servers into at most maxClusters buckets of
// near-equal size by sorting on Hilbert curve index, the scheme the paper
// adopts from ref [39] for supernode grouping.
func (t *Topology) HilbertClusters(maxClusters int) ([]Cluster, error) {
	if maxClusters <= 0 {
		return nil, fmt.Errorf("topology: maxClusters must be positive, got %d", maxClusters)
	}
	h, err := geo.NewHilbert(9)
	if err != nil {
		return nil, err
	}
	type si struct {
		idx int
		d   uint64
	}
	order := make([]si, 0, len(t.Servers))
	for i, s := range t.Servers {
		d, err := h.PointIndex(s.Loc)
		if err != nil {
			return nil, fmt.Errorf("topology: server %s: %w", s.ID, err)
		}
		order = append(order, si{idx: i, d: d})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].idx < order[j].idx
	})
	if maxClusters > len(order) && len(order) > 0 {
		maxClusters = len(order)
	}
	out := make([]Cluster, 0, maxClusters)
	n := len(order)
	for c := 0; c < maxClusters; c++ {
		lo := c * n / maxClusters
		hi := (c + 1) * n / maxClusters
		if lo == hi {
			continue
		}
		cl := Cluster{Key: fmt.Sprintf("hilbert-%02d", c)}
		for _, s := range order[lo:hi] {
			cl.Members = append(cl.Members, s.idx)
		}
		out = append(out, cl)
	}
	return out, nil
}

// ElectSupernode picks the cluster member closest to the cluster's geographic
// centroid, a deterministic stand-in for the paper's random supernode choice
// that keeps runs reproducible.
func (t *Topology) ElectSupernode(c Cluster) (int, error) {
	if len(c.Members) == 0 {
		return 0, fmt.Errorf("topology: empty cluster %q", c.Key)
	}
	var latSum, lonSum float64
	for _, m := range c.Members {
		latSum += t.Servers[m].Loc.Lat
		lonSum += t.Servers[m].Loc.Lon
	}
	centroid := geo.Point{Lat: latSum / float64(len(c.Members)), Lon: lonSum / float64(len(c.Members))}
	best := c.Members[0]
	bestD := geo.DistanceKm(t.Servers[best].Loc, centroid)
	for _, m := range c.Members[1:] {
		if d := geo.DistanceKm(t.Servers[m].Loc, centroid); d < bestD {
			best, bestD = m, d
		}
	}
	return best, nil
}
