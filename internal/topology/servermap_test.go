package topology

import (
	"strings"
	"testing"
)

func sampleServerMap() *ServerMap {
	return &ServerMap{
		Provider: SitePoint{Lat: 33.749, Lon: -84.388},
		Sites: []Site{
			{Lat: 40.7, Lon: -74.0, ISP: 0, Servers: []string{"server-0000", "server-0001"}},
			{Lat: 51.5, Lon: -0.1, ISP: 12, Servers: []string{"server-0002"}},
		},
	}
}

func TestServerMapRoundTrip(t *testing.T) {
	m := sampleServerMap()
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseServerMap(data)
	if err != nil {
		t.Fatalf("ParseServerMap: %v", err)
	}
	again, err := got.Marshal()
	if err != nil {
		t.Fatalf("second Marshal: %v", err)
	}
	if string(data) != string(again) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", data, again)
	}
}

func TestServerMapStrictParse(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"unknown field", `{"provider":{"lat":0,"lon":0},"sites":[{"lat":0,"lon":0,"isp":0,"servers":["a"]}],"extra":1}`, "unknown field"},
		{"trailing data", `{"provider":{"lat":0,"lon":0},"sites":[{"lat":0,"lon":0,"isp":0,"servers":["a"]}]} {}`, "trailing data"},
		{"no sites", `{"provider":{"lat":0,"lon":0},"sites":[]}`, "no sites"},
		{"empty site", `{"provider":{"lat":0,"lon":0},"sites":[{"lat":0,"lon":0,"isp":0,"servers":[]}]}`, "no servers"},
		{"dup server", `{"provider":{"lat":0,"lon":0},"sites":[{"lat":0,"lon":0,"isp":0,"servers":["a","a"]}]}`, "duplicate server"},
		{"bad lat", `{"provider":{"lat":99,"lon":0},"sites":[{"lat":0,"lon":0,"isp":0,"servers":["a"]}]}`, "invalid location"},
		{"negative isp", `{"provider":{"lat":0,"lon":0},"sites":[{"lat":0,"lon":0,"isp":-1,"servers":["a"]}]}`, "negative isp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseServerMap([]byte(tc.input))
			if err == nil {
				t.Fatal("parse accepted invalid map")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestServerMapTopology(t *testing.T) {
	m := sampleServerMap()
	topo, err := m.Topology()
	if err != nil {
		t.Fatalf("Topology: %v", err)
	}
	if got, want := len(topo.Servers), 3; got != want {
		t.Fatalf("server count %d, want %d", got, want)
	}
	if topo.Provider.Loc != m.Provider.Point() {
		t.Errorf("provider at %v, want %v", topo.Provider.Loc, m.Provider.Point())
	}
	// Site-major order, city = site index, users empty but present.
	wantIDs := []string{"server-0000", "server-0001", "server-0002"}
	for i, id := range wantIDs {
		if topo.Servers[i].ID != id {
			t.Errorf("server %d is %q, want %q", i, topo.Servers[i].ID, id)
		}
	}
	if topo.Servers[0].City != 0 || topo.Servers[2].City != 1 {
		t.Errorf("city indices %d/%d, want 0/1", topo.Servers[0].City, topo.Servers[2].City)
	}
	if topo.Servers[2].ISP != 12 {
		t.Errorf("server 2 ISP %d, want 12", topo.Servers[2].ISP)
	}
	if len(topo.Users) != 3 {
		t.Fatalf("users slice length %d, want 3", len(topo.Users))
	}
	// The clustering primitives must work on a materialized map.
	if got := len(topo.LocationClusters()); got != 2 {
		t.Errorf("location clusters %d, want 2", got)
	}
	if _, err := topo.HilbertClusters(2); err != nil {
		t.Errorf("HilbertClusters: %v", err)
	}
}
