package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Built-in named scenarios, expressed with horizon fractions so they fit any
// run length. Victim counts scale with the deployment via Frac fields.
var scenarios = map[string]func() Spec{
	// crash: permanent crash-stop of an eighth of the fleet mid-run.
	"crash": func() Spec {
		return Spec{RandomCrashes: &RandomCrashes{Frac: 0.125}}
	},
	// churn: crash-recovery — the same eighth fails but returns after a
	// short downtime with state loss, exercising re-join and re-sync.
	"churn": func() Spec {
		return Spec{RandomCrashes: &RandomCrashes{Frac: 0.125, RecoverAfter: Duration(3 * time.Minute)}}
	},
	// outage: the provider is unreachable for 15% of the run, starting at
	// 40% — polls, fetches, and lease renewals all time out.
	"outage": func() Spec {
		return Spec{ProviderOutages: []Window{{StartFrac: 0.4, DurFrac: 0.15}}}
	},
	// partition: four random ISPs are cut off from the rest for the middle
	// fifth of the run (the paper's inter-ISP disruption, Section 3.4.3).
	"partition": func() Spec {
		return Spec{Partitions: []Partition{{StartFrac: 0.4, DurFrac: 0.2, RandomISPs: 4}}}
	},
	// overload: a sixth of the fleet serves 8x slower for the middle
	// quarter of the run (Section 3.4.5: overload inflates staleness
	// without killing the replica).
	"overload": func() Spec {
		return Spec{Overloads: []Overload{{RandomServers: 10, StartFrac: 0.35, DurFrac: 0.25, Factor: 8}}}
	},
	// regional: a correlated European failure — every server within
	// 1500 km of Frankfurt drops at 35% of the run and recovers after 4
	// minutes.
	"regional": func() Spec {
		return Spec{Regional: []Regional{{
			Lat: 50.11, Lon: 8.68, RadiusKm: 1500,
			AtFrac: 0.35, RecoverAfter: Duration(4 * time.Minute),
		}}}
	},
	// mixed: churn, a provider outage, and a partition together — the
	// kitchen-sink robustness scenario.
	"mixed": func() Spec {
		return Spec{
			RandomCrashes:   &RandomCrashes{Frac: 0.1, RecoverAfter: Duration(3 * time.Minute)},
			ProviderOutages: []Window{{StartFrac: 0.7, DurFrac: 0.1}},
			Partitions:      []Partition{{StartFrac: 0.25, DurFrac: 0.15, RandomISPs: 3}},
		}
	},
	// provider-storm: a rolling outage wave across every federated
	// provider — each down for 20% of the run starting at 35%, staggered
	// 30 s apart, so the windows overlap into an all-providers-down
	// blackout that only serve-stale degradation survives. With one
	// provider it degenerates to a plain outage.
	"provider-storm": func() Spec {
		return Spec{ProviderStorm: &ProviderStorm{
			StartFrac: 0.35, DurFrac: 0.2, Stagger: Duration(30 * time.Second),
		}}
	},
	// broker-flap: the primary provider bounces down/up six times on a
	// 2-minute cycle (45 s down each) from 30% of the run — the rapid
	// flapping the meta-CDN broker's hysteresis exists to absorb.
	"broker-flap": func() Spec {
		return Spec{ProviderFlaps: []ProviderFlap{{
			Provider: 0, Count: 6, StartFrac: 0.3,
			Period: Duration(2 * time.Minute), Downtime: Duration(45 * time.Second),
		}}}
	},
}

// Scenario returns a built-in scenario by name.
func Scenario(name string) (Spec, error) {
	mk, ok := scenarios[name]
	if !ok {
		return Spec{}, fmt.Errorf("fault: unknown scenario %q (have %s)", name, strings.Join(ScenarioNames(), ", "))
	}
	return mk(), nil
}

// ScenarioNames lists the built-in scenarios, sorted.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
