// Package fault declares and compiles deterministic fault scenarios for the
// CDN simulation: crash-stop and crash-recovery of content servers, provider
// outage windows, ISP-level network partitions, transient server overload,
// and correlated regional failures around a geographic point.
//
// A Spec is declarative — it names what goes wrong and when, either at
// absolute virtual times or as fractions of the run horizon — and Compile
// turns it into a sorted event schedule against a concrete deployment
// (server count, locations, ISPs, horizon). Random draws (victim selection,
// in-window timing) come from the caller's seeded RNG, so the same spec,
// deployment, and seed always yield the same schedule.
//
// The scenario families mirror the paper's Section 3.4 root causes of
// real-CDN inconsistency: server failure and overload, and inter-ISP
// disruption.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"cdnconsistency/internal/geo"
)

// Duration is a time.Duration that (un)marshals JSON as either a Go
// duration string ("30s", "2m") or a number of seconds.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string ("1m30s").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or plain numbers of seconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(data, &secs); err != nil {
		return fmt.Errorf("fault: duration must be a string or seconds: %s", data)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Crash fails one named server. RecoverAfter == 0 means crash-stop (the
// server never returns); otherwise the server crash-recovers after that
// long, losing its cached content and re-syncing from its parent.
type Crash struct {
	// Server is a 0-based content-server index (matching
	// topology.Topology.Servers order).
	Server int `json:"server"`
	// At is the absolute failure time; AtFrac places it at a fraction of
	// the run horizon instead when At is zero.
	At     Duration `json:"at,omitempty"`
	AtFrac float64  `json:"at_frac,omitempty"`
	// RecoverAfter is the downtime; 0 is a permanent crash-stop.
	RecoverAfter Duration `json:"recover_after,omitempty"`
}

// RandomCrashes fails Count (or ceil(Frac x servers)) distinct random
// servers at uniform random times inside [WindowStart, WindowStart +
// WindowFrac] x horizon.
type RandomCrashes struct {
	Count int     `json:"count,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	// RecoverAfter is the per-server downtime; 0 is crash-stop.
	RecoverAfter Duration `json:"recover_after,omitempty"`
	// WindowStart/WindowFrac bound the failure window as fractions of the
	// horizon; both zero means the middle third of the run.
	WindowStart float64 `json:"window_start,omitempty"`
	WindowFrac  float64 `json:"window_frac,omitempty"`
}

// Window is one provider outage: the provider stops answering polls,
// fetches, and lease renewals, and defers dissemination until it returns.
type Window struct {
	Start     Duration `json:"start,omitempty"`
	StartFrac float64  `json:"start_frac,omitempty"`
	// Duration is the outage length; DurFrac expresses it as a horizon
	// fraction when Duration is zero.
	Duration Duration `json:"duration,omitempty"`
	DurFrac  float64  `json:"dur_frac,omitempty"`
}

// Partition isolates a set of ISPs from the rest of the network for a
// window: messages across the cut are dropped (senders detect the loss only
// via timeouts). ISPs inside the partition still reach each other.
type Partition struct {
	Start     Duration `json:"start,omitempty"`
	StartFrac float64  `json:"start_frac,omitempty"`
	Duration  Duration `json:"duration,omitempty"`
	DurFrac   float64  `json:"dur_frac,omitempty"`
	// ISPs lists the ISP ids cut off; RandomISPs instead samples that many
	// of the deployment's ISPs.
	ISPs       []int `json:"isps,omitempty"`
	RandomISPs int   `json:"random_isps,omitempty"`
}

// Overload inflates one server's service delay (uplink serialization and
// per-message processing) by Factor for a window, modeling transient
// overload that slows, but does not stop, the replica.
type Overload struct {
	// Server is a 0-based server index; RandomServers instead samples that
	// many distinct servers, all overloaded for the same window.
	Server        int      `json:"server,omitempty"`
	RandomServers int      `json:"random_servers,omitempty"`
	Start         Duration `json:"start,omitempty"`
	StartFrac     float64  `json:"start_frac,omitempty"`
	Duration      Duration `json:"duration,omitempty"`
	DurFrac       float64  `json:"dur_frac,omitempty"`
	// Factor multiplies the server's service delay; must be > 1.
	Factor float64 `json:"factor"`
}

// Regional fails servers within RadiusKm of a geographic center — a
// correlated failure (regional power or backbone loss). Frac controls what
// share of the in-radius servers fail (default 1: all of them).
type Regional struct {
	Lat      float64  `json:"lat"`
	Lon      float64  `json:"lon"`
	RadiusKm float64  `json:"radius_km"`
	At       Duration `json:"at,omitempty"`
	AtFrac   float64  `json:"at_frac,omitempty"`
	// RecoverAfter is the downtime; 0 is crash-stop.
	RecoverAfter Duration `json:"recover_after,omitempty"`
	Frac         float64  `json:"frac,omitempty"`
}

// ProviderStorm rolls an outage wave across every federated provider:
// provider k goes down at start + k x stagger, each for the same duration.
// A stagger shorter than duration/(providers-1) overlaps the windows into a
// full all-providers-down blackout — the scenario that exercises
// serve-stale degradation. Against a single-provider deployment the storm
// degenerates to a plain provider outage.
type ProviderStorm struct {
	Start     Duration `json:"start,omitempty"`
	StartFrac float64  `json:"start_frac,omitempty"`
	// Duration is each provider's outage length; DurFrac expresses it as a
	// horizon fraction when Duration is zero.
	Duration Duration `json:"duration,omitempty"`
	DurFrac  float64  `json:"dur_frac,omitempty"`
	// Stagger is the delay between successive providers' failures
	// (0 = all providers drop simultaneously).
	Stagger Duration `json:"stagger,omitempty"`
}

// ProviderFlap bounces one provider down and back up Count times: down at
// start + i x period for downtime each cycle. Rapid flapping is what the
// meta-CDN broker's hysteresis exists to absorb.
type ProviderFlap struct {
	// Provider is the 0-based federated provider index (0 = the primary,
	// also valid for single-provider runs).
	Provider  int      `json:"provider,omitempty"`
	Count     int      `json:"count"`
	Start     Duration `json:"start,omitempty"`
	StartFrac float64  `json:"start_frac,omitempty"`
	// Period is the cycle length; Downtime (the down share of each cycle)
	// must be shorter than it.
	Period   Duration `json:"period"`
	Downtime Duration `json:"downtime"`
}

// Spec is one declarative fault scenario. The zero Spec injects nothing.
type Spec struct {
	Crashes         []Crash        `json:"crashes,omitempty"`
	RandomCrashes   *RandomCrashes `json:"random_crashes,omitempty"`
	ProviderOutages []Window       `json:"provider_outages,omitempty"`
	Partitions      []Partition    `json:"partitions,omitempty"`
	Overloads       []Overload     `json:"overloads,omitempty"`
	Regional        []Regional     `json:"regional,omitempty"`
	ProviderStorm   *ProviderStorm `json:"provider_storm,omitempty"`
	ProviderFlaps   []ProviderFlap `json:"provider_flaps,omitempty"`
}

// Empty reports whether the spec injects no faults at all.
func (s Spec) Empty() bool {
	return len(s.Crashes) == 0 && s.RandomCrashes == nil &&
		len(s.ProviderOutages) == 0 && len(s.Partitions) == 0 &&
		len(s.Overloads) == 0 && len(s.Regional) == 0 &&
		s.ProviderStorm == nil && len(s.ProviderFlaps) == 0
}

// ParseSpec decodes a JSON scenario. Unknown fields are rejected so typos
// in hand-written scenario files fail loudly, and the decoded spec must
// pass Validate.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fault: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("fault: parse spec: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// checkPoint validates one at/at_frac pair: the absolute time non-negative,
// the fraction inside [0, 1].
func checkPoint(what string, at Duration, frac float64) error {
	if at.D() < 0 {
		return fmt.Errorf("%s: negative time %v", what, at.D())
	}
	if frac < 0 || frac > 1 {
		return fmt.Errorf("%s: fraction %v outside [0, 1]", what, frac)
	}
	return nil
}

// checkWindow validates a start/duration window declared either absolutely
// or as horizon fractions.
func checkWindow(what string, start Duration, startFrac float64, dur Duration, durFrac float64) error {
	if err := checkPoint(what+" start", start, startFrac); err != nil {
		return err
	}
	if err := checkPoint(what+" duration", dur, durFrac); err != nil {
		return err
	}
	return nil
}

// Validate checks the deployment-independent invariants of the spec:
// non-negative times and counts, fractions within range, windows and
// factors structurally sane. Deployment-dependent checks (victim indices
// against the server count, windows against the horizon) stay in Compile,
// which knows the concrete environment. A spec that fails Validate can
// never compile; one that passes may still be rejected by Compile.
func (s Spec) Validate() error {
	for i, cr := range s.Crashes {
		if cr.Server < 0 {
			return fmt.Errorf("fault: crash %d: negative server index %d", i, cr.Server)
		}
		if err := checkPoint(fmt.Sprintf("fault: crash %d", i), cr.At, cr.AtFrac); err != nil {
			return err
		}
		if cr.RecoverAfter.D() < 0 {
			return fmt.Errorf("fault: crash %d: negative recover_after %v", i, cr.RecoverAfter.D())
		}
	}
	if rc := s.RandomCrashes; rc != nil {
		if rc.Count < 0 {
			return fmt.Errorf("fault: random_crashes: negative count %d", rc.Count)
		}
		if rc.Frac < 0 || rc.Frac > 1 {
			return fmt.Errorf("fault: random_crashes: frac %v outside [0, 1]", rc.Frac)
		}
		if rc.Count == 0 && rc.Frac == 0 {
			return fmt.Errorf("fault: random_crashes: count and frac both unset")
		}
		if rc.RecoverAfter.D() < 0 {
			return fmt.Errorf("fault: random_crashes: negative recover_after %v", rc.RecoverAfter.D())
		}
		start, frac := rc.WindowStart, rc.WindowFrac
		if start != 0 || frac != 0 {
			if start < 0 || start >= 1 {
				return fmt.Errorf("fault: random_crashes: window_start %v outside [0, 1)", start)
			}
			if frac <= 0 || start+frac > 1 {
				return fmt.Errorf("fault: random_crashes: window [%v, %v+%v] outside (0, 1]", start, start, frac)
			}
		}
	}
	for i, w := range s.ProviderOutages {
		if err := checkWindow(fmt.Sprintf("fault: provider_outage %d", i), w.Start, w.StartFrac, w.Duration, w.DurFrac); err != nil {
			return err
		}
	}
	for i, p := range s.Partitions {
		if err := checkWindow(fmt.Sprintf("fault: partition %d", i), p.Start, p.StartFrac, p.Duration, p.DurFrac); err != nil {
			return err
		}
		for _, isp := range p.ISPs {
			if isp < 0 {
				return fmt.Errorf("fault: partition %d: negative isp %d", i, isp)
			}
		}
		if p.RandomISPs < 0 {
			return fmt.Errorf("fault: partition %d: negative random_isps %d", i, p.RandomISPs)
		}
		if len(p.ISPs) == 0 && p.RandomISPs == 0 {
			return fmt.Errorf("fault: partition %d: isps and random_isps both unset", i)
		}
	}
	for i, o := range s.Overloads {
		if o.Server < 0 {
			return fmt.Errorf("fault: overload %d: negative server index %d", i, o.Server)
		}
		if o.RandomServers < 0 {
			return fmt.Errorf("fault: overload %d: negative random_servers %d", i, o.RandomServers)
		}
		if err := checkWindow(fmt.Sprintf("fault: overload %d", i), o.Start, o.StartFrac, o.Duration, o.DurFrac); err != nil {
			return err
		}
		if o.Factor <= 1 {
			return fmt.Errorf("fault: overload %d: factor %v must be > 1", i, o.Factor)
		}
	}
	for i, r := range s.Regional {
		if r.RadiusKm <= 0 {
			return fmt.Errorf("fault: regional %d: non-positive radius %v km", i, r.RadiusKm)
		}
		if err := checkPoint(fmt.Sprintf("fault: regional %d", i), r.At, r.AtFrac); err != nil {
			return err
		}
		if r.RecoverAfter.D() < 0 {
			return fmt.Errorf("fault: regional %d: negative recover_after %v", i, r.RecoverAfter.D())
		}
		if r.Frac < 0 || r.Frac > 1 {
			return fmt.Errorf("fault: regional %d: frac %v outside [0, 1]", i, r.Frac)
		}
	}
	if ps := s.ProviderStorm; ps != nil {
		if err := checkWindow("fault: provider_storm", ps.Start, ps.StartFrac, ps.Duration, ps.DurFrac); err != nil {
			return err
		}
		if ps.Stagger.D() < 0 {
			return fmt.Errorf("fault: provider_storm: negative stagger %v", ps.Stagger.D())
		}
	}
	for i, f := range s.ProviderFlaps {
		if f.Provider < 0 {
			return fmt.Errorf("fault: provider_flap %d: negative provider index %d", i, f.Provider)
		}
		if f.Count <= 0 {
			return fmt.Errorf("fault: provider_flap %d: count %d must be > 0", i, f.Count)
		}
		if err := checkPoint(fmt.Sprintf("fault: provider_flap %d", i), f.Start, f.StartFrac); err != nil {
			return err
		}
		if f.Period.D() <= 0 {
			return fmt.Errorf("fault: provider_flap %d: non-positive period %v", i, f.Period.D())
		}
		if f.Downtime.D() <= 0 || f.Downtime.D() >= f.Period.D() {
			return fmt.Errorf("fault: provider_flap %d: downtime %v must lie inside (0, period %v)", i, f.Downtime.D(), f.Period.D())
		}
	}
	return nil
}

// distanceWithin reports whether a server location lies inside the regional
// failure radius.
func distanceWithin(r Regional, loc geo.Point) bool {
	return geo.DistanceKm(geo.Point{Lat: r.Lat, Lon: r.Lon}, loc) <= r.RadiusKm
}
