package fault

import (
	"math/rand"
	"testing"
	"time"
)

// FuzzCompile feeds arbitrary bytes through ParseSpec and, when they decode,
// compiles the spec against a small deployment. The contract under fuzzing:
// never panic, and any schedule that compiles is time-sorted with every
// recoverable down event paired with a later up event.
func FuzzCompile(f *testing.F) {
	f.Add([]byte(`{"crashes": [{"server": 1, "at": "5m", "recover_after": "2m"}]}`))
	f.Add([]byte(`{"random_crashes": {"frac": 0.5, "recover_after": 30}}`))
	f.Add([]byte(`{"provider_outages": [{"start_frac": 0.4, "dur_frac": 0.2}]}`))
	f.Add([]byte(`{"partitions": [{"start_frac": 0.1, "dur_frac": 0.3, "isps": [0, 2]}]}`))
	f.Add([]byte(`{"overloads": [{"random_servers": 2, "start_frac": 0.2, "dur_frac": 0.1, "factor": 4}]}`))
	f.Add([]byte(`{"regional": [{"lat": 10, "lon": 20, "radius_km": 5000, "at_frac": 0.5}]}`))
	f.Add([]byte(`{"provider_storm": {"start_frac": 0.35, "dur_frac": 0.2, "stagger": "30s"}}`))
	f.Add([]byte(`{"provider_flaps": [{"provider": 0, "count": 6, "start_frac": 0.3, "period": "2m", "downtime": "45s"}]}`))

	env := testEnv(8)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		evs, err := Compile(spec, env, rand.New(rand.NewSource(1)))
		if err != nil {
			return
		}
		open := make(map[int]int) // server -> pending down events awaiting recovery
		for i, e := range evs {
			if i > 0 && e.At < evs[i-1].At {
				t.Fatalf("schedule unsorted at %d: %+v", i, evs)
			}
			if e.At < 0 {
				t.Fatalf("negative event time: %+v", e)
			}
			switch e.Op {
			case OpServerDown:
				open[e.Server]++
			case OpServerUp:
				open[e.Server]--
				if open[e.Server] < 0 {
					t.Fatalf("server %d recovered before crashing: %+v", e.Server, evs)
				}
			case OpOverloadStart:
				if e.Factor <= 1 {
					t.Fatalf("overload with factor %v compiled: %+v", e.Factor, e)
				}
			case OpPartitionStart, OpPartitionEnd:
				if len(e.ISPs) == 0 {
					t.Fatalf("partition event with no ISPs: %+v", e)
				}
			}
			if e.At > env.Horizon+24*time.Hour {
				t.Fatalf("event absurdly far past horizon: %+v", e)
			}
		}
	})
}
