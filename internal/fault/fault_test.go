package fault

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/geo"
)

func testEnv(n int) Env {
	locs := make([]geo.Point, n)
	isps := make([]int, n)
	for i := range locs {
		locs[i] = geo.Point{Lat: float64(i % 60), Lon: float64(i * 2 % 120)}
		isps[i] = i % 5
	}
	return Env{Servers: n, Locs: locs, ISPs: isps, Horizon: 30 * time.Minute}
}

func compileOK(t *testing.T, spec Spec, env Env, seed int64) []Event {
	t.Helper()
	evs, err := Compile(spec, env, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return evs
}

func TestCompileCrashAndRecovery(t *testing.T) {
	spec := Spec{Crashes: []Crash{
		{Server: 3, At: Duration(5 * time.Minute), RecoverAfter: Duration(2 * time.Minute)},
		{Server: 7, At: Duration(10 * time.Minute)},
	}}
	evs := compileOK(t, spec, testEnv(10), 1)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(evs), evs)
	}
	if evs[0].Op != OpServerDown || evs[0].Server != 3 || evs[0].At != 5*time.Minute {
		t.Errorf("first event %+v", evs[0])
	}
	if evs[1].Op != OpServerUp || evs[1].Server != 3 || evs[1].At != 7*time.Minute {
		t.Errorf("second event %+v", evs[1])
	}
	if evs[2].Op != OpServerDown || evs[2].Server != 7 {
		t.Errorf("third event %+v", evs[2])
	}
}

func TestCompileFractionalTimes(t *testing.T) {
	spec := Spec{ProviderOutages: []Window{{StartFrac: 0.5, DurFrac: 0.1}}}
	env := testEnv(4)
	evs := compileOK(t, spec, env, 1)
	if len(evs) != 2 {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].At != env.Horizon/2 {
		t.Errorf("outage start %v, want %v", evs[0].At, env.Horizon/2)
	}
	if evs[1].At != env.Horizon/2+env.Horizon/10 {
		t.Errorf("outage end %v", evs[1].At)
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := Spec{
		RandomCrashes: &RandomCrashes{Frac: 0.3, RecoverAfter: Duration(time.Minute)},
		Partitions:    []Partition{{StartFrac: 0.4, DurFrac: 0.2, RandomISPs: 2}},
		Overloads:     []Overload{{RandomServers: 3, StartFrac: 0.2, DurFrac: 0.3, Factor: 4}},
	}
	env := testEnv(20)
	a := compileOK(t, spec, env, 42)
	b := compileOK(t, spec, env, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed compiled different schedules")
	}
	c := compileOK(t, spec, env, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds compiled identical random schedules")
	}
}

func TestCompileRandomCrashesDefaultsToMiddleThird(t *testing.T) {
	spec := Spec{RandomCrashes: &RandomCrashes{Count: 8, RecoverAfter: Duration(time.Minute)}}
	env := testEnv(16)
	evs := compileOK(t, spec, env, 5)
	downs := 0
	for _, e := range evs {
		if e.Op != OpServerDown {
			continue
		}
		downs++
		if e.At < env.Horizon/3 || e.At > 2*env.Horizon/3 {
			t.Errorf("crash at %v outside middle third of %v", e.At, env.Horizon)
		}
	}
	if downs != 8 {
		t.Errorf("%d crashes, want 8", downs)
	}
}

func TestCompileRandomCrashVictimsDistinct(t *testing.T) {
	spec := Spec{RandomCrashes: &RandomCrashes{Frac: 1}}
	evs := compileOK(t, spec, testEnv(12), 9)
	seen := make(map[int]bool)
	for _, e := range evs {
		if seen[e.Server] {
			t.Fatalf("server %d crashed twice", e.Server)
		}
		seen[e.Server] = true
	}
	if len(seen) != 12 {
		t.Errorf("%d distinct victims, want 12", len(seen))
	}
}

func TestCompileRegionalSelectsByRadius(t *testing.T) {
	env := Env{
		Servers: 4,
		Locs: []geo.Point{
			{Lat: 50.0, Lon: 8.6},   // near Frankfurt
			{Lat: 50.2, Lon: 8.9},   // near Frankfurt
			{Lat: 35.6, Lon: 139.7}, // Tokyo
			{Lat: 33.7, Lon: -84.4}, // Atlanta
		},
		Horizon: 20 * time.Minute,
	}
	spec := Spec{Regional: []Regional{{
		Lat: 50.11, Lon: 8.68, RadiusKm: 300,
		At: Duration(5 * time.Minute), RecoverAfter: Duration(time.Minute),
	}}}
	evs := compileOK(t, spec, env, 3)
	victims := make(map[int]bool)
	for _, e := range evs {
		if e.Op == OpServerDown {
			victims[e.Server] = true
		}
	}
	if !victims[0] || !victims[1] || victims[2] || victims[3] {
		t.Errorf("victims = %v, want exactly {0, 1}", victims)
	}
}

func TestCompilePartitionExplicitAndRandomISPs(t *testing.T) {
	spec := Spec{Partitions: []Partition{
		{Start: Duration(time.Minute), Duration: Duration(2 * time.Minute), ISPs: []int{1, 3}},
		{StartFrac: 0.5, DurFrac: 0.1, RandomISPs: 2},
	}}
	evs := compileOK(t, spec, testEnv(10), 2)
	if len(evs) != 4 {
		t.Fatalf("events: %+v", evs)
	}
	var starts []Event
	for _, e := range evs {
		if e.Op == OpPartitionStart {
			starts = append(starts, e)
		}
	}
	if len(starts) != 2 {
		t.Fatalf("starts: %+v", starts)
	}
	if !reflect.DeepEqual(starts[0].ISPs, []int{1, 3}) {
		t.Errorf("explicit ISPs = %v", starts[0].ISPs)
	}
	if len(starts[1].ISPs) != 2 {
		t.Errorf("random ISPs = %v, want 2", starts[1].ISPs)
	}
	if starts[0].Group == starts[1].Group {
		t.Error("concurrent partitions share a group id")
	}
}

func TestCompileEventsSorted(t *testing.T) {
	spec := Spec{
		Crashes:         []Crash{{Server: 5, AtFrac: 0.9}, {Server: 1, AtFrac: 0.1}},
		ProviderOutages: []Window{{StartFrac: 0.5, DurFrac: 0.2}},
	}
	evs := compileOK(t, spec, testEnv(8), 1)
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events unsorted: %+v", evs)
		}
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	env := testEnv(8)
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	bad := []Spec{
		{Crashes: []Crash{{Server: 99, AtFrac: 0.5}}},                                 // server out of range
		{Crashes: []Crash{{Server: -1, AtFrac: 0.5}}},                                 // negative server
		{Crashes: []Crash{{Server: 0, AtFrac: 1.5}}},                                  // fraction above 1
		{Crashes: []Crash{{Server: 0, At: Duration(2 * time.Hour)}}},                  // beyond horizon
		{RandomCrashes: &RandomCrashes{}},                                             // no victims
		{RandomCrashes: &RandomCrashes{Frac: 2}},                                      // frac above 1
		{RandomCrashes: &RandomCrashes{Count: 2, WindowStart: 0.9, WindowFrac: 0.5}},  // window past end
		{ProviderOutages: []Window{{StartFrac: 0.5}}},                                 // zero duration
		{Partitions: []Partition{{StartFrac: 0.1, DurFrac: 0.1}}},                     // no ISPs
		{Overloads: []Overload{{Server: 0, StartFrac: 0.1, DurFrac: 0.1, Factor: 1}}}, // factor <= 1
		{Regional: []Regional{{Lat: 0, Lon: 0, RadiusKm: -5, AtFrac: 0.1}}},           // bad radius
		{Regional: []Regional{{Lat: -89, Lon: 170, RadiusKm: 1, AtFrac: 0.1}}},        // no servers in radius
	}
	for i, spec := range bad {
		if _, err := Compile(spec, env, rng()); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := Compile(Spec{}, Env{Servers: 0, Horizon: time.Minute}, rng()); err == nil {
		t.Error("zero-server env accepted")
	}
	if _, err := Compile(Spec{}, Env{Servers: 1}, rng()); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Compile(Spec{}, testEnv(4), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestParseSpecJSON(t *testing.T) {
	data := []byte(`{
		"crashes": [{"server": 2, "at": "5m", "recover_after": 90}],
		"provider_outages": [{"start_frac": 0.4, "dur_frac": 0.15}],
		"partitions": [{"start": "8m", "duration": "3m", "isps": [12, 13]}],
		"overloads": [{"random_servers": 4, "start_frac": 0.3, "dur_frac": 0.2, "factor": 6}]
	}`)
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.Crashes) != 1 || spec.Crashes[0].At.D() != 5*time.Minute {
		t.Errorf("crashes = %+v", spec.Crashes)
	}
	if spec.Crashes[0].RecoverAfter.D() != 90*time.Second {
		t.Errorf("numeric seconds not parsed: %v", spec.Crashes[0].RecoverAfter.D())
	}
	if len(spec.Partitions) != 1 || spec.Partitions[0].Duration.D() != 3*time.Minute {
		t.Errorf("partitions = %+v", spec.Partitions)
	}
	if spec.Empty() {
		t.Error("parsed spec reported empty")
	}
}

func TestParseSpecRejectsUnknownFieldsAndBadDurations(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"crashs": []}`)); err == nil {
		t.Error("typo field accepted")
	}
	if _, err := ParseSpec([]byte(`{"crashes": [{"server": 0, "at": "fast"}]}`)); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := ParseSpec([]byte(`{"crashes": [{"server": 0, "at": []}]}`)); err == nil {
		t.Error("array duration accepted")
	}
}

func TestScenarioNamesResolve(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no scenarios")
	}
	env := testEnv(40)
	for _, name := range names {
		spec, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if spec.Empty() {
			t.Errorf("scenario %q is empty", name)
		}
		if name == "regional" {
			continue // needs real-geo locations; covered in cdn tests
		}
		if _, err := Compile(spec, env, rand.New(rand.NewSource(1))); err != nil {
			t.Errorf("scenario %q does not compile: %v", name, err)
		}
	}
	if _, err := Scenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestSpecRoundTripsThroughJSON(t *testing.T) {
	spec, err := Scenario("mixed")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip changed spec:\n%+v\n%+v", spec, back)
	}
}

func TestSpecValidate(t *testing.T) {
	ok := []Spec{
		{},
		{Crashes: []Crash{{Server: 3, AtFrac: 0.5, RecoverAfter: Duration(time.Minute)}}},
		{RandomCrashes: &RandomCrashes{Frac: 0.125}},
		{Partitions: []Partition{{StartFrac: 0.4, DurFrac: 0.2, RandomISPs: 4}}},
		{Overloads: []Overload{{RandomServers: 2, StartFrac: 0.3, DurFrac: 0.2, Factor: 8}}},
		{Regional: []Regional{{Lat: 40, Lon: -74, RadiusKm: 500, AtFrac: 0.5}}},
		{ProviderStorm: &ProviderStorm{StartFrac: 0.2, DurFrac: 0.1, Stagger: Duration(time.Minute)}},
		{ProviderFlaps: []ProviderFlap{{Count: 3, Period: Duration(time.Minute), Downtime: Duration(10 * time.Second)}}},
	}
	for i, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		name string
		spec Spec
		want string
	}{
		{"negative crash server", Spec{Crashes: []Crash{{Server: -1}}}, "negative server"},
		{"crash frac above 1", Spec{Crashes: []Crash{{AtFrac: 1.5}}}, "outside [0, 1]"},
		{"negative recover", Spec{Crashes: []Crash{{RecoverAfter: Duration(-time.Second)}}}, "negative recover_after"},
		{"random crashes unset", Spec{RandomCrashes: &RandomCrashes{}}, "count and frac both unset"},
		{"random crashes frac", Spec{RandomCrashes: &RandomCrashes{Frac: 2}}, "outside [0, 1]"},
		{"random crashes window", Spec{RandomCrashes: &RandomCrashes{Count: 1, WindowStart: 0.9, WindowFrac: 0.5}}, "outside (0, 1]"},
		{"outage negative start", Spec{ProviderOutages: []Window{{Start: Duration(-time.Second)}}}, "negative time"},
		{"partition no isps", Spec{Partitions: []Partition{{DurFrac: 0.1}}}, "both unset"},
		{"partition negative isp", Spec{Partitions: []Partition{{ISPs: []int{-3}}}}, "negative isp"},
		{"overload factor", Spec{Overloads: []Overload{{Factor: 1}}}, "must be > 1"},
		{"regional radius", Spec{Regional: []Regional{{RadiusKm: 0}}}, "non-positive radius"},
		{"storm stagger", Spec{ProviderStorm: &ProviderStorm{Stagger: Duration(-time.Second)}}, "negative stagger"},
		{"flap count", Spec{ProviderFlaps: []ProviderFlap{{Period: Duration(time.Minute), Downtime: Duration(time.Second)}}}, "count"},
		{"flap downtime", Spec{ProviderFlaps: []ProviderFlap{{Count: 1, Period: Duration(time.Minute), Downtime: Duration(time.Minute)}}}, "downtime"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuiltinScenariosValidate(t *testing.T) {
	for _, name := range ScenarioNames() {
		s, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("built-in scenario %q fails Validate: %v", name, err)
		}
	}
}

func TestParseSpecRejectsTrailingData(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"crashes":[{"server":0}]} {}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("want trailing-data error, got %v", err)
	}
}
