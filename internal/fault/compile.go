package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/geo"
)

// Env describes the deployment a spec compiles against.
type Env struct {
	// Servers is the content-server count; server indices are 0-based.
	Servers int
	// Locs are per-server locations (regional failures); may be nil when
	// the spec has no regional entries.
	Locs []geo.Point
	// ISPs are per-server ISP ids (random partition sampling); may be nil
	// when the spec has no RandomISPs partitions.
	ISPs []int
	// Horizon is the run length; fractional times resolve against it.
	Horizon time.Duration
	// Providers is the federated provider count; 0 means the classic
	// single origin. Provider storms roll across all of them and flap
	// targets compile against this bound.
	Providers int
}

// Op is a compiled fault event type.
type Op int

// Compiled event types. Down/Start events always have a matching Up/End
// event unless the fault is permanent (crash-stop).
const (
	OpServerDown Op = iota + 1
	OpServerUp
	OpProviderDown
	OpProviderUp
	OpPartitionStart
	OpPartitionEnd
	OpOverloadStart
	OpOverloadEnd
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpServerDown:
		return "server-down"
	case OpServerUp:
		return "server-up"
	case OpProviderDown:
		return "provider-down"
	case OpProviderUp:
		return "provider-up"
	case OpPartitionStart:
		return "partition-start"
	case OpPartitionEnd:
		return "partition-end"
	case OpOverloadStart:
		return "overload-start"
	case OpOverloadEnd:
		return "overload-end"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one compiled fault transition.
type Event struct {
	At time.Duration
	Op Op
	// Server is the 0-based server index for server/overload ops.
	Server int
	// ISPs is the partitioned ISP set for partition ops.
	ISPs []int
	// Group distinguishes concurrent partitions (partition ops only).
	Group int
	// Factor is the service-delay multiplier (overload ops only).
	Factor float64
	// Provider is the 0-based federated provider index for provider ops
	// (always 0 outside a federation).
	Provider int
}

// Compile expands a spec into a time-sorted event schedule. Random draws
// (victims, in-window times) come from rng, so identical (spec, env, seed)
// triples produce identical schedules. Compile validates as it goes and
// rejects out-of-range servers, bad fractions, and non-positive windows.
func Compile(spec Spec, env Env, rng *rand.Rand) ([]Event, error) {
	if env.Servers <= 0 {
		return nil, fmt.Errorf("fault: env has %d servers", env.Servers)
	}
	if env.Horizon <= 0 {
		return nil, fmt.Errorf("fault: non-positive horizon %v", env.Horizon)
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	c := &compiler{env: env, rng: rng}

	for i, cr := range spec.Crashes {
		if err := c.crash(cr); err != nil {
			return nil, fmt.Errorf("fault: crashes[%d]: %w", i, err)
		}
	}
	if spec.RandomCrashes != nil {
		if err := c.randomCrashes(*spec.RandomCrashes); err != nil {
			return nil, fmt.Errorf("fault: random_crashes: %w", err)
		}
	}
	for i, w := range spec.ProviderOutages {
		if err := c.outage(w); err != nil {
			return nil, fmt.Errorf("fault: provider_outages[%d]: %w", i, err)
		}
	}
	for i, p := range spec.Partitions {
		if err := c.partition(p, i+1); err != nil {
			return nil, fmt.Errorf("fault: partitions[%d]: %w", i, err)
		}
	}
	for i, o := range spec.Overloads {
		if err := c.overload(o); err != nil {
			return nil, fmt.Errorf("fault: overloads[%d]: %w", i, err)
		}
	}
	for i, r := range spec.Regional {
		if err := c.regional(r); err != nil {
			return nil, fmt.Errorf("fault: regional[%d]: %w", i, err)
		}
	}
	if spec.ProviderStorm != nil {
		if err := c.storm(*spec.ProviderStorm); err != nil {
			return nil, fmt.Errorf("fault: provider_storm: %w", err)
		}
	}
	for i, fl := range spec.ProviderFlaps {
		if err := c.flap(fl); err != nil {
			return nil, fmt.Errorf("fault: provider_flaps[%d]: %w", i, err)
		}
	}

	// Stable order: time, then op, then server, then provider — scheduling
	// order must not depend on spec listing order for simultaneous events.
	sort.SliceStable(c.events, func(i, j int) bool {
		a, b := c.events[i], c.events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		return a.Provider < b.Provider
	})
	return c.events, nil
}

type compiler struct {
	env    Env
	rng    *rand.Rand
	events []Event
}

func (c *compiler) emit(e Event) { c.events = append(c.events, e) }

// resolveAt turns an (absolute, fraction) pair into an absolute time.
func (c *compiler) resolveAt(abs Duration, frac float64, name string) (time.Duration, error) {
	if abs.D() < 0 {
		return 0, fmt.Errorf("negative %s %v", name, abs.D())
	}
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("%s fraction %v outside [0, 1]", name, frac)
	}
	if abs.D() > 0 {
		if abs.D() > c.env.Horizon {
			return 0, fmt.Errorf("%s %v beyond horizon %v", name, abs.D(), c.env.Horizon)
		}
		return abs.D(), nil
	}
	return time.Duration(frac * float64(c.env.Horizon)), nil
}

// resolveWindow resolves a start plus a duration, requiring a positive
// duration.
func (c *compiler) resolveWindow(start Duration, startFrac float64, dur Duration, durFrac float64) (time.Duration, time.Duration, error) {
	at, err := c.resolveAt(start, startFrac, "start")
	if err != nil {
		return 0, 0, err
	}
	d, err := c.resolveAt(dur, durFrac, "duration")
	if err != nil {
		return 0, 0, err
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("non-positive window duration")
	}
	return at, d, nil
}

func (c *compiler) checkServer(i int) error {
	if i < 0 || i >= c.env.Servers {
		return fmt.Errorf("server %d outside 0..%d", i, c.env.Servers-1)
	}
	return nil
}

func (c *compiler) crashAt(server int, at time.Duration, recoverAfter Duration) error {
	if err := c.checkServer(server); err != nil {
		return err
	}
	if recoverAfter.D() < 0 {
		return fmt.Errorf("negative recover_after %v", recoverAfter.D())
	}
	c.emit(Event{At: at, Op: OpServerDown, Server: server})
	if recoverAfter.D() > 0 {
		c.emit(Event{At: at + recoverAfter.D(), Op: OpServerUp, Server: server})
	}
	return nil
}

func (c *compiler) crash(cr Crash) error {
	at, err := c.resolveAt(cr.At, cr.AtFrac, "at")
	if err != nil {
		return err
	}
	return c.crashAt(cr.Server, at, cr.RecoverAfter)
}

// pickServers draws count distinct server indices via partial Fisher-Yates.
func (c *compiler) pickServers(count int) []int {
	n := c.env.Servers
	if count > n {
		count = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + c.rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:count]
}

func (c *compiler) randomCrashes(rc RandomCrashes) error {
	count := rc.Count
	if count == 0 && rc.Frac > 0 {
		if rc.Frac > 1 {
			return fmt.Errorf("frac %v above 1", rc.Frac)
		}
		count = int(math.Ceil(rc.Frac * float64(c.env.Servers)))
	}
	if count <= 0 {
		return fmt.Errorf("no victims: count and frac both unset")
	}
	start, frac := rc.WindowStart, rc.WindowFrac
	if start == 0 && frac == 0 {
		start, frac = 1.0/3, 1.0/3 // the classic middle third
	}
	if start < 0 || start >= 1 {
		return fmt.Errorf("window_start %v outside [0, 1)", start)
	}
	if frac <= 0 || start+frac > 1 {
		return fmt.Errorf("window [%v, %v+%v] outside (0, 1]", start, start, frac)
	}
	winStart := time.Duration(start * float64(c.env.Horizon))
	winLen := time.Duration(frac * float64(c.env.Horizon))
	for _, v := range c.pickServers(count) {
		at := winStart + time.Duration(c.rng.Int63n(int64(winLen)))
		if err := c.crashAt(v, at, rc.RecoverAfter); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) outage(w Window) error {
	at, d, err := c.resolveWindow(w.Start, w.StartFrac, w.Duration, w.DurFrac)
	if err != nil {
		return err
	}
	c.emit(Event{At: at, Op: OpProviderDown})
	c.emit(Event{At: at + d, Op: OpProviderUp})
	return nil
}

func (c *compiler) partition(p Partition, group int) error {
	at, d, err := c.resolveWindow(p.Start, p.StartFrac, p.Duration, p.DurFrac)
	if err != nil {
		return err
	}
	isps := append([]int(nil), p.ISPs...)
	if len(isps) == 0 {
		if p.RandomISPs <= 0 {
			return fmt.Errorf("no ISPs: isps and random_isps both unset")
		}
		all := uniqueISPs(c.env.ISPs)
		if len(all) == 0 {
			return fmt.Errorf("random_isps set but env has no ISP data")
		}
		k := p.RandomISPs
		if k > len(all) {
			k = len(all)
		}
		for i := 0; i < k; i++ {
			j := i + c.rng.Intn(len(all)-i)
			all[i], all[j] = all[j], all[i]
		}
		isps = all[:k]
		sort.Ints(isps)
	}
	c.emit(Event{At: at, Op: OpPartitionStart, ISPs: isps, Group: group})
	c.emit(Event{At: at + d, Op: OpPartitionEnd, ISPs: isps, Group: group})
	return nil
}

func (c *compiler) overload(o Overload) error {
	at, d, err := c.resolveWindow(o.Start, o.StartFrac, o.Duration, o.DurFrac)
	if err != nil {
		return err
	}
	if o.Factor <= 1 {
		return fmt.Errorf("factor %v must be > 1", o.Factor)
	}
	var targets []int
	if o.RandomServers > 0 {
		targets = c.pickServers(o.RandomServers)
	} else {
		if err := c.checkServer(o.Server); err != nil {
			return err
		}
		targets = []int{o.Server}
	}
	for _, t := range targets {
		c.emit(Event{At: at, Op: OpOverloadStart, Server: t, Factor: o.Factor})
		c.emit(Event{At: at + d, Op: OpOverloadEnd, Server: t})
	}
	return nil
}

func (c *compiler) regional(r Regional) error {
	at, err := c.resolveAt(r.At, r.AtFrac, "at")
	if err != nil {
		return err
	}
	if r.RadiusKm <= 0 {
		return fmt.Errorf("non-positive radius %v km", r.RadiusKm)
	}
	if len(c.env.Locs) != c.env.Servers {
		return fmt.Errorf("regional fault needs per-server locations")
	}
	frac := r.Frac
	if frac == 0 {
		frac = 1
	}
	if frac < 0 || frac > 1 {
		return fmt.Errorf("frac %v outside (0, 1]", frac)
	}
	var in []int
	for i, loc := range c.env.Locs {
		if distanceWithin(r, loc) {
			in = append(in, i)
		}
	}
	if len(in) == 0 {
		return fmt.Errorf("no servers within %v km of (%v, %v)", r.RadiusKm, r.Lat, r.Lon)
	}
	count := int(math.Ceil(frac * float64(len(in))))
	// Correlated but not perfectly simultaneous: victims drop within a
	// short stagger of the event, the way a regional outage cascades.
	for i := 0; i < count; i++ {
		j := i + c.rng.Intn(len(in)-i)
		in[i], in[j] = in[j], in[i]
	}
	const stagger = 5 * time.Second
	for _, v := range in[:count] {
		delta := time.Duration(c.rng.Int63n(int64(stagger)))
		if err := c.crashAt(v, at+delta, r.RecoverAfter); err != nil {
			return err
		}
	}
	return nil
}

// providers returns the effective federated provider count (at least 1).
func (c *compiler) providers() int {
	if c.env.Providers <= 0 {
		return 1
	}
	return c.env.Providers
}

func (c *compiler) storm(ps ProviderStorm) error {
	at, d, err := c.resolveWindow(ps.Start, ps.StartFrac, ps.Duration, ps.DurFrac)
	if err != nil {
		return err
	}
	if ps.Stagger.D() < 0 {
		return fmt.Errorf("negative stagger %v", ps.Stagger.D())
	}
	if ps.Stagger.D() > c.env.Horizon {
		return fmt.Errorf("stagger %v beyond horizon %v", ps.Stagger.D(), c.env.Horizon)
	}
	down := at
	for k := 0; k < c.providers(); k++ {
		if down > c.env.Horizon {
			// Later wave positions fall past the run's end; nothing to emit.
			break
		}
		c.emit(Event{At: down, Op: OpProviderDown, Provider: k})
		c.emit(Event{At: down + d, Op: OpProviderUp, Provider: k})
		down += ps.Stagger.D()
	}
	return nil
}

func (c *compiler) flap(f ProviderFlap) error {
	if f.Provider < 0 || f.Provider >= c.providers() {
		return fmt.Errorf("provider %d outside 0..%d", f.Provider, c.providers()-1)
	}
	if f.Count <= 0 {
		return fmt.Errorf("count %d must be > 0", f.Count)
	}
	if f.Period.D() <= 0 || f.Period.D() > c.env.Horizon {
		return fmt.Errorf("period %v must lie inside (0, horizon %v]", f.Period.D(), c.env.Horizon)
	}
	if f.Downtime.D() <= 0 || f.Downtime.D() >= f.Period.D() {
		return fmt.Errorf("downtime %v must lie inside (0, period %v)", f.Downtime.D(), f.Period.D())
	}
	at, err := c.resolveAt(f.Start, f.StartFrac, "start")
	if err != nil {
		return err
	}
	down := at
	for i := 0; i < f.Count; i++ {
		if down > c.env.Horizon {
			// Later cycles fall past the run's end; nothing to emit.
			break
		}
		c.emit(Event{At: down, Op: OpProviderDown, Provider: f.Provider})
		c.emit(Event{At: down + f.Downtime.D(), Op: OpProviderUp, Provider: f.Provider})
		down += f.Period.D()
	}
	return nil
}

func uniqueISPs(isps []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, i := range isps {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
