package fault

import (
	"math/rand"
	"testing"
	"time"
)

func TestCompileProviderStormRollsAcrossProviders(t *testing.T) {
	env := testEnv(8)
	env.Providers = 3
	spec := Spec{ProviderStorm: &ProviderStorm{
		Start: Duration(10 * time.Minute), Duration: Duration(5 * time.Minute),
		Stagger: Duration(time.Minute),
	}}
	evs := compileOK(t, spec, env, 1)
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(evs), evs)
	}
	downAt := map[int]time.Duration{}
	upAt := map[int]time.Duration{}
	for _, e := range evs {
		switch e.Op {
		case OpProviderDown:
			downAt[e.Provider] = e.At
		case OpProviderUp:
			upAt[e.Provider] = e.At
		default:
			t.Fatalf("unexpected op %v", e.Op)
		}
	}
	for k := 0; k < 3; k++ {
		wantDown := 10*time.Minute + time.Duration(k)*time.Minute
		if downAt[k] != wantDown {
			t.Errorf("provider %d down at %v, want %v", k, downAt[k], wantDown)
		}
		if upAt[k] != wantDown+5*time.Minute {
			t.Errorf("provider %d up at %v, want %v", k, upAt[k], wantDown+5*time.Minute)
		}
	}
	// The stagger (1m) is shorter than the outage (5m), so providers 0..2
	// are all simultaneously down from the last failure to the first
	// recovery — the blackout interval serve-stale must cover.
	if last, firstUp := downAt[2], upAt[0]; last >= firstUp {
		t.Errorf("no blackout overlap: last down %v, first up %v", last, firstUp)
	}
}

func TestCompileProviderStormSingleProviderDegeneratesToOutage(t *testing.T) {
	spec := Spec{ProviderStorm: &ProviderStorm{StartFrac: 0.35, DurFrac: 0.2, Stagger: Duration(30 * time.Second)}}
	evs := compileOK(t, spec, testEnv(8), 1) // Providers unset -> 1
	if len(evs) != 2 || evs[0].Op != OpProviderDown || evs[1].Op != OpProviderUp {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Provider != 0 || evs[1].Provider != 0 {
		t.Errorf("single-provider storm targeted provider %d/%d", evs[0].Provider, evs[1].Provider)
	}
}

func TestCompileProviderFlapCycles(t *testing.T) {
	env := testEnv(8)
	env.Providers = 2
	spec := Spec{ProviderFlaps: []ProviderFlap{{
		Provider: 1, Count: 4, Start: Duration(5 * time.Minute),
		Period: Duration(2 * time.Minute), Downtime: Duration(30 * time.Second),
	}}}
	evs := compileOK(t, spec, env, 1)
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8: %+v", len(evs), evs)
	}
	for i := 0; i < 4; i++ {
		down, up := evs[2*i], evs[2*i+1]
		wantDown := 5*time.Minute + time.Duration(i)*2*time.Minute
		if down.Op != OpProviderDown || down.Provider != 1 || down.At != wantDown {
			t.Errorf("cycle %d down = %+v, want provider 1 down at %v", i, down, wantDown)
		}
		if up.Op != OpProviderUp || up.Provider != 1 || up.At != wantDown+30*time.Second {
			t.Errorf("cycle %d up = %+v", i, up)
		}
	}
}

func TestCompileProviderFlapClampsToHorizon(t *testing.T) {
	env := testEnv(8) // 30m horizon
	spec := Spec{ProviderFlaps: []ProviderFlap{{
		Count: 1000, Start: Duration(20 * time.Minute),
		Period: Duration(5 * time.Minute), Downtime: Duration(time.Minute),
	}}}
	evs := compileOK(t, spec, env, 1)
	// Cycles at 20m, 25m, 30m fit; the rest fall past the horizon.
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(evs), evs)
	}
	for _, e := range evs {
		if e.At > env.Horizon+time.Minute {
			t.Errorf("event past horizon: %+v", e)
		}
	}
}

func TestCompileProviderRejectsBadInput(t *testing.T) {
	env := testEnv(8)
	env.Providers = 2
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	bad := []Spec{
		{ProviderStorm: &ProviderStorm{StartFrac: 0.1}},                                                                          // zero duration
		{ProviderStorm: &ProviderStorm{StartFrac: 0.1, DurFrac: 0.1, Stagger: Duration(-time.Second)}},                           // negative stagger
		{ProviderStorm: &ProviderStorm{StartFrac: 0.1, DurFrac: 0.1, Stagger: Duration(time.Hour)}},                              // stagger beyond horizon
		{ProviderFlaps: []ProviderFlap{{Provider: 5, Count: 1, Period: Duration(time.Minute), Downtime: Duration(time.Second)}}}, // provider out of range
		{ProviderFlaps: []ProviderFlap{{Count: 0, Period: Duration(time.Minute), Downtime: Duration(time.Second)}}},              // no cycles
		{ProviderFlaps: []ProviderFlap{{Count: 1, Downtime: Duration(time.Second)}}},                                             // zero period
		{ProviderFlaps: []ProviderFlap{{Count: 1, Period: Duration(time.Hour), Downtime: Duration(time.Second)}}},                // period beyond horizon
		{ProviderFlaps: []ProviderFlap{{Count: 1, Period: Duration(time.Minute), Downtime: Duration(time.Minute)}}},              // downtime >= period
	}
	for i, spec := range bad {
		if _, err := Compile(spec, env, rng()); err == nil {
			t.Errorf("bad provider spec %d accepted", i)
		}
	}
}

func TestProviderScenariosCompileAtAnyProviderCount(t *testing.T) {
	for _, name := range []string{"provider-storm", "broker-flap"} {
		spec, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		for _, providers := range []int{0, 1, 3, 8} {
			env := testEnv(8)
			env.Providers = providers
			if _, err := Compile(spec, env, rand.New(rand.NewSource(1))); err != nil {
				t.Errorf("scenario %q with %d providers: %v", name, providers, err)
			}
		}
	}
}
