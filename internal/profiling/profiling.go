// Package profiling wires the standard pprof/trace collectors into the
// command-line tools. Both binaries expose the same three flags
// (-cpuprofile, -memprofile, -trace); a single Start call interprets them
// and returns a stop function for the caller to defer.
//
// The profiles are written in the formats `go tool pprof` and
// `go tool trace` expect:
//
//	experiments -only fig19 -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//
// Profiling never changes simulation behaviour — the engine is
// deterministic from its seed and produces byte-identical output with or
// without collectors attached.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files for each collector. Empty fields disable
// the corresponding collector.
type Config struct {
	CPUProfile string // pprof CPU profile, sampled for the whole run
	MemProfile string // pprof heap profile, snapshotted at stop after a GC
	Trace      string // runtime execution trace for `go tool trace`
}

// Enabled reports whether any collector is configured.
func (c Config) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Start begins the configured collectors and returns a stop function that
// flushes and closes them. The stop function must be called exactly once;
// it returns the first error encountered while finalizing any profile.
// If Start itself fails, every collector it already began is shut down
// before the error is returned, so there is nothing to stop.
func Start(cfg Config) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // already failing; best-effort cleanup
		}
		return nil, err
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //nolint:errcheck // already failing
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			return nil
		})
	}

	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close() //nolint:errcheck // already failing
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() error {
			trace.Stop()
			if err := f.Close(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			return nil
		})
	}

	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			// Materialize recently freed objects so the heap profile
			// reflects live memory, as `go test -memprofile` does.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("memprofile: %w", werr)
			}
			if cerr != nil {
				return fmt.Errorf("memprofile: %w", cerr)
			}
			return nil
		})
	}

	return func() error {
		var errs []error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}, nil
}
