package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start(Config{})
	if err != nil {
		t.Fatalf("Start(empty) error: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop(empty) error: %v", err)
	}
	if (Config{}).Enabled() {
		t.Fatal("empty Config reports Enabled")
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("full Config reports !Enabled")
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start error: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop error: %v", err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	_, err := Start(Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")})
	if err == nil {
		t.Fatal("Start with unwritable path succeeded")
	}
}
