package consistency

import (
	"fmt"
	"time"
)

// AdaptiveTTL is the related-work baseline ([6], [22], [24]): it predicts
// the next update gap from an exponentially weighted moving average of
// observed gaps and polls at a fraction of that prediction. The paper
// argues (Section 5.1) that it mispredicts when update behaviour changes
// abruptly — exactly the live-game pattern — which the ablation benchmark
// quantifies against the self-adaptive method.
type AdaptiveTTL struct {
	alpha      float64 // EWMA weight for the newest gap
	factor     float64 // poll interval as a fraction of the predicted gap
	minTTL     time.Duration
	maxTTL     time.Duration
	ewma       time.Duration
	lastUpdate time.Duration
	seen       bool
}

// AdaptiveTTLConfig tunes the estimator; zero fields take defaults.
type AdaptiveTTLConfig struct {
	Alpha  float64       // default 0.3
	Factor float64       // default 0.5
	MinTTL time.Duration // default 10 s
	MaxTTL time.Duration // default 10 min
}

// NewAdaptiveTTL validates the configuration and returns an estimator
// primed with an initial TTL guess equal to MinTTL.
func NewAdaptiveTTL(cfg AdaptiveTTLConfig) (*AdaptiveTTL, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.3
	}
	if cfg.Factor == 0 {
		cfg.Factor = 0.5
	}
	if cfg.MinTTL == 0 {
		cfg.MinTTL = 10 * time.Second
	}
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = 10 * time.Minute
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("consistency: alpha %v outside (0,1]", cfg.Alpha)
	}
	if cfg.Factor <= 0 {
		return nil, fmt.Errorf("consistency: non-positive factor %v", cfg.Factor)
	}
	if cfg.MinTTL <= 0 || cfg.MaxTTL < cfg.MinTTL {
		return nil, fmt.Errorf("consistency: bad TTL bounds [%v,%v]", cfg.MinTTL, cfg.MaxTTL)
	}
	return &AdaptiveTTL{
		alpha:  cfg.Alpha,
		factor: cfg.Factor,
		minTTL: cfg.MinTTL,
		maxTTL: cfg.MaxTTL,
		ewma:   cfg.MinTTL,
	}, nil
}

// ObserveUpdate records that a poll at time now found new content. The gap
// since the previous observed update feeds the EWMA.
func (a *AdaptiveTTL) ObserveUpdate(now time.Duration) {
	if a.seen {
		gap := now - a.lastUpdate
		if gap > 0 {
			a.ewma = time.Duration(a.alpha*float64(gap) + (1-a.alpha)*float64(a.ewma))
		}
	}
	a.seen = true
	a.lastUpdate = now
}

// ObserveMiss records a poll that found no update; the estimator backs off
// by growing its prediction (the silent-period behaviour the paper
// criticizes: after a long silence the prediction is long, so the next
// burst of updates is polled too slowly).
func (a *AdaptiveTTL) ObserveMiss() {
	a.ewma = time.Duration(float64(a.ewma) * 1.5)
	if a.ewma > a.maxTTL {
		a.ewma = a.maxTTL
	}
}

// NextTTL returns the interval until the next poll.
func (a *AdaptiveTTL) NextTTL() time.Duration {
	ttl := time.Duration(a.factor * float64(a.ewma))
	if ttl < a.minTTL {
		ttl = a.minTTL
	}
	if ttl > a.maxTTL {
		ttl = a.maxTTL
	}
	return ttl
}
