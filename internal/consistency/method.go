// Package consistency defines the update methods the paper evaluates — TTL,
// Push, server-based Invalidation (Section 1), the paper's self-adaptive
// TTL/Invalidation switch (Section 5.1, Algorithm 1) — plus the adaptive-TTL
// estimator from the related work ([6], [22], [24]) used as an ablation
// baseline. The protocol state machines here are pure and deterministic; the
// cdn package drives them from the discrete-event simulation.
package consistency

import "fmt"

// Method selects an update method.
type Method int

// The update methods under evaluation.
const (
	// MethodTTL is time-to-live polling: servers poll their parent every
	// TTL and receive the current content.
	MethodTTL Method = iota + 1
	// MethodPush transmits every update to every replica immediately.
	MethodPush
	// MethodInvalidation notifies replicas that their copy is stale; a
	// replica fetches the update on the next end-user visit.
	MethodInvalidation
	// MethodSelfAdaptive switches between TTL (frequent updates) and
	// Invalidation (silence) per Algorithm 1.
	MethodSelfAdaptive
	// MethodAdaptiveTTL predicts the next update gap from history and
	// polls accordingly (related-work baseline).
	MethodAdaptiveTTL
	// MethodLease implements cooperative leases (related work [13],
	// Ninan et al.): the provider pushes updates to servers holding an
	// unexpired lease; a server with an expired lease renews it on the
	// next end-user visit, fetching the current content along the way.
	MethodLease
	// MethodRegime is the paper's future-work direction (Sections 4.6
	// and 6): each server probes its visit and update frequency and
	// switches between Push, Invalidation, and TTL regimes via a
	// RegimeController.
	MethodRegime
)

// String returns the method name as used in the paper's figures.
func (m Method) String() string {
	switch m {
	case MethodTTL:
		return "TTL"
	case MethodPush:
		return "Push"
	case MethodInvalidation:
		return "Invalidation"
	case MethodSelfAdaptive:
		return "Self"
	case MethodAdaptiveTTL:
		return "AdaptiveTTL"
	case MethodLease:
		return "Lease"
	case MethodRegime:
		return "Regime"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Valid reports whether m is a defined method.
func (m Method) Valid() bool {
	return m >= MethodTTL && m <= MethodRegime
}

// Infra selects an update infrastructure (Section 4 and 5.2).
type Infra int

// The infrastructures under evaluation.
const (
	// InfraUnicast connects the provider directly to every server.
	InfraUnicast Infra = iota + 1
	// InfraMulticast is the proximity-aware d-ary multicast tree.
	InfraMulticast
	// InfraHybrid pushes over a k-ary supernode tree and runs the
	// configured method inside each cluster (Section 5.2). Combined with
	// MethodSelfAdaptive this is the paper's HAT system.
	InfraHybrid
	// InfraBroadcast floods updates within proximity clusters: the
	// provider seeds each cluster and every first-time receiver re-sends
	// to all cluster peers. It is the paper's taxonomy class (ii), kept
	// for completeness: consistency is Push-fast but the message count is
	// quadratic in cluster size (Section 1: "an overwhelming number of
	// update messages"). Only MethodPush is meaningful on it.
	InfraBroadcast
)

// String returns the infrastructure name.
func (i Infra) String() string {
	switch i {
	case InfraUnicast:
		return "Unicast"
	case InfraMulticast:
		return "Multicast"
	case InfraHybrid:
		return "Hybrid"
	case InfraBroadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("Infra(%d)", int(i))
	}
}

// Valid reports whether i is a defined infrastructure.
func (i Infra) Valid() bool { return i >= InfraUnicast && i <= InfraBroadcast }
