package consistency

import (
	"testing"
	"time"
)

func TestMethodStrings(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{MethodTTL, "TTL"}, {MethodPush, "Push"},
		{MethodInvalidation, "Invalidation"}, {MethodSelfAdaptive, "Self"},
		{MethodAdaptiveTTL, "AdaptiveTTL"}, {MethodLease, "Lease"},
		{MethodRegime, "Regime"}, {Method(42), "Method(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.m), got, tt.want)
		}
	}
	if !MethodTTL.Valid() || !MethodLease.Valid() || Method(0).Valid() || Method(99).Valid() {
		t.Error("Method.Valid wrong")
	}
}

func TestInfraStrings(t *testing.T) {
	if InfraUnicast.String() != "Unicast" || InfraMulticast.String() != "Multicast" ||
		InfraHybrid.String() != "Hybrid" || InfraBroadcast.String() != "Broadcast" ||
		Infra(9).String() != "Infra(9)" {
		t.Error("Infra.String wrong")
	}
	if !InfraHybrid.Valid() || !InfraBroadcast.Valid() || Infra(0).Valid() {
		t.Error("Infra.Valid wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeTTL.String() != "ttl" || ModeInvalidationIdle.String() != "invalidation-idle" ||
		ModeInvalidated.String() != "invalidated" || Mode(7).String() != "mode(7)" {
		t.Error("Mode.String wrong")
	}
}

// The Algorithm 1 happy path: frequent updates keep TTL mode; a silent poll
// switches to Invalidation; the invalidation plus a visit switches back.
func TestSelfAdaptiveFullCycle(t *testing.T) {
	s := NewSelfAdaptive()
	if s.Mode() != ModeTTL {
		t.Fatalf("initial mode = %v", s.Mode())
	}

	// Updates keep arriving: stay in TTL, no notifications.
	for i := 0; i < 3; i++ {
		notify, err := s.OnPollResult(true)
		if err != nil || notify {
			t.Fatalf("poll with update: notify=%v err=%v", notify, err)
		}
	}
	if s.Switches() != 0 {
		t.Fatalf("switches = %d", s.Switches())
	}

	// Silence: switch to Invalidation and notify the provider.
	notify, err := s.OnPollResult(false)
	if err != nil || !notify {
		t.Fatalf("silent poll: notify=%v err=%v", notify, err)
	}
	if s.Mode() != ModeInvalidationIdle {
		t.Fatalf("mode = %v, want invalidation-idle", s.Mode())
	}

	// Visits during idle invalidation do nothing.
	if s.OnVisit() {
		t.Error("visit before invalidation requested a poll")
	}

	// Invalidation arrives, then the first visit polls and switches back.
	s.OnInvalidation()
	if s.Mode() != ModeInvalidated {
		t.Fatalf("mode = %v, want invalidated", s.Mode())
	}
	if !s.OnVisit() {
		t.Error("visit after invalidation did not request a poll")
	}
	if s.Mode() != ModeTTL {
		t.Fatalf("mode = %v, want ttl", s.Mode())
	}
	if s.Switches() != 2 {
		t.Errorf("switches = %d, want 2", s.Switches())
	}
}

func TestSelfAdaptivePollOutsideTTLMode(t *testing.T) {
	s := NewSelfAdaptive()
	if _, err := s.OnPollResult(false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OnPollResult(true); err == nil {
		t.Error("poll in invalidation mode accepted")
	}
}

func TestSelfAdaptiveSpuriousInvalidationIgnored(t *testing.T) {
	s := NewSelfAdaptive()
	s.OnInvalidation() // still in TTL mode: must be ignored
	if s.Mode() != ModeTTL {
		t.Errorf("spurious invalidation changed mode to %v", s.Mode())
	}
	if s.OnVisit() {
		t.Error("visit in TTL mode requested a poll")
	}
}

func TestSelfAdaptiveRepeatedInvalidationIdempotent(t *testing.T) {
	s := NewSelfAdaptive()
	s.OnPollResult(false)
	s.OnInvalidation()
	s.OnInvalidation() // duplicate notice
	if s.Mode() != ModeInvalidated {
		t.Errorf("mode = %v", s.Mode())
	}
	if !s.OnVisit() {
		t.Error("visit did not trigger poll")
	}
	if s.OnVisit() {
		t.Error("second visit triggered another poll")
	}
}

func TestAdaptiveTTLDefaults(t *testing.T) {
	a, err := NewAdaptiveTTL(AdaptiveTTLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NextTTL(); got != 10*time.Second {
		t.Errorf("initial NextTTL = %v, want MinTTL 10s", got)
	}
}

func TestAdaptiveTTLValidation(t *testing.T) {
	bad := []AdaptiveTTLConfig{
		{Alpha: 1.5},
		{Alpha: -0.1},
		{Factor: -1},
		{MinTTL: -time.Second},
		{MinTTL: time.Minute, MaxTTL: time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewAdaptiveTTL(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestAdaptiveTTLTracksGaps(t *testing.T) {
	a, err := NewAdaptiveTTL(AdaptiveTTLConfig{Alpha: 0.5, Factor: 1, MinTTL: time.Second, MaxTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Updates every 30 s: the prediction converges toward 30 s.
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		a.ObserveUpdate(now)
		now += 30 * time.Second
	}
	got := a.NextTTL()
	if got < 25*time.Second || got > 35*time.Second {
		t.Errorf("NextTTL = %v, want ~30s", got)
	}
}

func TestAdaptiveTTLBacksOffOnMisses(t *testing.T) {
	a, err := NewAdaptiveTTL(AdaptiveTTLConfig{Alpha: 0.5, Factor: 1, MinTTL: time.Second, MaxTTL: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	a.ObserveUpdate(0)
	a.ObserveUpdate(10 * time.Second)
	before := a.NextTTL()
	for i := 0; i < 30; i++ {
		a.ObserveMiss()
	}
	after := a.NextTTL()
	if after <= before {
		t.Errorf("misses did not grow TTL: %v -> %v", before, after)
	}
	if after > 5*time.Minute {
		t.Errorf("TTL %v exceeded max", after)
	}
}

func TestAdaptiveTTLIgnoresNonPositiveGap(t *testing.T) {
	a, err := NewAdaptiveTTL(AdaptiveTTLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a.ObserveUpdate(10 * time.Second)
	before := a.NextTTL()
	a.ObserveUpdate(10 * time.Second) // zero gap must not zero the EWMA
	if got := a.NextTTL(); got != before {
		t.Errorf("zero gap changed TTL %v -> %v", before, got)
	}
}
