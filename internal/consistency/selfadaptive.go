package consistency

import "fmt"

// Mode is the self-adaptive automaton's current regime.
type Mode int

// Self-adaptive modes (Algorithm 1).
const (
	// ModeTTL: the server polls every TTL.
	ModeTTL Mode = iota + 1
	// ModeInvalidationIdle: the server switched to Invalidation and is
	// waiting for the provider's invalidation notice.
	ModeInvalidationIdle
	// ModeInvalidated: an invalidation arrived; the server waits for the
	// first end-user visit, which triggers the poll and the switch back
	// to TTL.
	ModeInvalidated
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeTTL:
		return "ttl"
	case ModeInvalidationIdle:
		return "invalidation-idle"
	case ModeInvalidated:
		return "invalidated"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SelfAdaptive is the per-server state machine of Algorithm 1. It is pure:
// the caller performs the actual polling/notification I/O that each
// transition requests. The zero value is not ready; use NewSelfAdaptive.
type SelfAdaptive struct {
	mode Mode
	// switches counts regime changes, an observable for tests and stats.
	switches int
}

// NewSelfAdaptive starts in TTL mode, as Algorithm 1's Main does.
func NewSelfAdaptive() *SelfAdaptive {
	return &SelfAdaptive{mode: ModeTTL}
}

// Mode returns the current regime.
func (s *SelfAdaptive) Mode() Mode { return s.mode }

// Switches returns how many regime changes have occurred.
func (s *SelfAdaptive) Switches() int { return s.switches }

// OnPollResult reports a TTL poll outcome. When the poll found no update
// (Algorithm 1 line 7-8) the automaton switches to Invalidation and the
// caller must notify the provider; the return value requests that
// notification. Polls in non-TTL modes are protocol errors.
func (s *SelfAdaptive) OnPollResult(hadUpdate bool) (notifyProvider bool, err error) {
	if s.mode != ModeTTL {
		return false, fmt.Errorf("consistency: poll result in mode %v", s.mode)
	}
	if hadUpdate {
		return false, nil // stay in TTL (Algorithm 1 lines 4-7)
	}
	s.mode = ModeInvalidationIdle
	s.switches++
	return true, nil
}

// OnInvalidation reports the provider's invalidation notice (Algorithm 1
// line 10). Notices while not in Invalidation mode are tolerated but
// ignored (they can race with the mode-switch notification in flight).
func (s *SelfAdaptive) OnInvalidation() {
	if s.mode == ModeInvalidationIdle {
		s.mode = ModeInvalidated
	}
}

// OnVisit reports an end-user visit. In ModeInvalidated the visit triggers
// the poll-and-switch-back (Algorithm 1 lines 11-13): pollNow asks the
// caller to poll the provider for the update and notify it of the switch;
// the automaton returns to TTL mode. In other modes visits need no action.
func (s *SelfAdaptive) OnVisit() (pollNow bool) {
	if s.mode != ModeInvalidated {
		return false
	}
	s.mode = ModeTTL
	s.switches++
	return true
}
