package consistency

import (
	"fmt"
	"time"
)

// RegimeController implements the paper's future-work direction (Sections
// 4.6 and 6): a generic self-adapting strategy that probes the visit and
// update frequency of live content and switches each replica between Push,
// Invalidation, and TTL to minimize message cost at a given consistency
// requirement.
//
// The decision rule follows the paper's own cost observations:
//
//   - visits much more frequent than updates: every update will be read, so
//     pushing costs one message per update (the minimum) and gives the best
//     consistency -> RegimePush (Section 4.6: Push suits high-consistency,
//     frequently-read content).
//   - updates much more frequent than visits: most pushed updates would
//     never be read; an invalidation is sent once and the single fetch
//     happens on demand -> RegimeInvalidation (Section 1: Invalidation
//     saves traffic when visit rates are below update rates).
//   - comparable rates: TTL aggregates several updates per poll at bounded
//     staleness and the lowest provider load -> RegimeTTL.
type RegimeController struct {
	cfg RegimeConfig

	visitEWMA  float64 // visits per second
	updateEWMA float64 // updates per second
	lastVisit  time.Duration
	lastUpdate time.Duration
	seenVisit  bool
	seenUpdate bool

	regime   Regime
	switches int
}

// Regime is the controller's chosen update machinery.
type Regime int

// Regimes, ordered from strongest consistency to cheapest.
const (
	RegimePush Regime = iota + 1
	RegimeTTL
	RegimeInvalidation
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case RegimePush:
		return "push"
	case RegimeTTL:
		return "ttl"
	case RegimeInvalidation:
		return "invalidation"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// RegimeConfig tunes the controller. Zero fields take defaults.
type RegimeConfig struct {
	// Alpha is the EWMA weight for new rate samples; default 0.2.
	Alpha float64
	// PushRatio: visits/updates above this selects Push; default 3.
	PushRatio float64
	// InvalidateRatio: visits/updates below this selects Invalidation;
	// default 1/3.
	InvalidateRatio float64
	// Hysteresis scales the thresholds when leaving the current regime so
	// borderline rates do not flap; default 1.25.
	Hysteresis float64
}

func (c RegimeConfig) withDefaults() (RegimeConfig, error) {
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.PushRatio == 0 {
		c.PushRatio = 3
	}
	if c.InvalidateRatio == 0 {
		c.InvalidateRatio = 1.0 / 3
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return c, fmt.Errorf("consistency: regime alpha %v outside (0,1]", c.Alpha)
	}
	if c.PushRatio <= c.InvalidateRatio {
		return c, fmt.Errorf("consistency: PushRatio %v must exceed InvalidateRatio %v",
			c.PushRatio, c.InvalidateRatio)
	}
	if c.Hysteresis < 1 {
		return c, fmt.Errorf("consistency: hysteresis %v below 1", c.Hysteresis)
	}
	return c, nil
}

// NewRegimeController starts in the TTL regime (the measured CDN's
// behaviour) until rate estimates accumulate.
func NewRegimeController(cfg RegimeConfig) (*RegimeController, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &RegimeController{cfg: cfg, regime: RegimeTTL}, nil
}

// Regime returns the current choice.
func (rc *RegimeController) Regime() Regime { return rc.regime }

// Switches counts regime changes so far.
func (rc *RegimeController) Switches() int { return rc.switches }

// VisitRate returns the current visits-per-second estimate.
func (rc *RegimeController) VisitRate() float64 { return rc.visitEWMA }

// UpdateRate returns the current updates-per-second estimate.
func (rc *RegimeController) UpdateRate() float64 { return rc.updateEWMA }

// ObserveVisit feeds one end-user visit at virtual time now.
func (rc *RegimeController) ObserveVisit(now time.Duration) {
	rc.visitEWMA = rc.observe(now, rc.visitEWMA, &rc.lastVisit, &rc.seenVisit)
}

// ObserveUpdate feeds one content update at virtual time now.
func (rc *RegimeController) ObserveUpdate(now time.Duration) {
	rc.updateEWMA = rc.observe(now, rc.updateEWMA, &rc.lastUpdate, &rc.seenUpdate)
}

func (rc *RegimeController) observe(now time.Duration, ewma float64, last *time.Duration, seen *bool) float64 {
	if *seen {
		gap := (now - *last).Seconds()
		if gap > 0 {
			rate := 1 / gap
			ewma = rc.cfg.Alpha*rate + (1-rc.cfg.Alpha)*ewma
		}
	}
	*seen = true
	*last = now
	return ewma
}

// Decide re-evaluates the regime from the current rate estimates and
// returns true when the regime changed. Callers invoke it on a control
// epoch (e.g. every server TTL).
func (rc *RegimeController) Decide() (changed bool) {
	if !rc.seenVisit || !rc.seenUpdate || rc.updateEWMA == 0 {
		return false
	}
	ratio := rc.visitEWMA / rc.updateEWMA

	pushUp := rc.cfg.PushRatio
	invDown := rc.cfg.InvalidateRatio
	// Hysteresis: make it harder to leave the current regime.
	switch rc.regime {
	case RegimePush:
		pushUp /= rc.cfg.Hysteresis
	case RegimeInvalidation:
		invDown *= rc.cfg.Hysteresis
	}

	next := rc.regime
	switch {
	case ratio >= pushUp:
		next = RegimePush
	case ratio <= invDown:
		next = RegimeInvalidation
	default:
		next = RegimeTTL
	}
	if next != rc.regime {
		rc.regime = next
		rc.switches++
		return true
	}
	return false
}
