package consistency

import (
	"testing"
	"time"
)

func feed(rc *RegimeController, visitGap, updateGap time.Duration, span time.Duration) {
	if visitGap > 0 {
		for t := visitGap; t <= span; t += visitGap {
			rc.ObserveVisit(t)
		}
	}
	if updateGap > 0 {
		for t := updateGap; t <= span; t += updateGap {
			rc.ObserveUpdate(t)
		}
	}
}

func newRC(t *testing.T) *RegimeController {
	t.Helper()
	rc, err := NewRegimeController(RegimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestRegimeConfigValidation(t *testing.T) {
	bad := []RegimeConfig{
		{Alpha: 1.5},
		{Alpha: -0.2},
		{PushRatio: 0.1, InvalidateRatio: 0.5},
		{Hysteresis: 0.5},
	}
	for i, cfg := range bad {
		if _, err := NewRegimeController(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRegimeStartsTTLAndHoldsWithoutData(t *testing.T) {
	rc := newRC(t)
	if rc.Regime() != RegimeTTL {
		t.Fatalf("initial regime = %v", rc.Regime())
	}
	if rc.Decide() {
		t.Error("Decide switched with no observations")
	}
	rc.ObserveVisit(time.Second) // visits only, still no update info
	if rc.Decide() {
		t.Error("Decide switched with visits only")
	}
}

func TestRegimePicksPushWhenHot(t *testing.T) {
	rc := newRC(t)
	// Visits every 2s, updates every 60s: ratio 30 >> 3.
	feed(rc, 2*time.Second, 60*time.Second, 10*time.Minute)
	if !rc.Decide() {
		t.Fatal("Decide did not switch")
	}
	if rc.Regime() != RegimePush {
		t.Errorf("regime = %v, want push", rc.Regime())
	}
}

func TestRegimePicksInvalidationWhenCold(t *testing.T) {
	rc := newRC(t)
	// Visits every 5 minutes, updates every 10s: ratio 1/30 << 1/3.
	feed(rc, 5*time.Minute, 10*time.Second, 30*time.Minute)
	rc.Decide()
	if rc.Regime() != RegimeInvalidation {
		t.Errorf("regime = %v, want invalidation", rc.Regime())
	}
}

func TestRegimeKeepsTTLWhenBalanced(t *testing.T) {
	rc := newRC(t)
	// Visits every 10s, updates every 10s: ratio 1 inside (1/3, 3).
	feed(rc, 10*time.Second, 10*time.Second, 10*time.Minute)
	if rc.Decide() {
		t.Error("balanced rates switched away from TTL")
	}
	if rc.Regime() != RegimeTTL {
		t.Errorf("regime = %v, want ttl", rc.Regime())
	}
}

func TestRegimeHysteresisPreventsFlapping(t *testing.T) {
	rc, err := NewRegimeController(RegimeConfig{PushRatio: 3, Hysteresis: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Push the ratio just above 3 -> Push.
	feed(rc, 3*time.Second, 10*time.Second, 5*time.Minute)
	rc.Decide()
	if rc.Regime() != RegimePush {
		t.Fatalf("regime = %v, want push (ratio ~3.3)", rc.Regime())
	}
	// Drift the ratio down to ~2: with hysteresis 2 the effective exit
	// threshold is 1.5, so the controller stays in Push.
	feed2 := func(visitGap time.Duration, from, span time.Duration) {
		for t := from; t <= from+span; t += visitGap {
			rc.ObserveVisit(t)
		}
		for t := from; t <= from+span; t += 10 * time.Second {
			rc.ObserveUpdate(t)
		}
	}
	feed2(5*time.Second, 6*time.Minute, 5*time.Minute)
	if rc.Decide() {
		t.Errorf("hysteresis failed: switched to %v at ratio ~2", rc.Regime())
	}
}

func TestRegimeTracksWorkloadShift(t *testing.T) {
	rc := newRC(t)
	// Hot phase -> Push.
	feed(rc, 2*time.Second, 60*time.Second, 5*time.Minute)
	rc.Decide()
	if rc.Regime() != RegimePush {
		t.Fatalf("hot phase regime = %v", rc.Regime())
	}
	// Cold phase: visits stop, updates accelerate -> Invalidation.
	for ts := 6 * time.Minute; ts <= 30*time.Minute; ts += 2 * time.Second {
		rc.ObserveUpdate(ts)
	}
	for ts := 6 * time.Minute; ts <= 30*time.Minute; ts += 4 * time.Minute {
		rc.ObserveVisit(ts)
	}
	rc.Decide()
	if rc.Regime() != RegimeInvalidation {
		t.Errorf("cold phase regime = %v, want invalidation", rc.Regime())
	}
	if rc.Switches() != 2 {
		t.Errorf("switches = %d, want 2", rc.Switches())
	}
}

func TestRegimeString(t *testing.T) {
	if RegimePush.String() != "push" || RegimeTTL.String() != "ttl" ||
		RegimeInvalidation.String() != "invalidation" || Regime(9).String() != "regime(9)" {
		t.Error("Regime.String wrong")
	}
}

func TestRegimeRatesExposed(t *testing.T) {
	rc := newRC(t)
	feed(rc, 10*time.Second, 20*time.Second, 10*time.Minute)
	if v := rc.VisitRate(); v < 0.05 || v > 0.2 {
		t.Errorf("visit rate = %v, want ~0.1/s", v)
	}
	if u := rc.UpdateRate(); u < 0.025 || u > 0.1 {
		t.Errorf("update rate = %v, want ~0.05/s", u)
	}
}
