package stats_test

import (
	"fmt"

	"cdnconsistency/internal/stats"
)

func ExampleCDF() {
	cdf, err := stats.NewCDF([]float64{5, 10, 10, 20, 40})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(X<=10) = %.1f\n", cdf.At(10))
	median, _ := cdf.Quantile(0.5)
	fmt.Printf("median   = %.0f\n", median)
	// Output:
	// P(X<=10) = 0.6
	// median   = 10
}

func ExampleSummarize() {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, err := stats.Summarize(xs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p5=%.0f median=%.0f p95=%.0f\n", s.P5, s.Median, s.P95)
	// Output:
	// p5=5 median=50 p95=95
}

func ExamplePearson() {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	r, err := stats.Pearson(x, y)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r = %.0f\n", r)
	// Output:
	// r = 1
}
