package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// BootstrapMeanCI estimates a confidence interval for the mean of xs by the
// percentile bootstrap: resamples resampled means and takes the matching
// quantiles. confidence is e.g. 0.95; the generator seed makes the interval
// reproducible.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: resamples %d < 10", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	n := len(xs)
	for i := range means {
		var sum float64
		for j := 0; j < n; j++ {
			sum += xs[rng.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return Interval{Lo: means[lo], Hi: means[hi]}, nil
}
