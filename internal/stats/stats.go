// Package stats provides the small statistical toolkit used by the trace
// analysis and the experiment harness: empirical CDFs, percentiles, RMSE,
// Pearson correlation, and streaming accumulators.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary holds the three percentiles the paper reports throughout
// (Figures 4(e), 9(b,c), 18(a)).
type Summary struct {
	P5, Median, P95 float64
}

// Summarize computes the 5th, 50th and 95th percentiles of xs.
func Summarize(xs []float64) (Summary, error) {
	p5, err := Percentile(xs, 5)
	if err != nil {
		return Summary{}, err
	}
	med, err := Percentile(xs, 50)
	if err != nil {
		return Summary{}, err
	}
	p95, err := Percentile(xs, 95)
	if err != nil {
		return Summary{}, err
	}
	return Summary{P5: p5, Median: med, P95: p95}, nil
}

// RMSE returns the root mean square error between two equal-length series.
func RMSE(a, b []float64) (float64, error) {
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It is an error if either series has zero variance.
func Pearson(x, y []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// KendallTau returns Kendall's rank correlation coefficient between two
// equal-length rankings (tau-a: concordant minus discordant pairs over all
// pairs). The tree-existence analysis uses it to quantify day-over-day rank
// stability: a static distribution tree would keep tau near 1; the paper's
// churn corresponds to tau near 0.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, got %d", len(x))
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	var concordant, discordant int
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx*dy > 0:
				concordant++
			case dx*dy < 0:
				discordant++
			}
		}
	}
	pairs := len(x) * (len(x) - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// Accumulator collects running count/sum/min/max without storing samples.
// The zero value is ready to use.
type Accumulator struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Sum returns the total of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean, or 0 if no samples were recorded.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest sample, or 0 if none.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 if none.
func (a *Accumulator) Max() float64 { return a.max }
