package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. It is an error to build one from
// no samples.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// N returns the number of samples underlying the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of samples <= x, so search for the first value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q, for
// q in (0, 1].
func (c *CDF) Quantile(q float64) (float64, error) {
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of (0,1]", q)
	}
	idx := int(q*float64(len(c.sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx], nil
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points samples the CDF at n evenly spaced x positions across [Min, Max],
// returning (x, P(X<=x)) pairs suitable for plotting a figure series.
func (c *CDF) Points(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]CDFPoint, 0, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts = append(pts, CDFPoint{X: x, P: c.At(x)})
	}
	return pts
}

// CDFPoint is one plotted point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability P(X <= x)
}

// FormatPoints renders points as "x\tp" lines for harness output.
func FormatPoints(pts []CDFPoint) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%.3f\t%.4f\n", p.X, p.P)
	}
	return b.String()
}
