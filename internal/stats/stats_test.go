package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.xs)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) succeeded")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) succeeded")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile on empty did not return ErrEmpty")
	}
	// Single element: every percentile is that element.
	for _, p := range []float64{0, 37, 100} {
		got, err := Percentile([]float64{42}, p)
		if err != nil || got != 42 {
			t.Errorf("Percentile(single, %v) = %v, %v", p, got, err)
		}
	}
}

func TestSummarizeOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64() * 10
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.P5 <= s.Median && s.Median <= s.P95) {
		t.Errorf("percentiles out of order: %+v", s)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("RMSE(identical) = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("RMSE length mismatch succeeded")
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Error("RMSE empty did not return ErrEmpty")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := Pearson(x, yPos); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson(pos) = %v, %v; want 1", r, err)
	}
	if r, err := Pearson(x, yNeg); err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson(neg) = %v, %v; want -1", r, err)
	}
	if _, err := Pearson(x, []float64{3, 3, 3, 3, 3}); err == nil {
		t.Error("Pearson with zero variance succeeded")
	}
	if _, err := Pearson(x, x[:2]); err == nil {
		t.Error("Pearson length mismatch succeeded")
	}
}

func TestPropertyPearsonBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		c, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draw
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 {
		t.Error("zero-value accumulator not empty")
	}
	for _, x := range []float64{3, -1, 7, 2} {
		a.Add(x)
	}
	if a.N() != 4 {
		t.Errorf("N = %d", a.N())
	}
	if a.Min() != -1 || a.Max() != 7 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if math.Abs(a.Mean()-2.75) > 1e-12 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Sum() != 11 {
		t.Errorf("Sum = %v", a.Sum())
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if _, err := NewCDF(nil); err != ErrEmpty {
		t.Error("NewCDF(nil) did not return ErrEmpty")
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{0.25, 10}, {0.5, 20}, {1, 40}, {0.1, 10},
	}
	for _, tt := range tests {
		got, err := c.Quantile(tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	for _, q := range []float64{0, -0.1, 1.1} {
		if _, err := c.Quantile(q); err == nil {
			t.Errorf("Quantile(%v) succeeded", q)
		}
	}
}

// Property: a CDF is monotone non-decreasing and reaches 1 at its max.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		pts := c.Points(20)
		for i := 1; i < len(pts); i++ {
			if pts[i].P < pts[i-1].P {
				return false
			}
		}
		return c.At(c.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFormatPoints(t *testing.T) {
	s := FormatPoints([]CDFPoint{{X: 1.5, P: 0.25}})
	want := "1.500\t0.2500\n"
	if s != want {
		t.Errorf("FormatPoints = %q, want %q", s, want)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()*2
	}
	ci, err := BootstrapMeanCI(xs, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate interval %+v", ci)
	}
	mean, _ := Mean(xs)
	if mean < ci.Lo || mean > ci.Hi {
		t.Errorf("sample mean %.3f outside CI [%.3f, %.3f]", mean, ci.Lo, ci.Hi)
	}
	// The CI should be tight for 500 samples of sd 2: width ~4*2/sqrt(500) ~ 0.36.
	if w := ci.Hi - ci.Lo; w > 1 {
		t.Errorf("CI width %.3f too wide", w)
	}
	// Deterministic per seed.
	again, err := BootstrapMeanCI(xs, 500, 0.95, 1)
	if err != nil || again != ci {
		t.Errorf("bootstrap not deterministic: %+v vs %+v (%v)", ci, again, err)
	}
}

func TestBootstrapMeanCIValidation(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err != ErrEmpty {
		t.Error("empty accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 5, 0.95, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		if _, err := BootstrapMeanCI([]float64{1, 2}, 100, c, 1); err == nil {
			t.Errorf("confidence %v accepted", c)
		}
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if tau, err := KendallTau(x, x); err != nil || tau != 1 {
		t.Errorf("identical rankings tau = %v, %v", tau, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if tau, err := KendallTau(x, rev); err != nil || tau != -1 {
		t.Errorf("reversed rankings tau = %v, %v", tau, err)
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := KendallTau(x, x[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPropertyKendallTauBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		tau, err := KendallTau(x, y)
		return err == nil && tau >= -1 && tau <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
