package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestContextCancelSkipsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 6)
	var ran atomic.Int32
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(*Metrics) (int, error) {
			ran.Add(1)
			if i == 0 {
				cancel() // the running job observes cancellation mid-sweep
			}
			return i, nil
		}}
	}
	// Serial pool: job 0 runs and cancels; 1..5 must never start.
	results := All(jobs, Options{Workers: 1, Context: ctx})
	if results[0].Err != nil || results[0].Value != 0 {
		t.Fatalf("in-flight job aborted by pool: %+v", results[0])
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("job %s: err = %v, want ErrCanceled", r.ID, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %s: cancellation cause not preserved: %v", r.ID, r.Err)
		}
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("%d jobs ran after cancellation, want 1", got)
	}
}

func TestContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := All([]Job[int]{
		{ID: "a", Run: func(*Metrics) (int, error) { t.Error("job ran"); return 0, nil }},
	}, Options{Workers: 4, Context: ctx})
	if !errors.Is(results[0].Err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", results[0].Err)
	}
}

// Regression: every early-return path — fail-fast, emit abort, context
// cancellation — must drain its worker goroutines before returning. A leaked
// worker would accumulate across sweep invocations and eventually exhaust
// the scheduler.
func TestNoWorkerGoroutineLeakOnEarlyReturn(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fail := errors.New("boom")
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(*Metrics) (int, error) {
			if i == 3 {
				return 0, fail
			}
			return i, nil
		}}
	}

	// Fail-fast trip.
	All(jobs, Options{Workers: 8, FailFast: true})
	// Emit abort.
	_ = ForEachOrdered(jobs, Options{Workers: 8}, func(i int, r Result[int]) error {
		if i == 2 {
			return fail
		}
		return nil
	})
	// Context cancellation mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	All(jobs, Options{Workers: 8, Context: ctx})

	// Workers exit after wg.Wait inside the calls above, but give the
	// runtime a moment to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}

func TestWatchdogReportsStuckJob(t *testing.T) {
	type report struct {
		jobID, probe string
		stacks       string
	}
	got := make(chan report, 1)
	release := make(chan struct{})
	jobs := []Job[int]{{ID: "slow", Run: func(m *Metrics) (int, error) {
		m.SetProbe("sim-clock 12m30s, 42 events")
		<-release
		return 1, nil
	}}}
	done := make(chan []Result[int], 1)
	go func() {
		done <- All(jobs, Options{
			Workers:    1,
			StuckAfter: 20 * time.Millisecond,
			OnStuck: func(id string, elapsed time.Duration, probe string, stacks []byte) {
				select {
				case got <- report{id, probe, string(stacks)}:
				default:
				}
			},
		})
	}()
	select {
	case r := <-got:
		if r.jobID != "slow" {
			t.Errorf("watchdog reported job %q", r.jobID)
		}
		if !strings.Contains(r.probe, "sim-clock 12m30s") {
			t.Errorf("report lacks the job's probe: %q", r.probe)
		}
		if !strings.Contains(r.stacks, "goroutine") {
			t.Errorf("report lacks goroutine stacks: %.80q", r.stacks)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired for a stuck job")
	}
	close(release)
	results := <-done
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("watchdog killed the job: %+v", results[0])
	}
}

func TestWatchdogSilentForFastJobs(t *testing.T) {
	var fired atomic.Int32
	All([]Job[int]{
		{ID: "fast", Run: func(*Metrics) (int, error) { return 1, nil }},
	}, Options{
		Workers:    1,
		StuckAfter: 30 * time.Millisecond,
		OnStuck: func(string, time.Duration, string, []byte) {
			fired.Add(1)
		},
	})
	time.Sleep(80 * time.Millisecond)
	if fired.Load() != 0 {
		t.Error("watchdog fired for a job that finished in time")
	}
}

func TestProbeIsSafeWithoutPool(t *testing.T) {
	var m Metrics // zero value, no pool: SetProbe must not panic
	m.SetProbe("x")
	if m.Probe() != "" {
		t.Error("zero-value Metrics stored a probe")
	}
}

// Regression for the watchdog/completion race: time.AfterFunc's Stop does
// not wait for a callback already in flight, so a job that finished right at
// the StuckAfter boundary could still be reported stuck afterwards. The fix
// guarantees a stuck report can never start once the job's execute has
// returned — and result delivery happens after that — so a report observed
// after a job's result was emitted is a bug, not bad luck.
func TestWatchdogNeverReportsCompletedJob(t *testing.T) {
	const n = 300
	const stuckAfter = 2 * time.Millisecond

	var delivered [n]atomic.Bool
	var mu sync.Mutex
	var violations []string

	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(*Metrics) (int, error) {
			// Spin to exactly the watchdog boundary, so the timer firing
			// and the job completing race on every single job.
			start := time.Now()
			for time.Since(start) < stuckAfter {
			}
			return i, nil
		}}
	}
	err := ForEachOrdered(jobs, Options{
		Workers:    4,
		StuckAfter: stuckAfter,
		OnStuck: func(id string, _ time.Duration, _ string, _ []byte) {
			var idx int
			fmt.Sscanf(id, "j%d", &idx)
			if delivered[idx].Load() {
				mu.Lock()
				violations = append(violations, id)
				mu.Unlock()
			}
		},
	}, func(i int, r Result[int]) error {
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
		}
		delivered[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Post-fix no report can outlive its job, so any straggler from the
	// pre-fix race fires within this grace window and is caught below
	// instead of panicking after the test returns.
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("%d completed jobs reported stuck (e.g. %s)", len(violations), violations[0])
	}
}

// Satellite coverage for the nesting case the package docs promise is safe:
// the outer pool's context is cancelled from inside a *nested* Collect worker
// mid-dispatch. The in-flight outer job (including its whole inner fan-out)
// must complete untouched; undispatched outer jobs must report ErrCanceled
// with the cause preserved; inner pools never observe the outer context.
func TestForEachOrderedCancelMidDispatchNestedCollect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const outer, inner = 8, 16
	wantSum := func(i int) int {
		sum := 0
		for k := 0; k < inner; k++ {
			sum += i*inner + k
		}
		return sum
	}
	jobs := make([]Job[int], outer)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("outer%d", i), Run: func(*Metrics) (int, error) {
			parts, err := Collect(4, inner, func(k int) (int, error) {
				if i == 0 && k == inner/2 {
					cancel() // lands mid-dispatch, from a nested worker goroutine
				}
				return i*inner + k, nil
			})
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, p := range parts {
				sum += p
			}
			return sum, nil
		}}
	}
	var emitted int
	err := ForEachOrdered(jobs, Options{Workers: 1, Context: ctx}, func(idx int, r Result[int]) error {
		if idx != emitted {
			t.Errorf("emit order broken: got %d, want %d", idx, emitted)
		}
		emitted++
		if idx == 0 {
			if r.Err != nil || r.Value != wantSum(0) {
				t.Errorf("cancelling job's own fan-out was disturbed: %+v", r)
			}
			return nil
		}
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("job %d: err = %v, want ErrCanceled", idx, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: cancellation cause not preserved: %v", idx, r.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != outer {
		t.Fatalf("emitted %d results, want %d (cancelled jobs still emit)", emitted, outer)
	}

	// Same shape with parallel outer workers: results are either a correct
	// full fan-out sum or a cancellation — never a partial sum — and the
	// pool still emits every result in order.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	jobs2 := make([]Job[int], outer)
	for i := range jobs2 {
		i := i
		jobs2[i] = Job[int]{ID: fmt.Sprintf("p%d", i), Run: func(*Metrics) (int, error) {
			parts, err := Collect(4, inner, func(k int) (int, error) {
				if i == 2 && k == 0 {
					cancel2()
				}
				return i*inner + k, nil
			})
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, p := range parts {
				sum += p
			}
			return sum, nil
		}}
	}
	canceled := 0
	for idx, r := range All(jobs2, Options{Workers: 3, Context: ctx2}) {
		switch {
		case r.Err == nil:
			if r.Value != wantSum(idx) {
				t.Errorf("job %d: partial fan-out sum %d, want %d", idx, r.Value, wantSum(idx))
			}
		case errors.Is(r.Err, ErrCanceled):
			canceled++
		default:
			t.Errorf("job %d: unexpected error %v", idx, r.Err)
		}
	}
	if canceled == 0 {
		t.Error("cancellation from a nested worker never skipped any outer job")
	}
}
