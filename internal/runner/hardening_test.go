package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestContextCancelSkipsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 6)
	var ran atomic.Int32
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(*Metrics) (int, error) {
			ran.Add(1)
			if i == 0 {
				cancel() // the running job observes cancellation mid-sweep
			}
			return i, nil
		}}
	}
	// Serial pool: job 0 runs and cancels; 1..5 must never start.
	results := All(jobs, Options{Workers: 1, Context: ctx})
	if results[0].Err != nil || results[0].Value != 0 {
		t.Fatalf("in-flight job aborted by pool: %+v", results[0])
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("job %s: err = %v, want ErrCanceled", r.ID, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %s: cancellation cause not preserved: %v", r.ID, r.Err)
		}
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("%d jobs ran after cancellation, want 1", got)
	}
}

func TestContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := All([]Job[int]{
		{ID: "a", Run: func(*Metrics) (int, error) { t.Error("job ran"); return 0, nil }},
	}, Options{Workers: 4, Context: ctx})
	if !errors.Is(results[0].Err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", results[0].Err)
	}
}

// Regression: every early-return path — fail-fast, emit abort, context
// cancellation — must drain its worker goroutines before returning. A leaked
// worker would accumulate across sweep invocations and eventually exhaust
// the scheduler.
func TestNoWorkerGoroutineLeakOnEarlyReturn(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fail := errors.New("boom")
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("j%d", i), Run: func(*Metrics) (int, error) {
			if i == 3 {
				return 0, fail
			}
			return i, nil
		}}
	}

	// Fail-fast trip.
	All(jobs, Options{Workers: 8, FailFast: true})
	// Emit abort.
	_ = ForEachOrdered(jobs, Options{Workers: 8}, func(i int, r Result[int]) error {
		if i == 2 {
			return fail
		}
		return nil
	})
	// Context cancellation mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	All(jobs, Options{Workers: 8, Context: ctx})

	// Workers exit after wg.Wait inside the calls above, but give the
	// runtime a moment to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}

func TestWatchdogReportsStuckJob(t *testing.T) {
	type report struct {
		jobID, probe string
		stacks       string
	}
	got := make(chan report, 1)
	release := make(chan struct{})
	jobs := []Job[int]{{ID: "slow", Run: func(m *Metrics) (int, error) {
		m.SetProbe("sim-clock 12m30s, 42 events")
		<-release
		return 1, nil
	}}}
	done := make(chan []Result[int], 1)
	go func() {
		done <- All(jobs, Options{
			Workers:    1,
			StuckAfter: 20 * time.Millisecond,
			OnStuck: func(id string, elapsed time.Duration, probe string, stacks []byte) {
				select {
				case got <- report{id, probe, string(stacks)}:
				default:
				}
			},
		})
	}()
	select {
	case r := <-got:
		if r.jobID != "slow" {
			t.Errorf("watchdog reported job %q", r.jobID)
		}
		if !strings.Contains(r.probe, "sim-clock 12m30s") {
			t.Errorf("report lacks the job's probe: %q", r.probe)
		}
		if !strings.Contains(r.stacks, "goroutine") {
			t.Errorf("report lacks goroutine stacks: %.80q", r.stacks)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired for a stuck job")
	}
	close(release)
	results := <-done
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("watchdog killed the job: %+v", results[0])
	}
}

func TestWatchdogSilentForFastJobs(t *testing.T) {
	var fired atomic.Int32
	All([]Job[int]{
		{ID: "fast", Run: func(*Metrics) (int, error) { return 1, nil }},
	}, Options{
		Workers:    1,
		StuckAfter: 30 * time.Millisecond,
		OnStuck: func(string, time.Duration, string, []byte) {
			fired.Add(1)
		},
	})
	time.Sleep(80 * time.Millisecond)
	if fired.Load() != 0 {
		t.Error("watchdog fired for a job that finished in time")
	}
}

func TestProbeIsSafeWithoutPool(t *testing.T) {
	var m Metrics // zero value, no pool: SetProbe must not panic
	m.SetProbe("x")
	if m.Probe() != "" {
		t.Error("zero-value Metrics stored a probe")
	}
}
