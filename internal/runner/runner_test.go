package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// job builds a trivial job returning its own id.
func job(id string, fn func(m *Metrics) (string, error)) Job[string] {
	return Job[string]{ID: id, Run: fn}
}

func TestAllPreservesSubmissionOrder(t *testing.T) {
	const n = 50
	jobs := make([]Job[int], n)
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) {
			time.Sleep(delays[i]) // scramble completion order
			return i * i, nil
		}}
	}
	results := All(jobs, Options{Workers: 8})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Errorf("result %d = %d, want %d", i, r.Value, i*i)
		}
	}
}

func TestForEachOrderedEmitsInOrderAndStreams(t *testing.T) {
	const n = 20
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) { return i, nil }}
	}
	var got []int
	err := ForEachOrdered(jobs, Options{Workers: 4}, func(i int, r Result[int]) error {
		got = append(got, r.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order broken at %d: got %v", i, got)
		}
	}
}

func TestPanicIsCapturedNotFatal(t *testing.T) {
	jobs := []Job[string]{
		job("ok", func(*Metrics) (string, error) { return "fine", nil }),
		job("boom", func(*Metrics) (string, error) { panic("kaboom") }),
		job("also-ok", func(*Metrics) (string, error) { return "fine too", nil }),
	}
	results := All(jobs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	r := results[1]
	if r.Err == nil {
		t.Fatal("panicking job reported no error")
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("error is %T, want *PanicError", r.Err)
	}
	if pe.JobID != "boom" || fmt.Sprint(pe.Value) != "kaboom" {
		t.Errorf("panic error = %q/%v", pe.JobID, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(r.Err.Error(), "kaboom") {
		t.Errorf("panic error lacks stack or message: %v", r.Err)
	}
	if !r.Metrics.Panicked {
		t.Error("Metrics.Panicked not set")
	}
}

func TestFailFastSkipsLaterJobs(t *testing.T) {
	const n = 64
	var started atomic.Int32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, errors.New("deliberate")
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}}
	}
	results := All(jobs, Options{Workers: 2, FailFast: true})
	if got := started.Load(); got == n {
		t.Errorf("fail-fast started all %d jobs", n)
	}
	if results[3].Err == nil || results[3].Err.Error() != "deliberate" {
		t.Errorf("failing job error = %v", results[3].Err)
	}
	var skipped int
	for _, r := range results {
		if errors.Is(r.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("no jobs were skipped")
	}
}

func TestContinueOnErrorRunsEverything(t *testing.T) {
	const n = 16
	var started atomic.Int32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) {
			started.Add(1)
			if i%4 == 0 {
				return 0, errors.New("deliberate")
			}
			return i, nil
		}}
	}
	results := All(jobs, Options{Workers: 4})
	if got := started.Load(); got != n {
		t.Errorf("started %d jobs, want %d", got, n)
	}
	for i, r := range results {
		wantErr := i%4 == 0
		if (r.Err != nil) != wantErr {
			t.Errorf("job %d err = %v, want error=%v", i, r.Err, wantErr)
		}
	}
}

func TestEmitErrorStopsAndReturns(t *testing.T) {
	const n = 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) { return i, nil }}
	}
	sentinel := errors.New("stop here")
	var emitted int
	err := ForEachOrdered(jobs, Options{Workers: 4}, func(i int, r Result[int]) error {
		emitted++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if emitted != 3 {
		t.Errorf("emitted %d results after abort, want 3", emitted)
	}
}

func TestMetricsPopulated(t *testing.T) {
	jobs := []Job[string]{
		job("metered", func(m *Metrics) (string, error) {
			m.AddEvents(123)
			m.AddEvents(77)
			time.Sleep(2 * time.Millisecond)
			_ = make([]byte, 1<<20)
			return "done", nil
		}),
	}
	r := All(jobs, Options{Workers: 1})[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Metrics.Events != 200 {
		t.Errorf("Events = %d, want 200", r.Metrics.Events)
	}
	if r.Metrics.Wall < 2*time.Millisecond {
		t.Errorf("Wall = %v, want >= 2ms", r.Metrics.Wall)
	}
	if r.Metrics.AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= 1MiB", r.Metrics.AllocBytes)
	}
}

func TestCollectMatchesSerialLoop(t *testing.T) {
	fn := func(i int) (int, error) { return i * 3, nil }
	const n = 25
	want := make([]int, n)
	for i := range want {
		want[i], _ = fn(i)
	}
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Collect(workers, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestCollectReturnsLowestIndexError(t *testing.T) {
	fn := func(i int) (int, error) {
		if i == 7 || i == 13 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Collect(workers, 20, fn)
		if err == nil || err.Error() != "job 7 failed" {
			t.Errorf("workers=%d: err = %v, want job 7's error", workers, err)
		}
	}
}

func TestCollectZeroAndNegative(t *testing.T) {
	out, err := Collect(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Collect(4, -1, func(i int) (int, error) { return i, nil }); err == nil {
		t.Error("negative n accepted")
	}
}

func TestDefaultWorkersAndConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	jobs := make([]Job[int], 24)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprint(i), Run: func(*Metrics) (int, error) {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return i, nil
		}}
	}
	All(jobs, Options{Workers: workers})
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
	// Workers <= 0 must still run everything (GOMAXPROCS default).
	results := All(jobs, Options{})
	for i, r := range results {
		if r.Err != nil || r.Value != i {
			t.Fatalf("default-workers job %d: %v %v", i, r.Value, r.Err)
		}
	}
}
