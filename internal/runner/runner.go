// Package runner provides a bounded worker pool for independent,
// deterministic simulation jobs — the fan-out engine behind the paper-scale
// experiment grids (methods × infrastructures × parameter sweeps).
//
// Every job is assumed to be a pure function of its inputs (each cdn
// simulation builds its own engine and RNG from an explicit seed), so
// running jobs concurrently changes wall-clock time but never results.
// The pool preserves that property end to end: results are delivered in
// submission order regardless of completion order, a panicking job is
// captured as that job's error instead of killing the process, and the
// first failure is reported deterministically (lowest submission index).
//
// Pools may nest — a figure job fanned out by cmd/experiments can itself
// fan its simulation runs through Collect. Nesting multiplies the number
// of runnable goroutines, not OS threads; CPU-bound oversubscription is
// bounded by GOMAXPROCS and is harmless in practice.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics records one job's execution measurements.
type Metrics struct {
	// Wall is the job's wall-clock duration.
	Wall time.Duration
	// Events is a domain-reported progress count (for simulation jobs,
	// discrete events processed). Jobs report it via AddEvents.
	Events uint64
	// AllocBytes approximates the heap bytes allocated while the job ran.
	// The underlying counter is process-global, so concurrently running
	// jobs observe each other's allocations; treat the value as
	// indicative, not exact, whenever Workers > 1.
	AllocBytes uint64
	// Panicked reports that Err wraps a recovered panic (*PanicError).
	Panicked bool

	// probe is the job's latest liveness report, read by the stuck-job
	// watchdog from its timer goroutine. A pointer so Metrics stays
	// copyable by value in Result.
	probe *atomic.Value
}

// AddEvents accumulates a job-reported progress count.
func (m *Metrics) AddEvents(n uint64) { m.Events += n }

// SetProbe publishes the job's current progress (e.g. "sim-clock 12m30s,
// 1.2M events") for the stuck-job watchdog to include in its report. Safe to
// call from the running job while the watchdog fires concurrently.
func (m *Metrics) SetProbe(s string) {
	if m.probe != nil {
		m.probe.Store(s)
	}
}

// Probe returns the latest SetProbe value, or "" when none was published.
func (m *Metrics) Probe() string {
	if m.probe == nil {
		return ""
	}
	s, _ := m.probe.Load().(string)
	return s
}

// Job is one independent unit of work.
type Job[T any] struct {
	// ID labels the job in results, errors, and panic reports.
	ID string
	// Run produces the job's value. It may report progress counts on m;
	// the pool fills the remaining Metrics fields.
	Run func(m *Metrics) (T, error)
}

// Result pairs one job's output with its measurements.
type Result[T any] struct {
	ID      string
	Value   T
	Err     error
	Metrics Metrics
}

// Options configures a pool run.
type Options struct {
	// Workers bounds the number of concurrently running jobs; a value
	// <= 0 means GOMAXPROCS.
	Workers int
	// FailFast stops handing out new jobs after the first failure; jobs
	// never started complete with ErrSkipped. Already-running jobs always
	// finish, so the lowest-index failure is always executed and its
	// error is deterministic run to run.
	FailFast bool
	// Context, when non-nil, cancels dispatch: once it is done, jobs not
	// yet started complete with an error wrapping ErrCanceled (and the
	// context's cause). In-flight jobs are not interrupted by the pool —
	// cancellation-aware jobs observe the same context themselves and
	// return early.
	Context context.Context
	// StuckAfter arms a per-job watchdog: a job still running after this
	// wall-clock duration is reported once via OnStuck with the job's
	// latest probe (Metrics.SetProbe) and a full goroutine stack dump. The
	// job is not killed — the report exists so an operator can tell a
	// livelocked sweep from a slow one. Zero disables the watchdog;
	// OnStuck must be non-nil for it to arm.
	StuckAfter time.Duration
	// OnStuck receives watchdog reports. It runs on the watchdog's timer
	// goroutine, concurrent with the still-running job and with other jobs.
	// A report for a job always completes before that job's result is
	// delivered: a job that already finished is never reported stuck.
	OnStuck func(jobID string, elapsed time.Duration, probe string, stacks []byte)
}

// ErrSkipped marks a job that was never started because an earlier job
// failed under FailFast.
var ErrSkipped = errors.New("runner: job skipped after earlier failure")

// ErrCanceled marks a job that was never started because the pool's context
// was cancelled.
var ErrCanceled = errors.New("runner: job canceled before start")

// PanicError is the error recorded for a job that panicked.
type PanicError struct {
	JobID string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v\n%s", e.JobID, e.Value, e.Stack)
}

// All executes jobs with bounded parallelism and returns one Result per
// job, in submission order. It never fails as a whole: per-job errors
// (including captured panics) land in the corresponding Result.
func All[T any](jobs []Job[T], opts Options) []Result[T] {
	out := make([]Result[T], len(jobs))
	ForEachOrdered(jobs, opts, func(i int, r Result[T]) error { //nolint:errcheck // emit never fails
		out[i] = r
		return nil
	})
	return out
}

// ForEachOrdered executes jobs with bounded parallelism and delivers each
// result to emit in submission order, as soon as it and all its
// predecessors have finished — completion order never reorders output, so
// streamed output is byte-identical to a serial run. emit runs on the
// calling goroutine. A non-nil error from emit stops further jobs from
// being handed out and is returned once in-flight jobs drain.
func ForEachOrdered[T any](jobs []Job[T], opts Options, emit func(i int, r Result[T]) error) error {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		next    int   // next job index to hand out
		stopped bool  // fail-fast tripped, emit aborted, or context cancelled
		cause   error // why undispatched jobs are skipped; nil means ErrSkipped
	)
	results := make([]Result[T], n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				skip := stopped
				skipErr := cause
				mu.Unlock()

				if skip {
					if skipErr == nil {
						skipErr = ErrSkipped
					}
					results[i] = Result[T]{ID: jobs[i].ID, Err: skipErr}
					close(done[i])
					continue
				}
				if ctx := opts.Context; ctx != nil {
					select {
					case <-ctx.Done():
						// Stop dispatch and record why, so every later job
						// reports the cancellation (not a generic skip).
						err := fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
						mu.Lock()
						stopped = true
						cause = err
						mu.Unlock()
						results[i] = Result[T]{ID: jobs[i].ID, Err: err}
						close(done[i])
						continue
					default:
					}
				}
				r := execute(jobs[i], opts)
				if r.Err != nil && opts.FailFast {
					mu.Lock()
					stopped = true
					mu.Unlock()
				}
				results[i] = r
				close(done[i])
			}
		}()
	}

	var emitErr error
	for i := 0; i < n; i++ {
		<-done[i]
		if emitErr != nil {
			continue // keep draining so workers are not leaked
		}
		if err := emit(i, results[i]); err != nil {
			emitErr = err
			mu.Lock()
			stopped = true
			mu.Unlock()
		}
	}
	wg.Wait()
	return emitErr
}

// execute runs one job, filling in its metrics and converting a panic into
// a *PanicError so one bad job cannot kill the whole run. When the watchdog
// is armed, a job still running after StuckAfter is reported once with its
// latest probe and a full goroutine dump.
func execute[T any](j Job[T], opts Options) (r Result[T]) {
	r.ID = j.ID
	r.Metrics.probe = new(atomic.Value)
	if opts.StuckAfter > 0 && opts.OnStuck != nil {
		m := &r.Metrics // the watchdog reads the probe the job writes
		start := time.Now()
		// done guards OnStuck against the completion race: time.AfterFunc's
		// Stop does not wait for a callback already in flight, so without
		// the guard a job that finished right at the StuckAfter boundary
		// could still be reported stuck afterwards. Marking done under the
		// same mutex the callback takes makes the guarantee strict: once
		// the deferred stop has run, no new report can start, and a report
		// already past the guard completes before execute returns.
		var (
			wmu  sync.Mutex
			done bool
		)
		w := time.AfterFunc(opts.StuckAfter, func() {
			wmu.Lock()
			defer wmu.Unlock()
			if done {
				return
			}
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			opts.OnStuck(j.ID, time.Since(start), m.Probe(), buf[:n])
		})
		defer func() {
			wmu.Lock()
			done = true
			wmu.Unlock()
			w.Stop()
		}()
	}
	allocStart := heapAllocBytes()
	start := time.Now()
	defer func() {
		r.Metrics.Wall = time.Since(start)
		if end := heapAllocBytes(); end > allocStart {
			r.Metrics.AllocBytes = end - allocStart
		}
		if p := recover(); p != nil {
			r.Metrics.Panicked = true
			r.Err = &PanicError{JobID: j.ID, Value: p, Stack: debug.Stack()}
		}
	}()
	r.Value, r.Err = j.Run(&r.Metrics)
	return r
}

// heapAllocBytes reads the process's cumulative heap allocation counter
// (cheap, no stop-the-world).
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Collect fans n indexed jobs out over workers goroutines and returns
// their values in index order. On failure it returns the error of the
// lowest-index failing job — the same error a plain serial loop would
// have returned — and nil values. workers <= 1 runs the jobs serially on
// the calling goroutine with no pool overhead, preserving the exact
// semantics of the loop it replaces (later jobs are not attempted).
func Collect[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	if workers <= 1 || n <= 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	jobs := make([]Job[T], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[T]{
			ID:  strconv.Itoa(i),
			Run: func(*Metrics) (T, error) { return fn(i) },
		}
	}
	results := All(jobs, Options{Workers: workers, FailFast: true})
	out := make([]T, n)
	for i, r := range results {
		if r.Err != nil {
			if errors.Is(r.Err, ErrSkipped) {
				// Skipped jobs only follow a real failure; keep
				// scanning for it.
				continue
			}
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}
