// Package runner provides a bounded worker pool for independent,
// deterministic simulation jobs — the fan-out engine behind the paper-scale
// experiment grids (methods × infrastructures × parameter sweeps).
//
// Every job is assumed to be a pure function of its inputs (each cdn
// simulation builds its own engine and RNG from an explicit seed), so
// running jobs concurrently changes wall-clock time but never results.
// The pool preserves that property end to end: results are delivered in
// submission order regardless of completion order, a panicking job is
// captured as that job's error instead of killing the process, and the
// first failure is reported deterministically (lowest submission index).
//
// Pools may nest — a figure job fanned out by cmd/experiments can itself
// fan its simulation runs through Collect. Nesting multiplies the number
// of runnable goroutines, not OS threads; CPU-bound oversubscription is
// bounded by GOMAXPROCS and is harmless in practice.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"
)

// Metrics records one job's execution measurements.
type Metrics struct {
	// Wall is the job's wall-clock duration.
	Wall time.Duration
	// Events is a domain-reported progress count (for simulation jobs,
	// discrete events processed). Jobs report it via AddEvents.
	Events uint64
	// AllocBytes approximates the heap bytes allocated while the job ran.
	// The underlying counter is process-global, so concurrently running
	// jobs observe each other's allocations; treat the value as
	// indicative, not exact, whenever Workers > 1.
	AllocBytes uint64
	// Panicked reports that Err wraps a recovered panic (*PanicError).
	Panicked bool
}

// AddEvents accumulates a job-reported progress count.
func (m *Metrics) AddEvents(n uint64) { m.Events += n }

// Job is one independent unit of work.
type Job[T any] struct {
	// ID labels the job in results, errors, and panic reports.
	ID string
	// Run produces the job's value. It may report progress counts on m;
	// the pool fills the remaining Metrics fields.
	Run func(m *Metrics) (T, error)
}

// Result pairs one job's output with its measurements.
type Result[T any] struct {
	ID      string
	Value   T
	Err     error
	Metrics Metrics
}

// Options configures a pool run.
type Options struct {
	// Workers bounds the number of concurrently running jobs; a value
	// <= 0 means GOMAXPROCS.
	Workers int
	// FailFast stops handing out new jobs after the first failure; jobs
	// never started complete with ErrSkipped. Already-running jobs always
	// finish, so the lowest-index failure is always executed and its
	// error is deterministic run to run.
	FailFast bool
}

// ErrSkipped marks a job that was never started because an earlier job
// failed under FailFast.
var ErrSkipped = errors.New("runner: job skipped after earlier failure")

// PanicError is the error recorded for a job that panicked.
type PanicError struct {
	JobID string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v\n%s", e.JobID, e.Value, e.Stack)
}

// All executes jobs with bounded parallelism and returns one Result per
// job, in submission order. It never fails as a whole: per-job errors
// (including captured panics) land in the corresponding Result.
func All[T any](jobs []Job[T], opts Options) []Result[T] {
	out := make([]Result[T], len(jobs))
	ForEachOrdered(jobs, opts, func(i int, r Result[T]) error { //nolint:errcheck // emit never fails
		out[i] = r
		return nil
	})
	return out
}

// ForEachOrdered executes jobs with bounded parallelism and delivers each
// result to emit in submission order, as soon as it and all its
// predecessors have finished — completion order never reorders output, so
// streamed output is byte-identical to a serial run. emit runs on the
// calling goroutine. A non-nil error from emit stops further jobs from
// being handed out and is returned once in-flight jobs drain.
func ForEachOrdered[T any](jobs []Job[T], opts Options, emit func(i int, r Result[T]) error) error {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		next    int  // next job index to hand out
		stopped bool // fail-fast tripped or emit aborted
	)
	results := make([]Result[T], n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				skip := stopped
				mu.Unlock()

				if skip {
					results[i] = Result[T]{ID: jobs[i].ID, Err: ErrSkipped}
					close(done[i])
					continue
				}
				r := execute(jobs[i])
				if r.Err != nil && opts.FailFast {
					mu.Lock()
					stopped = true
					mu.Unlock()
				}
				results[i] = r
				close(done[i])
			}
		}()
	}

	var emitErr error
	for i := 0; i < n; i++ {
		<-done[i]
		if emitErr != nil {
			continue // keep draining so workers are not leaked
		}
		if err := emit(i, results[i]); err != nil {
			emitErr = err
			mu.Lock()
			stopped = true
			mu.Unlock()
		}
	}
	wg.Wait()
	return emitErr
}

// execute runs one job, filling in its metrics and converting a panic into
// a *PanicError so one bad job cannot kill the whole run.
func execute[T any](j Job[T]) (r Result[T]) {
	r.ID = j.ID
	allocStart := heapAllocBytes()
	start := time.Now()
	defer func() {
		r.Metrics.Wall = time.Since(start)
		if end := heapAllocBytes(); end > allocStart {
			r.Metrics.AllocBytes = end - allocStart
		}
		if p := recover(); p != nil {
			r.Metrics.Panicked = true
			r.Err = &PanicError{JobID: j.ID, Value: p, Stack: debug.Stack()}
		}
	}()
	r.Value, r.Err = j.Run(&r.Metrics)
	return r
}

// heapAllocBytes reads the process's cumulative heap allocation counter
// (cheap, no stop-the-world).
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Collect fans n indexed jobs out over workers goroutines and returns
// their values in index order. On failure it returns the error of the
// lowest-index failing job — the same error a plain serial loop would
// have returned — and nil values. workers <= 1 runs the jobs serially on
// the calling goroutine with no pool overhead, preserving the exact
// semantics of the loop it replaces (later jobs are not attempted).
func Collect[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	if workers <= 1 || n <= 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	jobs := make([]Job[T], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[T]{
			ID:  strconv.Itoa(i),
			Run: func(*Metrics) (T, error) { return fn(i) },
		}
	}
	results := All(jobs, Options{Workers: workers, FailFast: true})
	out := make([]T, n)
	for i, r := range results {
		if r.Err != nil {
			if errors.Is(r.Err, ErrSkipped) {
				// Skipped jobs only follow a real failure; keep
				// scanning for it.
				continue
			}
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}
