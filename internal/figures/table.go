// Package figures regenerates every data figure in the paper's evaluation:
// the Section-3 measurement figures from a synthetic crawl trace, and the
// Section-4/5 evaluation figures from the cdn simulation. Each generator
// returns a Table the experiment harness prints; EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package figures

import (
	"fmt"
	"strings"
)

// Table is one figure's regenerated data series.
type Table struct {
	// ID is the figure key, e.g. "fig03".
	ID string
	// Title describes the figure as the paper captions it.
	Title string
	// Note records the paper's reported values for comparison.
	Note   string
	Header []string
	Rows   [][]string
	// SimEvents counts the discrete-simulation events behind the table,
	// when the generator reports them (sim-driven figures only). It is
	// not rendered; the experiments harness surfaces it in the -metrics
	// summary.
	SimEvents uint64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as tab-separated text with a header block.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "# paper: %s\n", t.Note)
	}
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
