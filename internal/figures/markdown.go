package figures

import (
	"fmt"
	"strings"
)

// Markdown renders a table as a GitHub-flavored markdown section, the format
// EXPERIMENTS.md records. Summary rows (first cell prefixed "#") become a
// bullet list under the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "*Paper:* %s\n\n", t.Note)
	}

	var dataRows, summaryRows [][]string
	for _, row := range t.Rows {
		if len(row) > 0 && strings.HasPrefix(row[0], "#") {
			summaryRows = append(summaryRows, row)
		} else {
			dataRows = append(dataRows, row)
		}
	}

	if len(dataRows) > 0 {
		b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
		for _, row := range dataRows {
			cells := make([]string, len(t.Header))
			for i := range cells {
				if i < len(row) {
					cells[i] = row[i]
				}
			}
			b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	for _, row := range summaryRows {
		name := strings.TrimSpace(strings.TrimPrefix(row[0], "#"))
		vals := make([]string, 0, len(row)-1)
		for _, cell := range row[1:] {
			if cell = strings.TrimSpace(cell); cell != "" {
				vals = append(vals, cell)
			}
		}
		fmt.Fprintf(&b, "- **%s**: %s\n", name, strings.Join(vals, " "))
	}
	if len(summaryRows) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}
