package figures

import (
	"fmt"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
)

// The fault figure family evaluates the fault-injection subsystem
// (internal/fault) end-to-end: per-method inconsistency and stale-serve
// rate under crash-recovery churn, recovery time versus fault intensity,
// and the value of failure-aware failover under a compound scenario.

// ExtFaults sweeps crash-recovery churn intensity across methods with
// failover enabled: how much user-observed inconsistency, stale serving,
// and recovery lag does each fraction of failed servers induce?
func ExtFaults(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-faults",
		Title:  "crash-recovery churn vs fault intensity: inconsistency, stale serves, recovery time",
		Note:   "paper Section 3.4: server failure is a root cause of observed inconsistency in the measured CDN",
		Header: []string{"method", "fail_frac", "crashes", "recovered", "user_mean_s", "stale_frac", "failed_visit_frac", "mean_recovery_s"},
	}
	fracs := []float64{0.1, 0.2, 0.4}
	systems := []core.System{core.SystemPush, core.SystemInvalidation, core.SystemTTL}
	results, err := collectRuns(t, scale.Parallel, len(fracs)*len(systems), func(i int) (*cdn.Result, error) {
		spec := fault.Spec{RandomCrashes: &fault.RandomCrashes{
			Frac:         fracs[i/len(systems)],
			RecoverAfter: fault.Duration(3 * time.Minute),
		}}
		res, err := core.Run(systems[i%len(systems)], scale.opts(
			core.WithFaults(spec), core.WithFailover())...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-faults: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, frac := range fracs {
		for si, sys := range systems {
			res := results[fi*len(systems)+si]
			t.AddRow(sys.Name, f2(frac), d0(res.Crashes), d0(res.Recoveries),
				f3(res.MeanUserInconsistency()), f4(res.StaleServeFrac()),
				f4(res.FailedVisitFrac()), f1(res.MeanRecoverySeconds()))
		}
	}
	return t, nil
}

// extFailoverSpec is the compound scenario ExtFailover runs: churn plus an
// ISP partition plus a provider outage, exercising every failover reaction
// (reparenting, user re-homing, TTL fallback, re-sync).
func extFailoverSpec() fault.Spec {
	return fault.Spec{
		RandomCrashes:   &fault.RandomCrashes{Frac: 0.15, RecoverAfter: fault.Duration(3 * time.Minute)},
		Partitions:      []fault.Partition{{StartFrac: 0.3, DurFrac: 0.15, RandomISPs: 3}},
		ProviderOutages: []fault.Window{{StartFrac: 0.7, DurFrac: 0.1}},
	}
}

// ExtFailover toggles failure-aware failover under the compound scenario:
// with it off, users keep hitting dead replicas and orphaned subtrees
// starve; with it on, timeouts trigger reparenting, user re-homing, and
// TTL fallback, bounding the damage.
func ExtFailover(scale SimScale) (*Table, error) {
	t := &Table{
		ID:    "ext-failover",
		Title: "failure-aware failover on/off under churn + partition + provider outage",
		Note: "failover reparents orphans, re-homes users, and TTL-falls-back during provider outages; final_frac exposes zombie-stale servers " +
			"(user_mean_s only averages updates a user eventually saw, so a never-recovering server biases it low; " +
			"fetch-on-visit systems also leave servers abandoned by re-homed users lazily stale, which no user observes)",
		Header: []string{"system", "failover", "user_mean_s", "stale_frac", "failed_visit_frac", "final_frac", "user_failovers", "reparents", "ttl_fallbacks"},
	}
	systems := []core.System{
		{Name: "TTL/multicast", Method: consistency.MethodTTL, Infra: consistency.InfraMulticast},
		core.SystemTTL,
		core.SystemSelf,
		core.SystemHAT,
	}
	modes := []bool{false, true}
	spec := extFailoverSpec()
	results, err := collectRuns(t, scale.Parallel, len(modes)*len(systems), func(i int) (*cdn.Result, error) {
		opts := []core.Option{core.WithFaults(spec)}
		if modes[i/len(systems)] {
			opts = append(opts, core.WithFailover())
		}
		res, err := core.Run(systems[i%len(systems)], scale.opts(opts...)...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-failover: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		label := "off"
		if mode {
			label = "on"
		}
		for si, sys := range systems {
			res := results[mi*len(systems)+si]
			frac := 0.0
			if res.LiveServers > 0 {
				frac = float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
			}
			t.AddRow(sys.Name, label, f3(res.MeanUserInconsistency()),
				f4(res.StaleServeFrac()), f4(res.FailedVisitFrac()), f3(frac),
				d0(res.UserFailovers), d0(res.ServerReparents), d0(res.TTLFallbacks))
		}
	}
	return t, nil
}

// FaultScenario runs every Section 5.3 system under one named built-in
// scenario (see fault.ScenarioNames) with failover enabled, reporting the
// robustness metrics side by side. It backs the experiment harness's
// -faults flag.
func FaultScenario(scale SimScale, name string) (*Table, error) {
	spec, err := fault.Scenario(name)
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	t := &Table{
		ID:     "fault-" + name,
		Title:  fmt.Sprintf("fault scenario %q across the Section 5.3 systems (failover on)", name),
		Note:   "paper Section 3.4 root causes replayed against every compared system",
		Header: []string{"system", "crashes", "recovered", "user_mean_s", "stale_frac", "failed_visit_frac", "mean_recovery_s", "reparents", "ttl_fallbacks"},
	}
	systems := core.Systems()
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		res, err := core.Run(systems[i], scale.opts(
			core.WithFaults(spec), core.WithFailover())...)
		if err != nil {
			return nil, fmt.Errorf("figures: fault-%s: %w", name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		res := results[i]
		t.AddRow(sys.Name, d0(res.Crashes), d0(res.Recoveries),
			f3(res.MeanUserInconsistency()), f4(res.StaleServeFrac()),
			f4(res.FailedVisitFrac()), f1(res.MeanRecoverySeconds()),
			d0(res.ServerReparents), d0(res.TTLFallbacks))
	}
	return t, nil
}
