package figures

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/workload"
)

// ExtScalePerfOutput receives ext-scale's machine-dependent throughput and
// peak-RSS report (stderr by default, so the deterministic table on stdout
// stays byte-identical). The benchmark harness points it at io.Discard:
// `go test` merges the test binary's stderr into its stdout mid-line, which
// would corrupt the benchmark result line the bench parser reads.
var ExtScalePerfOutput io.Writer = os.Stderr

// extScaleSystems are the four protocols the scalability sweep compares.
var extScaleSystems = []core.System{
	core.SystemTTL,
	core.SystemInvalidation,
	core.SystemPush,
	core.SystemHAT,
}

// ExtScale sweeps the user population 10^4 -> 10^6 over the Section 5.3
// deployment (Servers x 5 content servers, 850 at paper scale) under the
// cohort user model, for TTL, Invalidation, Push, and HAT. Memory and event
// volume stay fixed as users grow — state scales with cohorts, not users —
// which is what moves the evaluation from the paper's 4,250 users to
// production scale on one machine.
//
// The table reports only deterministic quantities (per-user inconsistency,
// stale-serve fraction, batched request traffic), so output is byte-identical
// between serial and parallel runs; wall-clock throughput (users/sec) and
// peak RSS go to stderr.
func ExtScale(scale SimScale) (*Table, error) {
	s5 := scale.section5()
	totals := []int{10_000, 100_000, 1_000_000}
	cohortsPer := 16
	if scale.Servers < 170 {
		// Reduced sweep for tests and smoke runs.
		totals = []int{1_000, 10_000}
		cohortsPer = 4
	}
	t := &Table{
		ID:     "ext-scale",
		Title:  "cohort-model user scalability: population sweep at fixed memory",
		Note:   "extension: ROADMAP north-star serves millions of users; per-server populations heavy-tailed as in anycast CDN measurements",
		Header: []string{"users", "cohorts", "system", "user_mean_s", "stale_frac", "content_msgs"},
	}

	// One heavy-tailed population per sweep point, shared across the four
	// systems so their comparison is apples-to-apples.
	pops := make([]*workload.Population, len(totals))
	for i, total := range totals {
		p, err := workload.GeneratePopulation(workload.PopulationConfig{
			Servers:          s5.Servers,
			TotalUsers:       total,
			Alpha:            1.2,
			CohortsPerServer: cohortsPer,
			SpreadMax:        50 * time.Second,
			Seed:             s5.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("figures: ext-scale: %w", err)
		}
		pops[i] = p
	}

	type perf struct {
		wall   time.Duration
		visits int
	}
	extra := []core.Option{
		core.WithUserModel(cdn.UserModelCohort),
		core.WithVisitAccounting(),
	}
	if scale.Shards > 0 {
		// Sharded engine: one run spreads over scale.Shards workers. The
		// worker count never changes the table (shard-count invariance);
		// the numbers differ from the serial engine's only because the two
		// draw from different per-cell RNG streams.
		extra = append(extra, core.WithShards(scale.Shards))
	}
	perfs := make([]perf, len(totals)*len(extScaleSystems))
	results, err := collectRuns(t, scale.Parallel, len(perfs), func(i int) (*cdn.Result, error) {
		pi, si := i/len(extScaleSystems), i%len(extScaleSystems)
		start := time.Now()
		res, err := core.Run(extScaleSystems[si], s5.opts(append(
			[]core.Option{core.WithPopulation(pops[pi])}, extra...)...)...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-scale: %s at %d users: %w",
				extScaleSystems[si].Name, totals[pi], err)
		}
		perfs[i] = perf{wall: time.Since(start), visits: res.UserObservations + res.FailedVisits}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	for pi, total := range totals {
		for si, sys := range extScaleSystems {
			res := results[pi*len(extScaleSystems)+si]
			t.AddRow(d0(total), d0(pops[pi].NumCohorts()), sys.Name,
				f3(res.MeanUserInconsistency()),
				f4(res.StaleServeFrac()),
				d0(res.Accounting.ByClass[netmodel.ClassContent].Messages))
		}
	}

	// Throughput and memory are machine-dependent, so they must not enter
	// the (serial-vs-parallel byte-identical) table; report them on stderr.
	for pi, total := range totals {
		for si, sys := range extScaleSystems {
			p := perfs[pi*len(extScaleSystems)+si]
			if p.wall <= 0 {
				continue
			}
			fmt.Fprintf(ExtScalePerfOutput, "ext-scale: %-12s users=%-8d wall=%-8s users/sec=%.3g visits/sec=%.3g\n",
				sys.Name, total, p.wall.Round(time.Millisecond),
				float64(total)/p.wall.Seconds(), float64(p.visits)/p.wall.Seconds())
		}
	}
	if rss, ok := peakRSSKB(); ok {
		fmt.Fprintf(ExtScalePerfOutput, "ext-scale: peak RSS %.1f MB\n", float64(rss)/1024)
	}
	return t, nil
}

// peakRSSKB reads the process high-water resident set size from
// /proc/self/status (Linux only; ok=false elsewhere).
func peakRSSKB() (int, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, found := strings.CutPrefix(line, "VmHWM:"); found {
			var kb int
			if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%d kB", &kb); err == nil {
				return kb, true
			}
		}
	}
	return 0, false
}
