package figures

import (
	"fmt"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/overlay"
)

// The ablations quantify the design decisions DESIGN.md calls out.

// AblationQueue toggles the output-port queuing model and shows that
// without it Push no longer degrades with packet size — i.e. the queuing
// model is what produces the paper's Figure 19 scalability result.
func AblationQueue(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ablation-queue",
		Title:  "output-port queuing ablation: Push inconsistency at 500KB updates",
		Note:   "queuing on reproduces Figure 19's Push degradation; off flattens it",
		Header: []string{"queuing", "push_mean_s"},
	}
	toggles := []bool{false, true}
	results, err := collectRuns(t, scale.Parallel, len(toggles), func(i int) (*cdn.Result, error) {
		res, err := core.Run(core.SystemPush, scale.opts(
			core.WithUpdateSizeKB(500),
			core.WithNetConfig(netmodel.Config{DefaultUplinkKBps: 2000, DisableQueuing: toggles[i]}))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ablation-queue: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, disable := range toggles {
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow(label, f3(results[i].MeanServerInconsistency()))
	}
	return t, nil
}

// AblationProximity compares the proximity-aware multicast tree against
// first-fit attachment on total edge length and resulting traffic cost.
func AblationProximity(scale SimScale) (*Table, error) {
	topo, err := sharedTopology(scale)
	if err != nil {
		return nil, err
	}
	locs := make([]geo.Point, 0, len(topo.Servers)+1)
	locs = append(locs, topo.Provider.Loc)
	for _, s := range topo.Servers {
		locs = append(locs, s.Loc)
	}
	prox, err := overlay.BuildMulticast(locs, 2)
	if err != nil {
		return nil, err
	}
	random, err := overlay.BuildRandomMulticast(len(locs), 2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-proximity",
		Title:  "proximity-aware vs first-fit multicast tree",
		Note:   "proximity-awareness is why multicast saves km in Figures 16/23",
		Header: []string{"tree", "total_edge_km", "max_depth"},
	}
	t.AddRow("proximity", f1(prox.TotalEdgeKm(locs, nil)), d0(prox.MaxDepth()))
	t.AddRow("first-fit", f1(random.TotalEdgeKm(locs, nil)), d0(random.MaxDepth()))
	return t, nil
}

// AblationAdaptive compares the paper's self-adaptive switch against the
// related-work adaptive-TTL predictor on message count and inconsistency
// under the bursty live-game workload (Section 5.1's argument).
func AblationAdaptive(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ablation-adaptive",
		Title:  "self-adaptive switch vs adaptive-TTL prediction",
		Note:   "Section 5.1: prediction mishandles abrupt silence/burst changes; the switch does not",
		Header: []string{"method", "update_msgs", "server_mean_s"},
	}
	methods := []consistency.Method{consistency.MethodSelfAdaptive, consistency.MethodAdaptiveTTL, consistency.MethodTTL}
	results, err := collectRuns(t, scale.Parallel, len(methods), func(i int) (*cdn.Result, error) {
		m := methods[i]
		res, err := core.Run(core.System{Name: m.String(), Method: m, Infra: consistency.InfraUnicast},
			scale.opts(core.WithServerTTL(60*time.Second))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ablation-adaptive: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range methods {
		t.AddRow(m.String(), d0(results[i].UpdateMsgsToServers), f3(results[i].MeanServerInconsistency()))
	}
	return t, nil
}

// AblationHilbert compares Hilbert-curve supernode clustering against naive
// modulo grouping by measuring HAT's update network load on each.
func AblationHilbert(scale SimScale) (*Table, error) {
	topo, err := sharedTopology(scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-hilbert",
		Title:  "Hilbert clustering vs modulo grouping: cluster diameter",
		Note:   "locality-preserving clusters keep intra-cluster polling short (Section 5.2)",
		Header: []string{"clustering", "avg_cluster_diameter_km"},
	}
	hilbert, err := topo.HilbertClusters(scale.Clusters)
	if err != nil {
		return nil, err
	}
	diameter := func(members []int) float64 {
		var maxD float64
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := geo.DistanceKm(topo.Servers[members[i]].Loc, topo.Servers[members[j]].Loc)
				if d > maxD {
					maxD = d
				}
			}
		}
		return maxD
	}
	var hilbertSum float64
	for _, c := range hilbert {
		hilbertSum += diameter(c.Members)
	}
	t.AddRow("hilbert", f1(hilbertSum/float64(len(hilbert))))

	var moduloSum float64
	k := scale.Clusters
	for c := 0; c < k; c++ {
		var members []int
		for i := c; i < len(topo.Servers); i += k {
			members = append(members, i)
		}
		moduloSum += diameter(members)
	}
	t.AddRow("modulo", f1(moduloSum/float64(k)))
	return t, nil
}

// AblationFailure injects supernode behaviour under the plain multicast
// tree with Push at two packet sizes, demonstrating that the tree keeps the
// provider uplink off the critical path (complement to Figure 19).
func AblationFailure(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ablation-depth",
		Title:  "multicast arity vs inconsistency and depth (TTL method)",
		Note:   "larger d -> shallower tree -> less TTL amplification (Section 4 d-ary remark)",
		Header: []string{"degree", "depth", "ttl_mean_s"},
	}
	degrees := []int{2, 4, 8}
	results, err := collectRuns(t, scale.Parallel, len(degrees), func(i int) (*cdn.Result, error) {
		res, err := runWith(scale, cdn.Config{
			Method:   consistency.MethodTTL,
			Infra:    consistency.InfraMulticast,
			Topology: topologyConfig(scale),
			// Updates default to a DefaultGame draw with this seed.
			TreeDegree: degrees[i],
			ServerTTL:  scale.ServerTTL,
			Seed:       scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("figures: ablation-depth: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, d := range degrees {
		t.AddRow(d0(d), d0(results[i].TreeDepth), f3(results[i].MeanServerInconsistency()))
	}
	return t, nil
}
