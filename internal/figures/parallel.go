package figures

import (
	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/runner"
)

// collectRuns fans n independent simulation runs out over the figure's
// worker budget (parallel; <= 1 keeps the plain serial loop) and returns
// the results in index order, accumulating processed-event counts onto the
// table. Every run builds its own engine and RNG from an explicit seed, so
// fan-out changes wall-clock time but never a figure's numbers: rows are
// assembled from the index-ordered results exactly as the serial loops
// did, keeping the rendered output byte-identical.
func collectRuns(t *Table, parallel, n int, fn func(i int) (*cdn.Result, error)) ([]*cdn.Result, error) {
	out, err := runner.Collect(parallel, n, fn)
	if err != nil {
		return nil, err
	}
	for _, r := range out {
		t.SimEvents += r.Events
	}
	return out, nil
}
