package figures

import (
	"fmt"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/traceimport"
)

// ImportReplay replays an imported spec bundle across the six named
// systems: the inferred server map, TTLs, update rate, user population,
// and fault windows replace the synthetic deployment, so the comparison
// runs on a workload shaped by observed data rather than by the paper's
// defaults. Failover is enabled, since the bundle's fault windows model
// the trace's absence runs.
func ImportReplay(scale SimScale, b *traceimport.Bundle) (*Table, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("figures: import-replay: %w", err)
	}
	s := b.Summary
	t := &Table{
		ID:    "import-replay",
		Title: "trace replay: named systems on the imported deployment",
		Note: fmt.Sprintf("inferred spec: %d servers at %d sites, %d users, server TTL %v, ~%.0f updates/day over %v, %d fault windows",
			s.Servers, s.Sites, s.Users, s.ServerTTL.D(), s.UpdatesPerDay, s.DayLength.D(), len(b.CrashWindows())),
		Header: []string{"system", "server_mean_s", "server_p5/med/p95", "user_mean_s", "user_p5/med/p95", "msgs_to_servers", "crashes"},
	}
	systems := core.Systems()
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		// Options are materialized per run: the bundle's topology must not
		// be shared across concurrently running simulations.
		bopts, err := b.Options()
		if err != nil {
			return nil, fmt.Errorf("figures: import-replay: %w", err)
		}
		opts := []core.Option{
			core.WithClusters(scale.Clusters),
			core.WithSeed(scale.Seed),
		}
		opts = append(opts, bopts...)
		opts = append(opts, core.WithFailover())
		if scale.Ctx != nil {
			opts = append(opts, core.WithContext(scale.Ctx))
		}
		if scale.Audit {
			opts = append(opts, core.WithAudit(scale.AuditCadence))
		}
		if scale.Probe != nil {
			opts = append(opts, core.WithTick(scale.Probe))
		}
		res, err := core.Run(systems[i], opts...)
		if err != nil {
			return nil, fmt.Errorf("figures: import-replay: %s: %w", systems[i].Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		res := results[i]
		ss, _ := stats.Summarize(res.ServerAvgInconsistency)
		us, _ := stats.Summarize(res.UserAvgInconsistency)
		t.AddRow(sys.Name,
			f3(res.MeanServerInconsistency()),
			fmt.Sprintf("%.2f/%.2f/%.2f", ss.P5, ss.Median, ss.P95),
			f3(res.MeanUserInconsistency()),
			fmt.Sprintf("%.2f/%.2f/%.2f", us.P5, us.Median, us.P95),
			fmt.Sprintf("%d", res.UpdateMsgsToServers),
			fmt.Sprintf("%d", res.Crashes))
	}
	return t, nil
}
