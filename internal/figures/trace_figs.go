package figures

import (
	"fmt"
	"time"

	"cdnconsistency/internal/analysis"
	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/tracegen"
)

// TraceEnv bundles a synthetic crawl with its analysis dataset; every
// Section-3 figure consumes one.
type TraceEnv struct {
	Dataset *analysis.Dataset
	Gen     *tracegen.Result
}

// TraceScale sizes the synthetic crawl.
type TraceScale struct {
	Servers int
	Days    int
	Users   int
	Seed    int64
}

// DefaultTraceScale approximates the paper's crawl at laptop scale: the
// paper polled 3000 servers for 15 days with 200 user vantage points.
func DefaultTraceScale() TraceScale {
	return TraceScale{Servers: 600, Days: 5, Users: 120, Seed: 42}
}

// SmallTraceScale keeps benches fast.
func SmallTraceScale() TraceScale {
	return TraceScale{Servers: 120, Days: 2, Users: 40, Seed: 42}
}

// NewTraceEnv generates the crawl and indexes it.
func NewTraceEnv(scale TraceScale) (*TraceEnv, error) {
	gen, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: scale.Servers, Seed: scale.Seed},
		Days:     scale.Days,
		Users:    scale.Users,
		Seed:     scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	ds, err := analysis.NewDataset(gen.Trace)
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	return &TraceEnv{Dataset: ds, Gen: gen}, nil
}

func cdfRows(t *Table, lengths []float64, points int) error {
	cdf, err := stats.NewCDF(lengths)
	if err != nil {
		return err
	}
	for _, p := range cdf.Points(points) {
		t.AddRow(f1(p.X), f4(p.P))
	}
	return nil
}

// Fig03 regenerates Figure 3: the CDF of inconsistency lengths across all
// content requests.
func Fig03(env *TraceEnv) (*Table, error) {
	ri := env.Dataset.RequestInconsistenciesAll()
	t := &Table{
		ID:     "fig03",
		Title:  "CDF of inconsistency lengths, all CDN requests",
		Note:   "10.1% < 10s, 20.3% > 50s, mean ~40s",
		Header: []string{"length_s", "cdf"},
	}
	if err := cdfRows(t, ri.Lengths, 25); err != nil {
		return nil, fmt.Errorf("figures: fig03: %w", err)
	}
	cdf, _ := stats.NewCDF(ri.Lengths)
	t.AddRow("# frac<10s", f4(cdf.At(10)))
	t.AddRow("# frac>50s", f4(1-cdf.At(50)))
	t.AddRow("# mean_s", f2(ri.Mean()))
	if ci, err := stats.BootstrapMeanCI(ri.Lengths, 200, 0.95, 1); err == nil {
		t.AddRow("# mean_95ci_s", fmt.Sprintf("[%.2f, %.2f]", ci.Lo, ci.Hi))
	}
	return t, nil
}

// Fig04 regenerates Figure 4(a)-(e): the user-perspective measures.
func Fig04(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	uv, err := d.UserView(0)
	if err != nil {
		return nil, fmt.Errorf("figures: fig04: %w", err)
	}
	t := &Table{
		ID:     "fig04",
		Title:  "user perspective: redirects, inconsistent servers, run lengths",
		Note:   "13-17% redirects, ~11% inconsistent servers, median run 160s, 70% of inconsistency runs <= 10s",
		Header: []string{"series", "x", "value"},
	}
	if s, err := stats.Summarize(uv.RedirectFractions); err == nil {
		t.AddRow("4a_redirect_frac", "p5/median/p95", fmt.Sprintf("%.3f/%.3f/%.3f", s.P5, s.Median, s.P95))
	}
	for day := 0; day < d.Days(); day++ {
		frac, err := d.InconsistentServerFraction(day)
		if err != nil {
			return nil, err
		}
		t.AddRow("4b_inconsistent_servers", d0(day), f4(frac))
	}
	if s, err := stats.Summarize(uv.ContinuousConsistency); err == nil {
		t.AddRow("4c_consistency_run_s", "p5/median/p95", fmt.Sprintf("%.1f/%.1f/%.1f", s.P5, s.Median, s.P95))
	}
	if s, err := stats.Summarize(uv.ContinuousInconsistency); err == nil {
		t.AddRow("4d_inconsistency_run_s", "p5/median/p95", fmt.Sprintf("%.1f/%.1f/%.1f", s.P5, s.Median, s.P95))
	}
	for period := 10; period <= 60; period += 10 {
		runs, err := d.ResampledInconsistencyRuns(0, time.Duration(period)*time.Second)
		if err != nil {
			return nil, err
		}
		if len(runs) == 0 {
			t.AddRow("4e_runs_vs_period", d0(period), "-")
			continue
		}
		s, _ := stats.Summarize(runs)
		t.AddRow("4e_runs_vs_period", d0(period), fmt.Sprintf("%.1f/%.1f/%.1f", s.P5, s.Median, s.P95))
	}
	return t, nil
}

// Fig05 regenerates Figure 5: inner-cluster inconsistency (same-location
// clusters, cluster-local alphas); its CDF is ~linear on [0, TTL].
func Fig05(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	byCity := make(map[int]map[string]bool)
	for _, s := range d.Trace.Servers {
		if byCity[s.City] == nil {
			byCity[s.City] = make(map[string]bool)
		}
		byCity[s.City][s.ID] = true
	}
	var lengths []float64
	for day := 0; day < d.Days(); day++ {
		for _, members := range byCity {
			if len(members) < 2 {
				continue
			}
			ri, err := d.ScopedInconsistencies(day, members, members)
			if err != nil {
				return nil, err
			}
			lengths = append(lengths, ri.Lengths...)
		}
	}
	t := &Table{
		ID:     "fig05",
		Title:  "CDF of inner-cluster inconsistency lengths",
		Note:   "31.5% < 10s; ~linear CDF up to TTL=60s",
		Header: []string{"length_s", "cdf"},
	}
	if err := cdfRows(t, lengths, 25); err != nil {
		return nil, fmt.Errorf("figures: fig05: %w", err)
	}
	return t, nil
}

// Fig06 regenerates Figure 6: the TTL inference.
func Fig06(env *TraceEnv) (*Table, error) {
	ri := env.Dataset.RequestInconsistenciesAll()
	sweep, err := analysis.TTLSweep(ri.Lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("figures: fig06: %w", err)
	}
	t := &Table{
		ID:     "fig06",
		Title:  "TTL inference: deviation sweep and theory RMSE",
		Note:   "minimum deviation at TTL=60s; RMSE 0.046 (60s) vs 0.096 (80s)",
		Header: []string{"candidate_ttl_s", "deviation"},
	}
	for _, s := range sweep {
		t.AddRow(f1(s.CandidateTTL.Seconds()), f4(s.Deviation))
	}
	inferred, err := analysis.InferTTL(ri.Lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		return nil, err
	}
	t.AddRow("# inferred_ttl_s", f1(inferred.Seconds()))
	for _, ttl := range []time.Duration{60 * time.Second, 80 * time.Second} {
		rmse, err := analysis.TTLTheoryRMSE(ri.Lengths, ttl, 30)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("# rmse_ttl_%ds", int(ttl.Seconds())), f4(rmse))
	}
	if share, err := analysis.TTLShare(ri.Lengths, inferred); err == nil {
		t.AddRow("# ttl_share_of_inconsistency", f3(share))
	}
	return t, nil
}

// Fig07 regenerates Figure 7: the provider's own inconsistency.
func Fig07(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	var lengths []float64
	var fresh, total int
	for day := 0; day < d.Days(); day++ {
		ri, err := d.ProviderInconsistencies(day)
		if err != nil {
			return nil, err
		}
		lengths = append(lengths, ri.Lengths...)
		fresh += ri.Fresh
		total += ri.Total
	}
	t := &Table{
		ID:     "fig07",
		Title:  "CDF of provider-served inconsistency lengths",
		Note:   "90.2% < 10s, mean 3.43s",
		Header: []string{"length_s", "cdf"},
	}
	if len(lengths) == 0 {
		t.AddRow("# all_fresh", d0(total))
		return t, nil
	}
	if err := cdfRows(t, lengths, 15); err != nil {
		return nil, err
	}
	mean, _ := stats.Mean(lengths)
	t.AddRow("# mean_s", f2(mean))
	t.AddRow("# fresh_frac", f4(float64(fresh)/float64(total)))
	return t, nil
}

// Fig08 regenerates Figure 8: consistency ratio vs provider distance.
func Fig08(env *TraceEnv) (*Table, error) {
	points, corr, err := env.Dataset.DistanceCorrelation(1000)
	if err != nil {
		return nil, fmt.Errorf("figures: fig08: %w", err)
	}
	t := &Table{
		ID:     "fig08",
		Title:  "avg consistency ratio vs provider-server distance",
		Note:   "essentially flat, Pearson r = 0.11",
		Header: []string{"distance_km", "avg_ratio", "servers"},
	}
	for _, p := range points {
		t.AddRow(f1(p.DistanceKm), f4(p.AvgRatio), d0(p.Servers))
	}
	t.AddRow("# pearson_r", f3(corr), "")
	return t, nil
}

// Fig09 regenerates Figure 9: intra- vs inter-ISP inconsistency.
func Fig09(env *TraceEnv) (*Table, error) {
	clusters, err := env.Dataset.ISPAnalysis(0)
	if err != nil {
		return nil, fmt.Errorf("figures: fig09: %w", err)
	}
	t := &Table{
		ID:     "fig09",
		Title:  "intra- vs inter-ISP inconsistency per ISP cluster",
		Note:   "inter >= intra everywhere; average increment in [3.69, 23.2]s",
		Header: []string{"isp", "servers", "intra_p5/med/p95", "inter_p5/med/p95", "avg_intra", "avg_inter"},
	}
	var incMin, incMax float64
	first := true
	for _, c := range clusters {
		t.AddRow(d0(c.ISP), d0(c.Servers),
			fmt.Sprintf("%.1f/%.1f/%.1f", c.Intra.P5, c.Intra.Median, c.Intra.P95),
			fmt.Sprintf("%.1f/%.1f/%.1f", c.Inter.P5, c.Inter.Median, c.Inter.P95),
			f2(c.AvgIntra), f2(c.AvgInter))
		inc := c.AvgInter - c.AvgIntra
		if first || inc < incMin {
			incMin = inc
		}
		if first || inc > incMax {
			incMax = inc
		}
		first = false
	}
	t.AddRow("# increment_range_s", fmt.Sprintf("[%.2f, %.2f]", incMin, incMax), "", "", "", "")
	return t, nil
}

// Fig10 regenerates Figure 10: provider response times, absence lengths,
// and the absence effect on inconsistency.
func Fig10(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	t := &Table{
		ID:     "fig10",
		Title:  "provider response time; absences and their inconsistency effect",
		Note:   "responses in [0.5,2.1]s; absences 30.4% <10s, 93.1% <50s; inconsistency grows 38.1->43.9s with absence length",
		Header: []string{"series", "x", "value"},
	}
	rts, err := d.ProviderResponseTimes(0)
	if err != nil {
		return nil, err
	}
	if s, err := stats.Summarize(rts); err == nil {
		t.AddRow("10a_response_time_s", "p5/median/p95", fmt.Sprintf("%.2f/%.2f/%.2f", s.P5, s.Median, s.P95))
	}
	var absLens []float64
	for day := 0; day < d.Days(); day++ {
		abs, err := d.Absences(day)
		if err != nil {
			return nil, err
		}
		for _, a := range abs {
			absLens = append(absLens, a.Length.Seconds())
		}
	}
	if len(absLens) > 0 {
		cdf, _ := stats.NewCDF(absLens)
		t.AddRow("10b_absence_frac_under_10s", "", f4(cdf.At(10)))
		t.AddRow("10b_absence_frac_under_50s", "", f4(cdf.At(50)))
	}
	bins, err := d.AbsenceEffect(0, 50*time.Second, 400*time.Second)
	if err != nil {
		return nil, err
	}
	for _, b := range bins {
		if b.N == 0 && b.MaxLength > 0 {
			continue
		}
		t.AddRow("10c_avg_inconsistency_s", f1(b.MaxLength.Seconds()), f2(b.AvgI))
	}
	prox, err := d.AbsenceProximityEffect(0, 60*time.Second, nil)
	if err != nil {
		return nil, err
	}
	for _, p := range prox {
		if p.N == 0 {
			continue
		}
		t.AddRow("10d_before/after_s", f1(p.GroupMax.Seconds()),
			fmt.Sprintf("%.1f/%.1f", p.AvgBefore, p.AvgAfter))
	}
	return t, nil
}

// Fig11 regenerates Figure 11: the static-tree existence tests.
func Fig11(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	clusters := make(map[string][]string)
	for _, s := range d.Trace.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		clusters[key] = append(clusters[key], s.ID)
	}
	daily, err := d.ClusterDailyInconsistency(clusters)
	if err != nil {
		return nil, fmt.Errorf("figures: fig11: %w", err)
	}
	t := &Table{
		ID:     "fig11",
		Title:  "static multicast-tree non-existence: cluster min/max and rank churn",
		Note:   "per-cluster daily averages vary widely; server ranks churn across days",
		Header: []string{"cluster", "min_avg_s", "max_avg_s"},
	}
	limit := 20
	for i, cd := range daily {
		if i >= limit {
			break
		}
		t.AddRow(cd.Key, f2(cd.Min), f2(cd.Max))
	}
	// Rank stability of the largest cluster's servers (Figures 11(c,d)).
	var largest []string
	for _, members := range clusters {
		if len(members) > len(largest) {
			largest = members
		}
	}
	if len(largest) >= 2 {
		rs, err := d.ServerRankStability(largest)
		if err == nil {
			t.AddRow("# server_rank_spread", f3(rs.MeanSpread), "")
		}
	}
	return t, nil
}

// Fig12 regenerates Figure 12: the dynamic-tree test (CDF of per-server
// maximum inconsistency).
func Fig12(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	t := &Table{
		ID:     "fig12",
		Title:  "CDF of per-server maximum inconsistency (absence-free servers)",
		Note:   "76.7%/86.9% of maxima below TTL on the two sampled days",
		Header: []string{"series", "x", "value"},
	}
	days := d.Days()
	if days > 2 {
		days = 2
	}
	for day := 0; day < days; day++ {
		res, err := d.MaxInconsistencyTest(day, 60*time.Second)
		if err != nil {
			return nil, err
		}
		if len(res.Maxima) == 0 {
			continue
		}
		cdf, err := res.MaximaCDF()
		if err != nil {
			return nil, err
		}
		for _, p := range cdf.Points(12) {
			t.AddRow(fmt.Sprintf("day%d_cdf", day), f1(p.X), f4(p.P))
		}
		t.AddRow(fmt.Sprintf("# day%d_frac_under_ttl", day), "", f4(res.FracUnderTTL))
		t.AddRow(fmt.Sprintf("# day%d_frac_under_2ttl", day), "", f4(res.FracUnder2TTL))
	}
	return t, nil
}

// TreeVerdictTable summarizes the Section 3.5 conclusion.
func TreeVerdictTable(env *TraceEnv) (*Table, error) {
	d := env.Dataset
	clusters := make(map[string][]string)
	for _, s := range d.Trace.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		clusters[key] = append(clusters[key], s.ID)
	}
	v, err := d.TreeExistence(clusters, 60*time.Second)
	if err != nil {
		return nil, fmt.Errorf("figures: verdict: %w", err)
	}
	t := &Table{
		ID:     "tree-verdict",
		Title:  "Section 3.5 verdict: does the CDN use a multicast tree?",
		Note:   "paper concludes: no static tree, no dynamic tree -> unicast TTL polling",
		Header: []string{"metric", "value"},
	}
	t.AddRow("cluster_rank_spread", f3(v.ClusterRankSpread))
	t.AddRow("server_rank_spread", f3(v.ServerRankSpread))
	t.AddRow("frac_under_ttl", f3(v.FracUnderTTL))
	t.AddRow("frac_under_2ttl", f3(v.FracUnder2TTL))
	t.AddRow("static_tree_likely", fmt.Sprintf("%v", v.StaticTreeLikely))
	t.AddRow("dynamic_tree_likely", fmt.Sprintf("%v", v.DynamicTreeLikely))
	return t, nil
}
