package figures

import (
	"fmt"
	"time"

	"cdnconsistency/internal/catalog"
	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/runner"
	"cdnconsistency/internal/topology"
)

// The extension studies cover what the paper discusses but does not
// evaluate: the broadcast taxonomy class, node failures on the multicast
// tree, cooperative leases, and the DNS request-routing plane.

// ExtBroadcast quantifies why the paper dismisses broadcast (Section 1):
// flooding matches Push's consistency at a message cost quadratic in
// cluster size.
func ExtBroadcast(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-broadcast",
		Title:  "broadcast (cluster flooding) vs push: consistency and message blowup",
		Note:   "paper Section 1: broadcast cannot scale due to an overwhelming number of redundant update messages",
		Header: []string{"system", "update_msgs", "server_mean_s"},
	}
	systems := []core.System{
		core.SystemPush,
		{Name: "Broadcast", Method: consistency.MethodPush, Infra: consistency.InfraBroadcast},
	}
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		res, err := core.Run(systems[i], scale.opts()...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-broadcast: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	push, bcast := results[0], results[1]
	t.AddRow("Push/unicast", d0(push.UpdateMsgsToServers), f3(push.MeanServerInconsistency()))
	t.AddRow("Push/broadcast", d0(bcast.UpdateMsgsToServers), f3(bcast.MeanServerInconsistency()))
	t.AddRow("# msg_blowup_x", f1(float64(bcast.UpdateMsgsToServers)/float64(push.UpdateMsgsToServers)), "")
	return t, nil
}

// ExtTreeFailure quantifies the paper's multicast criticism (Section 1):
// node failures strand subtrees unless the structure is maintained.
func ExtTreeFailure(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-tree-failure",
		Title:  "multicast push under server failures: repair on/off",
		Note:   "paper Section 1: node failures break structure connectivity and lead to unsuccessful update propagation",
		Header: []string{"repair", "failed", "live_at_final", "live", "final_frac"},
	}
	failures := scale.Servers / 8
	repairs := []bool{false, true}
	results, err := collectRuns(t, scale.Parallel, len(repairs), func(i int) (*cdn.Result, error) {
		res, err := core.Run(core.System{
			Name: "Push", Method: consistency.MethodPush, Infra: consistency.InfraMulticast,
		}, scale.opts(core.WithFailures(failures, repairs[i]))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-tree-failure: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, repair := range repairs {
		res := results[i]
		label := "off"
		if repair {
			label = "on"
		}
		frac := 0.0
		if res.LiveServers > 0 {
			frac = float64(res.LiveServersAtFinalVersion) / float64(res.LiveServers)
		}
		t.AddRow(label, d0(res.FailedServers), d0(res.LiveServersAtFinalVersion),
			d0(res.LiveServers), f3(frac))
	}
	return t, nil
}

// ExtLease evaluates cooperative leases (related work [13]) against Push
// and TTL in the hot and idle regimes.
func ExtLease(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-lease",
		Title:  "cooperative leases vs Push and TTL",
		Note:   "leases track Push while content is visited and decay to demand-driven renewals when idle",
		Header: []string{"system", "users_per_server", "update_msgs", "server_mean_s"},
	}
	userCounts := []int{scale.UsersPerServer, 0}
	systems := []core.System{
		{Name: "Lease", Method: consistency.MethodLease, Infra: consistency.InfraUnicast},
		core.SystemPush,
		core.SystemTTL,
	}
	results, err := collectRuns(t, scale.Parallel, len(userCounts)*len(systems), func(i int) (*cdn.Result, error) {
		res, err := core.Run(systems[i%len(systems)], scale.opts(
			core.WithUsersPerServer(userCounts[i/len(systems)]),
			core.WithLeaseDuration(60*time.Second))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-lease: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for ui, users := range userCounts {
		for si, sys := range systems {
			res := results[ui*len(systems)+si]
			t.AddRow(sys.Name, d0(users), d0(res.UpdateMsgsToServers), f3(res.MeanServerInconsistency()))
		}
	}
	return t, nil
}

// ExtRegime evaluates the future-work regime controller (paper Sections 4.6
// and 6): servers probe their visit/update ratio and switch between Push,
// Invalidation, and TTL. Across a hot scenario (many readers, sparse
// updates) and a cold one (few readers, dense updates) the controller
// should approach the best single method of each.
func ExtRegime(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-regime",
		Title:  "future-work regime controller vs fixed methods (hot and cold content)",
		Note:   "Section 4.6: no single method wins everywhere; a self-adapting strategy can track the optimum",
		Header: []string{"scenario", "method", "update_msgs", "server_mean_s"},
	}
	scenarios := []struct {
		name    string
		users   int
		userTTL time.Duration
		meanGap time.Duration
	}{
		{"hot", 4, 10 * time.Second, 60 * time.Second},
		{"cold", 1, 3 * time.Minute, 5 * time.Second},
	}
	methods := []consistency.Method{
		consistency.MethodRegime, consistency.MethodPush,
		consistency.MethodInvalidation, consistency.MethodTTL,
	}
	results, err := collectRuns(t, scale.Parallel, len(scenarios)*len(methods), func(i int) (*cdn.Result, error) {
		sc := scenarios[i/len(methods)]
		m := methods[i%len(methods)]
		game := workloadSingle(30*time.Minute, sc.meanGap)
		res, err := core.Run(core.System{Name: m.String(), Method: m, Infra: consistency.InfraUnicast},
			scale.opts(
				core.WithUsersPerServer(sc.users),
				core.WithUserTTL(sc.userTTL),
				core.WithGame(game))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-regime: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scenarios {
		for mi, m := range methods {
			res := results[si*len(methods)+mi]
			t.AddRow(sc.name, m.String(), d0(res.UpdateMsgsToServers), f3(res.MeanServerInconsistency()))
		}
	}
	return t, nil
}

// ExtCatalog evaluates the multi-content fleet planner: a catalog of live
// contents (the paper's motivating mix — live games, e-commerce, auctions,
// news) with Zipf popularity, each assigned the cheapest modeled method
// meeting its staleness budget, against one-size-fits-all fleets.
func ExtCatalog(scale SimScale) (*Table, error) {
	cat, err := catalog.Generate(catalog.GenerateConfig{
		Contents: 24, Duration: 20 * time.Minute, Seed: scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("figures: ext-catalog: %w", err)
	}
	topoCfg := topology.Config{Servers: scale.Servers / 2, Seed: scale.Seed}
	ttl := 60 * time.Second
	plan, err := catalog.PlanCatalog(cat, topoCfg.Servers, ttl)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-catalog",
		Title:  "multi-content fleet: cost-model planner vs one-size-fits-all",
		Note:   "paper conclusion: consider varying visit frequencies and consistency requirements per customer",
		Header: []string{"fleet", "total_KB", "total_kmKB", "mean_staleness_s", "worst_budget_miss_s"},
	}
	fleets := []struct {
		name   string
		assign func(catalog.Content) consistency.Method
	}{
		{"planned", func(c catalog.Content) consistency.Method { return plan[c.ID] }},
		{"all-push", func(catalog.Content) consistency.Method { return consistency.MethodPush }},
		{"all-ttl", func(catalog.Content) consistency.Method { return consistency.MethodTTL }},
		{"all-invalidation", func(catalog.Content) consistency.Method { return consistency.MethodInvalidation }},
	}
	// The four fleets share only read-only inputs (catalog, plan), so
	// they fan out like any other grid; RunFleet results carry no event
	// counts, so this uses the runner directly.
	results, err := runner.Collect(scale.Parallel, len(fleets), func(i int) (*catalog.FleetResult, error) {
		res, err := catalog.RunFleet(cat, fleets[i].assign, topoCfg, ttl, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-catalog %s: %w", fleets[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range fleets {
		res := results[i]
		t.AddRow(f.name, f1(res.TotalKB), e2(res.TotalKmKB),
			f2(res.MeanStaleness), f2(res.WorstBudgetMiss))
	}
	return t, nil
}

// ExtDNS runs the DNS-routed user plane (Figure 1 mechanics) and reports
// the redirect rate and the user-observed inconsistency it induces per
// method — the mechanism behind the paper's Section 3.3 findings.
func ExtDNS(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "ext-dns",
		Title:  "DNS request routing: redirect rate and induced user inconsistency",
		Note:   "paper Section 3.3: expiring resolver entries + authoritative re-assignment redirect ~13-17% of visits onto possibly-stale replicas",
		Header: []string{"method", "redirect_rate", "user_inconsistent_frac"},
	}
	systems := []core.System{core.SystemPush, core.SystemInvalidation, core.SystemTTL, core.SystemHAT}
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		res, err := core.Run(systems[i], scale.opts(
			core.WithDNSRouting(20*time.Second),
			core.WithServerTTL(60*time.Second))...)
		if err != nil {
			return nil, fmt.Errorf("figures: ext-dns: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		res := results[i]
		rate := 0.0
		if res.DNSVisits > 0 {
			rate = float64(res.DNSRedirects) / float64(res.DNSVisits)
		}
		t.AddRow(sys.Name, f4(rate), f4(res.InconsistentObservationFrac()))
	}
	return t, nil
}
