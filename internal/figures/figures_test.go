package figures

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envVal  *TraceEnv
	envErr  error
)

func smallEnv(t *testing.T) *TraceEnv {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewTraceEnv(SmallTraceScale())
	})
	if envErr != nil {
		t.Fatalf("NewTraceEnv: %v", envErr)
	}
	return envVal
}

func checkTable(t *testing.T, tab *Table, err error, wantID string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", wantID, err)
	}
	if tab.ID != wantID {
		t.Errorf("ID = %s, want %s", tab.ID, wantID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", wantID)
	}
	s := tab.String()
	if !strings.Contains(s, wantID) || !strings.Contains(s, "\t") {
		t.Errorf("%s: String() malformed:\n%s", wantID, s)
	}
}

func TestTraceFigures(t *testing.T) {
	env := smallEnv(t)
	type gen func(*TraceEnv) (*Table, error)
	cases := []struct {
		id string
		fn gen
	}{
		{"fig03", Fig03}, {"fig04", Fig04}, {"fig05", Fig05},
		{"fig06", Fig06}, {"fig07", Fig07}, {"fig08", Fig08},
		{"fig09", Fig09}, {"fig10", Fig10}, {"fig11", Fig11},
		{"fig12", Fig12}, {"tree-verdict", TreeVerdictTable},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			tab, err := c.fn(env)
			checkTable(t, tab, err, c.id)
		})
	}
}

func TestTreeVerdictConcludesUnicast(t *testing.T) {
	env := smallEnv(t)
	tab, err := TreeVerdictTable(env)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range tab.Rows {
		got[row[0]] = row[1]
	}
	if got["static_tree_likely"] != "false" {
		t.Errorf("static_tree_likely = %s", got["static_tree_likely"])
	}
	if got["dynamic_tree_likely"] != "false" {
		t.Errorf("dynamic_tree_likely = %s", got["dynamic_tree_likely"])
	}
}

func TestFig06InfersTTLNear60(t *testing.T) {
	env := smallEnv(t)
	tab, err := Fig06(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] == "# inferred_ttl_s" {
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 50 || v > 75 {
				t.Errorf("inferred TTL = %v, want ~60", v)
			}
			return
		}
	}
	t.Error("inferred TTL row missing")
}

func TestSimFigures(t *testing.T) {
	scale := SmallSimScale()
	scale.Servers = 40
	scale.UsersPerServer = 2
	scale.Clusters = 5
	type gen func(SimScale) (*Table, error)
	cases := []struct {
		id string
		fn gen
	}{
		{"fig14", Fig14}, {"fig15", Fig15}, {"fig16", Fig16},
		{"fig17", Fig17}, {"fig18", Fig18},
		{"fig23", Fig23},
		{"ext-broadcast", ExtBroadcast},
		{"ext-tree-failure", ExtTreeFailure},
		{"ext-lease", ExtLease},
		{"ext-dns", ExtDNS},
		{"ext-regime", ExtRegime},
		{"ext-catalog", ExtCatalog},
		{"ext-faults", ExtFaults},
		{"ext-failover", ExtFailover},
		{"fault-mixed", func(s SimScale) (*Table, error) { return FaultScenario(s, "mixed") }},
		{"ablation-queue", AblationQueue},
		{"ablation-proximity", AblationProximity},
		{"ablation-adaptive", AblationAdaptive},
		{"ablation-hilbert", AblationHilbert},
		{"ablation-depth", AblationFailure},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			tab, err := c.fn(scale)
			checkTable(t, tab, err, c.id)
		})
	}
}

func TestSimFiguresSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep figures are slow")
	}
	scale := SmallSimScale()
	scale.Servers = 30
	scale.UsersPerServer = 2
	scale.Clusters = 5
	type gen func(SimScale) (*Table, error)
	cases := []struct {
		id string
		fn gen
	}{
		{"fig19", Fig19}, {"fig20", Fig20}, {"fig22", Fig22}, {"fig24", Fig24},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			tab, err := c.fn(scale)
			checkTable(t, tab, err, c.id)
		})
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Note: "n", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "# paper: n", "a\tb", "1\t2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Errorf("f1 = %s", f1(1.25))
	}
	if f2(3.14159) != "3.14" || f3(3.14159) != "3.142" || f4(0.5) != "0.5000" {
		t.Error("f2/f3/f4 wrong")
	}
	if d0(7) != "7" {
		t.Error("d0 wrong")
	}
	if !strings.Contains(e2(12345.0), "e+04") {
		t.Errorf("e2 = %s", e2(12345.0))
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "figX", Title: "demo", Note: "paper said so", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("# summary_metric", "3.14")
	md := tab.Markdown()
	for _, want := range []string{
		"### figX — demo",
		"*Paper:* paper said so",
		"| a | b |",
		"| 1 | 2 |",
		"- **summary_metric**: 3.14",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableMarkdownNoSummary(t *testing.T) {
	tab := &Table{ID: "y", Title: "t", Header: []string{"x"}}
	tab.AddRow("v")
	md := tab.Markdown()
	if strings.Contains(md, "- **") {
		t.Errorf("unexpected summary bullets:\n%s", md)
	}
	if strings.Contains(md, "*Paper:*") {
		t.Errorf("unexpected note:\n%s", md)
	}
}
