package figures

import (
	"testing"
)

// Parallel fan-out must never change a figure: every simulation run is
// deterministic from its explicit seed and rows are assembled in index
// order, so the rendered table is byte-identical at any worker count.
func TestParallelFiguresMatchSerial(t *testing.T) {
	tiny := SmallSimScale()
	tiny.Servers = 30
	tiny.UsersPerServer = 1
	tiny.Clusters = 5

	figs := []struct {
		name string
		fn   func(SimScale) (*Table, error)
	}{
		{"fig14", Fig14},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig23", Fig23},
		{"ext-tree-failure", ExtTreeFailure},
		{"ext-failover", ExtFailover},
		{"ext-scale", ExtScale},
		{"fault-churn", func(s SimScale) (*Table, error) { return FaultScenario(s, "churn") }},
		{"ablation-adaptive", AblationAdaptive},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			serial := tiny
			serial.Parallel = 1
			parallel := tiny
			parallel.Parallel = 4

			st, err := f.fn(serial)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			pt, err := f.fn(parallel)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if st.String() != pt.String() {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", st.String(), pt.String())
			}
			if st.SimEvents == 0 || st.SimEvents != pt.SimEvents {
				t.Errorf("SimEvents: serial %d, parallel %d (want equal, nonzero)", st.SimEvents, pt.SimEvents)
			}
		})
	}
}
