package figures

import (
	"io"
	"testing"
)

// The ext-scale sweep on the sharded engine must be worker-count invariant:
// the rendered table is a pure function of (seed, partition), so 1 and 4
// workers produce byte-identical output. The serial engine draws from a
// different RNG stream layout, so its table is expected to differ — assert
// that too, as a liveness check that -shards actually engages the sharded
// engine rather than falling back.
func TestExtScaleShardInvariance(t *testing.T) {
	old := ExtScalePerfOutput
	ExtScalePerfOutput = io.Discard
	defer func() { ExtScalePerfOutput = old }()

	tiny := SmallSimScale()
	tiny.Servers = 30
	tiny.UsersPerServer = 1
	tiny.Clusters = 5

	one := tiny
	one.Shards = 1
	four := tiny
	four.Shards = 4

	st, err := ExtScale(tiny)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	ot, err := ExtScale(one)
	if err != nil {
		t.Fatalf("shards=1: %v", err)
	}
	ft, err := ExtScale(four)
	if err != nil {
		t.Fatalf("shards=4: %v", err)
	}
	if ot.String() != ft.String() {
		t.Errorf("shards=4 output differs from shards=1:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", ot.String(), ft.String())
	}
	if ot.SimEvents == 0 || ot.SimEvents != ft.SimEvents {
		t.Errorf("SimEvents: shards=1 %d, shards=4 %d (want equal, nonzero)", ot.SimEvents, ft.SimEvents)
	}
	if st.String() == ot.String() {
		t.Errorf("sharded table identical to serial engine's: sharding likely not engaged")
	}
}
