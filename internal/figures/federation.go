package figures

import (
	"fmt"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
)

// The federation figure family evaluates the multi-CDN origin layer
// (internal/federation) end-to-end: per-provider load, user-observed
// inconsistency, and switch/hand-off/degradation counts per system under a
// rolling provider storm and a flapping-provider broker scenario — the
// robustness axis the paper's single-origin evaluation could not exercise.

// providerSender maps provider index k to its traffic-ledger sender ID.
func providerSender(k int) string {
	if k == 0 {
		return "provider"
	}
	return fmt.Sprintf("provider%d", k)
}

// FederationStorm runs every Section 5.3 system through a rolling
// provider-storm over a federated origin (failover on, unlimited
// serve-stale): per-provider origin load, user inconsistency, degradation
// totals, peering hand-offs, durable switches, and stranded users side by
// side.
func FederationStorm(scale SimScale, spec federation.Spec) (*Table, error) {
	header := []string{"system", "user_mean_s", "stale_frac", "failed_visit_frac",
		"degraded_s", "handoffs", "switches", "stranded"}
	for _, p := range spec.Providers {
		header = append(header, p.Name+"_kb")
	}
	t := &Table{
		ID:    "federation-storm",
		Title: fmt.Sprintf("provider-storm over a %d-provider federation (failover on, serve-stale uncapped)", len(spec.Providers)),
		Note: "anycast homing + peering hand-off keep servers origin-connected through the rolling outage; " +
			"during full overlap servers serve stale and record degradation instead of stranding users",
		Header: header,
	}
	storm, err := fault.Scenario("provider-storm")
	if err != nil {
		return nil, fmt.Errorf("figures: federation-storm: %w", err)
	}
	systems := core.Systems()
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		res, err := core.Run(systems[i], scale.opts(
			core.WithFederation(spec), core.WithFaults(storm), core.WithFailover())...)
		if err != nil {
			return nil, fmt.Errorf("figures: federation-storm: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		res := results[i]
		row := []string{sys.Name, f3(res.MeanUserInconsistency()), f4(res.StaleServeFrac()),
			f4(res.FailedVisitFrac()), f1(res.DegradedSeconds),
			d0(res.PeerHandoffs), d0(res.ProviderSwitches), d0(res.StrandedUsers)}
		for k := range spec.Providers {
			row = append(row, f1(res.Accounting.BySender[providerSender(k)].KB))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FederationFlap runs every system through the broker-flap scenario
// (provider 0 cycling down/up) twice: once under an eager broker that
// re-homes on any improvement, once under a damped broker with hysteresis
// and a dwell floor. The switch-count gap is the flap suppression the
// meta-CDN broker exists for.
func FederationFlap(scale SimScale, spec federation.Spec) (*Table, error) {
	t := &Table{
		ID:    "federation-flap",
		Title: fmt.Sprintf("broker-flap over a %d-provider federation: eager vs damped meta-CDN broker", len(spec.Providers)),
		Note: "the flapping home provider invites oscillating re-homing; hysteresis (relative distance " +
			"advantage) and a dwell floor bound the durable switches without giving up failover",
		Header: []string{"system", "broker", "switches", "handoffs", "user_mean_s", "failed_visit_frac", "stranded"},
	}
	flap, err := fault.Scenario("broker-flap")
	if err != nil {
		return nil, fmt.Errorf("figures: federation-flap: %w", err)
	}
	brokers := []struct {
		label string
		b     federation.Broker
	}{
		{"eager", federation.Broker{Period: fault.Duration(15 * time.Second)}},
		{"damped", federation.Broker{
			Period:     fault.Duration(15 * time.Second),
			Hysteresis: 0.5,
			MinDwell:   fault.Duration(4 * time.Minute),
		}},
	}
	systems := core.Systems()
	results, err := collectRuns(t, scale.Parallel, len(brokers)*len(systems), func(i int) (*cdn.Result, error) {
		s := spec
		b := brokers[i/len(systems)].b
		s.Broker = &b
		res, err := core.Run(systems[i%len(systems)], scale.opts(
			core.WithFederation(s), core.WithFaults(flap), core.WithFailover())...)
		if err != nil {
			return nil, fmt.Errorf("figures: federation-flap: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for bi, br := range brokers {
		for si, sys := range systems {
			res := results[bi*len(systems)+si]
			t.AddRow(sys.Name, br.label, d0(res.ProviderSwitches), d0(res.PeerHandoffs),
				f3(res.MeanUserInconsistency()), f4(res.FailedVisitFrac()), d0(res.StrandedUsers))
		}
	}
	return t, nil
}
