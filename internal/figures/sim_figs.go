package figures

import (
	"context"
	"fmt"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/core"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// SimScale sizes the Section-4/5 simulation figures.
type SimScale struct {
	Servers        int
	UsersPerServer int
	Clusters       int
	Game           workload.GameConfig
	Seed           int64
	// ServerTTL used where the figure doesn't sweep it. Section 4 figures
	// report magnitudes consistent with a 10 s server TTL; Section 5 uses
	// 60 s.
	ServerTTL time.Duration
	// Parallel bounds how many independent simulation runs a figure may
	// execute concurrently (<= 1 means serial). Each run is deterministic
	// from its explicit seed, so the setting never changes any number.
	Parallel int
	// Shards, when > 0, runs the ext-scale sweep on the sharded multi-core
	// engine with that many workers over its default cell partition.
	// Sharded results are a pure function of (seed, partition), so any
	// Shards >= 1 yields identical tables; Shards = 0 keeps the serial
	// engine (whose RNG streams, and hence numbers, differ from sharded
	// ones). Only ext-scale consumes this: the paper-replication figures
	// stay on the serial engine their published numbers were drawn from.
	Shards int

	// Ctx, when non-nil, makes every simulation run cancellable: cancelling
	// it aborts in-flight runs promptly with the context's error.
	Ctx context.Context
	// Audit enables the runtime invariant auditor inside every simulation
	// run, sweeping at AuditCadence (0 = the auditor's default). A violated
	// conservation property aborts the figure with a structured error;
	// auditing never changes a figure's numbers.
	Audit        bool
	AuditCadence time.Duration
	// Probe, when non-nil, is invoked from each run's event loop at a fixed
	// event stride with the current virtual time and processed-event count.
	// It backs stuck-job watchdogs; it may be called from whichever
	// goroutine runs the simulation.
	Probe func(now time.Duration, events uint64)
}

// DefaultSimScale reproduces the paper's deployment: 170 nodes, 5 users
// each, one trace day of 306 snapshots.
func DefaultSimScale() SimScale {
	return SimScale{
		Servers:        170,
		UsersPerServer: 5,
		Clusters:       20,
		Game:           workload.DefaultGame(),
		Seed:           1,
		ServerTTL:      10 * time.Second,
	}
}

// SmallSimScale keeps benches fast while preserving orderings.
func SmallSimScale() SimScale {
	var phases []workload.Phase
	for i := 0; i < 3; i++ {
		phases = append(phases,
			workload.Phase{Name: "play", Duration: 5 * time.Minute, MeanGap: 15 * time.Second},
			workload.Phase{Name: "break", Duration: 4 * time.Minute, MeanGap: 0},
		)
	}
	return SimScale{
		Servers:        60,
		UsersPerServer: 2,
		Clusters:       8,
		Game:           workload.GameConfig{Phases: phases, SizeKB: 1},
		Seed:           1,
		ServerTTL:      10 * time.Second,
	}
}

func (s SimScale) opts(extra ...core.Option) []core.Option {
	base := []core.Option{
		core.WithServers(s.Servers),
		core.WithUsersPerServer(s.UsersPerServer),
		core.WithClusters(s.Clusters),
		core.WithSeed(s.Seed),
		core.WithGame(s.Game),
		core.WithServerTTL(s.ServerTTL),
	}
	if s.Ctx != nil {
		base = append(base, core.WithContext(s.Ctx))
	}
	if s.Audit {
		base = append(base, core.WithAudit(s.AuditCadence))
	}
	if s.Probe != nil {
		base = append(base, core.WithTick(s.Probe))
	}
	return append(base, extra...)
}

// section4Systems are the three methods Figure 14/15 compare.
var section4Systems = []struct {
	name   string
	method consistency.Method
}{
	{"Push", consistency.MethodPush},
	{"Invalidation", consistency.MethodInvalidation},
	{"TTL", consistency.MethodTTL},
}

func methodInfraTable(id, title, note string, scale SimScale, infra consistency.Infra) (*Table, error) {
	t := &Table{
		ID: id, Title: title, Note: note,
		Header: []string{"method", "server_mean_s", "server_p5/med/p95", "user_mean_s", "user_p5/med/p95"},
	}
	results, err := collectRuns(t, scale.Parallel, len(section4Systems), func(i int) (*cdn.Result, error) {
		sys := section4Systems[i]
		res, err := core.Run(core.System{Name: sys.name, Method: sys.method, Infra: infra}, scale.opts()...)
		if err != nil {
			return nil, fmt.Errorf("figures: %s: %w", id, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range section4Systems {
		res := results[i]
		ss, _ := stats.Summarize(res.ServerAvgInconsistency)
		us, _ := stats.Summarize(res.UserAvgInconsistency)
		t.AddRow(sys.name,
			f3(res.MeanServerInconsistency()),
			fmt.Sprintf("%.2f/%.2f/%.2f", ss.P5, ss.Median, ss.P95),
			f3(res.MeanUserInconsistency()),
			fmt.Sprintf("%.2f/%.2f/%.2f", us.P5, us.Median, us.P95))
	}
	return t, nil
}

// bothInfras is the unicast/multicast sweep axis several figures share.
var bothInfras = []consistency.Infra{consistency.InfraUnicast, consistency.InfraMulticast}

// Fig14 regenerates Figure 14: per-server and per-user inconsistency in the
// unicast infrastructure.
func Fig14(scale SimScale) (*Table, error) {
	return methodInfraTable("fig14",
		"unicast: server and user inconsistency per method",
		"paper: Push < Invalidation < TTL; TTL mean ~TTL/2",
		scale, consistency.InfraUnicast)
}

// Fig15 regenerates Figure 15: the same comparison in the binary multicast
// tree, where TTL amplifies with depth.
func Fig15(scale SimScale) (*Table, error) {
	return methodInfraTable("fig15",
		"multicast (binary tree): server and user inconsistency per method",
		"paper: same ordering; lower tree layers roughly multiply TTL inconsistency by depth",
		scale, consistency.InfraMulticast)
}

// Fig16 regenerates Figure 16: total consistency-maintenance traffic cost
// (km*KB) per method and infrastructure.
func Fig16(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "consistency maintenance traffic cost (km*KB)",
		Note:   "multicast saves >= 2.8e7 km*KB over unicast for every method; Push < Invalidation < TTL",
		Header: []string{"method", "unicast_kmKB", "multicast_kmKB", "saving_kmKB"},
	}
	results, err := collectRuns(t, scale.Parallel, len(section4Systems)*len(bothInfras), func(i int) (*cdn.Result, error) {
		sys := section4Systems[i/len(bothInfras)]
		return core.Run(core.System{Name: sys.name, Method: sys.method, Infra: bothInfras[i%len(bothInfras)]}, scale.opts()...)
	})
	if err != nil {
		return nil, err
	}
	for si, sys := range section4Systems {
		u := results[si*2].Accounting.Total().KmKB
		m := results[si*2+1].Accounting.Total().KmKB
		t.AddRow(sys.name, e2(u), e2(m), e2(u-m))
	}
	return t, nil
}

// Fig17 regenerates Figure 17: TTL traffic cost vs the content servers' TTL.
func Fig17(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "TTL-method traffic cost vs content-server TTL",
		Note:   "cost decreases with TTL in both infrastructures",
		Header: []string{"ttl_s", "unicast_kmKB", "multicast_kmKB"},
	}
	ttls := []int{10, 20, 30, 40, 50, 60}
	results, err := collectRuns(t, scale.Parallel, len(ttls)*len(bothInfras), func(i int) (*cdn.Result, error) {
		ttl := ttls[i/len(bothInfras)]
		return core.Run(core.System{Name: "TTL", Method: consistency.MethodTTL, Infra: bothInfras[i%len(bothInfras)]},
			scale.opts(core.WithServerTTL(time.Duration(ttl)*time.Second))...)
	})
	if err != nil {
		return nil, err
	}
	for ti, ttl := range ttls {
		row := []string{d0(ttl)}
		for ii := range bothInfras {
			row = append(row, e2(results[ti*len(bothInfras)+ii].Accounting.Total().KmKB))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig18 regenerates Figure 18: Invalidation vs the end-user TTL.
func Fig18(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Invalidation: inconsistency and cost vs end-user TTL",
		Note:   "inconsistency grows and traffic cost falls as end-user TTL grows, both infrastructures",
		Header: []string{"user_ttl_s", "infra", "server_p5/med/p95_s", "kmKB"},
	}
	userTTLs := []int{10, 30, 60, 90, 120}
	results, err := collectRuns(t, scale.Parallel, len(userTTLs)*len(bothInfras), func(i int) (*cdn.Result, error) {
		userTTL := userTTLs[i/len(bothInfras)]
		return core.Run(core.System{Name: "Invalidation", Method: consistency.MethodInvalidation, Infra: bothInfras[i%len(bothInfras)]},
			scale.opts(core.WithUserTTL(time.Duration(userTTL)*time.Second))...)
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		s, _ := stats.Summarize(res.ServerAvgInconsistency)
		t.AddRow(d0(userTTLs[i/len(bothInfras)]), bothInfras[i%len(bothInfras)].String(),
			fmt.Sprintf("%.2f/%.2f/%.2f", s.P5, s.Median, s.P95),
			e2(res.Accounting.Total().KmKB))
	}
	return t, nil
}

// Fig19 regenerates Figure 19: scalability vs update packet size. A modest
// uplink makes the provider's output-port serialization visible.
func Fig19(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig19",
		Title:  "server inconsistency vs update package size",
		Note:   "growth rate Push > Invalidation > TTL in unicast; multicast grows far slower",
		Header: []string{"size_kb", "infra", "push_s", "invalidation_s", "ttl_s"},
	}
	net := netmodel.Config{DefaultUplinkKBps: 2000}
	sizes := []float64{1, 100, 500}
	methods := []consistency.Method{consistency.MethodPush, consistency.MethodInvalidation, consistency.MethodTTL}
	perSize := len(bothInfras) * len(methods)
	results, err := collectRuns(t, scale.Parallel, len(sizes)*perSize, func(i int) (*cdn.Result, error) {
		size := sizes[i/perSize]
		infra := bothInfras[(i/len(methods))%len(bothInfras)]
		m := methods[i%len(methods)]
		return core.Run(core.System{Name: m.String(), Method: m, Infra: infra},
			scale.opts(core.WithUpdateSizeKB(size), core.WithNetConfig(net))...)
	})
	if err != nil {
		return nil, err
	}
	for si, size := range sizes {
		for ii, infra := range bothInfras {
			row := []string{f1(size), infra.String()}
			for mi := range methods {
				row = append(row, f3(results[si*perSize+ii*len(methods)+mi].MeanServerInconsistency()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig20 regenerates Figure 20: scalability vs network size.
func Fig20(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig20",
		Title:  "server inconsistency vs network size",
		Note:   "in unicast TTL stays flat while Push/Invalidation grow; in multicast TTL grows fastest (tree depth)",
		Header: []string{"servers", "infra", "push_s", "invalidation_s", "ttl_s"},
	}
	base := scale.Servers
	sizesN := []int{base, base * 2, base * 3, base * 4, base * 5}
	methods := []consistency.Method{consistency.MethodPush, consistency.MethodInvalidation, consistency.MethodTTL}
	perSize := len(bothInfras) * len(methods)
	results, err := collectRuns(t, scale.Parallel, len(sizesN)*perSize, func(i int) (*cdn.Result, error) {
		n := sizesN[i/perSize]
		infra := bothInfras[(i/len(methods))%len(bothInfras)]
		m := methods[i%len(methods)]
		return core.Run(core.System{Name: m.String(), Method: m, Infra: infra},
			scale.opts(core.WithServers(n),
				core.WithNetConfig(netmodel.Config{DefaultUplinkKBps: 2000}))...)
	})
	if err != nil {
		return nil, err
	}
	for ni, n := range sizesN {
		for ii, infra := range bothInfras {
			row := []string{d0(n), infra.String()}
			for mi := range methods {
				row = append(row, f3(results[ni*perSize+ii*len(methods)+mi].MeanServerInconsistency()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// section5 scales to the paper's Section 5.3 deployment: each PlanetLab
// node simulates 5 content servers (850 total), 20 clusters, content-server
// TTL 60 s. At this cluster size the self-adaptive savings outweigh the
// supernode push overhead, producing the paper's message ordering.
func (s SimScale) section5() SimScale {
	out := s
	out.Servers = s.Servers * 5
	out.Clusters = 20
	out.ServerTTL = 60 * time.Second
	return out
}

// section5Opts applies the Section 5.3 defaults.
func (s SimScale) section5Opts(extra ...core.Option) []core.Option {
	s5 := s.section5()
	return append(s5.opts(), extra...)
}

// Fig22 regenerates Figure 22: update-message counts across the six
// systems, (a) to servers vs end-user TTL, (b) from the provider vs
// content-server TTL.
func Fig22(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig22",
		Title:  "update messages: (a) to servers vs end-user TTL, (b) from provider vs server TTL",
		Note:   "Push > Invalidation > Hybrid ~ TTL > HAT > Self; provider load lightest for Hybrid/HAT",
		Header: []string{"series", "x_s", "Push", "Invalidation", "TTL", "Self", "Hybrid", "HAT"},
	}
	systems := core.Systems()
	userTTLs := []int{10, 30, 60}
	srvTTLs := []int{20, 40, 60}
	// One grid over both panels: indices < len(userTTLs)*len(systems)
	// sweep the end-user TTL (22a), the rest the content-server TTL (22b).
	aJobs := len(userTTLs) * len(systems)
	results, err := collectRuns(t, scale.Parallel, aJobs+len(srvTTLs)*len(systems), func(i int) (*cdn.Result, error) {
		if i < aJobs {
			userTTL := userTTLs[i/len(systems)]
			return core.Run(systems[i%len(systems)], scale.section5Opts(core.WithUserTTL(time.Duration(userTTL)*time.Second))...)
		}
		j := i - aJobs
		srvTTL := srvTTLs[j/len(systems)]
		return core.Run(systems[j%len(systems)], scale.section5Opts(core.WithServerTTL(time.Duration(srvTTL)*time.Second))...)
	})
	if err != nil {
		return nil, err
	}
	for ti, userTTL := range userTTLs {
		row := []string{"22a_msgs_to_servers", d0(userTTL)}
		for si := range systems {
			row = append(row, d0(results[ti*len(systems)+si].UpdateMsgsToServers))
		}
		t.AddRow(row...)
	}
	for ti, srvTTL := range srvTTLs {
		row := []string{"22b_msgs_from_provider", d0(srvTTL)}
		for si := range systems {
			row = append(row, d0(results[aJobs+ti*len(systems)+si].UpdateMsgsFromProvider))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig23 regenerates Figure 23: network load in km, split into update and
// light messages, for the six systems.
func Fig23(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig23",
		Title:  "consistency maintenance network load (km)",
		Note:   "HAT carries the lightest total load; TTL-family methods add light-message load for polling",
		Header: []string{"system", "update_km", "light_km", "total_km"},
	}
	systems := core.Systems()
	results, err := collectRuns(t, scale.Parallel, len(systems), func(i int) (*cdn.Result, error) {
		return core.Run(systems[i], scale.section5Opts()...)
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		up := results[i].Accounting.ByClass[netmodel.ClassUpdate].Km
		light := results[i].Accounting.ByClass[netmodel.ClassLight].Km
		t.AddRow(sys.Name, e2(up), e2(light), e2(up+light))
	}
	return t, nil
}

// Fig24 regenerates Figure 24: user-observed inconsistency with server
// switching on every visit.
func Fig24(scale SimScale) (*Table, error) {
	t := &Table{
		ID:     "fig24",
		Title:  "% inconsistency observations vs end-user TTL (switch server every visit)",
		Note:   "TTL ~ Hybrid > HAT > Self > Push ~ Invalidation ~ 0; decreasing in end-user TTL",
		Header: []string{"user_ttl_s", "Push", "Invalidation", "TTL", "Self", "Hybrid", "HAT"},
	}
	systems := core.Systems()
	userTTLs := []int{10, 30, 60}
	results, err := collectRuns(t, scale.Parallel, len(userTTLs)*len(systems), func(i int) (*cdn.Result, error) {
		userTTL := userTTLs[i/len(systems)]
		return core.Run(systems[i%len(systems)], scale.section5Opts(
			core.WithUserTTL(time.Duration(userTTL)*time.Second),
			core.WithUserSwitching())...)
	})
	if err != nil {
		return nil, err
	}
	for ti, userTTL := range userTTLs {
		row := []string{d0(userTTL)}
		for si := range systems {
			row = append(row, f4(results[ti*len(systems)+si].InconsistentObservationFrac()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// sharedTopology builds one topology for ablations that need to compare
// tree variants on identical node sets.
func sharedTopology(scale SimScale) (*topology.Topology, error) {
	return topology.Generate(topology.Config{
		Servers:        scale.Servers,
		UsersPerServer: scale.UsersPerServer,
		Seed:           scale.Seed,
	})
}

// runWith is a convenience for the cdn-level ablations; it applies the
// scale's cross-cutting run controls (context, auditor, probe) to a
// hand-built config so ablations honor them like every option-built run.
func runWith(scale SimScale, cfg cdn.Config) (*cdn.Result, error) {
	cfg.Ctx = scale.Ctx
	if scale.Audit {
		cfg.Audit = &cdn.AuditOptions{Cadence: scale.AuditCadence}
	}
	cfg.OnTick = scale.Probe
	return cdn.Run(cfg)
}

// workloadSingle builds a single-phase update schedule config.
func workloadSingle(duration, meanGap time.Duration) workload.GameConfig {
	return workload.GameConfig{
		Phases: []workload.Phase{{Name: "live", Duration: duration, MeanGap: meanGap}},
		SizeKB: 1,
	}
}

// topologyConfig translates a SimScale into a topology.Config.
func topologyConfig(scale SimScale) topology.Config {
	return topology.Config{
		Servers:        scale.Servers,
		UsersPerServer: scale.UsersPerServer,
		Seed:           scale.Seed,
	}
}
