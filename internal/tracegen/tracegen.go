// Package tracegen synthesizes a crawl trace with the same schema and the
// same statistical phenomena as the paper's 15-day crawl of a major CDN
// (Section 3). The real trace is proprietary; this generator rebuilds the
// polled-snapshot relation from the mechanism the paper itself infers:
//
//   - content servers serve from a cache refreshed by a fixed TTL poll of
//     the provider (Section 3.4.1, TTL = 60 s),
//   - the provider itself is nearly consistent (mean staleness ~3.4 s,
//     Section 3.4.2) and answers within [0.5 s, 2.1 s] (Section 3.4.4),
//   - per-ISP paths to the provider add seconds of lag, so inter-ISP
//     comparisons show larger inconsistency than intra-ISP (Section 3.4.3),
//   - servers suffer absences (overload/failure) of 1-500 s during which
//     they neither answer polls nor refresh (Section 3.4.5),
//   - end-user requests are redirected to a different server on ~15% of
//     visits by DNS cache expiry and load balancing (Section 3.3).
//
// Every Section-3 analysis is a pure function of the resulting records, so
// the analysis pipeline reproduces the paper's figures from this input.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/workload"
)

// Config controls the synthetic crawl.
type Config struct {
	// Topology sizes the CDN; Topology.Servers is the crawled server
	// count (the paper crawled 3000).
	Topology topology.Config
	// Game is the per-day live event; default workload.DefaultGame().
	Game workload.GameConfig
	// Days is the number of crawl days (the paper used 15).
	Days int
	// PollInterval is the crawler cadence; default 10 s.
	PollInterval time.Duration
	// ServerTTL is the CDN cache TTL; default 60 s.
	ServerTTL time.Duration
	// Users is the number of user-perspective pollers (the paper used
	// 200). 0 disables the user-view part of the trace.
	Users int
	// RedirectProb is the chance a user's visit lands on a different
	// server; default 0.15 (the paper observed 13-17%).
	RedirectProb float64
	// ProviderPollers is the number of vantage points polling the
	// provider's origin servers; default 10.
	ProviderPollers int
	// ProviderLagMean is the provider's own mean staleness; default 3.4 s.
	ProviderLagMean time.Duration
	// ISPLagMax bounds the per-ISP daily fetch-lag bias; default 8 s.
	ISPLagMax time.Duration
	// AbsencesPerServerDay is the expected number of absence intervals a
	// server suffers per day; default 0.4.
	AbsencesPerServerDay float64
	Seed                 int64
}

func (c Config) withDefaults() Config {
	if c.Game.Duration() == 0 {
		c.Game = workload.DefaultGame()
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Second
	}
	if c.ServerTTL <= 0 {
		c.ServerTTL = 60 * time.Second
	}
	if c.RedirectProb < 0 {
		c.RedirectProb = 0
	}
	if c.RedirectProb == 0 {
		c.RedirectProb = 0.15
	}
	if c.ProviderPollers <= 0 {
		c.ProviderPollers = 10
	}
	if c.ProviderLagMean <= 0 {
		c.ProviderLagMean = 3400 * time.Millisecond
	}
	if c.ISPLagMax <= 0 {
		c.ISPLagMax = 8 * time.Second
	}
	if c.AbsencesPerServerDay <= 0 {
		c.AbsencesPerServerDay = 0.4
	}
	return c
}

// Result bundles the generated trace with the ground-truth update schedules
// (one per day), which tests and EXPERIMENTS comparisons may consult but the
// analyses never see.
type Result struct {
	Trace     *trace.Trace
	Schedules [][]workload.Update
	Topo      *topology.Topology
}

type absence struct {
	start, end time.Duration
}

// serverDay is a server's cache behaviour for one day: a step function of
// refresh times to snapshot values, plus its absence intervals.
type serverDay struct {
	refreshAt []time.Duration
	snapshot  []int
	absences  []absence
}

func (sd *serverDay) absentAt(t time.Duration) bool {
	for _, a := range sd.absences {
		if t >= a.start && t < a.end {
			return true
		}
	}
	return false
}

// cachedAt returns the snapshot the server serves at time t (0 before the
// first refresh).
func (sd *serverDay) cachedAt(t time.Duration) int {
	i := sort.Search(len(sd.refreshAt), func(i int) bool { return sd.refreshAt[i] > t })
	if i == 0 {
		return 0
	}
	return sd.snapshot[i-1]
}

// Generate builds the synthetic crawl.
func Generate(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	topo, err := topology.Generate(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("tracegen: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dayLen := cfg.Game.Duration()

	tr := &trace.Trace{
		Meta: trace.Meta{
			Description:  "synthetic crawl (see internal/tracegen)",
			Days:         cfg.Days,
			PollInterval: cfg.PollInterval,
			DayLength:    dayLen,
			ServerTTL:    cfg.ServerTTL,
			Seed:         cfg.Seed,
		},
	}
	for _, s := range topo.Servers {
		tr.Servers = append(tr.Servers, trace.ServerInfo{
			ID: s.ID, Lat: s.Loc.Lat, Lon: s.Loc.Lon, ISP: s.ISP, City: s.City,
			DistanceKm: geo.DistanceKm(s.Loc, topo.Provider.Loc),
		})
	}

	res := &Result{Trace: tr, Topo: topo}
	for day := 0; day < cfg.Days; day++ {
		updates, err := workload.Schedule(cfg.Game, cfg.Seed+int64(day)*7919)
		if err != nil {
			return nil, fmt.Errorf("tracegen: day %d: %w", day, err)
		}
		res.Schedules = append(res.Schedules, updates)
		genDay(cfg, topo, tr, rng, day, dayLen, updates)
	}
	tr.SortRecords()
	return res, nil
}

func genDay(cfg Config, topo *topology.Topology, tr *trace.Trace, rng *rand.Rand,
	day int, dayLen time.Duration, updates []workload.Update) {

	// Per-ISP fetch-lag bias for the day (Section 3.4.3 reproduction).
	ispLag := make(map[int]time.Duration)
	lagFor := func(isp int) time.Duration {
		if l, ok := ispLag[isp]; ok {
			return l
		}
		l := time.Duration(rng.Float64() * float64(cfg.ISPLagMax))
		ispLag[isp] = l
		return l
	}

	// Build each server's cache step function.
	days := make([]serverDay, len(topo.Servers))
	for i, s := range topo.Servers {
		sd := &days[i]
		sd.absences = drawAbsences(rng, cfg.AbsencesPerServerDay, dayLen)

		r := time.Duration(rng.Float64() * float64(cfg.ServerTTL))
		for r < dayLen {
			if sd.absentAt(r) {
				// The server cannot refresh while absent. On recovery
				// its cache TTL is already expired, so the next
				// end-user request (within one crawl interval)
				// triggers the refresh — until then it serves the
				// pre-absence content (Section 3.4.5: inconsistency
				// is elevated right after an absence).
				r = absenceEnd(sd.absences, r) +
					time.Duration(rng.Float64()*float64(cfg.PollInterval))
				continue
			}
			lag := responseTime(rng) + lagFor(s.ISP) + providerStaleness(rng, cfg.ProviderLagMean)
			snap := workload.SnapshotAt(updates, r-lag)
			sd.refreshAt = append(sd.refreshAt, r)
			sd.snapshot = append(sd.snapshot, snap)
			r += cfg.ServerTTL
		}
	}

	// Crawler records: one poller per server, every PollInterval.
	for i, s := range topo.Servers {
		sd := &days[i]
		poller := fmt.Sprintf("pl-%04d", i%200)
		offset := time.Duration(rng.Int63n(int64(cfg.PollInterval)))
		rtt := pollerRTT(rng)
		for t := offset; t <= dayLen; t += cfg.PollInterval {
			rec := trace.PollRecord{
				Day: day, Server: s.ID, Poller: poller, At: t, RTT: rtt,
			}
			if sd.absentAt(t) {
				rec.Absent = true
			} else {
				rec.Snapshot = sd.cachedAt(t)
			}
			tr.Records = append(tr.Records, rec)
		}
	}

	// Provider records (Section 3.4.2/3.4.4): near-fresh, fast answers.
	for p := 0; p < cfg.ProviderPollers; p++ {
		poller := fmt.Sprintf("plprov-%02d", p)
		offset := time.Duration(rng.Int63n(int64(cfg.PollInterval)))
		for t := offset; t <= dayLen; t += cfg.PollInterval {
			lag := providerStaleness(rng, cfg.ProviderLagMean)
			tr.Records = append(tr.Records, trace.PollRecord{
				Day: day, Server: "origin", Poller: poller, At: t,
				Snapshot: workload.SnapshotAt(updates, t-lag),
				RTT:      responseTime(rng),
				Provider: true,
			})
		}
	}

	// User-view records (Section 3.3): users poll the URL; DNS redirects
	// ~RedirectProb of visits to another server.
	if cfg.Users > 0 && len(topo.Servers) > 0 {
		for u := 0; u < cfg.Users; u++ {
			poller := fmt.Sprintf("user-%03d", u)
			cur := rng.Intn(len(topo.Servers))
			offset := time.Duration(rng.Int63n(int64(cfg.PollInterval)))
			for t := offset; t <= dayLen; t += cfg.PollInterval {
				if rng.Float64() < cfg.RedirectProb {
					cur = rng.Intn(len(topo.Servers))
				}
				sd := &days[cur]
				rec := trace.PollRecord{
					Day: day, Server: topo.Servers[cur].ID, Poller: poller,
					At: t, RTT: pollerRTT(rng), UserView: true,
				}
				if sd.absentAt(t) {
					rec.Absent = true
				} else {
					rec.Snapshot = sd.cachedAt(t)
				}
				tr.Records = append(tr.Records, rec)
			}
		}
	}
}

// drawAbsences samples a day's absence intervals. Lengths follow the
// paper's Figure 10(b): ~30% under 10 s, ~93% under 50 s, max 500 s.
func drawAbsences(rng *rand.Rand, perDay float64, dayLen time.Duration) []absence {
	n := poisson(rng, perDay)
	if n == 0 {
		return nil
	}
	out := make([]absence, 0, n)
	for i := 0; i < n; i++ {
		var length time.Duration
		if rng.Float64() < 0.93 {
			length = time.Second + time.Duration(rng.ExpFloat64()*float64(18*time.Second))
			if length > 50*time.Second {
				length = 50 * time.Second
			}
		} else {
			length = 50*time.Second + time.Duration(rng.ExpFloat64()*float64(120*time.Second))
			if length > 500*time.Second {
				length = 500 * time.Second
			}
		}
		start := time.Duration(rng.Float64() * float64(dayLen-length))
		if start < 0 {
			start = 0
		}
		out = append(out, absence{start: start, end: start + length})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	// Merge overlaps so absentAt and absenceEnd stay simple.
	merged := out[:1]
	for _, a := range out[1:] {
		last := &merged[len(merged)-1]
		if a.start <= last.end {
			if a.end > last.end {
				last.end = a.end
			}
			continue
		}
		merged = append(merged, a)
	}
	return merged
}

func absenceEnd(abs []absence, t time.Duration) time.Duration {
	for _, a := range abs {
		if t >= a.start && t < a.end {
			return a.end
		}
	}
	return t
}

// responseTime draws the provider's answer latency, uniform in
// [0.5 s, 2.1 s] per the paper's Figure 10(a).
func responseTime(rng *rand.Rand) time.Duration {
	return 500*time.Millisecond + time.Duration(rng.Float64()*float64(1600*time.Millisecond))
}

// providerStaleness draws the provider's own content lag, exponential with
// the configured mean (the paper measured mean 3.43 s).
func providerStaleness(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

// pollerRTT draws a vantage-point round trip in [20 ms, 200 ms].
func pollerRTT(rng *rand.Rand) time.Duration {
	return 20*time.Millisecond + time.Duration(rng.Float64()*float64(180*time.Millisecond))
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; mean is small (<10) in all our uses.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
