package tracegen

import (
	"math/rand"
	"testing"
	"time"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

func smallConfig() Config {
	return Config{
		Topology: topology.Config{Servers: 60, Seed: 1},
		Days:     2,
		Users:    20,
		Seed:     1,
	}
}

func mustGenerate(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

func TestGenerateValidTrace(t *testing.T) {
	res := mustGenerate(t, smallConfig())
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(res.Schedules) != 2 {
		t.Fatalf("schedules = %d, want 2", len(res.Schedules))
	}
	if len(res.Trace.Servers) != 60 {
		t.Fatalf("servers = %d, want 60", len(res.Trace.Servers))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig())
	b := mustGenerate(t, smallConfig())
	if len(a.Trace.Records) != len(b.Trace.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Trace.Records), len(b.Trace.Records))
	}
	for i := range a.Trace.Records {
		if a.Trace.Records[i] != b.Trace.Records[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestRecordKindsPresent(t *testing.T) {
	res := mustGenerate(t, smallConfig())
	var server, provider, user, absent int
	for _, r := range res.Trace.Records {
		switch {
		case r.Provider:
			provider++
		case r.UserView:
			user++
		default:
			server++
		}
		if r.Absent {
			absent++
		}
	}
	if server == 0 || provider == 0 || user == 0 {
		t.Fatalf("missing record kinds: server=%d provider=%d user=%d", server, provider, user)
	}
	if absent == 0 {
		t.Error("no absence records generated")
	}
}

func TestSnapshotsMonotonePerServer(t *testing.T) {
	res := mustGenerate(t, smallConfig())
	last := map[string]int{}
	for _, r := range res.Trace.Records {
		if r.Absent || r.UserView || r.Provider || r.Day != 0 {
			continue
		}
		if r.Snapshot < last[r.Server] {
			t.Fatalf("server %s snapshot went backwards: %d -> %d at %v",
				r.Server, last[r.Server], r.Snapshot, r.At)
		}
		last[r.Server] = r.Snapshot
	}
}

func TestServerStalenessBoundedByTTLPlusLag(t *testing.T) {
	cfg := smallConfig()
	cfg.AbsencesPerServerDay = 1e-9 // effectively disable absences
	res := mustGenerate(t, cfg)
	updates := res.Schedules[0]
	ttl := res.Trace.Meta.ServerTTL
	// Without absences, a server's observed snapshot can lag the provider
	// by at most TTL (cache age) + fetch lag (resp + ISP bias + provider
	// staleness, < 75 s worst case here).
	maxLag := ttl + 75*time.Second
	for _, r := range res.Trace.Records {
		if r.Day != 0 || r.Absent || r.Provider || r.UserView {
			continue
		}
		cur := workload.SnapshotAt(updates, r.At)
		if cur == 0 || r.Snapshot >= cur {
			continue
		}
		// Find the publication time of the snapshot after the observed
		// one; the server must have refreshed within maxLag before now.
		next := updates[r.Snapshot].At // snapshot IDs are 1-based
		if r.At-next > maxLag {
			t.Fatalf("server %s at %v shows snapshot %d; snapshot %d published %v ago (> %v)",
				r.Server, r.At, r.Snapshot, r.Snapshot+1, r.At-next, maxLag)
		}
	}
}

func TestProviderRecordsAreFresh(t *testing.T) {
	res := mustGenerate(t, smallConfig())
	updates := res.Schedules[0]
	var lagSum time.Duration
	var n int
	for _, r := range res.Trace.Records {
		if !r.Provider || r.Day != 0 {
			continue
		}
		cur := workload.SnapshotAt(updates, r.At)
		if r.Snapshot > cur {
			t.Fatalf("provider served future snapshot %d at %v (current %d)", r.Snapshot, r.At, cur)
		}
		if r.Snapshot < cur {
			lagSum += r.At - updates[r.Snapshot].At
			n++
		}
	}
	if n == 0 {
		return
	}
	mean := lagSum / time.Duration(n)
	if mean > 15*time.Second {
		t.Errorf("provider mean staleness %v, want small (paper: 3.4s)", mean)
	}
}

func TestUserRedirectionRate(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 50
	res := mustGenerate(t, cfg)
	prev := map[string]string{}
	redirected, total := 0, 0
	for _, r := range res.Trace.Records {
		if !r.UserView {
			continue
		}
		if p, ok := prev[r.Poller]; ok {
			total++
			if p != r.Server {
				redirected++
			}
		}
		prev[r.Poller] = r.Server
	}
	if total == 0 {
		t.Fatal("no user-view transitions")
	}
	rate := float64(redirected) / float64(total)
	// RedirectProb 0.15, but a redirect can land on the same server.
	if rate < 0.08 || rate > 0.25 {
		t.Errorf("redirect rate = %.3f, want ~0.15", rate)
	}
}

func TestAbsenceHelpers(t *testing.T) {
	sd := serverDay{absences: []absence{{start: 10 * time.Second, end: 20 * time.Second}}}
	if !sd.absentAt(15 * time.Second) {
		t.Error("absentAt inside interval = false")
	}
	if sd.absentAt(20 * time.Second) {
		t.Error("absentAt at end = true (interval should be half-open)")
	}
	if got := absenceEnd(sd.absences, 15*time.Second); got != 20*time.Second {
		t.Errorf("absenceEnd = %v", got)
	}
	if got := absenceEnd(sd.absences, 5*time.Second); got != 5*time.Second {
		t.Errorf("absenceEnd outside = %v", got)
	}
}

func TestCachedAt(t *testing.T) {
	sd := serverDay{
		refreshAt: []time.Duration{10 * time.Second, 70 * time.Second},
		snapshot:  []int{3, 7},
	}
	tests := []struct {
		t    time.Duration
		want int
	}{
		{5 * time.Second, 0}, {10 * time.Second, 3}, {69 * time.Second, 3},
		{70 * time.Second, 7}, {500 * time.Second, 7},
	}
	for _, tt := range tests {
		if got := sd.cachedAt(tt.t); got != tt.want {
			t.Errorf("cachedAt(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestDrawAbsencesMergedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	day := 2 * time.Hour
	for i := 0; i < 200; i++ {
		abs := drawAbsences(rng, 3, day)
		for j, a := range abs {
			if a.start < 0 || a.end > day+500*time.Second || a.end <= a.start {
				t.Fatalf("bad absence %+v", a)
			}
			if j > 0 && a.start <= abs[j-1].end {
				t.Fatalf("unmerged overlap: %+v then %+v", abs[j-1], a)
			}
			if a.end-a.start > 500*time.Second {
				t.Fatalf("absence too long: %v", a.end-a.start)
			}
		}
	}
}

func TestAbsenceLengthDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var under10, under50, total int
	for i := 0; i < 500; i++ {
		for _, a := range drawAbsences(rng, 2, 3*time.Hour) {
			l := a.end - a.start
			total++
			if l < 10*time.Second {
				under10++
			}
			if l < 50*time.Second {
				under50++
			}
		}
	}
	if total == 0 {
		t.Fatal("no absences drawn")
	}
	f10 := float64(under10) / float64(total)
	f50 := float64(under50) / float64(total)
	// Paper Fig 10(b): ~30% under 10 s, ~93% under 50 s.
	if f10 < 0.15 || f10 > 0.5 {
		t.Errorf("fraction under 10s = %.2f, want ~0.30", f10)
	}
	if f50 < 0.80 || f50 > 0.99 {
		t.Errorf("fraction under 50s = %.2f, want ~0.93", f50)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
	var sum int
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += poisson(rng, 2.5)
	}
	mean := float64(sum) / trials
	if mean < 2.2 || mean > 2.8 {
		t.Errorf("poisson mean = %.2f, want ~2.5", mean)
	}
}

func TestGenerateErrorsPropagate(t *testing.T) {
	cfg := smallConfig()
	cfg.Topology.Servers = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("bad topology accepted")
	}
}
