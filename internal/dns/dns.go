// Package dns models the request-routing plane of the paper's Figure 1: an
// end-user resolves the content domain through its local DNS resolver,
// which caches the answer for a short TTL; on a miss the CDN's
// authoritative DNS picks a content server near the user with
// load-balancing consideration. Expiring resolver entries plus authoritative
// re-assignment are what redirect ~13-17% of a user's visits to a different
// server (Section 3.3) — the mechanism behind user-observed inconsistency.
package dns

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/geo"
)

// ServerEntry is one content server the authoritative DNS can hand out.
type ServerEntry struct {
	Index int // caller's server index
	Loc   geo.Point
}

// Authoritative is the CDN's authoritative DNS: it answers with one of the
// k servers nearest to the querying resolver, weighted away from loaded
// servers. It is deterministic given its RNG.
type Authoritative struct {
	servers []ServerEntry
	// CandidateSet is how many nearest servers are eligible per answer
	// (load balancing spreads answers across them); default 3.
	candidateSet int
	load         map[int]int
	down         map[int]bool
	rng          *rand.Rand
}

// NewAuthoritative builds the authoritative DNS over the server set.
func NewAuthoritative(servers []ServerEntry, candidateSet int, rng *rand.Rand) (*Authoritative, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("dns: no servers")
	}
	if candidateSet <= 0 {
		candidateSet = 3
	}
	if candidateSet > len(servers) {
		candidateSet = len(servers)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Authoritative{
		servers:      append([]ServerEntry(nil), servers...),
		candidateSet: candidateSet,
		load:         make(map[int]int),
		down:         make(map[int]bool),
		rng:          rng,
	}, nil
}

// SetLive marks a server as live or dead. Dead servers are skipped when
// answering queries (the CDN's health-check feedback into request routing);
// if every server is dead, Resolve falls back to the full set rather than
// failing — the paper's observation that cached IPs of failed servers keep
// attracting requests (Section 3.4.5) still applies at the resolver layer.
func (a *Authoritative) SetLive(serverIdx int, live bool) {
	if live {
		delete(a.down, serverIdx)
	} else {
		a.down[serverIdx] = true
	}
}

// Resolve answers a query from a resolver at loc: one of the candidateSet
// nearest servers, preferring the least-loaded (ties broken randomly). The
// chosen server's load counter is incremented; Release decrements it.
func (a *Authoritative) Resolve(loc geo.Point) int {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, 0, len(a.servers))
	for _, s := range a.servers {
		if a.down[s.Index] {
			continue
		}
		cands = append(cands, cand{idx: s.Index, dist: geo.DistanceKm(loc, s.Loc)})
	}
	if len(cands) == 0 {
		// Every server is down: answer from the full set anyway.
		for _, s := range a.servers {
			cands = append(cands, cand{idx: s.Index, dist: geo.DistanceKm(loc, s.Loc)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	if len(cands) > a.candidateSet {
		cands = cands[:a.candidateSet]
	}
	// Least-loaded among the candidates; random tie-break keeps answers
	// spread for equal loads (the paper's "load-balancing consideration").
	best := cands[0]
	bestLoad := a.load[best.idx]
	ties := 1
	for _, c := range cands[1:] {
		l := a.load[c.idx]
		switch {
		case l < bestLoad:
			best, bestLoad, ties = c, l, 1
		case l == bestLoad:
			ties++
			if a.rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	a.load[best.idx]++
	return best.idx
}

// Release reports that a client stopped using a server (its cached entry
// expired without renewal), freeing authoritative-side load.
func (a *Authoritative) Release(serverIdx int) {
	if a.load[serverIdx] > 0 {
		a.load[serverIdx]--
	}
}

// Load returns the current assignment count of a server.
func (a *Authoritative) Load(serverIdx int) int { return a.load[serverIdx] }

// Resolver is a local DNS resolver with a single cached entry per client
// (we model one content domain). Entries expire after TTL; an expired
// lookup goes back to the authoritative server.
type Resolver struct {
	auth *Authoritative
	ttl  time.Duration
	loc  geo.Point

	cached    int
	expiresAt time.Duration
	hasEntry  bool

	lookups, misses int
}

// NewResolver builds a resolver at loc whose cache entries live for ttl.
func NewResolver(auth *Authoritative, loc geo.Point, ttl time.Duration) (*Resolver, error) {
	if auth == nil {
		return nil, fmt.Errorf("dns: nil authoritative")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("dns: non-positive resolver TTL %v", ttl)
	}
	return &Resolver{auth: auth, ttl: ttl, loc: loc}, nil
}

// Lookup returns the server index for a request at virtual time now,
// consulting the cache first. The boolean reports whether the answer came
// from the authoritative DNS (a potential redirection point).
func (r *Resolver) Lookup(now time.Duration) (serverIdx int, fresh bool) {
	r.lookups++
	if r.hasEntry && now < r.expiresAt {
		return r.cached, false
	}
	r.misses++
	if r.hasEntry {
		r.auth.Release(r.cached)
	}
	r.cached = r.auth.Resolve(r.loc)
	r.expiresAt = now + r.ttl
	r.hasEntry = true
	return r.cached, true
}

// Flush drops the cached entry so the next Lookup re-resolves at the
// authoritative DNS — the failover path after a client notices its cached
// server is unresponsive.
func (r *Resolver) Flush() {
	if r.hasEntry {
		r.auth.Release(r.cached)
		r.hasEntry = false
	}
}

// Stats reports lookup and miss counts.
func (r *Resolver) Stats() (lookups, misses int) { return r.lookups, r.misses }
