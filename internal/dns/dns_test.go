package dns

import (
	"math/rand"
	"testing"
	"time"

	"cdnconsistency/internal/geo"
)

func testServers() []ServerEntry {
	return []ServerEntry{
		{Index: 1, Loc: geo.Point{Lat: 33.7, Lon: -84.4}},  // Atlanta
		{Index: 2, Loc: geo.Point{Lat: 33.8, Lon: -84.3}},  // near Atlanta
		{Index: 3, Loc: geo.Point{Lat: 34.0, Lon: -84.0}},  // near Atlanta
		{Index: 4, Loc: geo.Point{Lat: 51.5, Lon: -0.1}},   // London
		{Index: 5, Loc: geo.Point{Lat: 35.7, Lon: 139.7}},  // Tokyo
		{Index: 6, Loc: geo.Point{Lat: -33.9, Lon: 151.2}}, // Sydney
	}
}

func TestNewAuthoritativeValidation(t *testing.T) {
	if _, err := NewAuthoritative(nil, 3, nil); err == nil {
		t.Error("empty server set accepted")
	}
	a, err := NewAuthoritative(testServers()[:2], 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// candidateSet clamps to the server count.
	got := a.Resolve(geo.Point{Lat: 33.7, Lon: -84.4})
	if got != 1 && got != 2 {
		t.Errorf("Resolve = %d", got)
	}
}

func TestResolvePrefersNearbyServers(t *testing.T) {
	a, err := NewAuthoritative(testServers(), 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	atlantaUser := geo.Point{Lat: 33.75, Lon: -84.39}
	for i := 0; i < 50; i++ {
		got := a.Resolve(atlantaUser)
		if got != 1 && got != 2 && got != 3 {
			t.Fatalf("Resolve handed distant server %d to an Atlanta user", got)
		}
	}
	tokyoUser := geo.Point{Lat: 35.68, Lon: 139.69}
	got := a.Resolve(tokyoUser)
	if got == 1 || got == 2 {
		t.Errorf("Resolve handed Atlanta server %d to a Tokyo user", got)
	}
}

func TestResolveBalancesLoad(t *testing.T) {
	a, err := NewAuthoritative(testServers(), 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	atlantaUser := geo.Point{Lat: 33.75, Lon: -84.39}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		counts[a.Resolve(atlantaUser)]++
	}
	// Least-loaded selection must spread across the three candidates.
	for _, idx := range []int{1, 2, 3} {
		if counts[idx] < 80 || counts[idx] > 120 {
			t.Errorf("server %d got %d of 300 assignments, want ~100", idx, counts[idx])
		}
	}
}

func TestReleaseFreesLoad(t *testing.T) {
	a, err := NewAuthoritative(testServers(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := geo.Point{Lat: 33.75, Lon: -84.39}
	idx := a.Resolve(u)
	if a.Load(idx) != 1 {
		t.Fatalf("load = %d", a.Load(idx))
	}
	a.Release(idx)
	if a.Load(idx) != 0 {
		t.Errorf("load after release = %d", a.Load(idx))
	}
	a.Release(idx) // extra release is a no-op
	if a.Load(idx) != 0 {
		t.Errorf("load after double release = %d", a.Load(idx))
	}
}

func TestResolverValidation(t *testing.T) {
	a, err := NewAuthoritative(testServers(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewResolver(nil, geo.Point{}, time.Minute); err == nil {
		t.Error("nil authoritative accepted")
	}
	if _, err := NewResolver(a, geo.Point{}, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestResolverCachesUntilExpiry(t *testing.T) {
	a, err := NewAuthoritative(testServers(), 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResolver(a, geo.Point{Lat: 33.75, Lon: -84.39}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	first, fresh := r.Lookup(0)
	if !fresh {
		t.Fatal("first lookup not fresh")
	}
	// Within the TTL: same answer, cached.
	for _, at := range []time.Duration{10 * time.Second, 29 * time.Second} {
		got, fresh := r.Lookup(at)
		if fresh {
			t.Errorf("lookup at %v went to authoritative", at)
		}
		if got != first {
			t.Errorf("cached answer changed: %d -> %d", first, got)
		}
	}
	// At expiry the resolver re-queries.
	_, fresh = r.Lookup(30 * time.Second)
	if !fresh {
		t.Error("lookup at TTL did not refresh")
	}
	lookups, misses := r.Stats()
	if lookups != 4 || misses != 2 {
		t.Errorf("stats = %d lookups / %d misses, want 4/2", lookups, misses)
	}
}

func TestResolverRedirectionRate(t *testing.T) {
	// With a 60s resolver TTL and 10s visits, 1 in 6 visits re-resolves;
	// re-resolution may land on another of the 3 near candidates. The
	// observed server-switch rate must sit well below the re-resolve rate
	// but above zero — the paper's 13-17% band corresponds to shorter
	// cache TTLs; the mechanism is what matters here.
	a, err := NewAuthoritative(testServers(), 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResolver(a, geo.Point{Lat: 33.75, Lon: -84.39}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	switches, visits := 0, 0
	for now := time.Duration(0); now < 2*time.Hour; now += 10 * time.Second {
		got, _ := r.Lookup(now)
		if prev >= 0 {
			visits++
			if got != prev {
				switches++
			}
		}
		prev = got
	}
	rate := float64(switches) / float64(visits)
	if rate <= 0 || rate >= 1.0/6.0 {
		t.Errorf("switch rate = %.3f, want in (0, 0.167)", rate)
	}
}

func TestResolverDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		a, err := NewAuthoritative(testServers(), 3, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewResolver(a, geo.Point{Lat: 33.75, Lon: -84.39}, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for now := time.Duration(0); now < 10*time.Minute; now += 10 * time.Second {
			got, _ := r.Lookup(now)
			out = append(out, got)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("lookup %d diverged", i)
		}
	}
}
