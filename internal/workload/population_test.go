package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestGeneratePopulationSumsExactly(t *testing.T) {
	for _, tc := range []struct {
		servers, total int
		alpha          float64
	}{
		{servers: 10, total: 1000, alpha: 1.2},
		{servers: 850, total: 1_000_000, alpha: 1.2},
		{servers: 7, total: 3, alpha: 0},   // fewer users than servers
		{servers: 5, total: 0, alpha: 1.2}, // empty population
		{servers: 3, total: 100, alpha: 0.5},
	} {
		p, err := GeneratePopulation(PopulationConfig{
			Servers: tc.servers, TotalUsers: tc.total, Alpha: tc.alpha,
			CohortsPerServer: 4, Seed: 7,
		})
		if err != nil {
			t.Fatalf("GeneratePopulation(%+v): %v", tc, err)
		}
		if got := p.TotalUsers(); got != tc.total {
			t.Errorf("servers=%d total=%d alpha=%v: TotalUsers = %d", tc.servers, tc.total, tc.alpha, got)
		}
		if len(p.Servers) != tc.servers {
			t.Errorf("len(Servers) = %d, want %d", len(p.Servers), tc.servers)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("generated population invalid: %v", err)
		}
	}
}

func TestGeneratePopulationDeterministic(t *testing.T) {
	cfg := PopulationConfig{Servers: 20, TotalUsers: 5000, Alpha: 1.2, CohortsPerServer: 8, Seed: 42}
	a, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same config produced different populations")
	}
	cfg.Seed = 43
	c, err := GeneratePopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical populations")
	}
}

func TestGeneratePopulationHeavyTail(t *testing.T) {
	p, err := GeneratePopulation(PopulationConfig{
		Servers: 200, TotalUsers: 100_000, Alpha: 1.1, CohortsPerServer: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	max, min := 0, 1<<62
	for _, cohorts := range p.Servers {
		n := 0
		for _, c := range cohorts {
			n += c.Count
		}
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	// A Pareto(1.1) draw over 200 servers is very skewed; uniform would give
	// 500 each. Requiring a 5x max/mean ratio is far below the typical draw
	// but cleanly separates heavy-tailed from uniform.
	if mean := 100_000 / 200; max < 5*mean {
		t.Errorf("max per-server count %d not heavy-tailed (mean %d)", max, mean)
	}
	if min < 0 {
		t.Errorf("negative per-server count %d", min)
	}
}

func TestPopulationRoundTrip(t *testing.T) {
	p, err := GeneratePopulation(PopulationConfig{
		Servers: 12, TotalUsers: 600, Alpha: 1.2, CohortsPerServer: 3,
		Period: 10 * time.Second, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParsePopulation(data)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Error("population did not survive a marshal/parse round trip")
	}
	spec := q.Servers[0][0]
	if spec.Offset() != time.Duration(spec.OffsetNS) {
		t.Errorf("Offset() = %v, want %v", spec.Offset(), time.Duration(spec.OffsetNS))
	}
	if spec.Period() != 10*time.Second {
		t.Errorf("Period() = %v, want 10s", spec.Period())
	}
}

func TestParsePopulationRejects(t *testing.T) {
	for name, data := range map[string]string{
		"empty":          `{}`,
		"no-servers":     `{"servers": []}`,
		"zero-count":     `{"servers": [[{"count": 0}]]}`,
		"negative-count": `{"servers": [[{"count": -3}]]}`,
		"neg-offset":     `{"servers": [[{"count": 1, "offset_ns": -1}]]}`,
		"neg-period":     `{"servers": [[{"count": 1, "period_ns": -1}]]}`,
		"unknown-field":  `{"servers": [[{"count": 1, "weight": 2}]]}`,
		"trailing-data":  `{"servers": [[{"count": 1}]]} {}`,
		"not-json":       `servers: 3`,
	} {
		if _, err := ParsePopulation([]byte(data)); err == nil {
			t.Errorf("%s: ParsePopulation accepted %q", name, data)
		}
	}
}

func TestParsePopulationAccepts(t *testing.T) {
	p, err := ParsePopulation([]byte(
		`{"servers": [[{"count": 5, "offset_ns": 1000}], [{"count": 2, "period_ns": 10000000000}]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalUsers() != 7 || p.NumCohorts() != 2 {
		t.Errorf("TotalUsers=%d NumCohorts=%d, want 7 and 2", p.TotalUsers(), p.NumCohorts())
	}
	if got := p.Servers[1][0].Period(); got != 10*time.Second {
		t.Errorf("Period() = %v, want 10s", got)
	}
}

func TestGeneratePopulationRejects(t *testing.T) {
	for name, cfg := range map[string]PopulationConfig{
		"no-servers":  {Servers: 0, TotalUsers: 10},
		"neg-users":   {Servers: 3, TotalUsers: -1},
		"neg-period":  {Servers: 3, TotalUsers: 10, Period: -time.Second},
		"huge-ilacap": {Servers: 1, TotalUsers: maxPopulationUsers + 1},
	} {
		if _, err := GeneratePopulation(cfg); err == nil {
			t.Errorf("%s: GeneratePopulation accepted %+v", name, cfg)
		}
	}
}

// FuzzParsePopulation locks the parser's contract: arbitrary input never
// panics, and any accepted spec survives a marshal/reparse round trip
// unchanged (so specs written by Marshal are always re-loadable).
func FuzzParsePopulation(f *testing.F) {
	f.Add([]byte(`{"servers": [[{"count": 5, "offset_ns": 1000}]]}`))
	f.Add([]byte(`{"servers": [[{"count": 1}, {"count": 2, "period_ns": 1}], []]}`))
	f.Add([]byte(`{"servers": []}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1, 2, 3]`))
	seed, err := GeneratePopulation(PopulationConfig{Servers: 4, TotalUsers: 37, Alpha: 1.2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	data, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePopulation(data)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil population returned with an error")
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted population fails Validate: %v", err)
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted population fails Marshal: %v", err)
		}
		q, err := ParsePopulation(out)
		if err != nil {
			t.Fatalf("marshaled population fails reparse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the population:\nbefore %#v\nafter  %#v", p, q)
		}
		// Totals computed from the reparsed copy must agree too.
		if p.TotalUsers() != q.TotalUsers() || p.NumCohorts() != q.NumCohorts() {
			t.Fatal("round trip changed population totals")
		}
		if strings.Contains(string(out), "\t") {
			t.Fatal("Marshal emitted tabs; indented output should use spaces")
		}
	})
}

func TestExactCountsSumsAndDeterminism(t *testing.T) {
	weights := []float64{3.5, 1.1, 0, 2.4, 0.7}
	first, err := ExactCounts(weights, 97)
	if err != nil {
		t.Fatalf("ExactCounts: %v", err)
	}
	sum := 0
	for i, c := range first {
		if c < 0 {
			t.Fatalf("count %d is negative: %d", i, c)
		}
		sum += c
	}
	if sum != 97 {
		t.Fatalf("counts sum to %d, want 97", sum)
	}
	if first[2] != 0 {
		t.Fatalf("zero weight got %d units", first[2])
	}
	again, err := ExactCounts(weights, 97)
	if err != nil {
		t.Fatalf("second ExactCounts: %v", err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("ExactCounts is not deterministic: %v vs %v", first, again)
	}
}

func TestExactCountsProportional(t *testing.T) {
	counts, err := ExactCounts([]float64{1, 2, 1}, 400)
	if err != nil {
		t.Fatalf("ExactCounts: %v", err)
	}
	if counts[0] != 100 || counts[1] != 200 || counts[2] != 100 {
		t.Fatalf("counts %v, want [100 200 100]", counts)
	}
}

func TestExactCountsRejects(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		total   int
	}{
		{"no weights", nil, 10},
		{"negative total", []float64{1}, -1},
		{"negative weight", []float64{1, -2}, 10},
		{"nan weight", []float64{math.NaN()}, 10},
		{"inf weight", []float64{math.Inf(1)}, 10},
		{"zero sum", []float64{0, 0}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ExactCounts(tc.weights, tc.total); err == nil {
				t.Fatal("ExactCounts accepted invalid input")
			}
		})
	}
}
