package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// CohortSpec is one weighted user cohort attached to a server: Count users
// sharing a visit phase (all start OffsetNS into the run) and a poll period.
// Members of a cohort are interchangeable by construction — same server, same
// phase, same period — which is what lets the cohort user model simulate them
// with one event per period instead of Count.
type CohortSpec struct {
	// Count is the number of users in the cohort; must be >= 1.
	Count int `json:"count"`
	// OffsetNS is the cohort's first-visit offset in nanoseconds from the
	// start of the run (the paper randomizes user starts in [0s, 50s]).
	OffsetNS int64 `json:"offset_ns"`
	// PeriodNS is the cohort's visit period in nanoseconds; 0 means "use the
	// simulation's configured end-user TTL".
	PeriodNS int64 `json:"period_ns,omitempty"`
}

// Offset returns the first-visit offset as a duration.
func (c CohortSpec) Offset() time.Duration { return time.Duration(c.OffsetNS) }

// Period returns the visit period as a duration (0 = simulation default).
func (c CohortSpec) Period() time.Duration { return time.Duration(c.PeriodNS) }

// Population assigns user cohorts to servers: Servers[i] holds the cohorts
// attached to the i-th content server. The same population drives both user
// models — expanded to one actor per user under "explicit", simulated in
// aggregate under "cohort" — which is what the equivalence tests rely on.
type Population struct {
	Servers [][]CohortSpec `json:"servers"`
}

// maxPopulationUsers bounds the total user count a spec may declare, keeping
// downstream int arithmetic (weighted counters, largest-remainder rounding)
// far from overflow even when several counters are summed.
const maxPopulationUsers = 1 << 40

// Validate checks structural soundness: at least one server, every cohort
// with a positive count and non-negative offset/period, and a bounded total.
func (p *Population) Validate() error {
	if p == nil {
		return fmt.Errorf("workload: nil population")
	}
	if len(p.Servers) == 0 {
		return fmt.Errorf("workload: population has no servers")
	}
	total := 0
	for si, cohorts := range p.Servers {
		for ci, c := range cohorts {
			if c.Count <= 0 {
				return fmt.Errorf("workload: server %d cohort %d has non-positive count %d", si, ci, c.Count)
			}
			if c.OffsetNS < 0 {
				return fmt.Errorf("workload: server %d cohort %d has negative offset %d", si, ci, c.OffsetNS)
			}
			if c.PeriodNS < 0 {
				return fmt.Errorf("workload: server %d cohort %d has negative period %d", si, ci, c.PeriodNS)
			}
			total += c.Count
			if total > maxPopulationUsers {
				return fmt.Errorf("workload: population exceeds %d users", maxPopulationUsers)
			}
		}
	}
	return nil
}

// TotalUsers sums the cohort counts across all servers.
func (p *Population) TotalUsers() int {
	total := 0
	for _, cohorts := range p.Servers {
		for _, c := range cohorts {
			total += c.Count
		}
	}
	return total
}

// NumCohorts counts the cohorts across all servers.
func (p *Population) NumCohorts() int {
	n := 0
	for _, cohorts := range p.Servers {
		n += len(cohorts)
	}
	return n
}

// Marshal serializes the population as indented JSON, the inverse of
// ParsePopulation: Parse(Marshal(p)) reproduces p exactly.
func (p *Population) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParsePopulation parses and validates a JSON population spec. Parsing is
// strict: unknown fields, malformed values, trailing data, and structurally
// invalid populations are all errors, never panics — the parser is fuzzed on
// that contract.
func ParsePopulation(data []byte) (*Population, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Population
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("workload: parse population: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: parse population: trailing data after spec")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// PopulationConfig parameterizes GeneratePopulation.
type PopulationConfig struct {
	// Servers is the number of content servers; required.
	Servers int
	// TotalUsers is the population size to distribute; required.
	TotalUsers int
	// Alpha is the Pareto tail index of the per-server weight draw; real
	// edge populations are heavy-tailed (anycast CDN measurements), and
	// smaller Alpha means heavier tails. Alpha <= 0 distributes uniformly.
	Alpha float64
	// CohortsPerServer splits each server's users into this many phase
	// cohorts (fewer when the server has fewer users); default 8.
	CohortsPerServer int
	// Period is the per-cohort visit period; 0 leaves the cohorts on the
	// simulation's configured end-user TTL.
	Period time.Duration
	// SpreadMax bounds the random cohort start offsets, mirroring the
	// paper's [0s, 50s] user-start window; default 50 s.
	SpreadMax time.Duration
	// Seed makes the draw deterministic.
	Seed int64
}

// GeneratePopulation draws a heavy-tailed population: per-server user counts
// follow a Pareto weight draw normalized to TotalUsers by largest-remainder
// rounding (so the counts sum to TotalUsers exactly), and each server's users
// are split into phase cohorts with uniform-random start offsets. The same
// config always yields the same population.
func GeneratePopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("workload: population needs Servers > 0, got %d", cfg.Servers)
	}
	if cfg.TotalUsers < 0 {
		return nil, fmt.Errorf("workload: negative TotalUsers %d", cfg.TotalUsers)
	}
	if cfg.TotalUsers > maxPopulationUsers {
		return nil, fmt.Errorf("workload: TotalUsers %d exceeds %d", cfg.TotalUsers, maxPopulationUsers)
	}
	if cfg.CohortsPerServer <= 0 {
		cfg.CohortsPerServer = 8
	}
	if cfg.SpreadMax <= 0 {
		cfg.SpreadMax = 50 * time.Second
	}
	if cfg.Period < 0 {
		return nil, fmt.Errorf("workload: negative Period %v", cfg.Period)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	counts := heavyTailedCounts(rng, cfg.Servers, cfg.TotalUsers, cfg.Alpha)

	p := &Population{Servers: make([][]CohortSpec, cfg.Servers)}
	for si, count := range counts {
		k := cfg.CohortsPerServer
		if k > count {
			k = count
		}
		cohorts := make([]CohortSpec, 0, k)
		for j := 0; j < k; j++ {
			// Split count into k near-equal cohorts (first count%k get one
			// extra), each at an independent uniform start offset.
			c := count / k
			if j < count%k {
				c++
			}
			cohorts = append(cohorts, CohortSpec{
				Count:    c,
				OffsetNS: rng.Int63n(int64(cfg.SpreadMax)),
				PeriodNS: int64(cfg.Period),
			})
		}
		p.Servers[si] = cohorts
	}
	return p, nil
}

// heavyTailedCounts distributes total users over n servers proportionally to
// Pareto(alpha) weights (uniform when alpha <= 0), rounding by largest
// remainder so the result sums to total exactly.
func heavyTailedCounts(rng *rand.Rand, n, total int, alpha float64) []int {
	weights := make([]float64, n)
	for i := range weights {
		w := 1.0
		if alpha > 0 {
			// Inverse-CDF Pareto draw with xm = 1; capped so one pathological
			// draw cannot swallow float precision for everyone else.
			u := rng.Float64()
			w = math.Pow(1-u, -1/alpha)
			if w > 1e9 {
				w = 1e9
			}
		}
		weights[i] = w
	}
	// The weights are positive by construction, so ExactCounts cannot fail.
	counts, _ := ExactCounts(weights, total)
	return counts
}

// ExactCounts distributes total units over len(weights) buckets
// proportionally to the weights, rounding by largest remainder so the
// result sums to total exactly — the apportionment primitive behind both
// the heavy-tailed population generator and trace-import workload
// inference. Ties break toward the lower index, so the result is a pure
// function of its inputs. Weights must be non-negative with a positive sum.
func ExactCounts(weights []float64, total int) ([]int, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("workload: ExactCounts with no weights")
	}
	if total < 0 {
		return nil, fmt.Errorf("workload: ExactCounts with negative total %d", total)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: ExactCounts weight %d is %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: ExactCounts weights sum to %v", sum)
	}
	counts := make([]int, n)
	type frac struct {
		idx int
		rem float64
	}
	rems := make([]frac, n)
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(exact)
		rems[i] = frac{idx: i, rem: exact - float64(counts[i])}
		assigned += counts[i]
	}
	// Hand the leftover units to the largest fractional parts (ties broken
	// by lower index, keeping the draw fully deterministic).
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].rem != rems[b].rem {
			return rems[a].rem > rems[b].rem
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; i < total-assigned; i++ {
		counts[rems[i%n].idx]++
	}
	return counts, nil
}
