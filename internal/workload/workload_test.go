package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultGameShape(t *testing.T) {
	cfg := DefaultGame()
	if got := cfg.Duration(); got != 146*time.Minute {
		t.Errorf("Duration = %v, want 146m", got)
	}
	updates, err := Schedule(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ~306 snapshots; allow sampling spread.
	if len(updates) < 240 || len(updates) > 380 {
		t.Errorf("update count = %d, want ~306", len(updates))
	}
	// No updates during halftime (65m..81m).
	for _, u := range updates {
		if u.At >= 65*time.Minute && u.At < 81*time.Minute {
			t.Errorf("update %d at %v falls in halftime", u.Snapshot, u.At)
		}
		if u.SizeKB != 1 {
			t.Errorf("update size = %v, want 1", u.SizeKB)
		}
	}
}

func TestScheduleMonotoneNumbered(t *testing.T) {
	updates, err := Schedule(DefaultGame(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range updates {
		if u.Snapshot != i+1 {
			t.Fatalf("snapshot %d at position %d", u.Snapshot, i)
		}
		if i > 0 && u.At <= updates[i-1].At {
			t.Fatalf("non-increasing times at %d: %v then %v", i, updates[i-1].At, u.At)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a, err := Schedule(DefaultGame(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(DefaultGame(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(GameConfig{}, 1); err == nil {
		t.Error("empty phases accepted")
	}
	if _, err := Schedule(GameConfig{Phases: []Phase{{Name: "x", Duration: 0, MeanGap: time.Second}}}, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Schedule(GameConfig{Phases: []Phase{{Name: "x", Duration: time.Minute, MeanGap: -time.Second}}}, 1); err == nil {
		t.Error("negative mean gap accepted")
	}
}

func TestScheduleMinGapEnforced(t *testing.T) {
	cfg := GameConfig{
		Phases: []Phase{{Name: "fast", Duration: 10 * time.Minute, MeanGap: time.Millisecond}},
		MinGap: 2 * time.Second,
	}
	updates, err := Schedule(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(updates); i++ {
		if gap := updates[i].At - updates[i-1].At; gap < 2*time.Second {
			t.Fatalf("gap %v below MinGap", gap)
		}
	}
}

func TestSnapshotAt(t *testing.T) {
	updates := []Update{
		{Snapshot: 1, At: 10 * time.Second},
		{Snapshot: 2, At: 20 * time.Second},
		{Snapshot: 3, At: 30 * time.Second},
	}
	tests := []struct {
		t    time.Duration
		want int
	}{
		{0, 0}, {9 * time.Second, 0}, {10 * time.Second, 1},
		{15 * time.Second, 1}, {20 * time.Second, 2}, {99 * time.Second, 3},
	}
	for _, tt := range tests {
		if got := SnapshotAt(updates, tt.t); got != tt.want {
			t.Errorf("SnapshotAt(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
	if got := SnapshotAt(nil, time.Second); got != 0 {
		t.Errorf("SnapshotAt(empty) = %d, want 0", got)
	}
}

func TestPropertySnapshotAtMonotone(t *testing.T) {
	updates, err := Schedule(DefaultGame(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aMS, bMS uint32) bool {
		a := time.Duration(aMS) * time.Millisecond
		b := time.Duration(bMS) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		return SnapshotAt(updates, a) <= SnapshotAt(updates, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVisits(t *testing.T) {
	v := VisitPattern{Period: 10 * time.Second, Start: 3 * time.Second}
	got, err := v.Visits(35 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{3 * time.Second, 13 * time.Second, 23 * time.Second, 33 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("visits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVisitsValidation(t *testing.T) {
	if _, err := (VisitPattern{Period: 0}).Visits(time.Minute); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := (VisitPattern{Period: time.Second, Start: -1}).Visits(time.Minute); err == nil {
		t.Error("negative start accepted")
	}
}

func TestRandomStarts(t *testing.T) {
	starts := RandomStarts(100, 50*time.Second, 1)
	if len(starts) != 100 {
		t.Fatalf("len = %d", len(starts))
	}
	for _, s := range starts {
		if s < 0 || s >= 50*time.Second {
			t.Fatalf("start %v outside [0,50s)", s)
		}
	}
	again := RandomStarts(100, 50*time.Second, 1)
	for i := range starts {
		if starts[i] != again[i] {
			t.Fatal("RandomStarts not deterministic for same seed")
		}
	}
	zero := RandomStarts(5, 0, 1)
	for _, s := range zero {
		if s != 0 {
			t.Errorf("max=0 produced %v", s)
		}
	}
}

func TestPoissonVisits(t *testing.T) {
	visits, err := PoissonVisits(10*time.Second, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ~360 arrivals.
	if len(visits) < 280 || len(visits) > 440 {
		t.Errorf("arrivals = %d, want ~360", len(visits))
	}
	for i, v := range visits {
		if v < 0 || v > time.Hour {
			t.Fatalf("visit %d at %v outside horizon", i, v)
		}
		if i > 0 && v < visits[i-1] {
			t.Fatalf("visits not sorted at %d", i)
		}
	}
	again, err := PoissonVisits(10*time.Second, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(visits) {
		t.Error("PoissonVisits not deterministic")
	}
}

func TestPoissonVisitsValidation(t *testing.T) {
	if _, err := PoissonVisits(0, time.Hour, 1); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := PoissonVisits(time.Second, -time.Hour, 1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestPoissonVisitsZeroHorizon(t *testing.T) {
	visits, err := PoissonVisits(time.Second, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 0 {
		t.Errorf("visits = %v, want none", visits)
	}
}
