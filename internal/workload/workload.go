// Package workload generates the dynamic-content update schedules and
// end-user visit patterns used throughout the experiments. The model follows
// the paper's trace: a live sports game emits a sequence of statistics
// snapshots, updated frequently while play is on and silent during breaks
// (Section 5: "frequent updates during the match, silence for a long time
// during the breaks").
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Update is one content snapshot publication at the provider.
type Update struct {
	// Snapshot is the 1-based sequence number of the content version.
	Snapshot int
	// At is the publication time relative to the start of the schedule.
	At time.Duration
	// SizeKB is the update payload size.
	SizeKB float64
}

// Phase is one segment of a live event. During a play phase updates arrive
// with exponential gaps of the given mean; during a break (MeanGap == 0) no
// updates occur.
type Phase struct {
	Name     string
	Duration time.Duration
	// MeanGap is the mean inter-update gap; 0 marks a silent break.
	MeanGap time.Duration
}

// GameConfig describes a live event.
type GameConfig struct {
	Phases []Phase
	// SizeKB is the payload size of every update; default 1 KB, the
	// packet size used in the paper's evaluation (Section 4).
	SizeKB float64
	// MinGap floors the exponential draw so two snapshots never collide;
	// default 1s.
	MinGap time.Duration
}

// DefaultGame approximates the paper's trace day: 306 snapshots over
// 2 h 26 min — two halves of play with a mid-game break. With 130 minutes of
// play and a mean gap of 25.5 s the expected count is ~306.
func DefaultGame() GameConfig {
	return GameConfig{
		Phases: []Phase{
			{Name: "first-half", Duration: 65 * time.Minute, MeanGap: 25500 * time.Millisecond},
			{Name: "halftime", Duration: 16 * time.Minute, MeanGap: 0},
			{Name: "second-half", Duration: 65 * time.Minute, MeanGap: 25500 * time.Millisecond},
		},
		SizeKB: 1,
		MinGap: time.Second,
	}
}

// Duration returns the total event length.
func (c GameConfig) Duration() time.Duration {
	var total time.Duration
	for _, p := range c.Phases {
		total += p.Duration
	}
	return total
}

// Schedule draws a concrete update schedule from the config. Snapshots are
// numbered from 1 in time order. The same seed yields the same schedule.
func Schedule(cfg GameConfig, seed int64) ([]Update, error) {
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	if cfg.SizeKB <= 0 {
		cfg.SizeKB = 1
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	var (
		updates []Update
		offset  time.Duration
	)
	for _, p := range cfg.Phases {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("workload: phase %q has non-positive duration", p.Name)
		}
		if p.MeanGap < 0 {
			return nil, fmt.Errorf("workload: phase %q has negative mean gap", p.Name)
		}
		if p.MeanGap > 0 {
			t := offset
			for {
				gap := time.Duration(rng.ExpFloat64() * float64(p.MeanGap))
				if gap < cfg.MinGap {
					gap = cfg.MinGap
				}
				t += gap
				if t >= offset+p.Duration {
					break
				}
				updates = append(updates, Update{At: t, SizeKB: cfg.SizeKB})
			}
		}
		offset += p.Duration
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].At < updates[j].At })
	for i := range updates {
		updates[i].Snapshot = i + 1
	}
	return updates, nil
}

// SnapshotAt returns the snapshot number visible at the provider at time t
// given a schedule (0 before the first update). The schedule must be sorted
// by time, which Schedule guarantees.
func SnapshotAt(updates []Update, t time.Duration) int {
	lo := sort.Search(len(updates), func(i int) bool { return updates[i].At > t })
	if lo == 0 {
		return 0
	}
	return updates[lo-1].Snapshot
}

// VisitPattern generates end-user request times.
type VisitPattern struct {
	// Period is the end-user polling interval (the paper's end-user TTL,
	// 10 s in the trace).
	Period time.Duration
	// Start offsets the first visit; the paper randomizes it in [0, 50s].
	Start time.Duration
}

// Visits returns all visit times in [Start, horizon].
func (v VisitPattern) Visits(horizon time.Duration) ([]time.Duration, error) {
	if v.Period <= 0 {
		return nil, fmt.Errorf("workload: visit period must be positive, got %v", v.Period)
	}
	if v.Start < 0 {
		return nil, fmt.Errorf("workload: negative start %v", v.Start)
	}
	var out []time.Duration
	for t := v.Start; t <= horizon; t += v.Period {
		out = append(out, t)
	}
	return out, nil
}

// PoissonVisits draws visit times as a Poisson process with the given mean
// inter-arrival time over [0, horizon]. The paper's users poll strictly
// periodically; Poisson arrivals model organic traffic for workloads beyond
// the trace (e.g. the online-social-network pattern of Section 5).
func PoissonVisits(mean, horizon time.Duration, seed int64) ([]time.Duration, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("workload: non-positive mean inter-arrival %v", mean)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("workload: negative horizon %v", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := time.Duration(rng.ExpFloat64() * float64(mean))
	for t <= horizon {
		out = append(out, t)
		t += time.Duration(rng.ExpFloat64() * float64(mean))
	}
	return out, nil
}

// RandomStarts draws n start offsets uniformly in [0, max), as the paper does
// for end-user request arrival (Section 4: "randomly chosen from [0s,50s]").
func RandomStarts(n int, max time.Duration, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		if max > 0 {
			out[i] = time.Duration(rng.Int63n(int64(max)))
		}
	}
	return out
}
