package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cdnconsistency/internal/geo"
)

func randomLocs(n int, seed int64) []geo.Point {
	r := rand.New(rand.NewSource(seed))
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180}
	}
	return locs
}

func TestUnicastStar(t *testing.T) {
	tree, err := BuildUnicastStar(5)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 6 {
		t.Fatalf("nodes = %d", tree.NumNodes())
	}
	if err := tree.Validate(0, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tree.Children(0)) != 5 {
		t.Errorf("root children = %d", len(tree.Children(0)))
	}
	for i := 1; i <= 5; i++ {
		if tree.Parent(i) != 0 || tree.Depth(i) != 1 {
			t.Errorf("node %d parent/depth = %d/%d", i, tree.Parent(i), tree.Depth(i))
		}
	}
	if tree.MaxDepth() != 1 {
		t.Errorf("MaxDepth = %d", tree.MaxDepth())
	}
	if _, err := BuildUnicastStar(-1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestUnicastStarEmpty(t *testing.T) {
	tree, err := BuildUnicastStar(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 || tree.MaxDepth() != 0 {
		t.Errorf("empty star wrong: nodes=%d depth=%d", tree.NumNodes(), tree.MaxDepth())
	}
}

func TestBuildMulticastValidates(t *testing.T) {
	locs := randomLocs(50, 1)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(2, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// A binary tree over 50 nodes has depth >= log2(50) ~ 5.
	if tree.MaxDepth() < 5 {
		t.Errorf("MaxDepth = %d, want >= 5", tree.MaxDepth())
	}
	if _, err := BuildMulticast(nil, 2); err == nil {
		t.Error("empty locs accepted")
	}
	if _, err := BuildMulticast(locs, 0); err == nil {
		t.Error("zero degree accepted")
	}
}

func TestBuildMulticastHigherDegreeShallower(t *testing.T) {
	locs := randomLocs(100, 2)
	d2, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := BuildMulticast(locs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d8.MaxDepth() >= d2.MaxDepth() {
		t.Errorf("8-ary depth %d not below binary depth %d", d8.MaxDepth(), d2.MaxDepth())
	}
}

func TestProximityBeatsRandomAttachment(t *testing.T) {
	locs := randomLocs(120, 3)
	prox, err := BuildMulticast(locs, 3)
	if err != nil {
		t.Fatal(err)
	}
	random, err := BuildRandomMulticast(len(locs), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := random.Validate(3, nil); err != nil {
		t.Fatalf("random tree invalid: %v", err)
	}
	pk := prox.TotalEdgeKm(locs, nil)
	rk := random.TotalEdgeKm(locs, nil)
	if pk >= rk {
		t.Errorf("proximity tree edges %.0f km not below random %.0f km", pk, rk)
	}
}

func TestBuildRandomMulticastValidation(t *testing.T) {
	if _, err := BuildRandomMulticast(0, 2); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := BuildRandomMulticast(5, 0); err == nil {
		t.Error("zero degree accepted")
	}
}

func TestRemoveRepairsTree(t *testing.T) {
	locs := randomLocs(40, 4)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, len(locs))
	for i := range alive {
		alive[i] = true
	}
	// Remove an internal node with children.
	var victim int
	for i := 1; i < tree.NumNodes(); i++ {
		if len(tree.Children(i)) > 0 {
			victim = i
			break
		}
	}
	if victim == 0 {
		t.Fatal("no internal node found")
	}
	if err := tree.Remove(victim, locs, 2, alive); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := tree.Validate(2, alive); err != nil {
		t.Fatalf("tree invalid after repair: %v", err)
	}
}

func TestRemoveSequence(t *testing.T) {
	locs := randomLocs(60, 5)
	tree, err := BuildMulticast(locs, 3)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, len(locs))
	for i := range alive {
		alive[i] = true
	}
	r := rand.New(rand.NewSource(6))
	removed := 0
	for removed < 20 {
		v := 1 + r.Intn(len(locs)-1)
		if !alive[v] {
			continue
		}
		if err := tree.Remove(v, locs, 3, alive); err != nil {
			t.Fatalf("Remove(%d): %v", v, err)
		}
		if err := tree.Validate(3, alive); err != nil {
			t.Fatalf("invalid after removing %d: %v", v, err)
		}
		removed++
	}
}

func TestRemoveErrors(t *testing.T) {
	locs := randomLocs(10, 7)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, len(locs))
	for i := range alive {
		alive[i] = true
	}
	if err := tree.Remove(0, locs, 2, alive); err == nil {
		t.Error("removing root accepted")
	}
	if err := tree.Remove(99, locs, 2, alive); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := tree.Remove(3, locs, 2, alive); err != nil {
		t.Fatal(err)
	}
	if err := tree.Remove(3, locs, 2, alive); err == nil {
		t.Error("double remove accepted")
	}
	if err := tree.Remove(4, locs[:5], 2, alive); err == nil {
		t.Error("mismatched locs accepted")
	}
}

// Property: multicast construction over arbitrary node sets always yields a
// valid tree whose depths are consistent.
func TestPropertyMulticastAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := 2 + int(nRaw%80)
		d := 1 + int(dRaw%5)
		locs := randomLocs(n, seed)
		tree, err := BuildMulticast(locs, d)
		if err != nil {
			return false
		}
		return tree.Validate(d, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: repair keeps the tree valid for any removal sequence.
func TestPropertyRepairAlwaysValid(t *testing.T) {
	f := func(seed int64, removals []uint8) bool {
		locs := randomLocs(30, seed)
		tree, err := BuildMulticast(locs, 2)
		if err != nil {
			return false
		}
		alive := make([]bool, len(locs))
		for i := range alive {
			alive[i] = true
		}
		liveCount := len(locs)
		for _, raw := range removals {
			if liveCount <= 3 {
				break
			}
			v := 1 + int(raw)%(len(locs)-1)
			if !alive[v] {
				continue
			}
			if err := tree.Remove(v, locs, 2, alive); err != nil {
				return false
			}
			liveCount--
			if tree.Validate(2, alive) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	locs := randomLocs(10, 8)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree.parent[3] = 5
	if err := tree.Validate(2, nil); err == nil {
		t.Error("corrupted parent pointer accepted")
	}
}

func TestNewTreeFromParents(t *testing.T) {
	// provider(0) -> supernodes 1,2; members 3,4 under 1; 5 under 2.
	tree, err := NewTreeFromParents([]int{NoParent, 0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(0, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Depth(4) != 2 || tree.Depth(2) != 1 {
		t.Errorf("depths wrong: %d %d", tree.Depth(4), tree.Depth(2))
	}
	if got := len(tree.Children(1)); got != 2 {
		t.Errorf("children(1) = %d", got)
	}

	bad := [][]int{
		{},                  // empty
		{0},                 // root with parent 0
		{NoParent, 5},       // out of range
		{NoParent, 1},       // self-parent
		{NoParent, 2, 1},    // cycle (1<->2), disconnected from root
		{NoParent, 0, 3, 2}, // cycle 2<->3
	}
	for i, parents := range bad {
		if _, err := NewTreeFromParents(parents); err == nil {
			t.Errorf("bad parents %d accepted: %v", i, parents)
		}
	}
}

func TestAddJoinsNearestParent(t *testing.T) {
	locs := randomLocs(20, 9)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, len(locs))
	for i := range alive {
		alive[i] = true
	}
	newLoc := locs[5] // join right next to node 5
	idx, locs2, alive2, err := tree.Add(newLoc, locs, 2, alive)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 20 || len(locs2) != 21 || len(alive2) != 21 {
		t.Fatalf("idx=%d len(locs)=%d len(alive)=%d", idx, len(locs2), len(alive2))
	}
	if err := tree.Validate(2, alive2); err != nil {
		t.Fatalf("invalid after join: %v", err)
	}
	// The chosen parent must be at zero-ish distance unless node 5 (and
	// its colocated candidates) were degree-full.
	p := tree.Parent(idx)
	if d := geo.DistanceKm(locs2[idx], locs2[p]); d > 2000 {
		t.Errorf("joined %0.f km from parent; nearest-parent rule violated", d)
	}
}

func TestAddThenRemoveCycle(t *testing.T) {
	locs := randomLocs(15, 10)
	tree, err := BuildMulticast(locs, 3)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, len(locs))
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < 10; i++ {
		var idx int
		idx, locs, alive, err = tree.Add(randomLocs(1, int64(100+i))[0], locs, 3, alive)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(3, alive); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if i%2 == 0 {
			if err := tree.Remove(idx, locs, 3, alive); err != nil {
				t.Fatalf("remove %d: %v", idx, err)
			}
			if err := tree.Validate(3, alive); err != nil {
				t.Fatalf("after remove %d: %v", idx, err)
			}
		}
	}
}

func TestAddErrors(t *testing.T) {
	locs := randomLocs(3, 11)
	tree, err := BuildMulticast(locs, 1)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, 3)
	if _, _, _, err := tree.Add(locs[0], locs, 0, alive); err == nil {
		t.Error("zero degree accepted")
	}
	if _, _, _, err := tree.Add(locs[0], locs[:2], 1, alive); err == nil {
		t.Error("mismatched locs accepted")
	}
	// All nodes dead: no parent available.
	if _, _, _, err := tree.Add(locs[0], locs, 1, alive); err == nil {
		t.Error("join with no live parents accepted")
	}
}
