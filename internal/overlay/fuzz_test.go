package overlay

import (
	"testing"
)

// FuzzTreeFailRecover drives a multicast tree through an arbitrary fail /
// recover sequence decoded from the fuzz input. After every successful
// operation the structural invariants must hold: Validate passes over the
// live set, no live node is parented under a down node, and parent/alive
// agree (a down node is detached, a live node reaches the root).
func FuzzTreeFailRecover(f *testing.F) {
	f.Add([]byte{2, 3, 2, 5})
	f.Add([]byte{1, 1, 1, 1, 0, 0})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1})

	const n, degree = 24, 2
	locs := randomLocs(n, 11)

	f.Fuzz(func(t *testing.T, ops []byte) {
		tree, err := BuildMulticast(locs, degree)
		if err != nil {
			t.Fatal(err)
		}
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for _, b := range ops {
			node := 1 + int(b%(n-1)) // never the root
			var err error
			if alive[node] {
				err = tree.Remove(node, locs, degree, alive)
			} else {
				err = tree.Reattach(node, locs, degree, alive)
			}
			if err != nil {
				// A failed repair legitimately leaves partial state (the
				// documented best-effort contract); stop exploring this
				// input rather than asserting invariants on it.
				return
			}
			checkInvariants(t, tree, alive, degree)
		}
	})
}

func checkInvariants(t *testing.T, tree *Tree, alive []bool, degree int) {
	t.Helper()
	if err := tree.Validate(degree, alive); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 1; i < tree.NumNodes(); i++ {
		p := tree.Parent(i)
		if alive[i] {
			if p == NoParent {
				t.Fatalf("live node %d detached", i)
			}
			if !alive[p] {
				t.Fatalf("live node %d parented under down node %d", i, p)
			}
		} else {
			if p != NoParent {
				t.Fatalf("down node %d still has parent %d", i, p)
			}
			if c := tree.Children(i); len(c) != 0 {
				t.Fatalf("down node %d still has children %v", i, c)
			}
		}
	}
}
