// Package overlay builds the update-distribution infrastructures the paper
// evaluates (Section 4): the unicast star (provider directly connected to
// every server), the proximity-aware d-ary multicast tree (geographically
// close nodes attached under each other), and the hybrid supernode overlay
// of Section 5.2 (a k-ary proximity-aware tree of per-cluster supernodes,
// with cluster members in a star under their supernode).
package overlay

import (
	"fmt"

	"cdnconsistency/internal/audit"
	"cdnconsistency/internal/geo"
)

// NoParent marks the root in a Tree's parent array.
const NoParent = -1

// Tree is a rooted distribution tree over node indices. Index 0 is always
// the provider (root).
type Tree struct {
	parent   []int
	children [][]int
	depth    []int
}

// NumNodes returns the number of nodes including the root.
func (t *Tree) NumNodes() int { return len(t.parent) }

// Parent returns a node's parent index, or NoParent for the root.
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns a node's direct children. The returned slice is owned by
// the tree; callers must not mutate it.
func (t *Tree) Children(i int) []int { return t.children[i] }

// Depth returns a node's distance from the root (root = 0).
func (t *Tree) Depth(i int) int { return t.depth[i] }

// MaxDepth returns the largest node depth.
func (t *Tree) MaxDepth() int {
	max := 0
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// NewTreeFromParents builds a tree from an explicit parent array
// (parents[0] must be NoParent). Used by the hybrid overlay, which combines
// a supernode multicast tree with per-cluster stars.
func NewTreeFromParents(parents []int) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, fmt.Errorf("overlay: empty parent array")
	}
	if parents[0] != NoParent {
		return nil, fmt.Errorf("overlay: node 0 must be the root")
	}
	t := &Tree{
		parent:   append([]int(nil), parents...),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	for i := 1; i < n; i++ {
		p := parents[i]
		if p < 0 || p >= n || p == i {
			return nil, fmt.Errorf("overlay: node %d has invalid parent %d", i, p)
		}
		t.children[p] = append(t.children[p], i)
	}
	t.recomputeDepths()
	// recomputeDepths only reaches nodes connected to the root; verify
	// connectivity via Validate (degree unbounded).
	if err := t.Validate(0, nil); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildUnicastStar returns the unicast infrastructure: the provider (node 0)
// is directly connected to servers 1..n.
func BuildUnicastStar(n int) (*Tree, error) {
	if n < 0 {
		return nil, fmt.Errorf("overlay: negative server count %d", n)
	}
	t := &Tree{
		parent:   make([]int, n+1),
		children: make([][]int, n+1),
		depth:    make([]int, n+1),
	}
	t.parent[0] = NoParent
	for i := 1; i <= n; i++ {
		t.parent[i] = 0
		t.depth[i] = 1
		t.children[0] = append(t.children[0], i)
	}
	return t, nil
}

// BuildMulticast builds a proximity-aware degree-bounded multicast tree over
// locs, where locs[0] is the provider/root. Nodes join in index order, each
// attaching to the geographically nearest node that still has spare degree —
// the paper's newly-joined-supernode rule (Section 5.2) applied to the whole
// tree. The root also honors the degree bound.
func BuildMulticast(locs []geo.Point, degree int) (*Tree, error) {
	if len(locs) == 0 {
		return nil, fmt.Errorf("overlay: no nodes")
	}
	if degree < 1 {
		return nil, fmt.Errorf("overlay: degree %d < 1", degree)
	}
	n := len(locs)
	t := &Tree{
		parent:   make([]int, n),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	t.parent[0] = NoParent
	for i := 1; i < n; i++ {
		best := -1
		bestD := 0.0
		for j := 0; j < i; j++ {
			if len(t.children[j]) >= degree {
				continue
			}
			d := geo.DistanceKm(locs[i], locs[j])
			if best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		if best == -1 {
			// Cannot happen: a degree-d tree over i nodes always has a
			// node with spare capacity (it has at most i-1 edges).
			return nil, fmt.Errorf("overlay: no parent with spare degree for node %d", i)
		}
		t.parent[i] = best
		t.children[best] = append(t.children[best], i)
		t.depth[i] = t.depth[best] + 1
	}
	return t, nil
}

// BuildRandomMulticast is the proximity-ablation variant: same join order
// and degree bound, but each node attaches to the first (lowest-index) node
// with spare degree rather than the nearest. Used to quantify what
// proximity-awareness saves (DESIGN.md ablation 3).
func BuildRandomMulticast(n, degree int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("overlay: need at least the root")
	}
	if degree < 1 {
		return nil, fmt.Errorf("overlay: degree %d < 1", degree)
	}
	t := &Tree{
		parent:   make([]int, n),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	t.parent[0] = NoParent
	next := 0
	for i := 1; i < n; i++ {
		for len(t.children[next]) >= degree {
			next++
		}
		t.parent[i] = next
		t.children[next] = append(t.children[next], i)
		t.depth[i] = t.depth[next] + 1
	}
	return t, nil
}

// Add attaches a new node (the last index after growing the arrays) to the
// nearest live node with spare degree — the paper's newly-joined-supernode
// rule. It returns the new node's index.
func (t *Tree) Add(loc geo.Point, locs []geo.Point, degree int, alive []bool) (int, []geo.Point, []bool, error) {
	if degree < 1 {
		return 0, nil, nil, fmt.Errorf("overlay: degree %d < 1", degree)
	}
	if len(locs) != len(t.parent) || len(alive) != len(t.parent) {
		return 0, nil, nil, fmt.Errorf("overlay: locs/alive length mismatch")
	}
	best := -1
	bestD := 0.0
	for j := range t.parent {
		if !alive[j] || len(t.children[j]) >= degree {
			continue
		}
		d := geo.DistanceKm(loc, locs[j])
		if best == -1 || d < bestD {
			best, bestD = j, d
		}
	}
	if best == -1 {
		return 0, nil, nil, fmt.Errorf("overlay: no live parent with spare degree")
	}
	idx := len(t.parent)
	t.parent = append(t.parent, best)
	t.children = append(t.children, nil)
	t.children[best] = append(t.children[best], idx)
	t.depth = append(t.depth, t.depth[best]+1)
	return idx, append(locs, loc), append(alive, true), nil
}

// Remove detaches a failed node and re-attaches each of its children (with
// their subtrees) to the nearest remaining live node with spare degree,
// implementing the paper's supernodes-having-lost-parents repair rule.
// The root cannot be removed. alive tracks prior removals; a node already
// marked dead but still wired into the tree (failure observed before the
// structure reacted, e.g. detected later via poll timeouts) can still be
// removed — only a node already detached is rejected.
func (t *Tree) Remove(failed int, locs []geo.Point, degree int, alive []bool) error {
	if failed <= 0 || failed >= len(t.parent) {
		return fmt.Errorf("overlay: cannot remove node %d", failed)
	}
	if len(locs) != len(t.parent) || len(alive) != len(t.parent) {
		return fmt.Errorf("overlay: locs/alive length mismatch")
	}
	if t.parent[failed] == NoParent && len(t.children[failed]) == 0 {
		return fmt.Errorf("overlay: node %d already removed", failed)
	}
	alive[failed] = false

	// Detach from parent.
	p := t.parent[failed]
	if p != NoParent {
		t.children[p] = removeChild(t.children[p], failed)
	}
	orphans := t.children[failed]
	t.children[failed] = nil
	t.parent[failed] = NoParent

	for _, o := range orphans {
		best := -1
		bestD := 0.0
		for j := 0; j < len(t.parent); j++ {
			if !alive[j] || j == o || len(t.children[j]) >= degree {
				continue
			}
			if inSubtree(t, o, j) {
				continue // attaching under a descendant would form a cycle
			}
			d := geo.DistanceKm(locs[o], locs[j])
			if best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		if best == -1 {
			return fmt.Errorf("overlay: no live parent for orphan %d", o)
		}
		t.parent[o] = best
		t.children[best] = append(t.children[best], o)
	}
	t.recomputeDepths()
	return nil
}

// Reattach re-joins a previously removed node after recovery: it attaches
// under the nearest live node with spare degree — the same rule a newly
// joined node follows — and marks it live again. The node must currently be
// removed (alive[node] false); its subtree, if Remove left one behind, rides
// along.
func (t *Tree) Reattach(node int, locs []geo.Point, degree int, alive []bool) error {
	if node <= 0 || node >= len(t.parent) {
		return fmt.Errorf("overlay: cannot reattach node %d", node)
	}
	if degree < 1 {
		return fmt.Errorf("overlay: degree %d < 1", degree)
	}
	if len(locs) != len(t.parent) || len(alive) != len(t.parent) {
		return fmt.Errorf("overlay: locs/alive length mismatch")
	}
	if alive[node] {
		return fmt.Errorf("overlay: node %d is already attached", node)
	}
	best := -1
	bestD := 0.0
	for j := range t.parent {
		if !alive[j] || j == node || len(t.children[j]) >= degree {
			continue
		}
		if inSubtree(t, node, j) {
			continue // attaching under a descendant would form a cycle
		}
		d := geo.DistanceKm(locs[node], locs[j])
		if best == -1 || d < bestD {
			best, bestD = j, d
		}
	}
	if best == -1 {
		return fmt.Errorf("overlay: no live parent with spare degree for node %d", node)
	}
	alive[node] = true
	t.parent[node] = best
	t.children[best] = append(t.children[best], node)
	t.recomputeDepths()
	return nil
}

func removeChild(children []int, c int) []int {
	out := children[:0]
	for _, x := range children {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

// inSubtree reports whether candidate lies in the subtree rooted at node.
func inSubtree(t *Tree, node, candidate int) bool {
	for candidate != NoParent {
		if candidate == node {
			return true
		}
		candidate = t.parent[candidate]
	}
	return false
}

func (t *Tree) recomputeDepths() {
	for i := range t.depth {
		t.depth[i] = 0
	}
	var walk func(i, d int)
	walk = func(i, d int) {
		t.depth[i] = d
		for _, c := range t.children[i] {
			walk(c, d+1)
		}
	}
	walk(0, 0)
}

// Validate checks structural invariants: node 0 is the only root, the
// structure is a connected acyclic tree over live nodes, degrees respect the
// bound, and parent/children agree. alive may be nil, meaning all nodes live.
//
// The structural half (root, degree, parent/children agreement, acyclic
// connectivity) is the shared audit.CheckTree predicate — the same property
// the runtime invariant auditor verifies during live runs — so offline tests
// and online audits cannot drift apart. Validate additionally checks the
// cached depth array, which is an overlay implementation detail the auditor
// does not see.
func (t *Tree) Validate(degree int, alive []bool) error {
	if v := audit.CheckTree(t, degree, alive, false); v != nil {
		return fmt.Errorf("overlay: %w", v)
	}
	isLive := func(i int) bool { return alive == nil || alive[i] }
	for i := range t.parent {
		if !isLive(i) {
			continue
		}
		for _, c := range t.children[i] {
			if t.depth[c] != t.depth[i]+1 {
				return fmt.Errorf("overlay: depth of %d is %d, parent depth %d", c, t.depth[c], t.depth[i])
			}
		}
	}
	return nil
}

// TotalEdgeKm sums the great-circle length of all live tree edges — the
// locality measure the proximity ablation compares.
func (t *Tree) TotalEdgeKm(locs []geo.Point, alive []bool) float64 {
	var sum float64
	for i := 1; i < len(t.parent); i++ {
		if alive != nil && !alive[i] {
			continue
		}
		if p := t.parent[i]; p != NoParent {
			sum += geo.DistanceKm(locs[i], locs[p])
		}
	}
	return sum
}
