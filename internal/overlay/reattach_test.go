package overlay

import (
	"testing"
)

func TestReattachRejoinsNearestLive(t *testing.T) {
	locs := randomLocs(30, 3)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, 30)
	for i := range alive {
		alive[i] = true
	}
	if err := tree.Remove(7, locs, 2, alive); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if alive[7] {
		t.Fatal("removed node still alive")
	}
	if err := tree.Reattach(7, locs, 2, alive); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if !alive[7] {
		t.Error("reattached node not alive")
	}
	p := tree.Parent(7)
	if p == NoParent || !alive[p] {
		t.Errorf("reattached under %d (alive=%v)", p, p != NoParent && alive[p])
	}
	if tree.Depth(7) != tree.Depth(p)+1 {
		t.Errorf("depth %d, parent depth %d", tree.Depth(7), tree.Depth(p))
	}
	if err := tree.Validate(2, alive); err != nil {
		t.Errorf("Validate after reattach: %v", err)
	}
}

func TestReattachErrors(t *testing.T) {
	locs := randomLocs(10, 4)
	tree, err := BuildMulticast(locs, 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, 10)
	for i := range alive {
		alive[i] = true
	}
	if err := tree.Reattach(3, locs, 2, alive); err == nil {
		t.Error("reattaching an attached node accepted")
	}
	if err := tree.Reattach(0, locs, 2, alive); err == nil {
		t.Error("reattaching the root accepted")
	}
	if err := tree.Reattach(99, locs, 2, alive); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := tree.Remove(3, locs, 2, alive); err != nil {
		t.Fatal(err)
	}
	if err := tree.Reattach(3, locs, 2, alive[:5]); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := tree.Reattach(3, locs, 0, alive); err == nil {
		t.Error("zero degree accepted")
	}
}

func TestRemoveReattachChurn(t *testing.T) {
	const n, degree = 40, 2
	locs := randomLocs(n, 5)
	tree, err := BuildMulticast(locs, degree)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// Knock out a third, bring them all back, repeat; the tree must stay
	// valid and fully live at each round's end.
	for round := 0; round < 3; round++ {
		var out []int
		for i := 1 + round; i < n; i += 3 {
			if err := tree.Remove(i, locs, degree, alive); err != nil {
				t.Fatalf("round %d Remove(%d): %v", round, i, err)
			}
			out = append(out, i)
		}
		if err := tree.Validate(degree, alive); err != nil {
			t.Fatalf("round %d after removals: %v", round, err)
		}
		for _, i := range out {
			if err := tree.Reattach(i, locs, degree, alive); err != nil {
				t.Fatalf("round %d Reattach(%d): %v", round, i, err)
			}
		}
		if err := tree.Validate(degree, alive); err != nil {
			t.Fatalf("round %d after reattach: %v", round, err)
		}
		for i, a := range alive {
			if !a {
				t.Fatalf("round %d node %d still down", round, i)
			}
		}
	}
}
