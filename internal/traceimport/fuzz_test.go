package traceimport

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
	"cdnconsistency/internal/workload"
)

// FuzzImportTrace drives the whole import path with arbitrary bytes: sniff
// a format, parse, infer. Nothing may panic, and any bundle that comes out
// must validate and round-trip through its own JSON byte-exactly.
func FuzzImportTrace(f *testing.F) {
	// A deliberately tiny trace (short day, few servers) keeps the seed
	// corpus small enough for useful fuzz throughput.
	res, err := tracegen.Generate(tracegen.Config{
		Topology: topology.Config{Servers: 4, Seed: 1},
		Game: workload.GameConfig{
			Phases: []workload.Phase{{Name: "replay", Duration: 4 * time.Minute, MeanGap: 10 * time.Second}},
			SizeKB: 1,
			MinGap: time.Second,
		},
		Days:         1,
		PollInterval: 5 * time.Second,
		ServerTTL:    15 * time.Second,
		Users:        4,
		Seed:         1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := trace.Write(&jsonl, res.Trace); err != nil {
		f.Fatal(err)
	}
	f.Add(jsonl.String())
	res.Trace.SortRecords()
	var logBuf bytes.Buffer
	if err := trace.WriteAccessLog(&logBuf, res.Trace); err != nil {
		f.Fatal(err)
	}
	f.Add(logBuf.String())
	f.Add("")
	f.Add("#cdnlog v1 days=1 daylen=1m0s poll=10s\n")
	f.Add(`{"type":"meta","meta":{"days":1,"poll_interval":1}}`)
	f.Add("{{{{")
	f.Fuzz(func(t *testing.T, input string) {
		tr, _, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		b, err := Infer(tr)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("Infer returned an invalid bundle: %v", err)
		}
		first, err := b.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		parsed, err := ParseBundle(first)
		if err != nil {
			t.Fatalf("ParseBundle of own Marshal: %v", err)
		}
		second, err := parsed.Marshal()
		if err != nil {
			t.Fatalf("second Marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("bundle round trip is not byte-stable")
		}
	})
}
