package traceimport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cdnconsistency/internal/core"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/workload"
)

// Summary holds the scalar estimates Infer derives from a trace. It is the
// human-readable half of a bundle: everything a reader needs to judge
// whether the inference looks sane before replaying it.
type Summary struct {
	// Servers is the number of crawled content servers.
	Servers int `json:"servers"`
	// Sites is the number of distinct deployment locations.
	Sites int `json:"sites"`
	// Users is the number of distinct user-perspective vantage points.
	Users int `json:"users"`
	// Days is the crawl length in days.
	Days int `json:"days"`
	// DayLength is the per-day crawl window.
	DayLength fault.Duration `json:"day_length"`
	// PollInterval is the inferred crawler cadence (modal gap between
	// consecutive polls of one server by one vantage point).
	PollInterval fault.Duration `json:"poll_interval"`
	// ServerTTL is the inferred CDN cache TTL (median spacing of observed
	// content-version changes per server).
	ServerTTL fault.Duration `json:"server_ttl"`
	// UpdatesPerDay is the mean observed content-version count per day.
	UpdatesPerDay float64 `json:"updates_per_day"`
	// UpdateMeanGap is DayLength / UpdatesPerDay — the mean inter-update
	// gap a replay should draw from.
	UpdateMeanGap fault.Duration `json:"update_mean_gap"`
	// RedirectFrac is the inferred per-visit redirect probability,
	// corrected for same-server redirects.
	RedirectFrac float64 `json:"redirect_frac"`
	// Absences is the number of per-server absence runs observed across
	// all crawl days (only day-0 runs become fault windows).
	Absences int `json:"absences"`
}

// Bundle is a complete inferred simulation spec: the scalar summary plus
// the population, server map, and fault schedule, each in the schema its
// home package already parses strictly. Marshal/ParseBundle round-trip
// byte-exactly, which the import smoke test relies on.
type Bundle struct {
	Summary    Summary              `json:"summary"`
	Population *workload.Population `json:"population"`
	ServerMap  *topology.ServerMap  `json:"server_map"`
	Faults     *fault.Spec          `json:"faults,omitempty"`
}

// Validate cross-checks the bundle: every section valid on its own, and
// the section sizes consistent with the summary.
func (b *Bundle) Validate() error {
	if b == nil {
		return fmt.Errorf("traceimport: nil bundle")
	}
	s := b.Summary
	if s.Servers <= 0 {
		return fmt.Errorf("traceimport: summary servers %d must be > 0", s.Servers)
	}
	if s.Sites <= 0 {
		return fmt.Errorf("traceimport: summary sites %d must be > 0", s.Sites)
	}
	if s.Users < 0 {
		return fmt.Errorf("traceimport: summary users %d must be >= 0", s.Users)
	}
	if s.Days <= 0 {
		return fmt.Errorf("traceimport: summary days %d must be > 0", s.Days)
	}
	if s.DayLength.D() <= 0 {
		return fmt.Errorf("traceimport: summary day_length %v must be > 0", s.DayLength.D())
	}
	if s.PollInterval.D() <= 0 {
		return fmt.Errorf("traceimport: summary poll_interval %v must be > 0", s.PollInterval.D())
	}
	if s.ServerTTL.D() <= 0 {
		return fmt.Errorf("traceimport: summary server_ttl %v must be > 0", s.ServerTTL.D())
	}
	if s.UpdatesPerDay <= 0 {
		return fmt.Errorf("traceimport: summary updates_per_day %v must be > 0", s.UpdatesPerDay)
	}
	if s.UpdateMeanGap.D() <= 0 {
		return fmt.Errorf("traceimport: summary update_mean_gap %v must be > 0", s.UpdateMeanGap.D())
	}
	if s.RedirectFrac < 0 || s.RedirectFrac > 1 {
		return fmt.Errorf("traceimport: summary redirect_frac %v outside [0, 1]", s.RedirectFrac)
	}
	if s.Absences < 0 {
		return fmt.Errorf("traceimport: summary absences %d must be >= 0", s.Absences)
	}
	if b.ServerMap == nil {
		return fmt.Errorf("traceimport: bundle has no server map")
	}
	if err := b.ServerMap.Validate(); err != nil {
		return fmt.Errorf("traceimport: %w", err)
	}
	if got := b.ServerMap.NumServers(); got != s.Servers {
		return fmt.Errorf("traceimport: server map has %d servers, summary says %d", got, s.Servers)
	}
	if got := len(b.ServerMap.Sites); got != s.Sites {
		return fmt.Errorf("traceimport: server map has %d sites, summary says %d", got, s.Sites)
	}
	if b.Population == nil {
		return fmt.Errorf("traceimport: bundle has no population")
	}
	if err := b.Population.Validate(); err != nil {
		return fmt.Errorf("traceimport: %w", err)
	}
	if got := len(b.Population.Servers); got != s.Servers {
		return fmt.Errorf("traceimport: population spans %d servers, summary says %d", got, s.Servers)
	}
	if got := b.Population.TotalUsers(); got != s.Users {
		return fmt.Errorf("traceimport: population holds %d users, summary says %d", got, s.Users)
	}
	if b.Faults != nil {
		if err := b.Faults.Validate(); err != nil {
			return fmt.Errorf("traceimport: %w", err)
		}
		for i, cr := range b.Faults.Crashes {
			if cr.Server >= s.Servers {
				return fmt.Errorf("traceimport: fault crash %d targets server %d of %d", i, cr.Server, s.Servers)
			}
		}
	}
	return nil
}

// ParseBundle parses and validates a JSON bundle. Parsing is strict:
// unknown fields, trailing data, and inconsistent bundles are errors,
// never panics.
func ParseBundle(data []byte) (*Bundle, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Bundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("traceimport: parse bundle: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("traceimport: parse bundle: trailing data after spec")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Marshal serializes the bundle as indented JSON, the inverse of
// ParseBundle: Parse(Marshal(b)) reproduces b byte-exactly.
func (b *Bundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// LoadBundle reads and parses a bundle file.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("traceimport: %w", err)
	}
	return ParseBundle(data)
}

// CrashWindows returns the inferred crash-recovery windows (empty when the
// trace showed no day-0 absence runs).
func (b *Bundle) CrashWindows() []fault.Crash {
	if b.Faults == nil {
		return nil
	}
	return b.Faults.Crashes
}

// GameConfig returns the replay update schedule: a single phase covering
// the crawl day with the inferred mean inter-update gap. The replay is
// statistical — it reproduces the update rate, not the paper's play/break
// structure, which a trace does not identify.
func (b *Bundle) GameConfig() workload.GameConfig {
	return workload.GameConfig{
		Phases: []workload.Phase{{
			Name:     "replay",
			Duration: b.Summary.DayLength.D(),
			MeanGap:  b.Summary.UpdateMeanGap.D(),
		}},
		SizeKB: 1,
		MinGap: time.Second,
	}
}

// Options materializes the bundle as simulation options: the exact server
// map as topology, the inferred TTLs, the replay game, the per-server user
// population, and the detected fault windows. Apply core.WithSeed BEFORE
// these options — WithGame draws its schedule from the seed in effect when
// it is applied.
func (b *Bundle) Options() ([]core.Option, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	topo, err := b.ServerMap.Topology()
	if err != nil {
		return nil, err
	}
	opts := []core.Option{
		core.WithTopology(topo),
		core.WithServerTTL(b.Summary.ServerTTL.D()),
		core.WithUserTTL(b.Summary.PollInterval.D()),
		core.WithGame(b.GameConfig()),
		core.WithPopulation(b.Population),
	}
	if b.Faults != nil && !b.Faults.Empty() {
		opts = append(opts, core.WithFaults(*b.Faults))
	}
	return opts, nil
}

// Input formats ReadTrace and LoadAny recognize.
const (
	FormatJSONL     = "jsonl"
	FormatAccessLog = "accesslog"
	FormatBundle    = "bundle"
)

// ReadTrace reads a crawl trace in either supported flavor, sniffing the
// format: access logs start with the "#cdnlog" header, everything else is
// treated as the JSONL schema. It returns the trace and the format name.
func ReadTrace(r io.Reader) (*trace.Trace, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("traceimport: read trace: %w", err)
	}
	if strings.HasPrefix(string(data), "#cdnlog") {
		tr, err := trace.ParseAccessLog(bytes.NewReader(data))
		if err != nil {
			return nil, "", err
		}
		return tr, FormatAccessLog, nil
	}
	tr, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		return nil, "", err
	}
	return tr, FormatJSONL, nil
}

// LoadTrace reads a trace file in either flavor.
func LoadTrace(path string) (*trace.Trace, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("traceimport: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// ImportAny resolves importable bytes of any supported kind into a bundle,
// returning the kind that matched: an access-log trace (the "#cdnlog"
// header), an already-inferred bundle (a JSON object the strict bundle
// parser accepts — a JSONL trace's first line carries a "type" field the
// bundle schema rejects, and an indented bundle's first line is a lone "{"
// the JSONL parser rejects, so the formats cannot be confused), or a JSONL
// trace. Traces are run through Infer.
func ImportAny(data []byte) (*Bundle, string, error) {
	if strings.HasPrefix(string(data), "#cdnlog") {
		tr, err := trace.ParseAccessLog(bytes.NewReader(data))
		if err != nil {
			return nil, "", err
		}
		b, err := Infer(tr)
		if err != nil {
			return nil, "", err
		}
		return b, FormatAccessLog, nil
	}
	if b, err := ParseBundle(data); err == nil {
		return b, FormatBundle, nil
	}
	tr, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		return nil, "", fmt.Errorf("traceimport: input is neither a bundle nor a trace: %w", err)
	}
	b, err := Infer(tr)
	if err != nil {
		return nil, "", err
	}
	return b, FormatJSONL, nil
}

// LoadAny loads an importable file of any kind ImportAny recognizes.
func LoadAny(path string) (*Bundle, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("traceimport: %w", err)
	}
	b, format, err := ImportAny(data)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return b, format, nil
}
