package traceimport

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/tracegen"
)

// genConfig is the canonical metamorphic configuration: a known tracegen
// setup whose parameters Infer must recover within documented tolerances.
func genConfig(servers int, seed int64) tracegen.Config {
	return tracegen.Config{
		Topology: topology.Config{Servers: servers, Seed: seed},
		Days:     1,
		Users:    20,
		Seed:     seed,
	}
}

func generate(t *testing.T, cfg tracegen.Config) *tracegen.Result {
	t.Helper()
	res, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatalf("tracegen.Generate: %v", err)
	}
	return res
}

// TestInferRoundTrip is the metamorphic suite: generate a trace from a
// known configuration, infer a bundle, and check each estimate against the
// generating parameter.
//
// Tolerances, and why:
//   - server count, site count, user count, poll interval: exact — they
//     are directly observable in the records.
//   - server TTL: ±1 poll interval — version changes are only observable
//     on the poll grid, so the spacing estimate is quantized.
//   - redirect fraction: ±0.02 of 0.15 — a binomial estimate over ~17k
//     user-visit transitions (collision-corrected).
//   - absence windows: [0.25, 1.6] x servers x days x 0.4 — the draw is
//     Poisson, and windows shorter than the poll interval can fall
//     between polls entirely, so the detected count trails the drawn one.
func TestInferRoundTrip(t *testing.T) {
	for _, servers := range []int{24, 60} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("servers=%d/seed=%d", servers, seed), func(t *testing.T) {
				cfg := genConfig(servers, seed)
				res := generate(t, cfg)
				b, err := Infer(res.Trace)
				if err != nil {
					t.Fatalf("Infer: %v", err)
				}
				checkBundle(t, cfg, res, b, 60*time.Second)
			})
		}
	}
}

// TestInferRecoversNonDefaultTTL repeats the round trip with a TTL that is
// not a multiple of the poll interval, so the quantization tolerance is
// actually exercised.
func TestInferRecoversNonDefaultTTL(t *testing.T) {
	cfg := genConfig(24, 7)
	cfg.ServerTTL = 45 * time.Second
	res := generate(t, cfg)
	b, err := Infer(res.Trace)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	checkBundle(t, cfg, res, b, 45*time.Second)
}

func checkBundle(t *testing.T, cfg tracegen.Config, res *tracegen.Result, b *Bundle, wantTTL time.Duration) {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatalf("inferred bundle invalid: %v", err)
	}
	s := b.Summary
	if s.Servers != cfg.Topology.Servers {
		t.Errorf("servers %d, want %d", s.Servers, cfg.Topology.Servers)
	}
	if want := len(res.Topo.LocationClusters()); s.Sites != want {
		t.Errorf("sites %d, want %d", s.Sites, want)
	}
	if s.Users != cfg.Users {
		t.Errorf("users %d, want %d", s.Users, cfg.Users)
	}
	if got := b.Population.TotalUsers(); got != cfg.Users {
		t.Errorf("population holds %d users, want %d", got, cfg.Users)
	}
	if s.Days != cfg.Days {
		t.Errorf("days %d, want %d", s.Days, cfg.Days)
	}
	if want := 10 * time.Second; s.PollInterval.D() != want {
		t.Errorf("poll interval %v, want %v", s.PollInterval.D(), want)
	}
	if diff := s.ServerTTL.D() - wantTTL; diff < -10*time.Second || diff > 10*time.Second {
		t.Errorf("server TTL %v, want %v +/- one poll interval", s.ServerTTL.D(), wantTTL)
	}
	if math.Abs(s.RedirectFrac-0.15) > 0.02 {
		t.Errorf("redirect frac %v, want 0.15 +/- 0.02", s.RedirectFrac)
	}
	expectedAbsences := float64(cfg.Topology.Servers*cfg.Days) * 0.4
	if lo, hi := 0.25*expectedAbsences, 1.6*expectedAbsences; float64(s.Absences) < lo || float64(s.Absences) > hi {
		t.Errorf("absence runs %d outside [%v, %v]", s.Absences, lo, hi)
	}
	// Updates per day: the generator draws ~mean-25.5s gaps over 130 min
	// of play, so ~250-360 updates; the daily max snapshot tracks it.
	if s.UpdatesPerDay < 200 || s.UpdatesPerDay > 450 {
		t.Errorf("updates per day %v outside the generator's plausible range", s.UpdatesPerDay)
	}
	// Provider vantage: the fit must land near the generator's default
	// provider location (Atlanta). 150 km is well under the inter-site
	// spacing, so the fit is meaningfully localized.
	got := geo.Point{Lat: b.ServerMap.Provider.Lat, Lon: b.ServerMap.Provider.Lon}
	want := geo.Point{Lat: 33.749, Lon: -84.388}
	if d := geo.DistanceKm(got, want); d > 150 {
		t.Errorf("provider vantage %v is %.0f km from the true location", got, d)
	}
	// The bundle must materialize into runnable options.
	if _, err := b.Options(); err != nil {
		t.Errorf("Options: %v", err)
	}
}

// TestInferDeterministic pins that the same trace yields the same bundle
// bytes — map iteration anywhere in the estimators would break this.
func TestInferDeterministic(t *testing.T) {
	res := generate(t, genConfig(24, 5))
	first, err := Infer(res.Trace)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	firstJSON, err := first.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for i := 0; i < 3; i++ {
		again, err := Infer(res.Trace)
		if err != nil {
			t.Fatalf("Infer #%d: %v", i, err)
		}
		againJSON, err := again.Marshal()
		if err != nil {
			t.Fatalf("Marshal #%d: %v", i, err)
		}
		if string(firstJSON) != string(againJSON) {
			t.Fatalf("Infer is not deterministic (run %d):\n%s\nvs\n%s", i, firstJSON, againJSON)
		}
	}
}

// TestInferAgreesAcrossFormats pins that a trace imported via the access-log
// flavor yields the identical bundle to the JSONL original: the summary has
// no source field precisely so the two paths converge.
func TestInferAgreesAcrossFormats(t *testing.T) {
	res := generate(t, genConfig(24, 11))
	fromJSONL, err := Infer(res.Trace)
	if err != nil {
		t.Fatalf("Infer(jsonl): %v", err)
	}
	tr := *res.Trace
	tr.SortRecords()
	var logBuf bytes.Buffer
	if err := trace.WriteAccessLog(&logBuf, &tr); err != nil {
		t.Fatalf("WriteAccessLog: %v", err)
	}
	reparsed, format, err := ReadTrace(&logBuf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if format != FormatAccessLog {
		t.Fatalf("sniffed format %q, want %q", format, FormatAccessLog)
	}
	fromLog, err := Infer(reparsed)
	if err != nil {
		t.Fatalf("Infer(accesslog): %v", err)
	}
	a, _ := fromJSONL.Marshal()
	b, _ := fromLog.Marshal()
	if string(a) != string(b) {
		t.Fatalf("bundle differs across trace formats:\n%s\nvs\n%s", a, b)
	}
}

func TestInferRejectsDegenerateTraces(t *testing.T) {
	res := generate(t, genConfig(24, 3))
	empty := *res.Trace
	empty.Servers = nil
	empty.Records = nil
	if _, err := Infer(&empty); err == nil {
		t.Error("Infer accepted a trace with no servers")
	}
	flat := *res.Trace
	flat.Records = append([]trace.PollRecord(nil), flat.Records...)
	for i := range flat.Records {
		flat.Records[i].Snapshot = 0
		flat.Records[i].Absent = false
	}
	if _, err := Infer(&flat); err == nil {
		t.Error("Infer accepted a trace with no content versions")
	}
	if _, err := Infer(nil); err == nil {
		t.Error("Infer accepted a nil trace")
	}
	// Constant non-zero snapshots carry a version count but no observable
	// version changes, so the TTL estimator has nothing to work with.
	frozen := *res.Trace
	frozen.Records = append([]trace.PollRecord(nil), frozen.Records...)
	for i := range frozen.Records {
		if !frozen.Records[i].Absent {
			frozen.Records[i].Snapshot = 5
		}
	}
	if _, err := Infer(&frozen); err == nil || !strings.Contains(err.Error(), "server TTL") {
		t.Errorf("Infer on change-free trace: %v, want a TTL inference error", err)
	}
}
