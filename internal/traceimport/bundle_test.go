package traceimport

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdnconsistency/internal/trace"
)

// goldenConfig is the fixed setup behind testdata/golden_bundle.json.
func goldenTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := genConfig(24, 99)
	return generate(t, cfg).Trace
}

// TestGoldenBundle pins the inferred bundle for a fixed seed byte-for-byte.
// Any estimator change shows up as a readable JSON diff; refresh the file
// with UPDATE_GOLDEN=1 go test ./internal/traceimport -run Golden.
func TestGoldenBundle(t *testing.T) {
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	got, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_bundle.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("inferred bundle deviates from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The committed golden must itself parse and validate.
	if _, err := ParseBundle(bytes.TrimSuffix(want, []byte("\n"))); err != nil {
		t.Fatalf("golden bundle does not re-parse: %v", err)
	}
}

func TestBundleRoundTripBytes(t *testing.T) {
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	first, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := ParseBundle(first)
	if err != nil {
		t.Fatalf("ParseBundle: %v", err)
	}
	second, err := parsed.Marshal()
	if err != nil {
		t.Fatalf("second Marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("bundle round trip changed bytes:\n%s\nvs\n%s", first, second)
	}
}

func TestParseBundleStrictness(t *testing.T) {
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	valid := string(data)
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"summary"`, `"zummary"`, 1)
		}, "unknown field"},
		{"trailing data", func(s string) string {
			return s + " {}"
		}, "trailing data"},
		{"server count mismatch", func(s string) string {
			return strings.Replace(s, `"servers": 24`, `"servers": 25`, 1)
		}, "summary says"},
		{"redirect out of range", func(s string) string {
			return strings.Replace(s, `"redirect_frac": 0.1`, `"redirect_frac": 1.1`, 1)
		}, "redirect_frac"},
		{"negative ttl", func(s string) string {
			return strings.Replace(s, `"server_ttl": "1m0s"`, `"server_ttl": "-1m0s"`, 1)
		}, "server_ttl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			input := tc.mutate(valid)
			if input == valid {
				t.Fatal("mutation did not change the input")
			}
			_, err := ParseBundle([]byte(input))
			if err == nil {
				t.Fatal("ParseBundle accepted mutated bundle")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestBundleValidateFaultIndexBound(t *testing.T) {
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if b.Faults == nil || len(b.Faults.Crashes) == 0 {
		t.Skip("golden trace produced no crash windows")
	}
	b.Faults.Crashes[0].Server = b.Summary.Servers
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "targets server") {
		t.Fatalf("want out-of-range crash error, got %v", err)
	}
}

func TestReadTraceSniffsFormats(t *testing.T) {
	tr := goldenTrace(t)
	var jsonl bytes.Buffer
	if err := trace.Write(&jsonl, tr); err != nil {
		t.Fatalf("trace.Write: %v", err)
	}
	_, format, err := ReadTrace(&jsonl)
	if err != nil {
		t.Fatalf("ReadTrace(jsonl): %v", err)
	}
	if format != FormatJSONL {
		t.Errorf("sniffed %q, want %q", format, FormatJSONL)
	}
	if _, _, err := ReadTrace(strings.NewReader("not a trace")); err == nil {
		t.Error("ReadTrace accepted junk input")
	}
}

func TestLoadBundleAndTraceFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	bundlePath := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(bundlePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bundlePath); err != nil {
		t.Errorf("LoadBundle: %v", err)
	}
	if _, err := LoadBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadBundle accepted a missing file")
	}
	tracePath := filepath.Join(dir, "trace.jsonl")
	var jsonl bytes.Buffer
	if err := trace.Write(&jsonl, goldenTrace(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, format, err := LoadTrace(tracePath); err != nil || format != FormatJSONL {
		t.Errorf("LoadTrace: format %q err %v", format, err)
	}
	if _, _, err := LoadTrace(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("LoadTrace accepted a missing file")
	}
}

// TestLoadAnyAcceptsAllKinds pins the three-way sniff: an access log, a
// pre-inferred bundle, and a raw JSONL trace all resolve to the same bundle
// bytes through LoadAny.
func TestLoadAnyAcceptsAllKinds(t *testing.T) {
	dir := t.TempDir()
	tr := goldenTrace(t)
	want, err := Infer(tr)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	wantJSON, err := want.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	bundlePath := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(bundlePath, wantJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := trace.Write(&jsonl, tr); err != nil {
		t.Fatal(err)
	}
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(jsonlPath, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	sorted := *tr
	sorted.SortRecords()
	var logBuf bytes.Buffer
	if err := trace.WriteAccessLog(&logBuf, &sorted); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "trace.log")
	if err := os.WriteFile(logPath, logBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path, format string
	}{
		{bundlePath, FormatBundle},
		{jsonlPath, FormatJSONL},
		{logPath, FormatAccessLog},
	}
	for _, tc := range cases {
		b, format, err := LoadAny(tc.path)
		if err != nil {
			t.Fatalf("LoadAny(%s): %v", tc.path, err)
		}
		if format != tc.format {
			t.Errorf("LoadAny(%s) sniffed %q, want %q", tc.path, format, tc.format)
		}
		got, err := b.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		if !bytes.Equal(got, wantJSON) {
			t.Errorf("LoadAny(%s) bundle deviates from direct inference", tc.path)
		}
	}
	if _, _, err := LoadAny(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadAny accepted a missing file")
	}
	junkPath := filepath.Join(dir, "junk")
	if err := os.WriteFile(junkPath, []byte("not importable\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadAny(junkPath); err == nil || !strings.Contains(err.Error(), "neither a bundle nor a trace") {
		t.Errorf("LoadAny(junk) = %v, want a neither-kind error", err)
	}
}

// TestBundleValidateRejectsEachField walks every cross-check in Validate by
// mutating one field at a time of a known-good bundle.
func TestBundleValidateRejectsEachField(t *testing.T) {
	good, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if good.Faults == nil || len(good.Faults.Crashes) == 0 {
		t.Fatal("golden trace produced no crash windows; the fault checks need one")
	}
	cases := []struct {
		name    string
		mutate  func(*Bundle)
		wantErr string
	}{
		{"servers zero", func(b *Bundle) { b.Summary.Servers = 0 }, "servers"},
		{"sites zero", func(b *Bundle) { b.Summary.Sites = 0 }, "sites"},
		{"users negative", func(b *Bundle) { b.Summary.Users = -1 }, "users"},
		{"days zero", func(b *Bundle) { b.Summary.Days = 0 }, "days"},
		{"day length zero", func(b *Bundle) { b.Summary.DayLength = 0 }, "day_length"},
		{"poll interval zero", func(b *Bundle) { b.Summary.PollInterval = 0 }, "poll_interval"},
		{"server ttl zero", func(b *Bundle) { b.Summary.ServerTTL = 0 }, "server_ttl"},
		{"updates zero", func(b *Bundle) { b.Summary.UpdatesPerDay = 0 }, "updates_per_day"},
		{"mean gap zero", func(b *Bundle) { b.Summary.UpdateMeanGap = 0 }, "update_mean_gap"},
		{"redirect negative", func(b *Bundle) { b.Summary.RedirectFrac = -0.1 }, "redirect_frac"},
		{"absences negative", func(b *Bundle) { b.Summary.Absences = -1 }, "absences"},
		{"no server map", func(b *Bundle) { b.ServerMap = nil }, "no server map"},
		{"sites mismatch", func(b *Bundle) { b.Summary.Sites++ }, "summary says"},
		{"no population", func(b *Bundle) { b.Population = nil }, "no population"},
		{"population user mismatch", func(b *Bundle) { b.Summary.Users++ }, "summary says"},
		{"invalid faults", func(b *Bundle) { b.Faults.Crashes[0].AtFrac = 2 }, "outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := good.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			b, err := ParseBundle(data)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(b)
			err = b.Validate()
			if err == nil {
				t.Fatal("Validate accepted the mutated bundle")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if _, err := b.Options(); err == nil {
				t.Error("Options accepted the mutated bundle")
			}
		})
	}
	var nilBundle *Bundle
	if err := nilBundle.Validate(); err == nil {
		t.Error("nil bundle validated")
	}
}

func TestCrashWindows(t *testing.T) {
	b, err := Infer(goldenTrace(t))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if got, want := len(b.CrashWindows()), b.Summary.Absences; got == 0 || got > want {
		t.Errorf("CrashWindows() = %d windows, want 1..%d", got, want)
	}
	b.Faults = nil
	if b.CrashWindows() != nil {
		t.Error("CrashWindows() without faults is not nil")
	}
}
