// Package traceimport infers a runnable simulation spec from a crawl
// trace — the inverse of tracegen. Where tracegen turns a configuration
// into polled snapshots, Infer turns polled snapshots back into the
// configuration that plausibly produced them:
//
//   - a server map (deployment sites, ISPs, and the provider's vantage
//     point, fitted from the per-server distances),
//   - a user population (per-server weights from user-view visit shares,
//     normalized by largest-remainder so the counts are exact),
//   - the crawler cadence, the CDN cache TTL (from version-change
//     spacing, the paper's Section 3.4.1 argument), and the update rate,
//   - a fault schedule (absence runs become crash-recovery windows).
//
// Every inferred artifact is emitted in the strict JSON schema its home
// package already parses, so a bundle round-trips byte-exactly and the
// simulator replays it with no out-of-band knowledge. The estimators are
// pure functions of the record set: the same trace always yields the
// same bundle, which the import smoke test relies on.
package traceimport

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/geo"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/trace"
	"cdnconsistency/internal/workload"
)

// Infer derives a simulation spec bundle from a crawl trace. It errors —
// never panics — on traces too degenerate to support inference: no
// servers, no observed content versions, or fewer than two version
// changes (nothing to estimate a TTL from).
func Infer(tr *trace.Trace) (*Bundle, error) {
	if tr == nil {
		return nil, fmt.Errorf("traceimport: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("traceimport: %w", err)
	}
	if len(tr.Servers) == 0 {
		return nil, fmt.Errorf("traceimport: trace has no servers")
	}

	// Work on a sorted copy so the grouping estimators see records in
	// canonical (day, time) order without mutating the caller's trace.
	sorted := &trace.Trace{Meta: tr.Meta, Servers: tr.Servers}
	sorted.Records = append([]trace.PollRecord(nil), tr.Records...)
	sorted.SortRecords()

	dayLen := sorted.Meta.DayLength
	if dayLen <= 0 {
		for _, r := range sorted.Records {
			if r.At > dayLen {
				dayLen = r.At
			}
		}
	}
	if dayLen <= 0 {
		return nil, fmt.Errorf("traceimport: cannot infer day length (no day_length and no records)")
	}

	sm := buildServerMap(sorted.Servers)
	if err := sm.Validate(); err != nil {
		return nil, fmt.Errorf("traceimport: inferred server map invalid: %w", err)
	}
	// Site-major server order is the index space the population and fault
	// schedule use, matching ServerMap.Topology's materialization order.
	index := make(map[string]int, sm.NumServers())
	for _, site := range sm.Sites {
		for _, id := range site.Servers {
			index[id] = len(index)
		}
	}

	interval := inferPollInterval(sorted)
	ttl, err := inferServerTTL(sorted)
	if err != nil {
		return nil, err
	}
	updatesPerDay, err := inferUpdatesPerDay(sorted)
	if err != nil {
		return nil, err
	}
	users, redirect := inferUserBehaviour(sorted)
	pop, err := inferPopulation(sorted, index, users, interval)
	if err != nil {
		return nil, err
	}
	crashes, totalRuns := inferAbsences(sorted, index, interval, dayLen)

	b := &Bundle{
		Summary: Summary{
			Servers:       sm.NumServers(),
			Sites:         len(sm.Sites),
			Users:         users,
			Days:          sorted.Meta.Days,
			DayLength:     fault.Duration(dayLen),
			PollInterval:  fault.Duration(interval),
			ServerTTL:     fault.Duration(ttl),
			UpdatesPerDay: updatesPerDay,
			UpdateMeanGap: fault.Duration(time.Duration(float64(dayLen) / updatesPerDay)),
			RedirectFrac:  redirect,
			Absences:      totalRuns,
		},
		Population: pop,
		ServerMap:  sm,
	}
	if len(crashes) > 0 {
		b.Faults = &fault.Spec{Crashes: crashes}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// crawlerRecord reports whether a record belongs to the server-perspective
// crawl (the estimators' primary input).
func crawlerRecord(r trace.PollRecord) bool { return !r.Provider && !r.UserView }

// buildServerMap groups servers sharing coordinates and an ISP into sites
// (first-seen order) and fits the provider's vantage point to the observed
// per-server distances.
func buildServerMap(servers []trace.ServerInfo) *topology.ServerMap {
	type siteKey struct {
		lat, lon float64
		isp      int
	}
	sm := &topology.ServerMap{Provider: fitProvider(servers)}
	at := make(map[siteKey]int)
	for _, s := range servers {
		k := siteKey{lat: s.Lat, lon: s.Lon, isp: s.ISP}
		i, ok := at[k]
		if !ok {
			i = len(sm.Sites)
			at[k] = i
			sm.Sites = append(sm.Sites, topology.Site{Lat: s.Lat, Lon: s.Lon, ISP: maxInt(s.ISP, 0)})
		}
		sm.Sites[i].Servers = append(sm.Sites[i].Servers, s.ID)
	}
	return sm
}

// fitProvider recovers the provider's vantage point from the per-server
// distances by deterministic pattern search: starting at the server
// centroid, it walks the point that minimizes the squared error between
// fitted and observed distances, halving the step from 8 degrees down to
// ~0.001. With no recorded distances it falls back to the centroid.
func fitProvider(servers []trace.ServerInfo) topology.SitePoint {
	var lat, lon float64
	anyDist := false
	for _, s := range servers {
		lat += s.Lat
		lon += s.Lon
		if s.DistanceKm > 0 {
			anyDist = true
		}
	}
	if n := float64(len(servers)); n > 0 {
		lat /= n
		lon /= n
	}
	cur := clampPoint(lat, lon)
	if !anyDist {
		return topology.SitePoint{Lat: round4(cur.Lat), Lon: round4(cur.Lon)}
	}
	sse := func(p geo.Point) float64 {
		var sum float64
		for _, s := range servers {
			d := geo.DistanceKm(p, geo.Point{Lat: s.Lat, Lon: s.Lon}) - s.DistanceKm
			sum += d * d
		}
		return sum
	}
	best := sse(cur)
	for step := 8.0; step >= 0.001; step /= 2 {
		for improved := true; improved; {
			improved = false
			for _, cand := range []geo.Point{
				clampPoint(cur.Lat+step, cur.Lon),
				clampPoint(cur.Lat-step, cur.Lon),
				clampPoint(cur.Lat, cur.Lon+step),
				clampPoint(cur.Lat, cur.Lon-step),
			} {
				if v := sse(cand); v < best {
					best, cur, improved = v, cand, true
				}
			}
		}
	}
	return topology.SitePoint{Lat: round4(cur.Lat), Lon: round4(cur.Lon)}
}

// inferPollInterval returns the modal gap between consecutive polls of one
// server by one vantage point within a day (ties break toward the smaller
// gap), falling back to the trace's declared interval when no two polls
// share a group.
func inferPollInterval(tr *trace.Trace) time.Duration {
	type gkey struct {
		day            int
		poller, server string
	}
	last := make(map[gkey]time.Duration)
	tally := make(map[time.Duration]int)
	for _, r := range tr.Records {
		if !crawlerRecord(r) {
			continue
		}
		k := gkey{day: r.Day, poller: r.Poller, server: r.Server}
		if prev, ok := last[k]; ok && r.At > prev {
			tally[r.At-prev]++
		}
		last[k] = r.At
	}
	best, bestN := time.Duration(0), 0
	for gap, n := range tally {
		if n > bestN || (n == bestN && (best == 0 || gap < best)) {
			best, bestN = gap, n
		}
	}
	if best <= 0 {
		return tr.Meta.PollInterval
	}
	return best
}

// inferServerTTL estimates the CDN cache TTL as the (lower) median spacing
// between observed content-version changes per server-day — the paper's
// Section 3.4.1 reverse-engineering of the refresh interval. It errors
// when the trace shows fewer than two version changes anywhere.
func inferServerTTL(tr *trace.Trace) (time.Duration, error) {
	type gkey struct {
		day    int
		server string
	}
	type state struct {
		snap       int
		lastChange time.Duration
		hasChange  bool
	}
	st := make(map[gkey]*state)
	var gaps []time.Duration
	for _, r := range tr.Records {
		if !crawlerRecord(r) || r.Absent {
			continue
		}
		k := gkey{day: r.Day, server: r.Server}
		s := st[k]
		if s == nil {
			s = &state{snap: r.Snapshot}
			st[k] = s
			continue
		}
		if r.Snapshot > 0 && r.Snapshot != s.snap {
			if s.hasChange {
				gaps = append(gaps, r.At-s.lastChange)
			}
			s.lastChange, s.hasChange = r.At, true
		}
		s.snap = r.Snapshot
	}
	if len(gaps) == 0 {
		return 0, fmt.Errorf("traceimport: cannot infer a server TTL: fewer than two content-version changes observed")
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[(len(gaps)-1)/2], nil
}

// inferUpdatesPerDay averages each day's highest observed content version —
// the provider vantage sees nearly every update, so the daily maximum is a
// tight lower bound on the day's update count.
func inferUpdatesPerDay(tr *trace.Trace) (float64, error) {
	maxSnap := make([]int, tr.Meta.Days)
	for _, r := range tr.Records {
		if r.Snapshot > maxSnap[r.Day] {
			maxSnap[r.Day] = r.Snapshot
		}
	}
	sum := 0
	for _, m := range maxSnap {
		sum += m
	}
	avg := float64(sum) / float64(tr.Meta.Days)
	if avg <= 0 {
		return 0, fmt.Errorf("traceimport: cannot infer a workload: no content versions observed")
	}
	return math.Round(avg*100) / 100, nil
}

// inferUserBehaviour counts the distinct user vantage points and estimates
// the per-visit redirect probability from server switches between
// consecutive visits, corrected for redirects that land on the same server
// (a uniform redirect over N servers switches with probability 1 - 1/N).
func inferUserBehaviour(tr *trace.Trace) (int, float64) {
	type ukey struct {
		day    int
		poller string
	}
	seen := make(map[string]bool)
	last := make(map[ukey]string)
	switches, transitions := 0, 0
	for _, r := range tr.Records {
		if !r.UserView {
			continue
		}
		seen[r.Poller] = true
		k := ukey{day: r.Day, poller: r.Poller}
		if prev, ok := last[k]; ok {
			transitions++
			if prev != r.Server {
				switches++
			}
		}
		last[k] = r.Server
	}
	if transitions == 0 || len(tr.Servers) < 2 {
		return len(seen), 0
	}
	raw := float64(switches) / float64(transitions)
	p := raw / (1 - 1/float64(len(tr.Servers)))
	if p > 1 {
		p = 1
	}
	return len(seen), math.Round(p*10000) / 10000
}

// inferPopulation turns user-view visit shares into an exact per-server
// population: the visit counts are the weights, largest-remainder rounding
// makes the cohort counts sum to the user total exactly, and each server's
// cohort starts at the earliest observed visit phase within the poll
// interval.
func inferPopulation(tr *trace.Trace, index map[string]int, users int, interval time.Duration) (*workload.Population, error) {
	n := len(index)
	pop := &workload.Population{Servers: make([][]workload.CohortSpec, n)}
	if users == 0 {
		return pop, nil
	}
	visits := make([]float64, n)
	offsets := make([]time.Duration, n)
	hasOffset := make([]bool, n)
	for _, r := range tr.Records {
		if !r.UserView {
			continue
		}
		i, ok := index[r.Server]
		if !ok {
			continue
		}
		visits[i]++
		phase := r.At
		if interval > 0 {
			phase = r.At % interval
		}
		if !hasOffset[i] || phase < offsets[i] {
			offsets[i], hasOffset[i] = phase, true
		}
	}
	counts, err := workload.ExactCounts(visits, users)
	if err != nil {
		return nil, fmt.Errorf("traceimport: distribute users: %w", err)
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		pop.Servers[i] = []workload.CohortSpec{{
			Count:    c,
			OffsetNS: int64(offsets[i]),
			PeriodNS: int64(interval),
		}}
	}
	return pop, nil
}

// inferAbsences scans each server-day's crawler polls for maximal runs of
// absent records. Day-0 runs become crash-recovery fault windows (at_frac
// placement so they survive any horizon); the total run count across all
// days goes into the summary.
func inferAbsences(tr *trace.Trace, index map[string]int, interval time.Duration, dayLen time.Duration) ([]fault.Crash, int) {
	type gkey struct {
		day    int
		server string
	}
	type run struct {
		start, last time.Duration
		open        bool
	}
	st := make(map[gkey]*run)
	var crashes []fault.Crash
	total := 0
	closeRun := func(k gkey, r *run) {
		if !r.open {
			return
		}
		r.open = false
		total++
		if k.day != 0 {
			return
		}
		i, ok := index[k.server]
		if !ok {
			return
		}
		crashes = append(crashes, fault.Crash{
			Server:       i,
			AtFrac:       round6(float64(r.start) / float64(dayLen)),
			RecoverAfter: fault.Duration(r.last + interval - r.start),
		})
	}
	for _, rec := range tr.Records {
		if !crawlerRecord(rec) {
			continue
		}
		k := gkey{day: rec.Day, server: rec.Server}
		r := st[k]
		if r == nil {
			r = &run{}
			st[k] = r
		}
		if rec.Absent {
			if !r.open {
				r.start, r.open = rec.At, true
			}
			r.last = rec.At
		} else {
			closeRun(k, r)
		}
	}
	// Close runs still open at end of trace in deterministic (day, server)
	// order — map iteration order must not leak into the output.
	keys := make([]gkey, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].day != keys[j].day {
			return keys[i].day < keys[j].day
		}
		return keys[i].server < keys[j].server
	})
	for _, k := range keys {
		closeRun(k, st[k])
	}
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].AtFrac != crashes[j].AtFrac {
			return crashes[i].AtFrac < crashes[j].AtFrac
		}
		return crashes[i].Server < crashes[j].Server
	})
	return crashes, total
}

func clampPoint(lat, lon float64) geo.Point {
	return geo.Point{Lat: clamp(lat, -90, 90), Lon: clamp(lon, -180, 180)}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
