package costmodel

import (
	"math"
	"testing"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

func baseWorkload() Workload {
	return Workload{
		UpdateRate:         1.0 / 30, // an update every 30s
		VisitRatePerServer: 0.2,      // 2 users polling every 10s
		Servers:            50,
		TTL:                60 * time.Second,
		TreeDepth:          1,
		RTTSeconds:         0.05,
	}
}

func TestValidate(t *testing.T) {
	good := baseWorkload()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Workload){
		func(w *Workload) { w.UpdateRate = -1 },
		func(w *Workload) { w.VisitRatePerServer = -1 },
		func(w *Workload) { w.Servers = 0 },
		func(w *Workload) { w.TTL = 0 },
		func(w *Workload) { w.TreeDepth = 0 },
		func(w *Workload) { w.RTTSeconds = -1 },
	}
	for i, mut := range bad {
		w := baseWorkload()
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPredictTTL(t *testing.T) {
	w := baseWorkload()
	est, err := Predict(consistency.MethodTTL, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.StalenessSec-30.05) > 0.01 {
		t.Errorf("staleness = %v, want ~30s", est.StalenessSec)
	}
	// 50 servers polling every 60s: ~0.83 polls/s each way.
	if math.Abs(est.UpdateMsgsPerSec-50.0/60) > 1e-9 {
		t.Errorf("update msgs = %v", est.UpdateMsgsPerSec)
	}
	// Depth amplification.
	w.TreeDepth = 4
	est, err = Predict(consistency.MethodTTL, w)
	if err != nil {
		t.Fatal(err)
	}
	if est.StalenessSec < 110 {
		t.Errorf("depth-4 staleness = %v, want ~120s", est.StalenessSec)
	}
}

func TestPredictPush(t *testing.T) {
	est, err := Predict(consistency.MethodPush, baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if est.StalenessSec != 0.05 {
		t.Errorf("staleness = %v", est.StalenessSec)
	}
	if math.Abs(est.UpdateMsgsPerSec-50.0/30) > 1e-9 {
		t.Errorf("update msgs = %v", est.UpdateMsgsPerSec)
	}
	if est.LightMsgsPerSec != 0 {
		t.Errorf("light msgs = %v", est.LightMsgsPerSec)
	}
}

func TestPredictInvalidation(t *testing.T) {
	w := baseWorkload()
	est, err := Predict(consistency.MethodInvalidation, w)
	if err != nil {
		t.Fatal(err)
	}
	// Wait ~1/0.2 = 5s plus RTT.
	if math.Abs(est.StalenessSec-5.05) > 0.01 {
		t.Errorf("staleness = %v, want ~5s", est.StalenessSec)
	}
	// No visits: never fetches, infinite staleness.
	w.VisitRatePerServer = 0
	est, err = Predict(consistency.MethodInvalidation, w)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.StalenessSec, 1) {
		t.Errorf("no-visit staleness = %v, want +Inf", est.StalenessSec)
	}
	if est.UpdateMsgsPerSec != 0 {
		t.Errorf("no-visit fetches = %v, want 0", est.UpdateMsgsPerSec)
	}
}

func TestPredictLeaseRegimes(t *testing.T) {
	hot := baseWorkload() // visit rate 0.2/s, TTL 60s -> always active
	est, err := Predict(consistency.MethodLease, hot)
	if err != nil {
		t.Fatal(err)
	}
	push, _ := Predict(consistency.MethodPush, hot)
	if math.Abs(est.UpdateMsgsPerSec-push.UpdateMsgsPerSec) > 1e-9 {
		t.Errorf("hot lease msgs %v != push %v", est.UpdateMsgsPerSec, push.UpdateMsgsPerSec)
	}
	cold := baseWorkload()
	cold.VisitRatePerServer = 0
	est, err = Predict(consistency.MethodLease, cold)
	if err != nil {
		t.Fatal(err)
	}
	if est.UpdateMsgsPerSec != 0 {
		t.Errorf("cold lease msgs = %v, want 0", est.UpdateMsgsPerSec)
	}
}

func TestPredictUnknownMethod(t *testing.T) {
	if _, err := Predict(consistency.MethodSelfAdaptive, baseWorkload()); err == nil {
		t.Error("unmodeled method accepted")
	}
	w := baseWorkload()
	w.Servers = 0
	if _, err := Predict(consistency.MethodTTL, w); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestCheapestWithin(t *testing.T) {
	w := baseWorkload()
	all := []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
	}
	// Tight budget (1s): only Push qualifies.
	est, err := CheapestWithin(time.Second, w, 100, 1, all)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != consistency.MethodPush {
		t.Errorf("tight budget chose %v", est.Method)
	}
	// Loose budget (60s) with dense 100KB updates: TTL aggregates and is
	// the cheapest in bytes.
	w.UpdateRate = 1.0 / 5
	est, err = CheapestWithin(time.Minute, w, 100, 1, all)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != consistency.MethodTTL {
		t.Errorf("loose budget chose %v", est.Method)
	}
	// Cold content (visits rarer than updates), 100KB updates, 10s
	// budget is impossible for TTL; Invalidation's sparse fetches beat
	// pushing every 100KB update.
	w.VisitRatePerServer = 1.0 / 15
	est, err = CheapestWithin(16*time.Second, w, 100, 1, all)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != consistency.MethodInvalidation {
		t.Errorf("cold content chose %v", est.Method)
	}
	// Impossible budget.
	if _, err := CheapestWithin(time.Millisecond, w, 100, 1, all); err == nil {
		t.Error("impossible budget satisfied")
	}
	if _, err := CheapestWithin(time.Second, w, 100, 1, nil); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := CheapestWithin(time.Second, w, 0, 1, all); err == nil {
		t.Error("zero payload size accepted")
	}
}

// Model-vs-simulation validation: on a steady workload the model's
// staleness and message-rate predictions match the discrete-event
// simulation within a factor of 2, and the cross-method orderings agree.
func TestModelMatchesSimulation(t *testing.T) {
	const (
		servers  = 40
		users    = 2
		userTTL  = 10 * time.Second
		duration = 30 * time.Minute
		gap      = 25 * time.Second
	)
	game := workload.GameConfig{
		Phases: []workload.Phase{{Name: "live", Duration: duration, MeanGap: gap}},
		SizeKB: 1,
	}
	updates, err := workload.Schedule(game, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		UpdateRate:         float64(len(updates)) / duration.Seconds(),
		VisitRatePerServer: float64(users) / userTTL.Seconds(),
		Servers:            servers,
		TTL:                60 * time.Second,
		TreeDepth:          1,
		RTTSeconds:         0.05,
	}

	type obs struct {
		staleness float64
		msgRate   float64
	}
	simulated := map[consistency.Method]obs{}
	modeled := map[consistency.Method]obs{}
	// The effective horizon over which messages accumulate.
	horizon := (60*time.Second + updates[len(updates)-1].At + 5*time.Minute).Seconds()
	for _, m := range []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
	} {
		res, err := cdn.Run(cdn.Config{
			Method:   m,
			Infra:    consistency.InfraUnicast,
			Topology: topology.Config{Servers: servers, UsersPerServer: users, Seed: 3},
			Updates:  updates,
			UserTTL:  userTTL,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		simulated[m] = obs{
			staleness: res.MeanServerInconsistency(),
			msgRate:   float64(res.UpdateMsgsToServers+res.LightMsgs) / horizon,
		}
		est, err := Predict(m, w)
		if err != nil {
			t.Fatal(err)
		}
		modeled[m] = obs{staleness: est.StalenessSec, msgRate: est.TotalMsgsPerSec()}
	}

	within := func(a, b, factor float64) bool {
		if a == 0 || b == 0 {
			return math.Abs(a-b) < 0.5
		}
		r := a / b
		return r > 1/factor && r < factor
	}
	for m, sim := range simulated {
		mod := modeled[m]
		if !within(sim.staleness+0.1, mod.staleness+0.1, 2.5) {
			t.Errorf("%v staleness: sim %.2fs vs model %.2fs", m, sim.staleness, mod.staleness)
		}
		if !within(sim.msgRate, mod.msgRate, 2.5) {
			t.Errorf("%v msg rate: sim %.3f/s vs model %.3f/s", m, sim.msgRate, mod.msgRate)
		}
	}
	// Ordering agreement on staleness: Push < Invalidation < TTL both ways.
	if !(simulated[consistency.MethodPush].staleness < simulated[consistency.MethodInvalidation].staleness &&
		simulated[consistency.MethodInvalidation].staleness < simulated[consistency.MethodTTL].staleness) {
		t.Error("simulation ordering broken")
	}
	if !(modeled[consistency.MethodPush].staleness < modeled[consistency.MethodInvalidation].staleness &&
		modeled[consistency.MethodInvalidation].staleness < modeled[consistency.MethodTTL].staleness) {
		t.Error("model ordering broken")
	}
}
