// Package costmodel gives closed-form expectations for the staleness and
// message cost of each update method, formalizing the qualitative
// relationships the paper derives (Sections 1, 4.6): TTL staleness is
// TTL/2 per tree layer; Push costs one update message per replica per
// update; Invalidation pays a notification per update plus a fetch per
// *read* update; polling pays one request/response per TTL per replica.
//
// The model powers the multi-content planner (internal/catalog) and is
// validated against the discrete-event simulation in its tests: absolute
// agreement within a small factor, ordering agreement always.
package costmodel

import (
	"fmt"
	"math"
	"time"

	"cdnconsistency/internal/consistency"
)

// Workload describes one content's steady-state rates as the paper's
// Section 4.6 "APIs to probe visit and update frequency" would report them.
type Workload struct {
	// UpdateRate is provider updates per second.
	UpdateRate float64
	// VisitRatePerServer is end-user visits per second arriving at each
	// replica (users per server / visit period).
	VisitRatePerServer float64
	// Servers is the replica count.
	Servers int
	// TTL is the poll period for TTL-family methods.
	TTL time.Duration
	// TreeDepth is the replica depth for multicast TTL amplification
	// (1 for unicast).
	TreeDepth int
	// RTTSeconds approximates one-way provider-replica latency.
	RTTSeconds float64
}

// Validate checks the workload is usable.
func (w Workload) Validate() error {
	if w.UpdateRate < 0 || w.VisitRatePerServer < 0 {
		return fmt.Errorf("costmodel: negative rate")
	}
	if w.Servers <= 0 {
		return fmt.Errorf("costmodel: servers %d", w.Servers)
	}
	if w.TTL <= 0 {
		return fmt.Errorf("costmodel: ttl %v", w.TTL)
	}
	if w.TreeDepth <= 0 {
		return fmt.Errorf("costmodel: depth %d", w.TreeDepth)
	}
	if w.RTTSeconds < 0 {
		return fmt.Errorf("costmodel: rtt %v", w.RTTSeconds)
	}
	return nil
}

// Estimate is the model's prediction for one method on one workload.
type Estimate struct {
	Method consistency.Method
	// StalenessSec is the expected replica staleness (catch-up delay).
	StalenessSec float64
	// UpdateMsgsPerSec counts content-bearing messages across the system.
	UpdateMsgsPerSec float64
	// LightMsgsPerSec counts control messages (polls, invalidations).
	LightMsgsPerSec float64
}

// TotalMsgsPerSec sums both message classes.
func (e Estimate) TotalMsgsPerSec() float64 { return e.UpdateMsgsPerSec + e.LightMsgsPerSec }

// KBPerSec is the bandwidth cost given the payload sizes. This is the
// planner's objective: Invalidation beats Push precisely when update
// payloads dwarf notifications and visits are rarer than updates — the
// byte-level saving the paper credits Invalidation with (Section 1).
func (e Estimate) KBPerSec(updateKB, lightKB float64) float64 {
	return e.UpdateMsgsPerSec*updateKB + e.LightMsgsPerSec*lightKB
}

// Predict returns the model's estimate for a method. Only the provider-
// direct methods of the paper's comparison are modeled (TTL, Push,
// Invalidation, Lease); other methods return an error.
func Predict(m consistency.Method, w Workload) (Estimate, error) {
	if err := w.Validate(); err != nil {
		return Estimate{}, err
	}
	n := float64(w.Servers)
	ttl := w.TTL.Seconds()
	est := Estimate{Method: m}
	switch m {
	case consistency.MethodTTL:
		// A replica at depth d refreshes every TTL from a parent that is
		// itself (d-1)/2 TTL stale on average: staleness ~ d * TTL/2.
		est.StalenessSec = float64(w.TreeDepth)*ttl/2 + w.RTTSeconds
		// One poll request (light) and one content response (update)
		// per replica per TTL, regardless of update activity — the
		// paper's "wasted traffic on unchanged content".
		est.UpdateMsgsPerSec = n / ttl
		est.LightMsgsPerSec = n / ttl
	case consistency.MethodPush:
		est.StalenessSec = w.RTTSeconds
		est.UpdateMsgsPerSec = w.UpdateRate * n
		est.LightMsgsPerSec = 0
	case consistency.MethodInvalidation:
		// The replica fetches on the first visit after an invalidation:
		// expected wait = 1/visitRate (exponential/periodic approx),
		// bounded by never if there are no visits.
		if w.VisitRatePerServer > 0 {
			est.StalenessSec = 1/w.VisitRatePerServer + w.RTTSeconds
		} else {
			est.StalenessSec = math.Inf(1)
		}
		est.LightMsgsPerSec = w.UpdateRate * n // notifications
		// A fetch happens per update only if a visit arrives before the
		// next update; the fetch rate is min(updateRate, visitRate) per
		// replica, each fetch costing a light request and an update
		// response.
		fetch := math.Min(w.UpdateRate, w.VisitRatePerServer)
		est.UpdateMsgsPerSec = fetch * n
		est.LightMsgsPerSec += fetch * n
	case consistency.MethodLease:
		// While visited at least once per lease, leases stay renewed and
		// the method behaves like Push; idle replicas decay to one
		// renewal per visit.
		active := math.Min(1, w.VisitRatePerServer*ttl)
		est.StalenessSec = w.RTTSeconds + (1-active)*ttl/2
		est.UpdateMsgsPerSec = w.UpdateRate*n*active + w.VisitRatePerServer*n*(1-active)
		est.LightMsgsPerSec = n / ttl * active
	default:
		return Estimate{}, fmt.Errorf("costmodel: method %v not modeled", m)
	}
	return est, nil
}

// CheapestWithin returns the modeled method with the lowest bandwidth cost
// (KB/s at the given payload sizes) whose staleness stays within budget,
// among the given candidates. It returns an error when no candidate meets
// the budget.
func CheapestWithin(budget time.Duration, w Workload, updateKB, lightKB float64, candidates []consistency.Method) (Estimate, error) {
	if len(candidates) == 0 {
		return Estimate{}, fmt.Errorf("costmodel: no candidates")
	}
	if updateKB <= 0 || lightKB <= 0 {
		return Estimate{}, fmt.Errorf("costmodel: non-positive payload sizes %v/%v", updateKB, lightKB)
	}
	var best Estimate
	found := false
	for _, m := range candidates {
		est, err := Predict(m, w)
		if err != nil {
			return Estimate{}, err
		}
		if est.StalenessSec > budget.Seconds() {
			continue
		}
		if !found || est.KBPerSec(updateKB, lightKB) < best.KBPerSec(updateKB, lightKB) {
			best = est
			found = true
		}
	}
	if !found {
		return Estimate{}, fmt.Errorf("costmodel: no method meets staleness budget %v", budget)
	}
	return best, nil
}
