// Package catalog models a CDN serving many live contents at once — the
// setting the paper's introduction motivates (live sports, e-commerce,
// online auctions) and its conclusion targets ("varying visit frequencies
// and consistency requirements from customers"). A catalog assigns each
// content an update profile and a Zipf-distributed audience; the planner
// picks each content's update method from the analytic cost model under a
// per-content staleness budget; the fleet runner replays every content
// through the discrete-event simulation and aggregates the bill.
package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/costmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// Profile is a content archetype from the paper's motivation.
type Profile int

// Content archetypes.
const (
	// ProfileLiveGame bursts updates during play and goes silent at
	// breaks (the paper's crawled workload).
	ProfileLiveGame Profile = iota + 1
	// ProfileCommerce is a storefront page: rare updates, heavy reads.
	ProfileCommerce
	// ProfileAuction accelerates updates toward the close.
	ProfileAuction
	// ProfileNews updates steadily at a moderate rate.
	ProfileNews
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case ProfileLiveGame:
		return "live-game"
	case ProfileCommerce:
		return "commerce"
	case ProfileAuction:
		return "auction"
	case ProfileNews:
		return "news"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// Content is one catalog entry.
type Content struct {
	ID      string
	Profile Profile
	Game    workload.GameConfig
	// UsersPerServer reflects popularity (Zipf across the catalog).
	UsersPerServer int
	UserTTL        time.Duration
	// UpdateSizeKB is the content payload; StalenessBudget the customer's
	// consistency requirement.
	UpdateSizeKB    float64
	StalenessBudget time.Duration
}

// Catalog is a set of contents served by one CDN.
type Catalog struct {
	Contents []Content
}

// GenerateConfig sizes catalog generation.
type GenerateConfig struct {
	Contents int
	// Duration is each content's observation window; default 30 min.
	Duration time.Duration
	// MaxUsersPerServer caps the most popular content; default 6.
	MaxUsersPerServer int
	Seed              int64
}

// Generate builds a catalog with Zipf(1.1) popularity and rotating
// profiles.
func Generate(cfg GenerateConfig) (*Catalog, error) {
	if cfg.Contents <= 0 {
		return nil, fmt.Errorf("catalog: non-positive content count %d", cfg.Contents)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Minute
	}
	if cfg.MaxUsersPerServer <= 0 {
		cfg.MaxUsersPerServer = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{}
	for i := 0; i < cfg.Contents; i++ {
		profile := Profile(i%4 + 1)
		// Zipf-ish popularity: rank r gets ~max/r^1.2 users; the long
		// tail is cold (zero local users), as real catalogs are.
		users := int(float64(cfg.MaxUsersPerServer) / math.Pow(float64(i/4+1), 1.2))
		c := Content{
			ID:              fmt.Sprintf("content-%03d", i),
			Profile:         profile,
			Game:            profileGame(profile, cfg.Duration, rng),
			UsersPerServer:  users,
			UserTTL:         10 * time.Second,
			UpdateSizeKB:    profileSizeKB(profile),
			StalenessBudget: profileBudget(profile),
		}
		cat.Contents = append(cat.Contents, c)
	}
	return cat, nil
}

func profileGame(p Profile, d time.Duration, rng *rand.Rand) workload.GameConfig {
	jitter := func(base time.Duration) time.Duration {
		return base + time.Duration(rng.Int63n(int64(base/2)))
	}
	switch p {
	case ProfileLiveGame:
		half := d * 2 / 5
		return workload.GameConfig{
			Phases: []workload.Phase{
				{Name: "h1", Duration: half, MeanGap: jitter(20 * time.Second)},
				{Name: "break", Duration: d - 2*half, MeanGap: 0},
				{Name: "h2", Duration: half, MeanGap: jitter(20 * time.Second)},
			},
			SizeKB: profileSizeKB(p),
		}
	case ProfileCommerce:
		return workload.GameConfig{
			Phases: []workload.Phase{{Name: "storefront", Duration: d, MeanGap: jitter(8 * time.Minute)}},
			SizeKB: profileSizeKB(p),
		}
	case ProfileAuction:
		return workload.GameConfig{
			Phases: []workload.Phase{
				{Name: "early", Duration: d / 2, MeanGap: jitter(2 * time.Minute)},
				{Name: "mid", Duration: d / 4, MeanGap: jitter(30 * time.Second)},
				{Name: "close", Duration: d / 4, MeanGap: jitter(8 * time.Second)},
			},
			SizeKB: profileSizeKB(p),
		}
	default: // ProfileNews
		return workload.GameConfig{
			Phases: []workload.Phase{{Name: "feed", Duration: d, MeanGap: jitter(90 * time.Second)}},
			SizeKB: profileSizeKB(p),
		}
	}
}

func profileSizeKB(p Profile) float64 {
	switch p {
	case ProfileCommerce:
		return 60 // rendered product page
	case ProfileNews:
		return 20
	default:
		return 2 // scoreboard / bid ticker deltas
	}
}

func profileBudget(p Profile) time.Duration {
	switch p {
	case ProfileAuction:
		return 5 * time.Second // bids must be near-live
	case ProfileLiveGame:
		return 15 * time.Second
	case ProfileNews:
		return 2 * time.Minute
	default:
		return time.Minute
	}
}

// rates derives the cost-model workload for one content.
func rates(c Content, servers int, ttl time.Duration) (costmodel.Workload, error) {
	var expectedUpdates float64
	var total time.Duration
	for _, ph := range c.Game.Phases {
		total += ph.Duration
		if ph.MeanGap > 0 {
			expectedUpdates += ph.Duration.Seconds() / ph.MeanGap.Seconds()
		}
	}
	if total <= 0 {
		return costmodel.Workload{}, fmt.Errorf("catalog: content %s has no duration", c.ID)
	}
	return costmodel.Workload{
		UpdateRate:         expectedUpdates / total.Seconds(),
		VisitRatePerServer: float64(c.UsersPerServer) / c.UserTTL.Seconds(),
		Servers:            servers,
		TTL:                ttl,
		TreeDepth:          1,
		RTTSeconds:         0.05,
	}, nil
}

// Plan maps each content to its chosen update method.
type Plan map[string]consistency.Method

// PlanCatalog picks, per content, the cheapest modeled method that meets
// the content's staleness budget. Contents whose budget no method meets
// fall back to Push (the strongest consistency available).
func PlanCatalog(cat *Catalog, servers int, ttl time.Duration) (Plan, error) {
	if cat == nil || len(cat.Contents) == 0 {
		return nil, fmt.Errorf("catalog: empty catalog")
	}
	candidates := []consistency.Method{
		consistency.MethodTTL, consistency.MethodPush, consistency.MethodInvalidation,
	}
	plan := make(Plan, len(cat.Contents))
	for _, c := range cat.Contents {
		w, err := rates(c, servers, ttl)
		if err != nil {
			return nil, err
		}
		// Cold content (no local readers) has vacuous observed staleness:
		// Invalidation costs one notification per update and never
		// transfers the payload — the paper's Section 1 case for
		// Invalidation.
		if w.VisitRatePerServer == 0 {
			plan[c.ID] = consistency.MethodInvalidation
			continue
		}
		est, err := costmodel.CheapestWithin(c.StalenessBudget, w, c.UpdateSizeKB, 1, candidates)
		if err != nil {
			// No modeled method meets the budget: fall back to the
			// strongest consistency available.
			plan[c.ID] = consistency.MethodPush
			continue
		}
		plan[c.ID] = est.Method
	}
	return plan, nil
}

// FleetResult aggregates a whole catalog's simulation.
type FleetResult struct {
	// PerContent records each content's outcome in catalog order.
	PerContent []ContentResult
	// TotalKB is the fleet's consistency-maintenance bandwidth.
	TotalKB float64
	// TotalKmKB is the fleet traffic cost in the paper's unit.
	TotalKmKB float64
	// MeanStaleness averages per-content mean staleness weighted equally;
	// WorstBudgetMiss is the largest (staleness - budget), <= 0 when all
	// budgets hold.
	MeanStaleness   float64
	WorstBudgetMiss float64
}

// ContentResult is one content's outcome.
type ContentResult struct {
	ID        string
	Method    consistency.Method
	Staleness float64
	KB        float64
	// BudgetMet reports whether mean staleness stayed within the
	// content's budget.
	BudgetMet bool
}

// RunFleet simulates every content over a shared topology with the method
// the assignment gives it and aggregates the fleet bill.
func RunFleet(cat *Catalog, assign func(Content) consistency.Method,
	topoCfg topology.Config, ttl time.Duration, seed int64) (*FleetResult, error) {
	if cat == nil || len(cat.Contents) == 0 {
		return nil, fmt.Errorf("catalog: empty catalog")
	}
	if assign == nil {
		return nil, fmt.Errorf("catalog: nil assignment")
	}
	res := &FleetResult{}
	var staleSum float64
	for i, c := range cat.Contents {
		m := assign(c)
		tc := topoCfg
		tc.UsersPerServer = c.UsersPerServer
		updates, err := workload.Schedule(c.Game, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", c.ID, err)
		}
		if len(updates) == 0 {
			continue // a silent content costs nothing
		}
		out, err := cdn.Run(cdn.Config{
			Method:       m,
			Infra:        consistency.InfraUnicast,
			Topology:     tc,
			ServerTTL:    ttl,
			UserTTL:      c.UserTTL,
			UpdateSizeKB: c.UpdateSizeKB,
			Updates:      updates,
			Seed:         seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("catalog: %s (%v): %w", c.ID, m, err)
		}
		tot := out.Accounting.Total()
		staleness := out.MeanServerInconsistency()
		cr := ContentResult{
			ID: c.ID, Method: m, Staleness: staleness, KB: tot.KB,
			BudgetMet: staleness <= c.StalenessBudget.Seconds(),
		}
		res.PerContent = append(res.PerContent, cr)
		res.TotalKB += tot.KB
		res.TotalKmKB += tot.KmKB
		staleSum += staleness
		if miss := staleness - c.StalenessBudget.Seconds(); miss > res.WorstBudgetMiss {
			res.WorstBudgetMiss = miss
		}
	}
	if n := len(res.PerContent); n > 0 {
		res.MeanStaleness = staleSum / float64(n)
	}
	return res, nil
}
