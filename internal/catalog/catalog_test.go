package catalog

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/topology"
)

func smallCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	cat, err := Generate(GenerateConfig{Contents: n, Duration: 15 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerate(t *testing.T) {
	cat := smallCatalog(t, 12)
	if len(cat.Contents) != 12 {
		t.Fatalf("contents = %d", len(cat.Contents))
	}
	profiles := map[Profile]int{}
	for i, c := range cat.Contents {
		if c.ID == "" || c.Game.Duration() == 0 {
			t.Fatalf("content %d malformed: %+v", i, c)
		}
		if c.UsersPerServer < 0 {
			t.Fatalf("content %d negative users", i)
		}
		if c.UpdateSizeKB <= 0 || c.StalenessBudget <= 0 {
			t.Fatalf("content %d missing size/budget", i)
		}
		profiles[c.Profile]++
	}
	for _, p := range []Profile{ProfileLiveGame, ProfileCommerce, ProfileAuction, ProfileNews} {
		if profiles[p] != 3 {
			t.Errorf("profile %v count = %d, want 3", p, profiles[p])
		}
	}
	// Popularity decays with rank.
	if cat.Contents[0].UsersPerServer < cat.Contents[len(cat.Contents)-1].UsersPerServer {
		t.Error("popularity not decaying")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenerateConfig{Contents: 0}); err == nil {
		t.Error("zero contents accepted")
	}
}

func TestProfileString(t *testing.T) {
	if ProfileLiveGame.String() != "live-game" || ProfileCommerce.String() != "commerce" ||
		ProfileAuction.String() != "auction" || ProfileNews.String() != "news" ||
		Profile(9).String() != "profile(9)" {
		t.Error("Profile.String wrong")
	}
}

func TestPlanCatalogRespectsBudgets(t *testing.T) {
	cat := smallCatalog(t, 12)
	plan, err := PlanCatalog(cat, 40, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 12 {
		t.Fatalf("plan size = %d", len(plan))
	}
	for _, c := range cat.Contents {
		m, ok := plan[c.ID]
		if !ok {
			t.Fatalf("content %s unplanned", c.ID)
		}
		// Auctions have a 5s budget: TTL (30s) can never be chosen.
		if c.Profile == ProfileAuction && m == consistency.MethodTTL {
			t.Errorf("auction %s planned TTL despite 5s budget", c.ID)
		}
	}
	if _, err := PlanCatalog(&Catalog{}, 40, time.Minute); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestPlanColdContentsAvoidPush(t *testing.T) {
	cat := smallCatalog(t, 40)
	plan, err := PlanCatalog(cat, 40, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var cold int
	for _, c := range cat.Contents {
		if c.UsersPerServer > 0 {
			continue
		}
		cold++
		if plan[c.ID] != consistency.MethodInvalidation {
			t.Errorf("cold %s planned %v, want Invalidation", c.ID, plan[c.ID])
		}
	}
	if cold == 0 {
		t.Fatal("catalog has no cold contents; popularity decay too shallow")
	}
}

func TestRunFleetPlannerVsFixed(t *testing.T) {
	cat := smallCatalog(t, 24)
	topoCfg := topology.Config{Servers: 25, Seed: 3}
	ttl := 60 * time.Second

	plan, err := PlanCatalog(cat, topoCfg.Servers, ttl)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := RunFleet(cat, func(c Content) consistency.Method { return plan[c.ID] }, topoCfg, ttl, 3)
	if err != nil {
		t.Fatal(err)
	}
	allPush, err := RunFleet(cat, func(Content) consistency.Method { return consistency.MethodPush }, topoCfg, ttl, 3)
	if err != nil {
		t.Fatal(err)
	}
	allTTL, err := RunFleet(cat, func(Content) consistency.Method { return consistency.MethodTTL }, topoCfg, ttl, 3)
	if err != nil {
		t.Fatal(err)
	}

	// The planner must be cheaper than pushing everything...
	if planned.TotalKB >= allPush.TotalKB {
		t.Errorf("planned fleet KB %.0f not below all-Push %.0f", planned.TotalKB, allPush.TotalKB)
	}
	// ...and far fresher where it matters than TTL-everything: all-TTL
	// blows the tight auction budgets, the planner does not (much).
	if planned.WorstBudgetMiss > 5 {
		t.Errorf("planned worst budget miss %.1fs, want small", planned.WorstBudgetMiss)
	}
	if allTTL.WorstBudgetMiss <= 5 {
		t.Errorf("all-TTL worst budget miss %.1fs, expected large", allTTL.WorstBudgetMiss)
	}
}

func TestRunFleetValidation(t *testing.T) {
	cat := smallCatalog(t, 4)
	topoCfg := topology.Config{Servers: 10, Seed: 1}
	if _, err := RunFleet(nil, nil, topoCfg, time.Minute, 1); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := RunFleet(cat, nil, topoCfg, time.Minute, 1); err == nil {
		t.Error("nil assignment accepted")
	}
	bad := topology.Config{Servers: 0}
	if _, err := RunFleet(cat, func(Content) consistency.Method { return consistency.MethodTTL }, bad, time.Minute, 1); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestRunFleetDeterministic(t *testing.T) {
	cat := smallCatalog(t, 4)
	topoCfg := topology.Config{Servers: 15, Seed: 2}
	assign := func(Content) consistency.Method { return consistency.MethodTTL }
	a, err := RunFleet(cat, assign, topoCfg, time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(cat, assign, topoCfg, time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalKB != b.TotalKB || a.MeanStaleness != b.MeanStaleness {
		t.Error("fleet runs diverged")
	}
}
