package analysis

import (
	"math"
	"testing"
	"time"

	"cdnconsistency/internal/trace"
)

// userTrace builds a 1-day trace where one user alternates servers and
// observes a self-inconsistency.
func userTrace() *trace.Trace {
	mk := func(poller, server string, atSec, snap int, userView bool) trace.PollRecord {
		return trace.PollRecord{
			Day: 0, Server: server, Poller: poller,
			At: time.Duration(atSec) * time.Second, Snapshot: snap, UserView: userView,
		}
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Description: "user", Days: 1,
			PollInterval: 10 * time.Second,
			DayLength:    200 * time.Second,
			ServerTTL:    60 * time.Second,
		},
		Servers: []trace.ServerInfo{{ID: "s1", ISP: 1}, {ID: "s2", ISP: 1}},
		Records: []trace.PollRecord{
			// Server-view records establish alphas (C1@10, C2@30).
			mk("p1", "s1", 10, 1, false),
			mk("p1", "s1", 30, 2, false),
			mk("p2", "s2", 40, 1, false),
			mk("p2", "s2", 60, 2, false),
			// User u1: sees C1, C2 on s1, then redirected to stale s2
			// (sees C1 again: self-inconsistency), then C2.
			mk("u1", "s1", 10, 1, true),
			mk("u1", "s1", 30, 2, true),
			mk("u1", "s2", 40, 1, true),
			mk("u1", "s2", 60, 2, true),
			mk("u1", "s2", 70, 2, true),
		},
	}
}

func TestUserViewRedirects(t *testing.T) {
	d := mustDataset(t, userTrace())
	uv, err := d.UserView(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(uv.RedirectFractions) != 1 {
		t.Fatalf("RedirectFractions = %v", uv.RedirectFractions)
	}
	// u1's transitions: s1->s1 (no), s1->s2 (yes), s2->s2 (no), s2->s2 (no).
	if math.Abs(uv.RedirectFractions[0]-0.25) > 1e-9 {
		t.Errorf("redirect fraction = %v, want 0.25", uv.RedirectFractions[0])
	}
}

func TestUserViewInconsistencyRuns(t *testing.T) {
	d := mustDataset(t, userTrace())
	uv, err := d.UserView(0)
	if err != nil {
		t.Fatal(err)
	}
	// Observations: 10(C1 fresh), 30(C2 fresh), 40(C1 < maxSeen=2:
	// inconsistent), 60(C2 consistent), 70(C2 consistent).
	if math.Abs(uv.InconsistentObservationFrac-0.2) > 1e-9 {
		t.Errorf("inconsistent frac = %v, want 0.2", uv.InconsistentObservationFrac)
	}
	// Runs: consistent [10,40)=30s, inconsistent [40,60)=20s,
	// consistent [60,70]=10s.
	if len(uv.ContinuousInconsistency) != 1 || math.Abs(uv.ContinuousInconsistency[0]-20) > 1e-9 {
		t.Errorf("inconsistency runs = %v, want [20]", uv.ContinuousInconsistency)
	}
	if len(uv.ContinuousConsistency) != 2 {
		t.Errorf("consistency runs = %v, want 2 runs", uv.ContinuousConsistency)
	}
}

func TestUserViewBadDay(t *testing.T) {
	d := mustDataset(t, userTrace())
	if _, err := d.UserView(3); err == nil {
		t.Error("bad day accepted")
	}
}

func TestInconsistentServerFraction(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	frac, err := d.InconsistentServerFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets of 10s: t=10 {s1:C1 fresh}, t=20 {s2:C1 fresh},
	// t=30 {s1:C2 fresh}, t=40 {s2:C1 stale}=1, t=50 {s2:C2 fresh},
	// t=60 {s1:C3 fresh}, t=70 {s2:C2 stale}=1. Avg = 2/7.
	want := 2.0 / 7.0
	if math.Abs(frac-want) > 1e-9 {
		t.Errorf("fraction = %v, want %v", frac, want)
	}
}

func TestInconsistentServerFractionEmptyDay(t *testing.T) {
	tr := tinyTrace()
	tr.Meta.Days = 2 // day 1 has no records
	d := mustDataset(t, tr)
	frac, err := d.InconsistentServerFraction(1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("empty day fraction = %v", frac)
	}
}

func TestResampledInconsistencyRuns(t *testing.T) {
	d := mustDataset(t, userTrace())
	// At the native 10s cadence the run is 20s (one stale poll at 40,
	// cleared at 60).
	runs, err := d.ResampledInconsistencyRuns(0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || math.Abs(runs[0]-20) > 1e-9 {
		t.Errorf("runs@10s = %v, want [20]", runs)
	}
	// At a 60s cadence the user polls at 10 and 70 only — both
	// consistent, so no runs.
	runs, err = d.ResampledInconsistencyRuns(0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Errorf("runs@60s = %v, want none", runs)
	}
	// Default period (<=0) falls back to the crawl interval.
	runs, err = d.ResampledInconsistencyRuns(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Errorf("runs@default = %v, want 1 run", runs)
	}
	if _, err := d.ResampledInconsistencyRuns(9, time.Second); err == nil {
		t.Error("bad day accepted")
	}
}

func TestUserViewOpenEndedInconsistencyRun(t *testing.T) {
	tr := userTrace()
	// Append a trailing stale observation so the day ends mid-run.
	tr.Records = append(tr.Records, trace.PollRecord{
		Day: 0, Server: "s2", Poller: "u1", At: 90 * time.Second, Snapshot: 1, UserView: true,
	})
	d := mustDataset(t, tr)
	uv, err := d.UserView(0)
	if err != nil {
		t.Fatal(err)
	}
	// Two inconsistency runs now: [40,60) = 20s and the open-ended one
	// at 90 (zero-length, flushed at last record; excluded as <=0).
	if len(uv.ContinuousInconsistency) != 1 {
		t.Errorf("inconsistency runs = %v", uv.ContinuousInconsistency)
	}
}
