package analysis

import (
	"sort"
	"time"

	"cdnconsistency/internal/trace"
)

// UserViewStats aggregates the Section-3.3 user-perspective measures for
// one day.
type UserViewStats struct {
	// RedirectFractions holds, per user, the fraction of visits served by
	// a different server than the previous visit (Figure 4(a)).
	RedirectFractions []float64
	// ContinuousConsistency and ContinuousInconsistency hold run lengths
	// in seconds across all users (Figures 4(c) and 4(d)).
	ContinuousConsistency   []float64
	ContinuousInconsistency []float64
	// InconsistentObservationFrac is the fraction of user observations
	// that returned content older than the newest the user had seen
	// (self-inconsistency, the Figure 24 metric).
	InconsistentObservationFrac float64
}

// UserView computes the user-perspective statistics for one day. Records
// are classified per user in time order: an observation is inconsistent if
// its snapshot is older than the newest snapshot that user has seen.
func (d *Dataset) UserView(day int) (UserViewStats, error) {
	if err := d.checkDay(day); err != nil {
		return UserViewStats{}, err
	}
	byUser := make(map[string][]trace.PollRecord)
	for _, r := range d.userRecs[day] {
		byUser[r.Poller] = append(byUser[r.Poller], r)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)

	var out UserViewStats
	var inconsistent, observations int
	for _, u := range users {
		recs := byUser[u]
		// Redirection fraction.
		var redirects, transitions int
		for i := 1; i < len(recs); i++ {
			transitions++
			if recs[i].Server != recs[i-1].Server {
				redirects++
			}
		}
		if transitions > 0 {
			out.RedirectFractions = append(out.RedirectFractions,
				float64(redirects)/float64(transitions))
		}

		// Self-inconsistency runs.
		maxSeen := 0
		runStart := time.Duration(-1)
		runInconsistent := false
		flush := func(end time.Duration) {
			if runStart < 0 || end <= runStart {
				return
			}
			l := (end - runStart).Seconds()
			if runInconsistent {
				out.ContinuousInconsistency = append(out.ContinuousInconsistency, l)
			} else {
				out.ContinuousConsistency = append(out.ContinuousConsistency, l)
			}
		}
		for _, r := range recs {
			if r.Absent || r.Snapshot <= 0 {
				continue
			}
			observations++
			inc := r.Snapshot < maxSeen
			if inc {
				inconsistent++
			}
			if r.Snapshot > maxSeen {
				maxSeen = r.Snapshot
			}
			if runStart < 0 {
				runStart = r.At
				runInconsistent = inc
				continue
			}
			if inc != runInconsistent {
				flush(r.At)
				runStart = r.At
				runInconsistent = inc
			}
		}
		if len(recs) > 0 {
			flush(recs[len(recs)-1].At)
		}
	}
	if observations > 0 {
		out.InconsistentObservationFrac = float64(inconsistent) / float64(observations)
	}
	return out, nil
}

// InconsistentServerFraction computes the Figure 4(b) measure for one day:
// at each poll instant (bucketed by the crawl interval), the fraction of
// responding servers whose content is older than the newest snapshot
// already observed anywhere. The returned value is the day's average.
func (d *Dataset) InconsistentServerFraction(day int) (float64, error) {
	if err := d.checkDay(day); err != nil {
		return 0, err
	}
	interval := d.Trace.Meta.PollInterval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	type bucket struct{ stale, total int }
	buckets := make(map[int]*bucket)
	alphas := d.alphas[day]
	order := d.alphaOrder[day]
	for _, r := range d.serverRecs[day] {
		if r.Absent || r.Snapshot <= 0 {
			continue
		}
		b := buckets[int(r.At/interval)]
		if b == nil {
			b = &bucket{}
			buckets[int(r.At/interval)] = b
		}
		b.total++
		// Stale if a newer snapshot had already appeared by this time.
		next := nextObserved(order, r.Snapshot)
		if next != 0 && r.At > alphas[next] {
			b.stale++
		}
	}
	if len(buckets) == 0 {
		return 0, nil
	}
	var sum float64
	for _, b := range buckets {
		sum += float64(b.stale) / float64(b.total)
	}
	return sum / float64(len(buckets)), nil
}

// ResampledInconsistencyRuns reproduces Figure 4(e): it re-evaluates the
// continuous inconsistency run lengths a user would observe when polling
// every period rather than at the crawl cadence, by keeping only records on
// the coarser grid.
func (d *Dataset) ResampledInconsistencyRuns(day int, period time.Duration) ([]float64, error) {
	if err := d.checkDay(day); err != nil {
		return nil, err
	}
	if period <= 0 {
		period = d.Trace.Meta.PollInterval
	}
	byUser := make(map[string][]trace.PollRecord)
	for _, r := range d.userRecs[day] {
		byUser[r.Poller] = append(byUser[r.Poller], r)
	}
	var runs []float64
	for _, recs := range byUser {
		maxSeen := 0
		var runStart time.Duration = -1
		var lastAt time.Duration
		var next time.Duration
		for _, r := range recs {
			if r.At < next || r.Absent || r.Snapshot <= 0 {
				continue
			}
			next = r.At + period
			inc := r.Snapshot < maxSeen
			if r.Snapshot > maxSeen {
				maxSeen = r.Snapshot
			}
			switch {
			case inc && runStart < 0:
				runStart = r.At
			case !inc && runStart >= 0:
				end := r.At
				runs = append(runs, (end - runStart).Seconds())
				runStart = -1
			}
			lastAt = r.At
		}
		if runStart >= 0 && lastAt > runStart {
			runs = append(runs, (lastAt - runStart).Seconds())
		}
	}
	return runs, nil
}
