package analysis

import (
	"fmt"
	"strings"
	"time"

	"cdnconsistency/internal/stats"
)

// Section3Summary is the executive view of a whole crawl: the numbers the
// paper's Section 3.6 summarizes, computed in one pass.
type Section3Summary struct {
	Days    int
	Servers int

	// Inconsistency lengths (all days, alpha/beta method).
	MeanInconsistency float64
	FracUnder10s      float64
	FracOver50s       float64

	// TTL inference.
	InferredTTL time.Duration
	TTLShare    float64

	// Provider health.
	ProviderMean float64

	// Distance and redirects.
	DistanceCorrelation float64
	MeanRedirectFrac    float64

	// Tree verdict.
	Verdict TreeVerdict
}

// Summarize runs the full Section-3 battery. Clusters for the tree tests
// are the same-city groups.
func (d *Dataset) Summarize() (*Section3Summary, error) {
	out := &Section3Summary{Days: d.Days(), Servers: len(d.Trace.Servers)}

	ri := d.RequestInconsistenciesAll()
	if len(ri.Lengths) == 0 {
		return nil, fmt.Errorf("analysis: no inconsistency lengths in trace")
	}
	out.MeanInconsistency = ri.Mean()
	cdf, err := stats.NewCDF(ri.Lengths)
	if err != nil {
		return nil, err
	}
	out.FracUnder10s = cdf.At(10)
	out.FracOver50s = 1 - cdf.At(50)

	ttl, err := InferTTL(ri.Lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		return nil, err
	}
	out.InferredTTL = ttl
	if share, err := TTLShare(ri.Lengths, ttl); err == nil {
		out.TTLShare = share
	}

	var provLengths []float64
	for day := 0; day < d.Days(); day++ {
		pi, err := d.ProviderInconsistencies(day)
		if err != nil {
			return nil, err
		}
		provLengths = append(provLengths, pi.Lengths...)
	}
	if len(provLengths) > 0 {
		out.ProviderMean, _ = stats.Mean(provLengths)
	}

	if _, corr, err := d.DistanceCorrelation(1000); err == nil {
		out.DistanceCorrelation = corr
	}

	if uv, err := d.UserView(0); err == nil && len(uv.RedirectFractions) > 0 {
		out.MeanRedirectFrac, _ = stats.Mean(uv.RedirectFractions)
	}

	clusters := make(map[string][]string)
	for _, s := range d.Trace.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		clusters[key] = append(clusters[key], s.ID)
	}
	verdict, err := d.TreeExistence(clusters, ttl)
	if err != nil {
		return nil, err
	}
	out.Verdict = verdict
	return out, nil
}

// String renders the summary as the paper's Section 3.6 style bullet list.
func (s *Section3Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crawl: %d servers over %d days\n", s.Servers, s.Days)
	fmt.Fprintf(&b, "inconsistency: mean %.1fs (%.1f%% under 10s, %.1f%% over 50s)\n",
		s.MeanInconsistency, 100*s.FracUnder10s, 100*s.FracOver50s)
	fmt.Fprintf(&b, "inferred TTL: %v, explaining ~%.0f%% of mean inconsistency\n",
		s.InferredTTL, 100*s.TTLShare)
	fmt.Fprintf(&b, "provider: mean inconsistency %.1fs (negligible)\n", s.ProviderMean)
	fmt.Fprintf(&b, "distance correlation: r = %+.2f (weak)\n", s.DistanceCorrelation)
	fmt.Fprintf(&b, "user redirects: %.1f%% of visits\n", 100*s.MeanRedirectFrac)
	fmt.Fprintf(&b, "multicast tree: static=%v dynamic=%v -> %s\n",
		s.Verdict.StaticTreeLikely, s.Verdict.DynamicTreeLikely, s.conclusion())
	return b.String()
}

func (s *Section3Summary) conclusion() string {
	if !s.Verdict.StaticTreeLikely && !s.Verdict.DynamicTreeLikely {
		return "unicast TTL polling (the paper's Section 3.6 conclusion)"
	}
	return "a distribution tree is plausible"
}
