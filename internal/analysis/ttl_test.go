package analysis

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// uniformLengths draws n inconsistency lengths uniform on [0, ttlSec], plus
// a small heavy tail beyond the TTL, mimicking the trace's shape.
func uniformLengths(n int, ttlSec float64, tailFrac float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if r.Float64() < tailFrac {
			out = append(out, ttlSec+r.ExpFloat64()*40)
		} else {
			out = append(out, r.Float64()*ttlSec)
		}
	}
	return out
}

func TestInferTTLRecoversTruth(t *testing.T) {
	lengths := uniformLengths(20000, 60, 0.08, 1)
	got, err := InferTTL(lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got < 55*time.Second || got > 65*time.Second {
		t.Errorf("InferTTL = %v, want ~60s", got)
	}
}

func TestTTLSweepValidation(t *testing.T) {
	if _, err := TTLSweep(nil, 40*time.Second, 80*time.Second, 5*time.Second); err == nil {
		t.Error("empty lengths accepted")
	}
	lengths := []float64{1, 2, 3}
	bad := []struct{ from, to, step time.Duration }{
		{0, 80 * time.Second, 5 * time.Second},
		{80 * time.Second, 40 * time.Second, 5 * time.Second},
		{40 * time.Second, 80 * time.Second, 0},
	}
	for _, b := range bad {
		if _, err := TTLSweep(lengths, b.from, b.to, b.step); err == nil {
			t.Errorf("TTLSweep(%v,%v,%v) accepted", b.from, b.to, b.step)
		}
	}
}

func TestTTLSweepShape(t *testing.T) {
	lengths := uniformLengths(20000, 60, 0.08, 2)
	sweep, err := TTLSweep(lengths, 40*time.Second, 80*time.Second, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep points = %d, want 5", len(sweep))
	}
	byTTL := map[time.Duration]float64{}
	for _, s := range sweep {
		byTTL[s.CandidateTTL] = s.Deviation
	}
	if byTTL[60*time.Second] >= byTTL[80*time.Second] {
		t.Errorf("deviation(60s)=%v not below deviation(80s)=%v",
			byTTL[60*time.Second], byTTL[80*time.Second])
	}
}

func TestTTLSweepEmptyBucket(t *testing.T) {
	// All lengths above every candidate: deviation should be 1, not NaN.
	sweep, err := TTLSweep([]float64{500, 600}, 40*time.Second, 50*time.Second, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if s.Deviation != 1 {
			t.Errorf("deviation = %v for empty bucket, want 1", s.Deviation)
		}
	}
}

func TestTTLTheoryRMSEPrefersTrueTTL(t *testing.T) {
	lengths := uniformLengths(20000, 60, 0.08, 3)
	rmse60, err := TTLTheoryRMSE(lengths, 60*time.Second, 30)
	if err != nil {
		t.Fatal(err)
	}
	rmse80, err := TTLTheoryRMSE(lengths, 80*time.Second, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rmse60 >= rmse80 {
		t.Errorf("RMSE(60)=%v not below RMSE(80)=%v (paper: 0.046 vs 0.096)", rmse60, rmse80)
	}
	if rmse60 > 0.1 {
		t.Errorf("RMSE(60)=%v unexpectedly large for uniform data", rmse60)
	}
}

func TestTTLTheoryRMSEValidation(t *testing.T) {
	if _, err := TTLTheoryRMSE([]float64{1}, 0, 10); err == nil {
		t.Error("zero ttl accepted")
	}
	if _, err := TTLTheoryRMSE([]float64{500}, 60*time.Second, 10); err == nil {
		t.Error("no in-range lengths accepted")
	}
}

func TestTTLShare(t *testing.T) {
	// Mean inconsistency 40s with TTL 60 -> share 30/40 = 75%, the
	// paper's headline attribution.
	lengths := []float64{40, 40, 40}
	share, err := TTLShare(lengths, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share-0.75) > 1e-9 {
		t.Errorf("TTLShare = %v, want 0.75", share)
	}
	// Share caps at 1.
	share, err = TTLShare([]float64{10}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if share != 1 {
		t.Errorf("TTLShare cap = %v, want 1", share)
	}
	if _, err := TTLShare(nil, 60*time.Second); err == nil {
		t.Error("empty lengths accepted")
	}
}
