package analysis

import (
	"fmt"
	"math"
	"time"

	"cdnconsistency/internal/stats"
)

// TTLDeviation is one point of the Figure 6(a) curve: for a candidate TTL,
// the relative deviation between the candidate and twice the mean of the
// inconsistency lengths it would explain.
type TTLDeviation struct {
	CandidateTTL time.Duration
	Deviation    float64
}

// TTLSweep evaluates the paper's recursive-refinement criterion over a range
// of candidate TTLs. Under a TTL-based cache, inconsistency lengths caused
// solely by the TTL are uniform on [0, TTL], so E[I] = TTL/2; the candidate
// minimizing |2*mean(lengths <= T) - T| / T is the inferred TTL
// (Section 3.4.1).
func TTLSweep(lengths []float64, from, to, step time.Duration) ([]TTLDeviation, error) {
	if len(lengths) == 0 {
		return nil, stats.ErrEmpty
	}
	if from <= 0 || to < from || step <= 0 {
		return nil, fmt.Errorf("analysis: bad TTL sweep [%v,%v] step %v", from, to, step)
	}
	var out []TTLDeviation
	for t := from; t <= to; t += step {
		sec := t.Seconds()
		var sum float64
		var n int
		for _, l := range lengths {
			if l <= sec {
				sum += l
				n++
			}
		}
		if n == 0 {
			out = append(out, TTLDeviation{CandidateTTL: t, Deviation: 1})
			continue
		}
		mean := sum / float64(n)
		out = append(out, TTLDeviation{
			CandidateTTL: t,
			Deviation:    math.Abs(2*mean-sec) / sec,
		})
	}
	return out, nil
}

// InferTTL runs the paper's recursive refinement (Section 3.4.1): start
// from TTL' = 2*E[I] over all lengths, then repeatedly recompute
// TTL” = 2*E[I | I <= TTL'] until the relative change falls below 0.1% or
// the iteration stabilizes. Converging from above lands on the largest T
// with T = 2*mean(lengths <= T), which for a TTL cache (uniform [0,TTL]
// delays plus a failure tail) is the TTL itself.
func InferTTL(lengths []float64, from, to, step time.Duration) (time.Duration, error) {
	if len(lengths) == 0 {
		return 0, stats.ErrEmpty
	}
	if from <= 0 || to < from || step <= 0 {
		return 0, fmt.Errorf("analysis: bad TTL bounds [%v,%v] step %v", from, to, step)
	}
	mean, err := stats.Mean(lengths)
	if err != nil {
		return 0, err
	}
	cur := 2 * mean
	for i := 0; i < 100; i++ {
		var sum float64
		var n int
		for _, l := range lengths {
			if l <= cur {
				sum += l
				n++
			}
		}
		if n == 0 {
			break
		}
		next := 2 * sum / float64(n)
		if math.Abs(next-cur)/cur < 1e-3 {
			cur = next
			break
		}
		cur = next
	}
	ttl := time.Duration(cur * float64(time.Second))
	// Clamp to the sweep bounds and snap to the step grid for stable
	// reporting.
	if ttl < from {
		ttl = from
	}
	if ttl > to {
		ttl = to
	}
	snapped := from + (ttl-from+step/2)/step*step
	if snapped > to {
		snapped = to
	}
	return snapped, nil
}

// TTLTheoryRMSE compares the trace's inconsistency CDF (restricted to
// lengths <= ttl) against the uniform-[0,TTL] theory CDF, the Figure 6(b)
// check. The paper reports RMSE 0.0462 for TTL=60 s vs 0.0955 for 80 s.
func TTLTheoryRMSE(lengths []float64, ttl time.Duration, samplePoints int) (float64, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("analysis: non-positive ttl %v", ttl)
	}
	if samplePoints < 2 {
		samplePoints = 20
	}
	sec := ttl.Seconds()
	var within []float64
	for _, l := range lengths {
		if l <= sec {
			within = append(within, l)
		}
	}
	cdf, err := stats.NewCDF(within)
	if err != nil {
		return 0, fmt.Errorf("analysis: no lengths within ttl %v: %w", ttl, err)
	}
	theory := make([]float64, samplePoints)
	observed := make([]float64, samplePoints)
	for i := 0; i < samplePoints; i++ {
		x := sec * float64(i+1) / float64(samplePoints)
		theory[i] = x / sec
		observed[i] = cdf.At(x)
	}
	return stats.RMSE(observed, theory)
}

// TTLShare estimates the fraction of mean inconsistency explained by the
// TTL: (TTL/2) / overall mean length. The paper attributes ~75% of the
// inconsistency to the TTL this way (Section 3.4.6).
func TTLShare(lengths []float64, ttl time.Duration) (float64, error) {
	mean, err := stats.Mean(lengths)
	if err != nil {
		return 0, err
	}
	if mean <= 0 {
		return 0, fmt.Errorf("analysis: non-positive mean inconsistency")
	}
	share := ttl.Seconds() / 2 / mean
	if share > 1 {
		share = 1
	}
	return share, nil
}
