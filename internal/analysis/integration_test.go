package analysis

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/tracegen"
)

var (
	genOnce sync.Once
	genDS   *Dataset
	genErr  error
)

// genDataset builds a mid-sized synthetic crawl once for all integration
// tests in this file. The Dataset is read-only across tests.
func genDataset(t testing.TB) *Dataset {
	t.Helper()
	genOnce.Do(func() {
		res, err := tracegen.Generate(tracegen.Config{
			Topology: topology.Config{Servers: 150, Seed: 11},
			Days:     3,
			Users:    60,
			Seed:     11,
		})
		if err != nil {
			genErr = err
			return
		}
		genDS, genErr = NewDataset(res.Trace)
		if genErr != nil {
			return
		}
		// Warm the per-day episode cache so parallel readers never race.
		for day := 0; day < genDS.Days(); day++ {
			if _, err := genDS.PerServerInconsistency(day); err != nil {
				genErr = err
				return
			}
		}
	})
	if genErr != nil {
		t.Fatalf("building shared dataset: %v", genErr)
	}
	return genDS
}

// The Section 3.2 / Figure 3 shape: inconsistency exists, has a mean within
// the TTL-dominated range, and a tail beyond the TTL.
func TestIntegrationFig3Shape(t *testing.T) {
	d := genDataset(t)
	ri := d.RequestInconsistenciesAll()
	if ri.Total == 0 || len(ri.Lengths) == 0 {
		t.Fatal("no inconsistency measured")
	}
	mean := ri.Mean()
	if mean < 15 || mean > 60 {
		t.Errorf("mean inconsistency = %.1fs, want TTL-dominated range [15,60]", mean)
	}
	cdf, err := stats.NewCDF(ri.Lengths)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Max() <= 60 {
		t.Error("no tail beyond the TTL (absences should create one)")
	}
	// Some requests are stale for a substantial time (paper: 20.3% > 50s).
	over50 := 1 - cdf.At(50)
	if over50 < 0.02 {
		t.Errorf("fraction over 50s = %.3f, want a visible tail", over50)
	}
}

// Section 3.4.1 / Figure 6: the TTL inference recovers the generator's TTL
// and the uniform-theory RMSE prefers it over 80 s.
func TestIntegrationTTLInference(t *testing.T) {
	d := genDataset(t)
	ri := d.RequestInconsistenciesAll()
	got, err := InferTTL(ri.Lengths, 40*time.Second, 80*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got < 50*time.Second || got > 75*time.Second {
		t.Errorf("InferTTL = %v, want ~60s", got)
	}
	rmse60, err := TTLTheoryRMSE(ri.Lengths, 60*time.Second, 30)
	if err != nil {
		t.Fatal(err)
	}
	rmse80, err := TTLTheoryRMSE(ri.Lengths, 80*time.Second, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rmse60 >= rmse80 {
		t.Errorf("RMSE(60)=%.4f not below RMSE(80)=%.4f", rmse60, rmse80)
	}
}

// Section 3.4.2 / Figure 7: the provider is far more consistent than the CDN.
func TestIntegrationProviderNearlyConsistent(t *testing.T) {
	d := genDataset(t)
	server := d.RequestInconsistenciesAll()
	var provLengths []float64
	var provTotal int
	for day := 0; day < d.Days(); day++ {
		pi, err := d.ProviderInconsistencies(day)
		if err != nil {
			t.Fatal(err)
		}
		provLengths = append(provLengths, pi.Lengths...)
		provTotal += pi.Total
	}
	if provTotal == 0 {
		t.Fatal("no provider polls")
	}
	provMean := 0.0
	if len(provLengths) > 0 {
		provMean, _ = stats.Mean(provLengths)
	}
	if provMean >= server.Mean()/2 {
		t.Errorf("provider mean %.1fs not well below server mean %.1fs", provMean, server.Mean())
	}
}

// Section 3.4.3 / Figures 8-9: distance barely correlates; inter-ISP
// inconsistency exceeds intra-ISP on average.
func TestIntegrationDistanceAndISP(t *testing.T) {
	d := genDataset(t)
	_, corr, err := d.DistanceCorrelation(1000)
	if err != nil {
		t.Fatal(err)
	}
	if corr > 0.5 || corr < -0.5 {
		t.Errorf("distance correlation = %.2f, want weak (paper: 0.11)", corr)
	}

	clusters, err := d.ISPAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	var interWins, total int
	for _, c := range clusters {
		if c.AvgIntra == 0 && c.AvgInter == 0 {
			continue
		}
		total++
		if c.AvgInter >= c.AvgIntra {
			interWins++
		}
	}
	if total == 0 {
		t.Fatal("no ISP clusters with data")
	}
	if frac := float64(interWins) / float64(total); frac < 0.7 {
		t.Errorf("inter >= intra in only %.0f%% of clusters, want most", frac*100)
	}
}

// Section 3.4.5 / Figure 10: absences exist with the documented length
// distribution and raise post-return inconsistency.
func TestIntegrationAbsenceEffect(t *testing.T) {
	d := genDataset(t)
	var all []Absence
	for day := 0; day < d.Days(); day++ {
		abs, err := d.Absences(day)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, abs...)
	}
	if len(all) == 0 {
		t.Fatal("no absences reconstructed")
	}
	// Post-return inconsistency should exceed the overall mean: the
	// server could not refresh while away.
	ri := d.RequestInconsistenciesAll()
	var retSum float64
	var retN int
	for _, a := range all {
		if a.ReturnI >= 0 && a.Length > 30*time.Second {
			retSum += a.ReturnI
			retN++
		}
	}
	if retN > 5 {
		retMean := retSum / float64(retN)
		if retMean <= ri.Mean() {
			t.Errorf("post-absence mean %.1fs not above overall mean %.1fs", retMean, ri.Mean())
		}
	}
}

// Section 3.5 / Figures 11-12: the synthetic CDN polls the provider directly,
// so the tree-existence battery must find no tree.
func TestIntegrationNoTree(t *testing.T) {
	d := genDataset(t)
	clusters := map[string][]string{}
	for _, s := range d.Trace.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		clusters[key] = append(clusters[key], s.ID)
	}
	v, err := d.TreeExistence(clusters, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.StaticTreeLikely {
		t.Errorf("static tree inferred on unicast trace: %+v", v)
	}
	if v.DynamicTreeLikely {
		t.Errorf("dynamic tree inferred on unicast trace: %+v", v)
	}
	// Under unicast polling a server's maximum catch-up is bounded by one
	// TTL plus lag, so nearly all maxima fall below 2*TTL (under a tree
	// most would exceed it).
	if v.FracUnder2TTL < 0.8 {
		t.Errorf("FracUnder2TTL = %.2f, want > 0.8", v.FracUnder2TTL)
	}
}

// Section 3.3 / Figure 4: users see redirections near the configured rate
// and short inconsistency runs.
func TestIntegrationUserView(t *testing.T) {
	d := genDataset(t)
	uv, err := d.UserView(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(uv.RedirectFractions) == 0 {
		t.Fatal("no user redirect data")
	}
	mean, _ := stats.Mean(uv.RedirectFractions)
	if mean < 0.05 || mean > 0.3 {
		t.Errorf("mean redirect fraction = %.2f, want ~0.15", mean)
	}
	if len(uv.ContinuousInconsistency) == 0 {
		t.Fatal("users never observed inconsistency")
	}
	// Observed self-inconsistency should be a small fraction.
	if uv.InconsistentObservationFrac <= 0 || uv.InconsistentObservationFrac > 0.5 {
		t.Errorf("inconsistent observation frac = %.3f", uv.InconsistentObservationFrac)
	}
	// Inconsistency runs are much shorter than consistency runs.
	incMean, _ := stats.Mean(uv.ContinuousInconsistency)
	conMean, _ := stats.Mean(uv.ContinuousConsistency)
	if incMean >= conMean {
		t.Errorf("inconsistency runs (%.0fs) not shorter than consistency runs (%.0fs)", incMean, conMean)
	}
}

// Figure 4(e): slower polling lengthens observed inconsistency runs.
func TestIntegrationResampledRunsGrow(t *testing.T) {
	d := genDataset(t)
	fast, err := d.ResampledInconsistencyRuns(0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := d.ResampledInconsistencyRuns(0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) == 0 {
		t.Fatal("no runs at 10s cadence")
	}
	if len(slow) == 0 {
		t.Skip("no runs observed at 60s cadence in this draw")
	}
	fMean, _ := stats.Mean(fast)
	sMean, _ := stats.Mean(slow)
	if sMean < fMean {
		t.Errorf("60s-cadence run mean %.0fs below 10s-cadence %.0fs", sMean, fMean)
	}
}

// Figure 4(b): a steady fraction of servers is inconsistent at any instant.
func TestIntegrationInconsistentServerFraction(t *testing.T) {
	d := genDataset(t)
	for day := 0; day < d.Days(); day++ {
		frac, err := d.InconsistentServerFraction(day)
		if err != nil {
			t.Fatal(err)
		}
		if frac <= 0 || frac >= 1 {
			t.Errorf("day %d fraction = %.3f, want in (0,1)", day, frac)
		}
	}
}

// The executive summary ties the whole Section-3 battery together.
func TestIntegrationSummarize(t *testing.T) {
	d := genDataset(t)
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Servers != 150 || s.Days != 3 {
		t.Errorf("sizes = %d servers / %d days", s.Servers, s.Days)
	}
	if s.MeanInconsistency <= 0 {
		t.Error("no inconsistency in summary")
	}
	if s.InferredTTL < 50*time.Second || s.InferredTTL > 80*time.Second {
		t.Errorf("inferred TTL = %v", s.InferredTTL)
	}
	if s.Verdict.StaticTreeLikely || s.Verdict.DynamicTreeLikely {
		t.Errorf("verdict = %+v", s.Verdict)
	}
	out := s.String()
	for _, want := range []string{"inferred TTL", "unicast TTL polling", "provider"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
