package analysis

import (
	"fmt"
	"sort"
	"time"

	"cdnconsistency/internal/stats"
	"cdnconsistency/internal/trace"
)

// DistancePoint pairs a provider-server distance bucket with the average
// consistency ratio of its servers (Figure 8).
type DistancePoint struct {
	DistanceKm float64
	AvgRatio   float64
	Servers    int
}

// DistanceCorrelation buckets servers by distance to the provider (bucketKm
// wide, default 500 km) and computes each bucket's mean consistency ratio
// plus the Pearson correlation between distance and ratio across servers.
// The paper finds essentially no correlation (r = 0.11).
func (d *Dataset) DistanceCorrelation(bucketKm float64) ([]DistancePoint, float64, error) {
	if bucketKm <= 0 {
		bucketKm = 500
	}
	ratios := d.ConsistencyRatio()
	var xs, ys []float64
	type agg struct {
		sum float64
		n   int
	}
	buckets := make(map[int]*agg)
	for _, s := range d.Trace.Servers {
		r, ok := ratios[s.ID]
		if !ok {
			continue
		}
		xs = append(xs, s.DistanceKm)
		ys = append(ys, r)
		b := int(s.DistanceKm / bucketKm)
		a := buckets[b]
		if a == nil {
			a = &agg{}
			buckets[b] = a
		}
		a.sum += r
		a.n++
	}
	if len(xs) < 2 {
		return nil, 0, fmt.Errorf("analysis: too few servers (%d) for correlation", len(xs))
	}
	corr, err := stats.Pearson(xs, ys)
	if err != nil {
		// Zero variance (all ratios identical) means no correlation.
		corr = 0
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]DistancePoint, 0, len(keys))
	for _, k := range keys {
		a := buckets[k]
		out = append(out, DistancePoint{
			DistanceKm: (float64(k) + 0.5) * bucketKm,
			AvgRatio:   a.sum / float64(a.n),
			Servers:    a.n,
		})
	}
	return out, corr, nil
}

// ISPCluster summarizes one ISP's intra- and inter-ISP inconsistency
// (Figures 9(b), 9(c), 9(d)).
type ISPCluster struct {
	ISP     int
	Servers int
	Intra   stats.Summary // percentiles of intra-ISP lengths (s)
	Inter   stats.Summary // percentiles of inter-ISP lengths (s)
	// AvgIntra and AvgInter are the Figure 9(d) bars.
	AvgIntra, AvgInter float64
}

// ISPAnalysis computes, for each ISP cluster, the inconsistency lengths with
// alpha scoped to the cluster itself (intra) and to all other clusters
// (inter). The paper observes inter >= intra throughout, the increment
// quantifying the inter-ISP traffic penalty (Section 3.4.3).
func (d *Dataset) ISPAnalysis(day int) ([]ISPCluster, error) {
	if err := d.checkDay(day); err != nil {
		return nil, err
	}
	byISP := make(map[int]map[string]bool)
	for _, s := range d.Trace.Servers {
		if byISP[s.ISP] == nil {
			byISP[s.ISP] = make(map[string]bool)
		}
		byISP[s.ISP][s.ID] = true
	}
	isps := make([]int, 0, len(byISP))
	for isp := range byISP {
		isps = append(isps, isp)
	}
	sort.Ints(isps)

	all := make(map[string]bool, len(d.Trace.Servers))
	for _, s := range d.Trace.Servers {
		all[s.ID] = true
	}

	var out []ISPCluster
	for _, isp := range isps {
		members := byISP[isp]
		others := make(map[string]bool, len(all)-len(members))
		for id := range all {
			if !members[id] {
				others[id] = true
			}
		}
		intra, err := d.ScopedInconsistencies(day, members, members)
		if err != nil {
			return nil, err
		}
		inter, err := d.ScopedInconsistencies(day, members, others)
		if err != nil {
			return nil, err
		}
		c := ISPCluster{ISP: isp, Servers: len(members)}
		if len(intra.Lengths) > 0 {
			c.Intra, _ = stats.Summarize(intra.Lengths)
			c.AvgIntra = intra.Mean()
		}
		if len(inter.Lengths) > 0 {
			c.Inter, _ = stats.Summarize(inter.Lengths)
			c.AvgInter = inter.Mean()
		}
		out = append(out, c)
	}
	return out, nil
}

// ProviderResponseTimes returns all provider-poll RTTs in seconds for one
// day (Figure 10(a)).
func (d *Dataset) ProviderResponseTimes(day int) ([]float64, error) {
	if err := d.checkDay(day); err != nil {
		return nil, err
	}
	var out []float64
	for _, r := range d.providerRecs[day] {
		if !r.Absent {
			out = append(out, r.RTT.Seconds())
		}
	}
	return out, nil
}

// Absence is one reconstructed server absence: a gap between successive
// responses longer than the poll interval (Section 3.4.5).
type Absence struct {
	Server  string
	Day     int
	Start   time.Duration // last response before the gap
	End     time.Duration // first response after the gap
	Length  time.Duration // End - Start - pollInterval
	ReturnI float64       // inconsistency length of the first post-return poll (s); -1 if fresh/unknown
}

// Absences reconstructs absences from response gaps, mirroring the paper's
// methodology (absence = t_{i+1} - t_i - pollInterval).
func (d *Dataset) Absences(day int) ([]Absence, error) {
	if err := d.checkDay(day); err != nil {
		return nil, err
	}
	interval := d.Trace.Meta.PollInterval
	byServer := make(map[string][]trace.PollRecord)
	for _, r := range d.serverRecs[day] {
		if r.Absent {
			continue // methodology: absences derived from response gaps
		}
		byServer[r.Server] = append(byServer[r.Server], r)
	}
	servers := make([]string, 0, len(byServer))
	for s := range byServer {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	alphas := d.alphas[day]
	order := d.alphaOrder[day]

	var out []Absence
	for _, s := range servers {
		recs := byServer[s]
		for i := 1; i < len(recs); i++ {
			gap := recs[i].At - recs[i-1].At
			if gap <= interval+interval/2 {
				continue // normal cadence (allow jitter slack)
			}
			a := Absence{
				Server: s, Day: day,
				Start:  recs[i-1].At,
				End:    recs[i].At,
				Length: gap - interval,
			}
			if l, ok := inconsistencyOf(recs[i], alphas, order); ok {
				a.ReturnI = l
			} else {
				a.ReturnI = -1
			}
			out = append(out, a)
		}
	}
	return out, nil
}

// AbsenceBin aggregates post-return inconsistency by absence length
// (Figure 10(c): inconsistency grows from ~38 s to ~44 s as absences grow
// from 0 to 400 s).
type AbsenceBin struct {
	// MaxLength is the bin's upper bound; records fall into the first bin
	// whose bound is >= the absence length.
	MaxLength time.Duration
	AvgI      float64
	N         int
}

// AbsenceEffect bins absences every binWidth (default 50 s) up to maxLen
// (default 400 s) and averages the post-return inconsistency per bin. The
// zero-length bin (no absence) uses the day's overall average inconsistency.
func (d *Dataset) AbsenceEffect(day int, binWidth, maxLen time.Duration) ([]AbsenceBin, error) {
	if binWidth <= 0 {
		binWidth = 50 * time.Second
	}
	if maxLen <= 0 {
		maxLen = 400 * time.Second
	}
	abs, err := d.Absences(day)
	if err != nil {
		return nil, err
	}
	ri, err := d.RequestInconsistencies(day)
	if err != nil {
		return nil, err
	}
	nBins := int(maxLen/binWidth) + 1
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for _, a := range abs {
		// Only returns that actually served stale content participate;
		// the zero-length baseline below likewise averages positive
		// lengths (the paper's inconsistency lengths are positive by
		// construction).
		if a.ReturnI <= 0 || a.Length > maxLen {
			continue
		}
		b := int(a.Length / binWidth)
		if a.Length > 0 && a.Length%binWidth == 0 {
			b-- // closed upper bound per paper's (0,50], (50,100] bins
		}
		if b >= nBins-1 {
			b = nBins - 2
		}
		sums[b+1] += a.ReturnI
		counts[b+1]++
	}
	out := make([]AbsenceBin, 0, nBins)
	out = append(out, AbsenceBin{MaxLength: 0, AvgI: ri.Mean(), N: ri.Total})
	for b := 1; b < nBins; b++ {
		bin := AbsenceBin{MaxLength: time.Duration(b) * binWidth, N: counts[b]}
		if counts[b] > 0 {
			bin.AvgI = sums[b] / float64(counts[b])
		}
		out = append(out, bin)
	}
	return out, nil
}

// AbsenceProximity reproduces Figure 10(d): average request inconsistency
// within window seconds before an absence starts and after it ends, grouped
// by absence length group (e.g. [0,100s], (100,200s], ...).
type AbsenceProximity struct {
	GroupMax  time.Duration // upper bound of the absence-length group
	AvgBefore float64
	AvgAfter  float64
	N         int
}

// AbsenceProximityEffect measures inconsistency near absences.
func (d *Dataset) AbsenceProximityEffect(day int, window time.Duration, groups []time.Duration) ([]AbsenceProximity, error) {
	if window <= 0 {
		window = 60 * time.Second
	}
	if len(groups) == 0 {
		groups = []time.Duration{100 * time.Second, 200 * time.Second, 300 * time.Second, 400 * time.Second}
	}
	abs, err := d.Absences(day)
	if err != nil {
		return nil, err
	}
	byServer := make(map[string][]trace.PollRecord)
	for _, r := range d.serverRecs[day] {
		if !r.Absent {
			byServer[r.Server] = append(byServer[r.Server], r)
		}
	}
	alphas := d.alphas[day]
	order := d.alphaOrder[day]

	type agg struct {
		before, after float64
		nb, na, n     int
	}
	aggs := make([]agg, len(groups))
	for _, a := range abs {
		gi := -1
		for i, g := range groups {
			if a.Length <= g {
				gi = i
				break
			}
		}
		if gi < 0 {
			continue
		}
		aggs[gi].n++
		for _, r := range byServer[a.Server] {
			l, ok := inconsistencyOf(r, alphas, order)
			if !ok {
				continue
			}
			if r.At >= a.Start-window && r.At <= a.Start {
				aggs[gi].before += l
				aggs[gi].nb++
			}
			if r.At >= a.End && r.At <= a.End+window {
				aggs[gi].after += l
				aggs[gi].na++
			}
		}
	}
	out := make([]AbsenceProximity, 0, len(groups))
	for i, g := range groups {
		p := AbsenceProximity{GroupMax: g, N: aggs[i].n}
		if aggs[i].nb > 0 {
			p.AvgBefore = aggs[i].before / float64(aggs[i].nb)
		}
		if aggs[i].na > 0 {
			p.AvgAfter = aggs[i].after / float64(aggs[i].na)
		}
		out = append(out, p)
	}
	return out, nil
}
