package analysis

import (
	"fmt"
	"testing"
	"time"

	"cdnconsistency/internal/trace"
)

// churnTrace builds a 3-day trace over 4 servers where the inconsistency
// ranking flips every day (no tree) — each day a different server is the
// stale one.
func churnTrace() *trace.Trace {
	tr := &trace.Trace{
		Meta: trace.Meta{Description: "churn", Days: 3,
			PollInterval: 10 * time.Second, DayLength: 120 * time.Second,
			ServerTTL: 60 * time.Second},
	}
	for i := 0; i < 4; i++ {
		tr.Servers = append(tr.Servers, trace.ServerInfo{ID: fmt.Sprintf("s%d", i), ISP: i % 2, City: i % 2})
	}
	for day := 0; day < 3; day++ {
		staleServer := fmt.Sprintf("s%d", day%4)
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("s%d", i)
			for _, sec := range []int{10, 20, 30, 40, 50, 60} {
				snap := sec / 10 // fresh servers advance each poll
				if id == staleServer && sec > 10 {
					snap = 1 // the stale server is stuck on snapshot 1
				}
				tr.Records = append(tr.Records, trace.PollRecord{
					Day: day, Server: id, Poller: "p-" + id,
					At: time.Duration(sec) * time.Second, Snapshot: snap,
				})
			}
		}
	}
	return tr
}

// layeredTrace builds a 3-day trace where s0 is always fresh and s3 always
// most stale — the signature of a static tree.
func layeredTrace() *trace.Trace {
	tr := &trace.Trace{
		Meta: trace.Meta{Description: "layered", Days: 3,
			PollInterval: 10 * time.Second, DayLength: 120 * time.Second,
			ServerTTL: 60 * time.Second},
	}
	for i := 0; i < 4; i++ {
		tr.Servers = append(tr.Servers, trace.ServerInfo{ID: fmt.Sprintf("s%d", i), ISP: 0, City: 0})
	}
	for day := 0; day < 3; day++ {
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("s%d", i)
			for _, sec := range []int{10, 20, 30, 40, 50, 60} {
				// Server i lags i snapshots behind.
				snap := sec/10 - i
				if snap < 1 {
					snap = 1
				}
				tr.Records = append(tr.Records, trace.PollRecord{
					Day: day, Server: id, Poller: "p-" + id,
					At: time.Duration(sec) * time.Second, Snapshot: snap,
				})
			}
		}
	}
	return tr
}

func clustersOf(tr *trace.Trace) map[string][]string {
	out := map[string][]string{}
	for _, s := range tr.Servers {
		key := fmt.Sprintf("city-%d", s.City)
		out[key] = append(out[key], s.ID)
	}
	return out
}

func TestClusterDailyInconsistency(t *testing.T) {
	d := mustDataset(t, churnTrace())
	daily, err := d.ClusterDailyInconsistency(clustersOf(d.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(daily) != 2 {
		t.Fatalf("clusters = %d, want 2", len(daily))
	}
	for _, cd := range daily {
		if len(cd.ByDay) != 3 {
			t.Fatalf("cluster %s days = %d", cd.Key, len(cd.ByDay))
		}
		if cd.Min > cd.Max {
			t.Errorf("cluster %s min %v > max %v", cd.Key, cd.Min, cd.Max)
		}
	}
	if _, err := d.ClusterDailyInconsistency(nil); err == nil {
		t.Error("empty clusters accepted")
	}
}

func TestServerRankStabilityChurn(t *testing.T) {
	d := mustDataset(t, churnTrace())
	ids := []string{"s0", "s1", "s2", "s3"}
	rs, err := d.ServerRankStability(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Ranks) != 3 {
		t.Fatalf("rank days = %d", len(rs.Ranks))
	}
	if rs.MeanSpread <= 0.1 {
		t.Errorf("churny trace spread = %v, want large", rs.MeanSpread)
	}
}

func TestServerRankStabilityLayered(t *testing.T) {
	d := mustDataset(t, layeredTrace())
	rs, err := d.ServerRankStability([]string{"s0", "s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanSpread != 0 {
		t.Errorf("layered trace spread = %v, want 0", rs.MeanSpread)
	}
	if _, err := d.ServerRankStability([]string{"s0"}); err == nil {
		t.Error("single server accepted")
	}
}

func TestMaxInconsistencyTest(t *testing.T) {
	d := mustDataset(t, churnTrace())
	res, err := d.MaxInconsistencyTest(0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maxima) != 4 {
		t.Fatalf("maxima = %v, want 4 servers", res.Maxima)
	}
	// The stale server reaches 40s (<60): all under TTL.
	if res.FracUnderTTL != 1 {
		t.Errorf("FracUnderTTL = %v, want 1", res.FracUnderTTL)
	}
	cdf, err := res.MaximaCDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() != 4 {
		t.Errorf("cdf N = %d", cdf.N())
	}
	if _, err := d.MaxInconsistencyTest(9, time.Minute); err == nil {
		t.Error("bad day accepted")
	}
}

func TestMaxInconsistencyExcludesAbsentServers(t *testing.T) {
	tr := churnTrace()
	tr.Records = append(tr.Records, trace.PollRecord{
		Day: 0, Server: "s0", Poller: "p-s0", At: 70 * time.Second, Absent: true,
	})
	d := mustDataset(t, tr)
	res, err := d.MaxInconsistencyTest(0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maxima) != 3 {
		t.Errorf("maxima = %d, want 3 (s0 excluded)", len(res.Maxima))
	}
}

func TestMaxInconsistencyTTLFallback(t *testing.T) {
	d := mustDataset(t, churnTrace())
	if _, err := d.MaxInconsistencyTest(0, 0); err != nil {
		t.Errorf("meta TTL fallback failed: %v", err)
	}
	tr := churnTrace()
	tr.Meta.ServerTTL = 0
	d2 := mustDataset(t, tr)
	if _, err := d2.MaxInconsistencyTest(0, 0); err == nil {
		t.Error("unknown TTL accepted")
	}
}

func TestTreeExistenceVerdicts(t *testing.T) {
	churn := mustDataset(t, churnTrace())
	v, err := churn.TreeExistence(clustersOf(churn.Trace), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.StaticTreeLikely {
		t.Error("churny trace classified as static tree")
	}
	if v.DynamicTreeLikely {
		t.Error("churny trace classified as dynamic tree (maxima under TTL)")
	}

	layered := mustDataset(t, layeredTrace())
	lv, err := layered.TreeExistence(clustersOf(layered.Trace), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if lv.ServerRankSpread != 0 {
		t.Errorf("layered spread = %v, want 0", lv.ServerRankSpread)
	}
	if !lv.StaticTreeLikely {
		t.Error("layered trace not classified as static tree")
	}
}

func TestClusterRankSpreadStable(t *testing.T) {
	daily := []ClusterDaily{
		{Key: "a", ByDay: []float64{1, 1, 1}},
		{Key: "b", ByDay: []float64{2, 2, 2}},
		{Key: "c", ByDay: []float64{3, 3, 3}},
	}
	if got := clusterRankSpread(daily); got != 0 {
		t.Errorf("stable spread = %v, want 0", got)
	}
	flipped := []ClusterDaily{
		{Key: "a", ByDay: []float64{1, 3}},
		{Key: "b", ByDay: []float64{2, 2}},
		{Key: "c", ByDay: []float64{3, 1}},
	}
	if got := clusterRankSpread(flipped); got <= 0 {
		t.Errorf("flipped spread = %v, want > 0", got)
	}
	if got := clusterRankSpread(nil); got != 0 {
		t.Errorf("empty spread = %v", got)
	}
}

func TestKendallTauInRankStability(t *testing.T) {
	layered := mustDataset(t, layeredTrace())
	rs, err := layered.ServerRankStability([]string{"s0", "s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanKendallTau != 1 {
		t.Errorf("layered tau = %v, want 1", rs.MeanKendallTau)
	}
	churn := mustDataset(t, churnTrace())
	rs, err = churn.ServerRankStability([]string{"s0", "s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanKendallTau > 0.6 {
		t.Errorf("churny tau = %v, want low", rs.MeanKendallTau)
	}
}
