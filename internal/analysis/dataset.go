// Package analysis implements the paper's Section-3 measurement analytics
// as pure functions of a crawl trace: inconsistency lengths via the
// alpha/beta method, user-observed consistency, cause breakdowns (TTL,
// provider, ISP, distance, absences), TTL inference by recursive refinement,
// and the multicast-tree existence tests.
package analysis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cdnconsistency/internal/trace"
)

// Dataset wraps a trace with the indexes the analyses share. Build one with
// NewDataset and reuse it across analyses; construction sorts records and
// computes per-day first-appearance (alpha) tables.
type Dataset struct {
	Trace *trace.Trace

	// Per day, sorted by time.
	serverRecs   [][]trace.PollRecord
	providerRecs [][]trace.PollRecord
	userRecs     [][]trace.PollRecord

	// alphas[day][snapshot] is the first time the snapshot was observed
	// on any content server that day — the paper's alpha_Ci (Section 3.1:
	// with thousands of polled servers, the first observation approximates
	// the provider's update time).
	alphas []map[int]time.Duration
	// alphaOrder[day] lists snapshot ids observed that day in ascending
	// order, for "next snapshot" lookups.
	alphaOrder [][]int

	// episodeCache memoizes PerServerInconsistency per day. episodeMu
	// guards it: a Dataset is otherwise read-only after NewDataset, and
	// the figure generators read one concurrently.
	episodeMu    sync.Mutex
	episodeCache []map[string][]float64
}

// NewDataset indexes a trace. The trace must pass Validate.
func NewDataset(tr *trace.Trace) (*Dataset, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	tr.SortRecords()
	d := &Dataset{
		Trace:        tr,
		serverRecs:   make([][]trace.PollRecord, tr.Meta.Days),
		providerRecs: make([][]trace.PollRecord, tr.Meta.Days),
		userRecs:     make([][]trace.PollRecord, tr.Meta.Days),
		alphas:       make([]map[int]time.Duration, tr.Meta.Days),
		alphaOrder:   make([][]int, tr.Meta.Days),
	}
	for _, r := range tr.Records {
		switch {
		case r.Provider:
			d.providerRecs[r.Day] = append(d.providerRecs[r.Day], r)
		case r.UserView:
			d.userRecs[r.Day] = append(d.userRecs[r.Day], r)
		default:
			d.serverRecs[r.Day] = append(d.serverRecs[r.Day], r)
		}
	}
	for day := 0; day < tr.Meta.Days; day++ {
		d.alphas[day] = computeAlphas(d.serverRecs[day])
		d.alphaOrder[day] = sortedSnapshots(d.alphas[day])
	}
	return d, nil
}

// Days returns the number of crawl days.
func (d *Dataset) Days() int { return d.Trace.Meta.Days }

// ServerRecords returns one day's content-server poll records (sorted).
func (d *Dataset) ServerRecords(day int) []trace.PollRecord { return d.serverRecs[day] }

// ProviderRecords returns one day's provider poll records (sorted).
func (d *Dataset) ProviderRecords(day int) []trace.PollRecord { return d.providerRecs[day] }

// UserRecords returns one day's user-view poll records (sorted).
func (d *Dataset) UserRecords(day int) []trace.PollRecord { return d.userRecs[day] }

// computeAlphas maps each snapshot to its first appearance time in records.
// Absent records never carry snapshots, so they are skipped implicitly by
// the Snapshot > 0 check.
func computeAlphas(records []trace.PollRecord) map[int]time.Duration {
	alphas := make(map[int]time.Duration)
	for _, r := range records {
		if r.Snapshot <= 0 {
			continue
		}
		if cur, ok := alphas[r.Snapshot]; !ok || r.At < cur {
			alphas[r.Snapshot] = r.At
		}
	}
	return alphas
}

func sortedSnapshots(alphas map[int]time.Duration) []int {
	out := make([]int, 0, len(alphas))
	for s := range alphas {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// nextObserved returns the smallest observed snapshot id greater than s,
// or 0 if none.
func nextObserved(order []int, s int) int {
	i := sort.SearchInts(order, s+1)
	if i == len(order) {
		return 0
	}
	return order[i]
}

// RequestInconsistency is the paper's alpha/beta inconsistency measure
// underlying Figures 3, 5, 7 and 9. For each update Ci and each server, the
// inconsistency length is the catch-up delay: the time from Ci's first
// appearance anywhere (alpha_Ci) until the server first serves a snapshot
// >= Ci — equivalently Max{beta(Ci-1, sn) - alpha_Ci} per Section 3.1. A
// server that already shows Ci when it appears contributes a fresh (zero)
// episode. Under a TTL cache these delays are uniform on [0, TTL], which is
// what the TTL-inference of Section 3.4.1 exploits.
type RequestInconsistency struct {
	// Lengths holds the positive inconsistency lengths in seconds.
	Lengths []float64
	// Fresh counts (server, update) episodes with zero delay.
	Fresh int
	// Total counts all episodes evaluated.
	Total int
}

// Mean returns the mean of the positive inconsistency lengths, or 0.
func (ri RequestInconsistency) Mean() float64 {
	if len(ri.Lengths) == 0 {
		return 0
	}
	var sum float64
	for _, l := range ri.Lengths {
		sum += l
	}
	return sum / float64(len(ri.Lengths))
}

// inconsistencyOf is the instantaneous per-record staleness: for a record
// showing snapshot Ci at time t, it is t - alpha(C_next) when a newer
// snapshot had already appeared, else 0. The boolean reports whether the
// record carried content at all. This per-poll view drives the
// instantaneous measures (Figure 4(b), absence proximity); the headline
// inconsistency lengths use the episode measure below.
func inconsistencyOf(r trace.PollRecord, alphas map[int]time.Duration, order []int) (float64, bool) {
	if r.Absent || r.Snapshot <= 0 {
		return 0, false
	}
	next := nextObserved(order, r.Snapshot)
	if next == 0 {
		return 0, true // newest observed snapshot: fresh
	}
	alphaNext := alphas[next]
	if r.At <= alphaNext {
		return 0, true
	}
	return (r.At - alphaNext).Seconds(), true
}

// episodeLengths computes, for one observer's time-ordered records, the
// catch-up delay for every update in the alpha order. An update the
// observer never catches up to (end of trace) contributes nothing.
// Negative delays (possible under scoped alphas when the observer itself
// defines the global first appearance) count as fresh.
func episodeLengths(records []trace.PollRecord, alphas map[int]time.Duration, order []int) RequestInconsistency {
	var out RequestInconsistency
	ri := 0
	for _, snap := range order {
		alpha := alphas[snap]
		// Advance to the first content-bearing record showing >= snap.
		for ri < len(records) && (records[ri].Absent || records[ri].Snapshot < snap) {
			ri++
		}
		if ri == len(records) {
			break
		}
		out.Total++
		delay := (records[ri].At - alpha).Seconds()
		if delay <= 0 {
			out.Fresh++
		} else {
			out.Lengths = append(out.Lengths, delay)
		}
	}
	return out
}

// groupByObserver splits records into per-observer time-ordered lists.
// Content servers are keyed by server id; provider polls by poller id
// (multiple vantage points watch the same origin).
func groupByObserver(records []trace.PollRecord) map[string][]trace.PollRecord {
	out := make(map[string][]trace.PollRecord)
	for _, r := range records {
		key := r.Server
		if r.Provider {
			key = r.Poller
		}
		out[key] = append(out[key], r)
	}
	return out
}

// collectInconsistencies runs the episode measure over every observer in
// records against the given alpha scope.
func collectInconsistencies(records []trace.PollRecord, alphas map[int]time.Duration, order []int) RequestInconsistency {
	grouped := groupByObserver(records)
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out RequestInconsistency
	for _, k := range keys {
		ri := episodeLengths(grouped[k], alphas, order)
		out.Lengths = append(out.Lengths, ri.Lengths...)
		out.Fresh += ri.Fresh
		out.Total += ri.Total
	}
	return out
}

// RequestInconsistencies computes the Figure-3 measure for one day over all
// content servers, using the global alpha table.
func (d *Dataset) RequestInconsistencies(day int) (RequestInconsistency, error) {
	if err := d.checkDay(day); err != nil {
		return RequestInconsistency{}, err
	}
	return collectInconsistencies(d.serverRecs[day], d.alphas[day], d.alphaOrder[day]), nil
}

// RequestInconsistenciesAll merges every day's Figure-3 measure.
func (d *Dataset) RequestInconsistenciesAll() RequestInconsistency {
	var out RequestInconsistency
	for day := 0; day < d.Days(); day++ {
		ri, _ := d.RequestInconsistencies(day)
		out.Lengths = append(out.Lengths, ri.Lengths...)
		out.Fresh += ri.Fresh
		out.Total += ri.Total
	}
	return out
}

// ProviderInconsistencies computes the Figure-7 measure: staleness of the
// provider's own answers, scored against the provider records' alpha table.
func (d *Dataset) ProviderInconsistencies(day int) (RequestInconsistency, error) {
	if err := d.checkDay(day); err != nil {
		return RequestInconsistency{}, err
	}
	alphas := computeAlphas(d.providerRecs[day])
	order := sortedSnapshots(alphas)
	return collectInconsistencies(d.providerRecs[day], alphas, order), nil
}

// ScopedInconsistencies computes request inconsistency for records of the
// given servers, with alpha computed from alphaScope servers. Passing the
// same set for both yields the paper's inner-cluster measure (Figure 5);
// passing "all other clusters" as the scope yields the inter-ISP measure
// (Figure 9(c)).
func (d *Dataset) ScopedInconsistencies(day int, servers, alphaScope map[string]bool) (RequestInconsistency, error) {
	if err := d.checkDay(day); err != nil {
		return RequestInconsistency{}, err
	}
	var scopeRecs, memberRecs []trace.PollRecord
	for _, r := range d.serverRecs[day] {
		if alphaScope[r.Server] {
			scopeRecs = append(scopeRecs, r)
		}
		if servers[r.Server] {
			memberRecs = append(memberRecs, r)
		}
	}
	alphas := computeAlphas(scopeRecs)
	order := sortedSnapshots(alphas)
	return collectInconsistencies(memberRecs, alphas, order), nil
}

// PerServerInconsistency aggregates one day's episode inconsistencies per
// server (global alpha scope). The map holds each server's positive episode
// lengths in seconds; servers whose episodes were all fresh map to an empty
// slice. Results are cached on the Dataset.
func (d *Dataset) PerServerInconsistency(day int) (map[string][]float64, error) {
	if err := d.checkDay(day); err != nil {
		return nil, err
	}
	d.episodeMu.Lock()
	defer d.episodeMu.Unlock()
	if d.episodeCache == nil {
		d.episodeCache = make([]map[string][]float64, d.Days())
	}
	if cached := d.episodeCache[day]; cached != nil {
		return cached, nil
	}
	out := make(map[string][]float64, len(d.Trace.Servers))
	grouped := groupByObserver(d.serverRecs[day])
	for _, s := range d.Trace.Servers {
		recs, ok := grouped[s.ID]
		if !ok {
			out[s.ID] = nil
			continue
		}
		ri := episodeLengths(recs, d.alphas[day], d.alphaOrder[day])
		out[s.ID] = ri.Lengths
	}
	d.episodeCache[day] = out
	return out, nil
}

// ConsistencyRatio computes the paper's Section 3.4.3 metric for each
// server: the fraction of the trace the server spent consistent. The
// paper's formula 1 - sum(inconsistency lengths)/total time double-counts
// when stale windows overlap (several updates missed by one refresh), so we
// evaluate the union of stale intervals at poll granularity: the fraction
// of the server's polls that returned fresh content.
func (d *Dataset) ConsistencyRatio() map[string]float64 {
	fresh := make(map[string]int, len(d.Trace.Servers))
	total := make(map[string]int, len(d.Trace.Servers))
	for day := 0; day < d.Days(); day++ {
		for _, r := range d.serverRecs[day] {
			l, ok := inconsistencyOf(r, d.alphas[day], d.alphaOrder[day])
			if !ok {
				continue
			}
			total[r.Server]++
			if l == 0 {
				fresh[r.Server]++
			}
		}
	}
	out := make(map[string]float64, len(d.Trace.Servers))
	for _, s := range d.Trace.Servers {
		if total[s.ID] == 0 {
			out[s.ID] = 1
			continue
		}
		out[s.ID] = float64(fresh[s.ID]) / float64(total[s.ID])
	}
	return out
}

func (d *Dataset) checkDay(day int) error {
	if day < 0 || day >= d.Days() {
		return fmt.Errorf("analysis: day %d outside [0,%d)", day, d.Days())
	}
	return nil
}
