package analysis

import (
	"fmt"
	"sort"
	"time"

	"cdnconsistency/internal/stats"
)

// The multicast-tree existence tests (Section 3.5). If the CDN distributed
// updates down a static proximity-aware tree, then (a) the relative ordering
// of clusters by average inconsistency would be stable across days, (b) the
// relative ordering of servers inside a cluster would be stable, and (c) in
// any tree most servers sit at lower layers, so most servers' maximum
// inconsistency would exceed the TTL. The paper finds all three violated and
// concludes the CDN polls the provider directly over unicast.

// ClusterDaily holds one cluster's per-day average inconsistency.
type ClusterDaily struct {
	Key   string
	ByDay []float64 // average inconsistency length (s) per day
	Min   float64
	Max   float64
}

// ClusterDailyInconsistency computes, for each cluster of servers, the
// average request inconsistency per day (Figures 11(a) and 11(b)). clusters
// maps cluster key to member server ids.
func (d *Dataset) ClusterDailyInconsistency(clusters map[string][]string) ([]ClusterDaily, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("analysis: no clusters")
	}
	keys := make([]string, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := make([]ClusterDaily, 0, len(keys))
	for _, k := range keys {
		members := make(map[string]bool, len(clusters[k]))
		for _, id := range clusters[k] {
			members[id] = true
		}
		cd := ClusterDaily{Key: k}
		for day := 0; day < d.Days(); day++ {
			var sum float64
			var n int
			for _, r := range d.serverRecs[day] {
				if !members[r.Server] {
					continue
				}
				l, ok := inconsistencyOf(r, d.alphas[day], d.alphaOrder[day])
				if !ok {
					continue
				}
				sum += l
				n++
			}
			avg := 0.0
			if n > 0 {
				avg = sum / float64(n)
			}
			cd.ByDay = append(cd.ByDay, avg)
			if day == 0 || avg < cd.Min {
				cd.Min = avg
			}
			if day == 0 || avg > cd.Max {
				cd.Max = avg
			}
		}
		out = append(out, cd)
	}
	return out, nil
}

// RankStability quantifies how stable a set of entities' inconsistency
// ranking is across days: the mean over entities of (max rank - min rank)
// normalized by the entity count. A static tree would pin each entity to a
// layer, keeping the spread near 0; the paper's Figures 11(c,d) show large
// spreads.
type RankStability struct {
	// Ranks[day][i] is entity i's rank (1 = most consistent) on that day.
	Ranks [][]int
	// Entities lists the entity ids in Ranks' column order.
	Entities []string
	// MeanSpread is the average normalized rank spread in [0,1].
	MeanSpread float64
	// MeanKendallTau is the average Kendall tau between consecutive days'
	// rankings: near 1 for a static tree, near 0 for the paper's churn.
	MeanKendallTau float64
}

// ServerRankStability ranks the given servers by average inconsistency each
// day and measures rank churn. Servers missing data on a day keep rank 0
// and are excluded from the spread.
func (d *Dataset) ServerRankStability(serverIDs []string) (RankStability, error) {
	if len(serverIDs) < 2 {
		return RankStability{}, fmt.Errorf("analysis: need at least 2 servers, got %d", len(serverIDs))
	}
	ids := append([]string(nil), serverIDs...)
	sort.Strings(ids)
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}

	rs := RankStability{Entities: ids}
	for day := 0; day < d.Days(); day++ {
		sums := make([]float64, len(ids))
		counts := make([]int, len(ids))
		for _, r := range d.serverRecs[day] {
			i, ok := idx[r.Server]
			if !ok {
				continue
			}
			l, lok := inconsistencyOf(r, d.alphas[day], d.alphaOrder[day])
			if !lok {
				continue
			}
			sums[i] += l
			counts[i]++
		}
		type sv struct {
			i   int
			avg float64
		}
		var present []sv
		for i := range ids {
			if counts[i] > 0 {
				present = append(present, sv{i: i, avg: sums[i] / float64(counts[i])})
			}
		}
		sort.Slice(present, func(a, b int) bool {
			if present[a].avg != present[b].avg {
				return present[a].avg < present[b].avg
			}
			return present[a].i < present[b].i
		})
		ranks := make([]int, len(ids))
		for rank, s := range present {
			ranks[s.i] = rank + 1
		}
		rs.Ranks = append(rs.Ranks, ranks)
	}

	var spreadSum float64
	var spreadN int
	for i := range ids {
		minR, maxR := 0, 0
		for _, ranks := range rs.Ranks {
			r := ranks[i]
			if r == 0 {
				continue
			}
			if minR == 0 || r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
		}
		if minR == 0 {
			continue
		}
		spreadSum += float64(maxR-minR) / float64(len(ids))
		spreadN++
	}
	if spreadN > 0 {
		rs.MeanSpread = spreadSum / float64(spreadN)
	}

	// Kendall tau between consecutive days over entities ranked on both.
	var tauSum float64
	var tauN int
	for day := 1; day < len(rs.Ranks); day++ {
		var a, b []float64
		for i := range ids {
			ra, rb := rs.Ranks[day-1][i], rs.Ranks[day][i]
			if ra == 0 || rb == 0 {
				continue
			}
			a = append(a, float64(ra))
			b = append(b, float64(rb))
		}
		if tau, err := stats.KendallTau(a, b); err == nil {
			tauSum += tau
			tauN++
		}
	}
	if tauN > 0 {
		rs.MeanKendallTau = tauSum / float64(tauN)
	}
	return rs, nil
}

// MaxInconsistencyResult is the Figure 12 test: the CDF of per-server
// maximum inconsistency (servers with any absence excluded) and the
// fraction below the TTL. A multicast tree would put most servers below the
// second layer, forcing most maxima above the TTL; the paper instead finds
// 76.7-86.9% of servers below it.
type MaxInconsistencyResult struct {
	Maxima       []float64 // per-server daily maximum inconsistency (s)
	FracUnderTTL float64
	// FracUnder2TTL is the dynamic-tree discriminator: under unicast
	// polling a server's maximum catch-up is bounded by one TTL plus
	// fetch lag and poll granularity, so it stays below 2*TTL; under a
	// multicast tree most servers sit at depth >= 2 where the bound is
	// depth*TTL.
	FracUnder2TTL float64
}

// MaxInconsistencyTest computes the Figure 12 measure for one day.
func (d *Dataset) MaxInconsistencyTest(day int, ttl time.Duration) (MaxInconsistencyResult, error) {
	if err := d.checkDay(day); err != nil {
		return MaxInconsistencyResult{}, err
	}
	if ttl <= 0 {
		ttl = d.Trace.Meta.ServerTTL
	}
	if ttl <= 0 {
		return MaxInconsistencyResult{}, fmt.Errorf("analysis: ttl unknown")
	}
	// Exclude servers with any absence that day (Section 3.5.2 removes
	// them to eliminate tree-dynamism effects).
	absent := make(map[string]bool)
	for _, r := range d.Trace.Records {
		if r.Day == day && r.Absent && !r.Provider && !r.UserView {
			absent[r.Server] = true
		}
	}
	per, err := d.PerServerInconsistency(day)
	if err != nil {
		return MaxInconsistencyResult{}, err
	}
	// Only servers that actually responded that day participate.
	responded := make(map[string]bool)
	for _, r := range d.serverRecs[day] {
		if !r.Absent && r.Snapshot > 0 {
			responded[r.Server] = true
		}
	}
	servers := make([]string, 0, len(per))
	for s := range per {
		if !absent[s] && responded[s] {
			servers = append(servers, s)
		}
	}
	sort.Strings(servers)
	var res MaxInconsistencyResult
	var under, under2 int
	for _, s := range servers {
		var m float64
		for _, l := range per[s] {
			if l > m {
				m = l
			}
		}
		res.Maxima = append(res.Maxima, m)
		if m < ttl.Seconds() {
			under++
		}
		if m < 2*ttl.Seconds() {
			under2++
		}
	}
	if len(res.Maxima) > 0 {
		res.FracUnderTTL = float64(under) / float64(len(res.Maxima))
		res.FracUnder2TTL = float64(under2) / float64(len(res.Maxima))
	}
	return res, nil
}

// TreeVerdict summarizes all three existence tests into the paper's
// conclusion.
type TreeVerdict struct {
	ClusterRankSpread float64 // normalized spread of cluster rankings across days
	ServerRankSpread  float64 // normalized spread of server rankings inside a cluster
	FracUnderTTL      float64 // Figure 12 fraction (averaged over days)
	FracUnder2TTL     float64 // dynamic-tree discriminator (averaged over days)
	// StaticTreeLikely and DynamicTreeLikely hold the inferred verdicts:
	// both false reproduces the paper's conclusion (unicast polling).
	StaticTreeLikely  bool
	DynamicTreeLikely bool
}

// TreeExistence runs the complete Section-3.5 battery using the given
// clusters (typically Dataset location or ISP clusters).
func (d *Dataset) TreeExistence(clusters map[string][]string, ttl time.Duration) (TreeVerdict, error) {
	daily, err := d.ClusterDailyInconsistency(clusters)
	if err != nil {
		return TreeVerdict{}, err
	}
	// Cluster-level rank spread across days.
	var verdict TreeVerdict
	if d.Days() > 1 && len(daily) > 1 {
		spreads := clusterRankSpread(daily)
		verdict.ClusterRankSpread = spreads
	}
	// Server-level spread inside the largest cluster.
	var largest []string
	for k, members := range clusters {
		if len(members) > len(largest) {
			largest = clusters[k]
		}
	}
	if len(largest) >= 2 {
		rs, err := d.ServerRankStability(largest)
		if err == nil {
			verdict.ServerRankSpread = rs.MeanSpread
		}
	}
	var fracSum, frac2Sum float64
	var fracN int
	for day := 0; day < d.Days(); day++ {
		res, err := d.MaxInconsistencyTest(day, ttl)
		if err != nil || len(res.Maxima) == 0 {
			continue
		}
		fracSum += res.FracUnderTTL
		frac2Sum += res.FracUnder2TTL
		fracN++
	}
	if fracN > 0 {
		verdict.FracUnderTTL = fracSum / float64(fracN)
		verdict.FracUnder2TTL = frac2Sum / float64(fracN)
	}
	// Heuristics mirroring the paper's reasoning: a static tree implies
	// near-zero rank churn; any multicast tree puts most servers at depth
	// >= 2, where the maximum catch-up exceeds 2*TTL.
	verdict.StaticTreeLikely = verdict.ClusterRankSpread < 0.05 && verdict.ServerRankSpread < 0.05
	verdict.DynamicTreeLikely = verdict.FracUnder2TTL < 0.5
	return verdict, nil
}

func clusterRankSpread(daily []ClusterDaily) float64 {
	if len(daily) == 0 || len(daily[0].ByDay) == 0 {
		return 0
	}
	days := len(daily[0].ByDay)
	n := len(daily)
	minRank := make([]int, n)
	maxRank := make([]int, n)
	for day := 0; day < days; day++ {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			va, vb := daily[order[a]].ByDay[day], daily[order[b]].ByDay[day]
			if va != vb {
				return va < vb
			}
			return order[a] < order[b]
		})
		for rank, i := range order {
			r := rank + 1
			if day == 0 {
				minRank[i], maxRank[i] = r, r
				continue
			}
			if r < minRank[i] {
				minRank[i] = r
			}
			if r > maxRank[i] {
				maxRank[i] = r
			}
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(maxRank[i]-minRank[i]) / float64(n)
	}
	return sum / float64(n)
}

// MaximaCDF is a convenience that wraps a MaxInconsistencyResult's maxima in
// a CDF for figure output.
func (r MaxInconsistencyResult) MaximaCDF() (*stats.CDF, error) {
	return stats.NewCDF(r.Maxima)
}
