package analysis

import (
	"math"
	"testing"
	"time"

	"cdnconsistency/internal/trace"
)

// tinyTrace builds a 1-day trace with two servers and a fully controlled
// snapshot timeline:
//
//	t=10s  s1 shows C1 (alpha_C1 = 10s)
//	t=20s  s2 shows C1
//	t=30s  s1 shows C2 (alpha_C2 = 30s)
//	t=40s  s2 shows C1  <- stale by 10s (C2 appeared at 30s)
//	t=50s  s2 shows C2
//	t=60s  s1 shows C3 (alpha_C3 = 60s)
//	t=70s  s2 shows C2  <- stale by 10s
func tinyTrace() *trace.Trace {
	mk := func(server string, atSec int, snap int) trace.PollRecord {
		return trace.PollRecord{
			Day: 0, Server: server, Poller: "p-" + server,
			At: time.Duration(atSec) * time.Second, Snapshot: snap,
			RTT: 50 * time.Millisecond,
		}
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Description: "tiny", Days: 1,
			PollInterval: 10 * time.Second,
			DayLength:    100 * time.Second,
			ServerTTL:    60 * time.Second,
		},
		Servers: []trace.ServerInfo{
			{ID: "s1", ISP: 1, City: 0, DistanceKm: 100},
			{ID: "s2", ISP: 2, City: 1, DistanceKm: 5000},
		},
		Records: []trace.PollRecord{
			mk("s1", 10, 1), mk("s2", 20, 1),
			mk("s1", 30, 2), mk("s2", 40, 1),
			mk("s2", 50, 2), mk("s1", 60, 3),
			mk("s2", 70, 2),
		},
	}
}

func mustDataset(t *testing.T, tr *trace.Trace) *Dataset {
	t.Helper()
	d, err := NewDataset(tr)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return d
}

func TestNewDatasetRejectsInvalid(t *testing.T) {
	tr := tinyTrace()
	tr.Meta.Days = 0
	if _, err := NewDataset(tr); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestAlphas(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	want := map[int]time.Duration{
		1: 10 * time.Second,
		2: 30 * time.Second,
		3: 60 * time.Second,
	}
	for snap, at := range want {
		if got := d.alphas[0][snap]; got != at {
			t.Errorf("alpha[%d] = %v, want %v", snap, got, at)
		}
	}
}

func TestRequestInconsistencies(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	ri, err := d.RequestInconsistencies(0)
	if err != nil {
		t.Fatal(err)
	}
	// Episodes (catch-up delays): s1 defines every alpha, so its three
	// episodes are fresh. s2 catches C1 at 20 (alpha 10 -> 10s) and C2 at
	// 50 (alpha 30 -> 20s); it never catches C3 (skipped).
	if ri.Total != 5 {
		t.Errorf("Total = %d, want 5", ri.Total)
	}
	if ri.Fresh != 3 {
		t.Errorf("Fresh = %d, want 3", ri.Fresh)
	}
	if len(ri.Lengths) != 2 {
		t.Fatalf("Lengths = %v, want two entries", ri.Lengths)
	}
	if math.Abs(ri.Lengths[0]-10) > 1e-9 || math.Abs(ri.Lengths[1]-20) > 1e-9 {
		t.Errorf("Lengths = %v, want [10 20]", ri.Lengths)
	}
	if math.Abs(ri.Mean()-15) > 1e-9 {
		t.Errorf("Mean = %v, want 15", ri.Mean())
	}
}

func TestRequestInconsistenciesBadDay(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	if _, err := d.RequestInconsistencies(5); err == nil {
		t.Error("bad day accepted")
	}
	if _, err := d.RequestInconsistencies(-1); err == nil {
		t.Error("negative day accepted")
	}
}

func TestMeanEmpty(t *testing.T) {
	var ri RequestInconsistency
	if ri.Mean() != 0 {
		t.Error("Mean of empty != 0")
	}
}

func TestPerServerInconsistency(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	per, err := d.PerServerInconsistency(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(per["s1"]) != 0 {
		t.Errorf("s1 lengths = %v, want none", per["s1"])
	}
	if len(per["s2"]) != 2 {
		t.Errorf("s2 lengths = %v, want 2", per["s2"])
	}
}

func TestScopedInconsistencies(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	s2 := map[string]bool{"s2": true}
	// Alpha scoped to s2 alone: s2's own first appearances (C1@20,
	// C2@50) define the alphas, so every episode is fresh.
	ri, err := d.ScopedInconsistencies(0, s2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ri.Lengths) != 0 {
		t.Errorf("self-scoped s2 lengths = %v, want none (its own alphas)", ri.Lengths)
	}
	// Alpha scoped to s1 (the other cluster): alpha_C2=30, alpha_C3=60.
	s1 := map[string]bool{"s1": true}
	ri, err = d.ScopedInconsistencies(0, s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ri.Lengths) != 2 {
		t.Errorf("cross-scoped lengths = %v, want 2", ri.Lengths)
	}
}

func TestProviderInconsistencies(t *testing.T) {
	tr := tinyTrace()
	tr.Records = append(tr.Records,
		trace.PollRecord{Day: 0, Server: "origin", Poller: "pp", At: 10 * time.Second, Snapshot: 1, Provider: true},
		trace.PollRecord{Day: 0, Server: "origin", Poller: "pp", At: 20 * time.Second, Snapshot: 2, Provider: true},
		trace.PollRecord{Day: 0, Server: "origin", Poller: "pp2", At: 25 * time.Second, Snapshot: 1, Provider: true},
	)
	d := mustDataset(t, tr)
	ri, err := d.ProviderInconsistencies(0)
	if err != nil {
		t.Fatal(err)
	}
	// Observers are pollers for provider records. pp defines both alphas
	// (C1@10, C2@20): fresh. pp2 first shows C1 at 25: delay 15s; it
	// never shows C2.
	if len(ri.Lengths) != 1 || math.Abs(ri.Lengths[0]-15) > 1e-9 {
		t.Errorf("provider lengths = %v, want [15]", ri.Lengths)
	}
}

func TestConsistencyRatio(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	ratios := d.ConsistencyRatio()
	// s1's polls are all fresh: ratio 1. s2 is stale on 2 of its 4 polls
	// (at 40s showing C1 after C2 appeared, at 70s showing C2 after C3):
	// ratio 0.5.
	if math.Abs(ratios["s1"]-1) > 1e-9 {
		t.Errorf("s1 ratio = %v, want 1", ratios["s1"])
	}
	if math.Abs(ratios["s2"]-0.5) > 1e-9 {
		t.Errorf("s2 ratio = %v, want 0.5", ratios["s2"])
	}
}

func TestAbsentRecordsIgnoredInAlpha(t *testing.T) {
	tr := tinyTrace()
	tr.Records = append(tr.Records, trace.PollRecord{
		Day: 0, Server: "s1", Poller: "p-s1", At: 5 * time.Second, Absent: true,
	})
	d := mustDataset(t, tr)
	if got := d.alphas[0][1]; got != 10*time.Second {
		t.Errorf("alpha[1] = %v after absent record, want 10s", got)
	}
	ri, err := d.RequestInconsistencies(0)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Total != 5 {
		t.Errorf("Total = %d, want 5 (absent excluded)", ri.Total)
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	if d.Days() != 1 {
		t.Errorf("Days = %d", d.Days())
	}
	if len(d.ServerRecords(0)) != 7 {
		t.Errorf("ServerRecords = %d", len(d.ServerRecords(0)))
	}
	if len(d.ProviderRecords(0)) != 0 {
		t.Errorf("ProviderRecords = %d", len(d.ProviderRecords(0)))
	}
	if len(d.UserRecords(0)) != 0 {
		t.Errorf("UserRecords = %d", len(d.UserRecords(0)))
	}
}

func TestNextObserved(t *testing.T) {
	order := []int{1, 3, 7}
	tests := []struct {
		s, want int
	}{
		{0, 1}, {1, 3}, {2, 3}, {3, 7}, {7, 0}, {9, 0},
	}
	for _, tt := range tests {
		if got := nextObserved(order, tt.s); got != tt.want {
			t.Errorf("nextObserved(%d) = %d, want %d", tt.s, got, tt.want)
		}
	}
}
