package analysis

import (
	"math"
	"testing"
	"time"

	"cdnconsistency/internal/trace"
)

func TestDistanceCorrelation(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	points, corr, err := d.DistanceCorrelation(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v, want 2 buckets", points)
	}
	// s1 at 100km ratio 1, s2 at 5000km ratio 0.8: perfect negative
	// correlation on two points.
	if math.Abs(corr+1) > 1e-9 {
		t.Errorf("corr = %v, want -1", corr)
	}
	if points[0].AvgRatio != 1 || points[0].Servers != 1 {
		t.Errorf("bucket 0 = %+v", points[0])
	}
}

func TestDistanceCorrelationDefaults(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	if _, _, err := d.DistanceCorrelation(0); err != nil {
		t.Errorf("default bucket: %v", err)
	}
}

func TestDistanceCorrelationTooFew(t *testing.T) {
	tr := tinyTrace()
	tr.Servers = tr.Servers[:1]
	tr.Records = tr.Records[:0]
	d := mustDataset(t, tr)
	if _, _, err := d.DistanceCorrelation(500); err == nil {
		t.Error("single server accepted")
	}
}

func TestISPAnalysis(t *testing.T) {
	d := mustDataset(t, tinyTrace())
	clusters, err := d.ISPAnalysis(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// ISP 2 holds s2: intra-scoped alphas hide its staleness, inter
	// (scoped to s1) reveals it.
	var isp2 *ISPCluster
	for i := range clusters {
		if clusters[i].ISP == 2 {
			isp2 = &clusters[i]
		}
	}
	if isp2 == nil {
		t.Fatal("isp 2 missing")
	}
	if isp2.AvgIntra != 0 {
		t.Errorf("isp2 intra = %v, want 0", isp2.AvgIntra)
	}
	if isp2.AvgInter <= isp2.AvgIntra {
		t.Errorf("inter (%v) not above intra (%v)", isp2.AvgInter, isp2.AvgIntra)
	}
	if _, err := d.ISPAnalysis(7); err == nil {
		t.Error("bad day accepted")
	}
}

func TestProviderResponseTimes(t *testing.T) {
	tr := tinyTrace()
	tr.Records = append(tr.Records,
		trace.PollRecord{Day: 0, Server: "origin", Poller: "pp", At: 10 * time.Second,
			Snapshot: 1, Provider: true, RTT: 800 * time.Millisecond},
		trace.PollRecord{Day: 0, Server: "origin", Poller: "pp", At: 20 * time.Second,
			Provider: true, Absent: true},
	)
	d := mustDataset(t, tr)
	rts, err := d.ProviderResponseTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 1 || math.Abs(rts[0]-0.8) > 1e-9 {
		t.Errorf("response times = %v, want [0.8]", rts)
	}
	if _, err := d.ProviderResponseTimes(2); err == nil {
		t.Error("bad day accepted")
	}
}

// absenceTrace: server s1 responds at 10,20 then is absent until 120 (gap
// 100s => absence 90s), returning stale.
func absenceTrace() *trace.Trace {
	mk := func(server string, atSec, snap int) trace.PollRecord {
		return trace.PollRecord{Day: 0, Server: server, Poller: "p-" + server,
			At: time.Duration(atSec) * time.Second, Snapshot: snap}
	}
	return &trace.Trace{
		Meta: trace.Meta{Description: "abs", Days: 1,
			PollInterval: 10 * time.Second, DayLength: 300 * time.Second,
			ServerTTL: 60 * time.Second},
		Servers: []trace.ServerInfo{{ID: "s1", ISP: 1}, {ID: "s2", ISP: 1}},
		Records: []trace.PollRecord{
			mk("s1", 10, 1), mk("s1", 20, 1),
			// s2 keeps the alpha timeline alive during s1's absence,
			// polling at the regular 10s cadence.
			mk("s2", 10, 1), mk("s2", 20, 1), mk("s2", 30, 2), mk("s2", 40, 2),
			mk("s2", 50, 2), mk("s2", 60, 3), mk("s2", 70, 3), mk("s2", 80, 3),
			mk("s2", 90, 3), mk("s2", 100, 4), mk("s2", 110, 4), mk("s2", 120, 4),
			mk("s2", 130, 4),
			// s1 returns at 120 still showing snapshot 1 (stale since
			// alpha_C2 = 30 -> inconsistency 90s).
			mk("s1", 120, 1), mk("s1", 130, 4),
		},
	}
}

func TestAbsences(t *testing.T) {
	d := mustDataset(t, absenceTrace())
	abs, err := d.Absences(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 1 {
		t.Fatalf("absences = %+v, want 1", abs)
	}
	a := abs[0]
	if a.Server != "s1" {
		t.Errorf("server = %s", a.Server)
	}
	if a.Length != 90*time.Second {
		t.Errorf("length = %v, want 90s", a.Length)
	}
	if math.Abs(a.ReturnI-90) > 1e-9 {
		t.Errorf("return inconsistency = %v, want 90", a.ReturnI)
	}
	if _, err := d.Absences(4); err == nil {
		t.Error("bad day accepted")
	}
}

func TestAbsenceEffect(t *testing.T) {
	d := mustDataset(t, absenceTrace())
	bins, err := d.AbsenceEffect(0, 50*time.Second, 400*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 9 { // zero bin + 8 bins of 50s
		t.Fatalf("bins = %d, want 9", len(bins))
	}
	if bins[0].MaxLength != 0 {
		t.Errorf("first bin bound = %v", bins[0].MaxLength)
	}
	// The 90s absence falls in bin (50,100].
	var hit *AbsenceBin
	for i := range bins {
		if bins[i].MaxLength == 100*time.Second {
			hit = &bins[i]
		}
	}
	if hit == nil || hit.N != 1 || math.Abs(hit.AvgI-90) > 1e-9 {
		t.Errorf("bin (50,100] = %+v, want N=1 AvgI=90", hit)
	}
}

func TestAbsenceEffectBinBoundary(t *testing.T) {
	// An absence of exactly 50s must land in (0,50], not (50,100].
	tr := absenceTrace()
	// Rebuild: s1 responds at 10 then at 70 (gap 60 => absence 50s).
	tr.Records = []trace.PollRecord{
		{Day: 0, Server: "s1", Poller: "p", At: 10 * time.Second, Snapshot: 1},
		{Day: 0, Server: "s2", Poller: "q", At: 20 * time.Second, Snapshot: 2},
		{Day: 0, Server: "s1", Poller: "p", At: 70 * time.Second, Snapshot: 1},
	}
	d := mustDataset(t, tr)
	bins, err := d.AbsenceEffect(0, 50*time.Second, 400*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bins {
		if b.MaxLength == 50*time.Second && b.N != 1 {
			t.Errorf("bin (0,50] N = %d, want 1", b.N)
		}
		if b.MaxLength == 100*time.Second && b.N != 0 {
			t.Errorf("bin (50,100] N = %d, want 0", b.N)
		}
	}
}

func TestAbsenceProximityEffect(t *testing.T) {
	d := mustDataset(t, absenceTrace())
	prox, err := d.AbsenceProximityEffect(0, 60*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prox) != 4 {
		t.Fatalf("groups = %d, want 4", len(prox))
	}
	// The 90s absence is in group [0,100]; after-return window covers the
	// stale poll at 120 (90s) and fresh poll at 130 (0s): avg 45.
	g := prox[0]
	if g.N != 1 {
		t.Fatalf("group N = %d, want 1", g.N)
	}
	if math.Abs(g.AvgAfter-45) > 1e-9 {
		t.Errorf("AvgAfter = %v, want 45", g.AvgAfter)
	}
	// Before-window covers polls at 10 and 20 (both fresh): avg 0.
	if g.AvgBefore != 0 {
		t.Errorf("AvgBefore = %v, want 0", g.AvgBefore)
	}
}
