// Package checkpoint persists sweep progress so an interrupted experiment
// run can resume without recomputing finished jobs. A Journal is a single
// JSON file inside a caller-chosen directory, rewritten atomically
// (write-temp, fsync, rename) after every completed job: a crash or SIGKILL
// at any instant leaves either the previous or the next consistent journal on
// disk, never a torn one.
//
// Every figure job in this repository is a pure function of its configuration
// and seed, so the journal records each job's exact rendered output text (plus
// informational metrics). Resuming therefore re-emits recorded outputs
// verbatim and computes only the missing jobs — the resumed sweep's stdout is
// byte-identical to an uninterrupted run's.
//
// The journal embeds a fingerprint of the sweep configuration. Opening an
// existing journal with a different fingerprint is refused: replaying
// outputs recorded under different parameters would silently mix sweeps.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// journalFile is the journal's filename inside the checkpoint directory.
const journalFile = "journal.json"

// Meta fingerprints the sweep a journal belongs to.
type Meta struct {
	// Tool names the producing command (e.g. "experiments").
	Tool string `json:"tool"`
	// Fingerprint holds the sweep parameters that must match for records
	// to be reusable (scale, format, fault spec, job filter, ...).
	Fingerprint map[string]string `json:"fingerprint"`
}

func (m Meta) equal(o Meta) bool {
	if m.Tool != o.Tool || len(m.Fingerprint) != len(o.Fingerprint) {
		return false
	}
	for k, v := range m.Fingerprint {
		if o.Fingerprint[k] != v {
			return false
		}
	}
	return true
}

// describe renders a fingerprint for mismatch errors, keys sorted.
func (m Meta) describe() string {
	keys := make([]string, 0, len(m.Fingerprint))
	for k := range m.Fingerprint {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := m.Tool
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%s", k, m.Fingerprint[k])
	}
	return out
}

// Record is one completed job.
type Record struct {
	// ID is the job's stable identifier within the sweep.
	ID string `json:"id"`
	// Output is the job's exact rendered stdout text, re-emitted verbatim
	// on resume.
	Output string `json:"output"`
	// WallMS and AllocMB are informational per-job metrics carried along
	// so a resumed run can still report them.
	WallMS  int64   `json:"wall_ms"`
	AllocMB float64 `json:"alloc_mb,omitempty"`
}

// journalState is the on-disk shape.
type journalState struct {
	Meta Meta     `json:"meta"`
	Jobs []Record `json:"jobs"`
}

// Journal is an append-only progress log. Done/Len/Record are safe for
// concurrent use: a parallel sweep's worker goroutines consult Done while
// the ordered-emit goroutine appends via Record.
type Journal struct {
	dir string

	mu    sync.RWMutex
	state journalState
	done  map[string]int // job ID -> index in state.Jobs
}

// Open loads the journal in dir, creating the directory and an empty journal
// when none exists. An existing journal whose meta does not match is refused
// with an error naming both fingerprints.
func Open(dir string, meta Meta) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{
		dir:   dir,
		state: journalState{Meta: meta},
		done:  make(map[string]int),
	}
	raw, err := os.ReadFile(j.path())
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var loaded journalState
	if err := json.Unmarshal(raw, &loaded); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt journal %s: %w", j.path(), err)
	}
	if !loaded.Meta.equal(meta) {
		return nil, fmt.Errorf("checkpoint: journal %s was recorded for a different sweep:\n  journal: %s\n  current: %s",
			j.path(), loaded.Meta.describe(), meta.describe())
	}
	j.state = loaded
	for i, rec := range loaded.Jobs {
		if _, dup := j.done[rec.ID]; dup {
			return nil, fmt.Errorf("checkpoint: journal %s records job %q twice", j.path(), rec.ID)
		}
		j.done[rec.ID] = i
	}
	return j, nil
}

func (j *Journal) path() string { return filepath.Join(j.dir, journalFile) }

// Dir returns the checkpoint directory.
func (j *Journal) Dir() string { return j.dir }

// Len reports how many jobs are recorded.
func (j *Journal) Len() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.state.Jobs)
}

// Done returns the record for a completed job, if present.
func (j *Journal) Done(id string) (Record, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	i, ok := j.done[id]
	if !ok {
		return Record{}, false
	}
	return j.state.Jobs[i], true
}

// Record appends one completed job and atomically rewrites the journal.
// Re-recording an already-recorded ID is an error: it would mean the sweep
// ran a job the journal said to skip.
func (j *Journal) Record(rec Record) error {
	if rec.ID == "" {
		return fmt.Errorf("checkpoint: record with empty ID")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.done[rec.ID]; dup {
		return fmt.Errorf("checkpoint: job %q already recorded", rec.ID)
	}
	j.state.Jobs = append(j.state.Jobs, rec)
	j.done[rec.ID] = len(j.state.Jobs) - 1
	if err := j.flush(); err != nil {
		// Roll back the in-memory append so the journal and disk agree.
		j.state.Jobs = j.state.Jobs[:len(j.state.Jobs)-1]
		delete(j.done, rec.ID)
		return err
	}
	return nil
}

// flush rewrites the journal atomically: the new content lands in a temp file
// in the same directory, is fsynced, then renamed over the old journal.
func (j *Journal) flush() error {
	data, err := json.MarshalIndent(j.state, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(j.dir, journalFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, j.path()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
