package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta() Meta {
	return Meta{Tool: "experiments", Fingerprint: map[string]string{
		"scale": "0.1", "format": "tsv", "only": "fig14a",
	}}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d jobs", j.Len())
	}
	recs := []Record{
		{ID: "fig14a", Output: "table A\nrow 1\n", WallMS: 120},
		{ID: "fig16", Output: "table B\n", WallMS: 45, AllocMB: 1.5},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh process resuming from the same directory sees both records,
	// verbatim and in order.
	j2, err := Open(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != len(recs) {
		t.Fatalf("resumed journal has %d jobs, want %d", j2.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := j2.Done(want.ID)
		if !ok {
			t.Fatalf("job %q lost across reopen", want.ID)
		}
		if got != want {
			t.Errorf("job %q: got %+v, want %+v", want.ID, got, want)
		}
	}
	if _, ok := j2.Done("fig17"); ok {
		t.Error("unrecorded job reported done")
	}
}

func TestRefusesMismatchedSweep(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Record{ID: "fig14a", Output: "x"}); err != nil {
		t.Fatal(err)
	}
	other := testMeta()
	other.Fingerprint["scale"] = "1.0"
	if _, err := Open(dir, other); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("mismatched fingerprint accepted: %v", err)
	}
	missing := Meta{Tool: "experiments", Fingerprint: map[string]string{"scale": "0.1"}}
	if _, err := Open(dir, missing); err == nil {
		t.Fatal("fingerprint with missing keys accepted")
	}
}

func TestRefusesCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testMeta()); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt journal accepted: %v", err)
	}
}

func TestRefusesDoubleRecord(t *testing.T) {
	j, err := Open(t.TempDir(), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Record{ID: "fig14a", Output: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Record{ID: "fig14a", Output: "y"}); err == nil {
		t.Fatal("double record accepted")
	}
	if err := j.Record(Record{}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

// Atomicity: after every Record call, the on-disk journal parses and holds a
// prefix of the recorded jobs — no torn intermediate states, and no stray
// temp files left behind.
func TestEveryFlushLeavesConsistentState(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"a", "b", "c", "d"} {
		if err := j.Record(Record{ID: id, Output: id + "-out"}); err != nil {
			t.Fatal(err)
		}
		reloaded, err := Open(dir, testMeta())
		if err != nil {
			t.Fatalf("after %d records: %v", i+1, err)
		}
		if reloaded.Len() != i+1 {
			t.Fatalf("after %d records, disk holds %d", i+1, reloaded.Len())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != journalFile {
			t.Errorf("stray file %q left in checkpoint dir", e.Name())
		}
	}
}
