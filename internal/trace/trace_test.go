package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Meta: Meta{
			Description:  "test",
			Days:         2,
			PollInterval: 10 * time.Second,
			DayLength:    time.Hour,
			ServerTTL:    60 * time.Second,
			Seed:         7,
		},
		Servers: []ServerInfo{
			{ID: "s1", Lat: 33.7, Lon: -84.4, ISP: 1, City: 0, DistanceKm: 0},
			{ID: "s2", Lat: 51.5, Lon: -0.1, ISP: 2, City: 1, DistanceKm: 6760},
		},
		Records: []PollRecord{
			{Day: 0, Server: "s1", Poller: "p1", At: 10 * time.Second, Snapshot: 1, RTT: 80 * time.Millisecond},
			{Day: 0, Server: "s2", Poller: "p2", At: 10 * time.Second, Snapshot: 0, Absent: true, RTT: 0},
			{Day: 1, Server: "s2", Poller: "p2", At: 20 * time.Second, Snapshot: 2, RTT: 120 * time.Millisecond},
			{Day: 0, Server: "origin", Poller: "p1", At: 30 * time.Second, Snapshot: 2, Provider: true},
			{Day: 0, Server: "s1", Poller: "u1", At: 40 * time.Second, Snapshot: 1, UserView: true},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Trace)
	}{
		{"zero days", func(tr *Trace) { tr.Meta.Days = 0 }},
		{"zero interval", func(tr *Trace) { tr.Meta.PollInterval = 0 }},
		{"empty server id", func(tr *Trace) { tr.Servers[0].ID = "" }},
		{"dup server id", func(tr *Trace) { tr.Servers[1].ID = "s1" }},
		{"bad day", func(tr *Trace) { tr.Records[0].Day = 5 }},
		{"unknown server", func(tr *Trace) { tr.Records[0].Server = "ghost" }},
		{"negative time", func(tr *Trace) { tr.Records[0].At = -time.Second }},
		{"time past day", func(tr *Trace) { tr.Records[0].At = 2 * time.Hour }},
		{"negative snapshot", func(tr *Trace) { tr.Records[0].Snapshot = -1 }},
		{"absent with snapshot", func(tr *Trace) { tr.Records[1].Snapshot = 3 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			tr := sampleTrace()
			m.mut(tr)
			if err := tr.Validate(); err == nil {
				t.Error("Validate accepted corrupt trace")
			}
		})
	}
}

func TestServerByID(t *testing.T) {
	tr := sampleTrace()
	s, ok := tr.ServerByID("s2")
	if !ok || s.ISP != 2 {
		t.Errorf("ServerByID(s2) = %+v, %v", s, ok)
	}
	if _, ok := tr.ServerByID("nope"); ok {
		t.Error("found nonexistent server")
	}
}

func TestDayRecords(t *testing.T) {
	tr := sampleTrace()
	if got := len(tr.DayRecords(0)); got != 4 {
		t.Errorf("day 0 records = %d, want 4", got)
	}
	if got := len(tr.DayRecords(1)); got != 1 {
		t.Errorf("day 1 records = %d, want 1", got)
	}
}

func TestSortRecords(t *testing.T) {
	tr := sampleTrace()
	tr.SortRecords()
	for i := 1; i < len(tr.Records); i++ {
		a, b := tr.Records[i-1], tr.Records[i]
		if a.Day > b.Day || (a.Day == b.Day && a.At > b.At) {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(tr.Meta, got.Meta) {
		t.Errorf("meta mismatch:\n%+v\n%+v", tr.Meta, got.Meta)
	}
	if !reflect.DeepEqual(tr.Servers, got.Servers) {
		t.Errorf("servers mismatch")
	}
	if !reflect.DeepEqual(tr.Records, got.Records) {
		t.Errorf("records mismatch:\n%+v\n%+v", tr.Records, got.Records)
	}
}

func TestPropertyRoundTripRecords(t *testing.T) {
	f := func(day uint8, atSec uint16, snapshot uint16, rttMS uint16, absent bool) bool {
		rec := PollRecord{
			Day:    int(day % 3),
			Server: "s1",
			Poller: "p1",
			At:     time.Duration(atSec) * time.Second,
			RTT:    time.Duration(rttMS) * time.Millisecond,
			Absent: absent,
			// Absent records must carry snapshot 0 per schema.
			Snapshot: 0,
		}
		if !absent {
			rec.Snapshot = int(snapshot)
		}
		tr := &Trace{
			Meta:    Meta{Days: 3, PollInterval: time.Second, DayLength: 20 * time.Hour},
			Servers: []ServerInfo{{ID: "s1"}},
			Records: []PollRecord{rec},
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr.Records, got.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"no meta", `{"type":"poll","poll":{"server":"s1"}}`},
		{"dup meta", `{"type":"meta","meta":{"days":1,"poll_interval":1}}` + "\n" + `{"type":"meta","meta":{"days":1,"poll_interval":1}}`},
		{"unknown type", `{"type":"mystery"}`},
		{"bad json", `{{{`},
		{"empty", ``},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.input)); err == nil {
				t.Error("Read accepted bad input")
			}
		})
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	input := `{"type":"meta","meta":{"description":"x","days":1,"poll_interval":1000000000}}` + "\n\n" +
		`{"type":"server","server":{"id":"s1"}}` + "\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(tr.Servers) != 1 {
		t.Errorf("servers = %d", len(tr.Servers))
	}
}

func TestSkewEstimateAndCorrect(t *testing.T) {
	// Node starts a query at t=100s (its clock). The server's clock runs
	// 5s fast; one-way delay is 40ms, so the server receives at true time
	// 100.04s and stamps 105.04s. RTT measured 80ms.
	nodeStart := 100 * time.Second
	serverRecv := 105*time.Second + 40*time.Millisecond
	rtt := 80 * time.Millisecond
	skew := EstimateSkew(nodeStart, serverRecv, rtt)
	if skew != 5*time.Second {
		t.Fatalf("skew = %v, want 5s", skew)
	}
	raw := 200 * time.Second // a later raw server timestamp
	if got := CorrectSkew(raw, skew); got != 195*time.Second {
		t.Errorf("CorrectSkew = %v, want 195s", got)
	}
}

// Property: skew estimation recovers the true offset exactly when delays are
// symmetric, and within one-way-delay error otherwise.
func TestPropertySkewRecovery(t *testing.T) {
	f := func(offsetMS int32, owdMS uint16) bool {
		offset := time.Duration(offsetMS) * time.Millisecond
		owd := time.Duration(owdMS%1000) * time.Millisecond
		nodeStart := time.Hour
		serverRecv := nodeStart + owd + offset
		rtt := 2 * owd
		got := EstimateSkew(nodeStart, serverRecv, rtt)
		return got == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if merged.Meta.Days != 4 {
		t.Errorf("days = %d, want 4", merged.Meta.Days)
	}
	if len(merged.Servers) != 2 {
		t.Errorf("servers = %d, want 2 (deduped)", len(merged.Servers))
	}
	if len(merged.Records) != len(a.Records)+len(b.Records) {
		t.Errorf("records = %d", len(merged.Records))
	}
	// b's day-0 records became day 2.
	var sawDay2 bool
	for _, r := range merged.Records {
		if r.Day == 2 {
			sawDay2 = true
		}
		if r.Day < 0 || r.Day >= 4 {
			t.Fatalf("record day %d out of range", r.Day)
		}
	}
	if !sawDay2 {
		t.Error("no records shifted to day 2")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a := sampleTrace()
	b := sampleTrace()
	b.Meta.PollInterval = time.Second
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched interval accepted")
	}
	c := sampleTrace()
	c.Servers[0].ISP = 99 // same id, different info
	if _, err := Merge(a, c); err == nil {
		t.Error("conflicting server accepted")
	}
}
