package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The access-log flavor is a line-oriented key=value format shaped like a
// CDN edge access log: a header line with the crawl parameters, one
// "#server" line per crawled server, then one "poll" line per record. It is
// the import format for operators who have edge logs rather than our JSONL
// schema. Meta fields the analyses re-derive (description, the generator's
// ServerTTL, the seed) are deliberately not representable: a real access
// log would not carry them either.
//
// Parsing is strict: unknown keys, duplicate keys, malformed values,
// out-of-order timestamps, blank lines, trailing tokens, and a truncated
// last line (missing the final newline) are all structured errors with line
// numbers — never panics, never silent drops. FuzzParseAccessLog locks that
// contract.
//
// Floats are written in shortest-round-trip form and durations in
// time.Duration syntax, so WriteAccessLog -> ParseAccessLog reproduces the
// representable part of a trace exactly.

const accessLogHeader = "#cdnlog v1"

// WriteAccessLog serializes a trace in the access-log line format. Records
// must already be in canonical (day, time) order — call SortRecords first —
// because the format, like a real log, promises monotone timestamps.
func WriteAccessLog(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "%s days=%d daylen=%s poll=%s\n",
		accessLogHeader, t.Meta.Days, t.Meta.DayLength, t.Meta.PollInterval)
	for _, s := range t.Servers {
		fmt.Fprintf(bw, "#server id=%s lat=%s lon=%s isp=%d city=%d dist=%s\n",
			s.ID, fg(s.Lat), fg(s.Lon), s.ISP, s.City, fg(s.DistanceKm))
	}
	lastDay, lastAt := 0, time.Duration(-1)
	for i, r := range t.Records {
		if r.Day < lastDay || (r.Day == lastDay && r.At < lastAt) {
			return fmt.Errorf("trace: access log record %d out of (day, time) order; SortRecords first", i)
		}
		lastDay, lastAt = r.Day, r.At
		fmt.Fprintf(bw, "poll day=%d at=%s srv=%s via=%s rtt=%s snap=%d",
			r.Day, r.At, r.Server, r.Poller, r.RTT, r.Snapshot)
		if r.Absent {
			bw.WriteString(" absent")
		}
		if r.Provider {
			bw.WriteString(" provider")
		}
		if r.UserView {
			bw.WriteString(" user")
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// fg formats a float in shortest form that round-trips through ParseFloat.
func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseAccessLog parses a trace written by WriteAccessLog (or an external
// log in the same format) and validates it.
func ParseAccessLog(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	lastDay, lastAt := 0, time.Duration(-1)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			if line != "" {
				return nil, fmt.Errorf("trace: access log line %d: truncated last line (missing newline)", lineNo+1)
			}
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: access log: %w", err)
		}
		lineNo++
		line = strings.TrimSuffix(line, "\n")
		if strings.TrimSpace(line) == "" {
			return nil, fmt.Errorf("trace: access log line %d: blank line", lineNo)
		}
		if !sawHeader {
			if !strings.HasPrefix(line, accessLogHeader+" ") {
				return nil, fmt.Errorf("trace: access log line %d: missing %q header", lineNo, accessLogHeader)
			}
			meta, err := parseLogHeader(strings.Fields(line[len(accessLogHeader)+1:]))
			if err != nil {
				return nil, fmt.Errorf("trace: access log line %d: %w", lineNo, err)
			}
			t.Meta = meta
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "#server":
			s, err := parseLogServer(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("trace: access log line %d: %w", lineNo, err)
			}
			t.Servers = append(t.Servers, s)
		case "poll":
			rec, err := parseLogPoll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("trace: access log line %d: %w", lineNo, err)
			}
			if rec.Day < lastDay || (rec.Day == lastDay && rec.At < lastAt) {
				return nil, fmt.Errorf("trace: access log line %d: out-of-order timestamp (day %d at %v after day %d at %v)",
					lineNo, rec.Day, rec.At, lastDay, lastAt)
			}
			lastDay, lastAt = rec.Day, rec.At
			t.Records = append(t.Records, rec)
		default:
			return nil, fmt.Errorf("trace: access log line %d: unknown line kind %q", lineNo, fields[0])
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: access log: missing %q header", accessLogHeader)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// kvScan walks key=value tokens, rejecting unknown, duplicate, and
// malformed keys. Bare tokens (no '=') are dispatched to flag when allowed.
func kvScan(tokens []string, set map[string]func(string) error, flag func(string) error) error {
	seen := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			if flag == nil {
				return fmt.Errorf("stray token %q", tok)
			}
			if seen[tok] {
				return fmt.Errorf("duplicate flag %q", tok)
			}
			seen[tok] = true
			if err := flag(tok); err != nil {
				return err
			}
			continue
		}
		parse, known := set[key]
		if !known {
			return fmt.Errorf("unknown field %q", key)
		}
		if seen[key] {
			return fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		if err := parse(val); err != nil {
			return fmt.Errorf("field %s: %w", key, err)
		}
	}
	return nil
}

func parseLogHeader(tokens []string) (Meta, error) {
	var m Meta
	err := kvScan(tokens, map[string]func(string) error{
		"days":   func(v string) (err error) { m.Days, err = strconv.Atoi(v); return },
		"daylen": func(v string) (err error) { m.DayLength, err = time.ParseDuration(v); return },
		"poll":   func(v string) (err error) { m.PollInterval, err = time.ParseDuration(v); return },
	}, nil)
	if err != nil {
		return Meta{}, err
	}
	if m.Days == 0 || m.PollInterval == 0 {
		return Meta{}, fmt.Errorf("header needs days and poll")
	}
	return m, nil
}

func parseLogServer(tokens []string) (ServerInfo, error) {
	var s ServerInfo
	err := kvScan(tokens, map[string]func(string) error{
		"id":   func(v string) error { s.ID = v; return nil },
		"lat":  func(v string) (err error) { s.Lat, err = strconv.ParseFloat(v, 64); return },
		"lon":  func(v string) (err error) { s.Lon, err = strconv.ParseFloat(v, 64); return },
		"isp":  func(v string) (err error) { s.ISP, err = strconv.Atoi(v); return },
		"city": func(v string) (err error) { s.City, err = strconv.Atoi(v); return },
		"dist": func(v string) (err error) { s.DistanceKm, err = strconv.ParseFloat(v, 64); return },
	}, nil)
	if err != nil {
		return ServerInfo{}, err
	}
	if s.ID == "" {
		return ServerInfo{}, fmt.Errorf("#server line needs id")
	}
	return s, nil
}

func parseLogPoll(tokens []string) (PollRecord, error) {
	var rec PollRecord
	err := kvScan(tokens, map[string]func(string) error{
		"day":  func(v string) (err error) { rec.Day, err = strconv.Atoi(v); return },
		"at":   func(v string) (err error) { rec.At, err = time.ParseDuration(v); return },
		"srv":  func(v string) error { rec.Server = v; return nil },
		"via":  func(v string) error { rec.Poller = v; return nil },
		"rtt":  func(v string) (err error) { rec.RTT, err = time.ParseDuration(v); return },
		"snap": func(v string) (err error) { rec.Snapshot, err = strconv.Atoi(v); return },
	}, func(flag string) error {
		switch flag {
		case "absent":
			rec.Absent = true
		case "provider":
			rec.Provider = true
		case "user":
			rec.UserView = true
		default:
			return fmt.Errorf("unknown flag %q", flag)
		}
		return nil
	})
	if err != nil {
		return PollRecord{}, err
	}
	if rec.Server == "" || rec.Poller == "" {
		return PollRecord{}, fmt.Errorf("poll line needs srv and via")
	}
	if rec.Absent && rec.Snapshot != 0 {
		return PollRecord{}, fmt.Errorf("absent poll carries snapshot %d", rec.Snapshot)
	}
	return rec, nil
}
