package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSVRecords(&buf)
	if err != nil {
		t.Fatalf("ReadCSVRecords: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, got) {
		t.Errorf("records mismatch:\n%+v\n%+v", tr.Records, got)
	}
}

func TestCSVEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Trace{}); err != nil {
		t.Fatalf("WriteCSV empty: %v", err)
	}
	got, err := ReadCSVRecords(&buf)
	if err != nil {
		t.Fatalf("ReadCSVRecords empty: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("records = %d, want 0", len(got))
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e,f,g,h,i\n"},
		{"bad day", strings.Join(csvHeader, ",") + "\nx,s,p,0,1,0,false,false,false\n"},
		{"bad at", strings.Join(csvHeader, ",") + "\n0,s,p,x,1,0,false,false,false\n"},
		{"bad snapshot", strings.Join(csvHeader, ",") + "\n0,s,p,0,x,0,false,false,false\n"},
		{"bad rtt", strings.Join(csvHeader, ",") + "\n0,s,p,0,1,x,false,false,false\n"},
		{"bad absent", strings.Join(csvHeader, ",") + "\n0,s,p,0,1,0,x,false,false\n"},
		{"bad provider", strings.Join(csvHeader, ",") + "\n0,s,p,0,1,0,false,x,false\n"},
		{"bad userview", strings.Join(csvHeader, ",") + "\n0,s,p,0,1,0,false,false,x\n"},
		{"short row", strings.Join(csvHeader, ",") + "\n0,s,p\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSVRecords(strings.NewReader(tc.input)); err == nil {
				t.Error("bad input accepted")
			}
		})
	}
}

func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(day uint8, atSec uint16, snap uint16, absent, provider, userView bool) bool {
		rec := PollRecord{
			Day: int(day), Server: "srv", Poller: "pl",
			At: time.Duration(atSec) * time.Second, RTT: 42 * time.Millisecond,
			Absent: absent, Provider: provider, UserView: userView,
		}
		if !absent {
			rec.Snapshot = int(snap)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, &Trace{Records: []PollRecord{rec}}); err != nil {
			return false
		}
		got, err := ReadCSVRecords(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
