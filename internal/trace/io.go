package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// The JSONL format is one object per line, each tagged with a "type" field:
// exactly one "meta" line (first), then "server" lines, then "poll" lines.
// It is greppable, streams, and append-friendly for long crawls.

type lineEnvelope struct {
	Type string `json:"type"`
}

type metaLine struct {
	Type string `json:"type"`
	Meta Meta   `json:"meta"`
}

type serverLine struct {
	Type   string     `json:"type"`
	Server ServerInfo `json:"server"`
}

type pollLine struct {
	Type string     `json:"type"`
	Poll PollRecord `json:"poll"`
}

// Write serializes a trace as JSONL.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(metaLine{Type: "meta", Meta: t.Meta}); err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}
	for _, s := range t.Servers {
		if err := enc.Encode(serverLine{Type: "server", Server: s}); err != nil {
			return fmt.Errorf("trace: write server %s: %w", s.ID, err)
		}
	}
	for i, r := range t.Records {
		if err := enc.Encode(pollLine{Type: "poll", Poll: r}); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	t := &Trace{}
	sawMeta := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env lineEnvelope
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch env.Type {
		case "meta":
			if sawMeta {
				return nil, fmt.Errorf("trace: line %d: duplicate meta", lineNo)
			}
			var m metaLine
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			t.Meta = m.Meta
			sawMeta = true
		case "server":
			var s serverLine
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			t.Servers = append(t.Servers, s.Server)
		case "poll":
			var p pollLine
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			t.Records = append(t.Records, p.Poll)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown type %q", lineNo, env.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if !sawMeta {
		return nil, errors.New("trace: missing meta line")
	}
	return t, nil
}
