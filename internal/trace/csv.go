package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV export carries the poll records only (metadata and server info stay
// in the JSONL form); it exists for interop with external analysis tools.

var csvHeader = []string{
	"day", "server", "poller", "at_ns", "snapshot", "rtt_ns",
	"absent", "provider", "user_view",
}

// WriteCSV writes the trace's poll records as CSV with a header row.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for i, r := range t.Records {
		row := []string{
			strconv.Itoa(r.Day),
			r.Server,
			r.Poller,
			strconv.FormatInt(int64(r.At), 10),
			strconv.Itoa(r.Snapshot),
			strconv.FormatInt(int64(r.RTT), 10),
			strconv.FormatBool(r.Absent),
			strconv.FormatBool(r.Provider),
			strconv.FormatBool(r.UserView),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVRecords parses poll records written by WriteCSV.
func ReadCSVRecords(r io.Reader) ([]PollRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	for i, h := range header {
		if h != csvHeader[i] {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, h, csvHeader[i])
		}
	}
	var out []PollRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseCSVRow(row []string) (PollRecord, error) {
	var rec PollRecord
	var err error
	if rec.Day, err = strconv.Atoi(row[0]); err != nil {
		return rec, fmt.Errorf("day: %w", err)
	}
	rec.Server = row[1]
	rec.Poller = row[2]
	at, err := strconv.ParseInt(row[3], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("at_ns: %w", err)
	}
	rec.At = time.Duration(at)
	if rec.Snapshot, err = strconv.Atoi(row[4]); err != nil {
		return rec, fmt.Errorf("snapshot: %w", err)
	}
	rtt, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("rtt_ns: %w", err)
	}
	rec.RTT = time.Duration(rtt)
	if rec.Absent, err = strconv.ParseBool(row[6]); err != nil {
		return rec, fmt.Errorf("absent: %w", err)
	}
	if rec.Provider, err = strconv.ParseBool(row[7]); err != nil {
		return rec, fmt.Errorf("provider: %w", err)
	}
	if rec.UserView, err = strconv.ParseBool(row[8]); err != nil {
		return rec, fmt.Errorf("user_view: %w", err)
	}
	return rec, nil
}
