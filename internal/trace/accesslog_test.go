package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sortedSample returns sampleTrace in canonical record order, as
// WriteAccessLog requires.
func sortedSample() *Trace {
	tr := sampleTrace()
	tr.SortRecords()
	return tr
}

func TestAccessLogRoundTrip(t *testing.T) {
	tr := sortedSample()
	var buf bytes.Buffer
	if err := WriteAccessLog(&buf, tr); err != nil {
		t.Fatalf("WriteAccessLog: %v", err)
	}
	got, err := ParseAccessLog(&buf)
	if err != nil {
		t.Fatalf("ParseAccessLog: %v", err)
	}
	// The format deliberately cannot carry the description, the generator's
	// ServerTTL, or the seed; everything else must survive exactly.
	want := *tr
	want.Meta.Description = ""
	want.Meta.ServerTTL = 0
	want.Meta.Seed = 0
	if !reflect.DeepEqual(got.Meta, want.Meta) {
		t.Errorf("meta changed: got %+v want %+v", got.Meta, want.Meta)
	}
	if !reflect.DeepEqual(got.Servers, want.Servers) {
		t.Errorf("servers changed: got %+v want %+v", got.Servers, want.Servers)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Errorf("records changed: got %+v want %+v", got.Records, want.Records)
	}
}

func TestWriteAccessLogRejectsUnsorted(t *testing.T) {
	tr := sampleTrace() // records deliberately out of (day, time) order
	var buf bytes.Buffer
	if err := WriteAccessLog(&buf, tr); err == nil {
		t.Fatal("WriteAccessLog accepted out-of-order records")
	}
}

// validLog renders the sorted sample as access-log text for mutation tests.
func validLog(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAccessLog(&buf, sortedSample()); err != nil {
		t.Fatalf("WriteAccessLog: %v", err)
	}
	return buf.String()
}

func TestParseAccessLogStrictness(t *testing.T) {
	valid := validLog(t)
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"unknown header field", func(s string) string {
			return strings.Replace(s, "poll=10s", "poll=10s zone=utc", 1)
		}, "unknown field"},
		{"unknown server field", func(s string) string {
			return strings.Replace(s, "dist=0", "dist=0 rack=7", 1)
		}, "unknown field"},
		{"unknown poll field", func(s string) string {
			return strings.Replace(s, "snap=1", "snap=1 cache=hit", 1)
		}, "unknown field"},
		{"unknown poll flag", func(s string) string {
			return strings.Replace(s, "snap=1", "snap=1 cached", 1)
		}, "unknown flag"},
		{"duplicate field", func(s string) string {
			return strings.Replace(s, "days=2", "days=2 days=2", 1)
		}, "duplicate field"},
		{"duplicate flag", func(s string) string {
			return strings.Replace(s, " absent", " absent absent", 1)
		}, "duplicate flag"},
		{"trailing data after trace", func(s string) string {
			return s + "GET /index.html 200\n"
		}, "unknown line kind"},
		{"out-of-order timestamps", func(s string) string {
			lines := strings.SplitAfter(s, "\n")
			// Swap the last two poll lines (monotone by construction).
			n := len(lines)
			lines[n-2], lines[n-3] = lines[n-3], lines[n-2]
			return strings.Join(lines, "")
		}, "out-of-order timestamp"},
		{"truncated last line", func(s string) string {
			return strings.TrimSuffix(s, "\n")
		}, "truncated last line"},
		{"blank line", func(s string) string {
			return strings.Replace(s, "poll day=0", "\npoll day=0", 1)
		}, "blank line"},
		{"missing header", func(s string) string {
			_, rest, _ := strings.Cut(s, "\n")
			return rest
		}, "header"},
		{"malformed duration", func(s string) string {
			return strings.Replace(s, "at=10s", "at=never", 1)
		}, "field at"},
		{"absent with snapshot", func(s string) string {
			return strings.Replace(s, "snap=0 absent", "snap=3 absent", 1)
		}, "absent"},
		{"unknown server reference", func(s string) string {
			return strings.Replace(s, "srv=s1", "srv=ghost", 1)
		}, "unknown server"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			input := tc.mutate(valid)
			if input == valid {
				t.Fatal("mutation did not change the input")
			}
			_, err := ParseAccessLog(strings.NewReader(input))
			if err == nil {
				t.Fatalf("ParseAccessLog accepted mutated input:\n%s", input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseAccessLogErrorsCarryLineNumbers(t *testing.T) {
	input := accessLogHeader + " days=1 daylen=1h0m0s poll=10s\n" +
		"#server id=s1 lat=1 lon=2 isp=0 city=0 dist=0\n" +
		"poll day=0 at=1s srv=s1 via=p1 rtt=1ms snap=bad\n"
	_, err := ParseAccessLog(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}

func TestParseAccessLogEmptyInput(t *testing.T) {
	if _, err := ParseAccessLog(strings.NewReader("")); err == nil {
		t.Fatal("ParseAccessLog accepted empty input")
	}
}

func TestAccessLogPreservesFloatPrecision(t *testing.T) {
	tr := sortedSample()
	tr.Servers[0].Lat = 33.74900000000001
	tr.Servers[0].DistanceKm = 12345.678901234567
	var buf bytes.Buffer
	if err := WriteAccessLog(&buf, tr); err != nil {
		t.Fatalf("WriteAccessLog: %v", err)
	}
	got, err := ParseAccessLog(&buf)
	if err != nil {
		t.Fatalf("ParseAccessLog: %v", err)
	}
	if got.Servers[0].Lat != tr.Servers[0].Lat || got.Servers[0].DistanceKm != tr.Servers[0].DistanceKm {
		t.Fatalf("floats drifted: got %v/%v want %v/%v",
			got.Servers[0].Lat, got.Servers[0].DistanceKm, tr.Servers[0].Lat, tr.Servers[0].DistanceKm)
	}
}

func TestAccessLogSameDayEqualTimesAllowed(t *testing.T) {
	tr := &Trace{
		Meta: Meta{Days: 1, PollInterval: 10 * time.Second, DayLength: time.Minute},
		Servers: []ServerInfo{
			{ID: "a"}, {ID: "b"},
		},
		Records: []PollRecord{
			{Day: 0, Server: "a", Poller: "p", At: 10 * time.Second, Snapshot: 1},
			{Day: 0, Server: "b", Poller: "p", At: 10 * time.Second, Snapshot: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteAccessLog(&buf, tr); err != nil {
		t.Fatalf("WriteAccessLog: %v", err)
	}
	if _, err := ParseAccessLog(&buf); err != nil {
		t.Fatalf("ParseAccessLog rejected equal timestamps: %v", err)
	}
}
