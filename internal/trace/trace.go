// Package trace defines the crawl-trace schema shared by the synthetic
// trace generator and the Section-3 analysis pipeline, plus JSONL
// serialization and the clock-skew correction the paper applies before
// computing inconsistency (Section 3.1).
package trace

import (
	"fmt"
	"sort"
	"time"
)

// ServerInfo describes one crawled content server.
type ServerInfo struct {
	ID   string  `json:"id"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
	ISP  int     `json:"isp"`
	City int     `json:"city"`
	// DistanceKm is the great-circle distance to the content provider.
	DistanceKm float64 `json:"distance_km"`
}

// PollRecord is one poll of one server by one vantage point. Server-
// perspective records have a fixed Poller per server; user-perspective
// records have a fixed Poller (the user) and a varying Server (redirection).
type PollRecord struct {
	Day    int    `json:"day"`
	Server string `json:"server"`
	Poller string `json:"poller"`
	// At is the poll time relative to the day's crawl start, already
	// skew-corrected (the generator applies CorrectSkew before storing).
	At time.Duration `json:"at"`
	// Snapshot is the content version observed; 0 means no content yet.
	Snapshot int `json:"snapshot"`
	// RTT is the poll round-trip time.
	RTT time.Duration `json:"rtt"`
	// Absent marks a poll that got no response (server failed/overloaded).
	// Absent records carry Snapshot 0.
	Absent bool `json:"absent,omitempty"`
	// Provider marks polls aimed at the content provider's origin servers
	// rather than CDN servers (Section 3.4.2).
	Provider bool `json:"provider,omitempty"`
	// UserView marks records from the user-perspective crawl
	// (Section 3.3); Poller identifies the user.
	UserView bool `json:"user_view,omitempty"`
}

// Meta captures the crawl parameters so analyses can interpret the records.
type Meta struct {
	Description  string        `json:"description"`
	Days         int           `json:"days"`
	PollInterval time.Duration `json:"poll_interval"`
	DayLength    time.Duration `json:"day_length"`
	// ServerTTL is the generator's cache TTL. Real crawls would not know
	// it; the analysis re-derives it (Section 3.4.1) and tests compare.
	ServerTTL time.Duration `json:"server_ttl,omitempty"`
	Seed      int64         `json:"seed,omitempty"`
}

// Trace is a complete crawl data set.
type Trace struct {
	Meta    Meta
	Servers []ServerInfo
	Records []PollRecord
}

// Validate checks internal consistency: every record must reference a known
// server (or the provider), lie inside a crawl day, and have sane fields.
func (t *Trace) Validate() error {
	if t.Meta.Days <= 0 {
		return fmt.Errorf("trace: non-positive day count %d", t.Meta.Days)
	}
	if t.Meta.PollInterval <= 0 {
		return fmt.Errorf("trace: non-positive poll interval %v", t.Meta.PollInterval)
	}
	known := make(map[string]bool, len(t.Servers))
	for _, s := range t.Servers {
		if s.ID == "" {
			return fmt.Errorf("trace: server with empty id")
		}
		if known[s.ID] {
			return fmt.Errorf("trace: duplicate server id %q", s.ID)
		}
		known[s.ID] = true
	}
	for i, r := range t.Records {
		if r.Day < 0 || r.Day >= t.Meta.Days {
			return fmt.Errorf("trace: record %d day %d outside [0,%d)", i, r.Day, t.Meta.Days)
		}
		if !r.Provider && !known[r.Server] {
			return fmt.Errorf("trace: record %d references unknown server %q", i, r.Server)
		}
		if r.At < 0 || (t.Meta.DayLength > 0 && r.At > t.Meta.DayLength) {
			return fmt.Errorf("trace: record %d time %v outside day", i, r.At)
		}
		if r.Snapshot < 0 {
			return fmt.Errorf("trace: record %d negative snapshot", i)
		}
		if r.Absent && r.Snapshot != 0 {
			return fmt.Errorf("trace: record %d absent but carries snapshot %d", i, r.Snapshot)
		}
	}
	return nil
}

// ServerByID returns the ServerInfo for id.
func (t *Trace) ServerByID(id string) (ServerInfo, bool) {
	for _, s := range t.Servers {
		if s.ID == id {
			return s, true
		}
	}
	return ServerInfo{}, false
}

// DayRecords returns the records of one day, preserving order.
func (t *Trace) DayRecords(day int) []PollRecord {
	var out []PollRecord
	for _, r := range t.Records {
		if r.Day == day {
			out = append(out, r)
		}
	}
	return out
}

// SortRecords orders records by (day, time, server, poller) in place, the
// canonical order the analyses assume.
func (t *Trace) SortRecords() {
	sort.Slice(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		return a.Poller < b.Poller
	})
}

// Merge combines multiple traces into one multi-day trace: the second
// trace's days follow the first's, and so on. Traces must agree on poll
// interval and day length; server sets are unioned (duplicate ids must
// describe identical servers). Useful for assembling a long crawl from
// per-day capture files.
func Merge(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Trace{Meta: traces[0].Meta}
	out.Meta.Days = 0
	seen := make(map[string]ServerInfo)
	for ti, t := range traces {
		if t.Meta.PollInterval != out.Meta.PollInterval || t.Meta.DayLength != out.Meta.DayLength {
			return nil, fmt.Errorf("trace: merge input %d has mismatched poll interval or day length", ti)
		}
		for _, s := range t.Servers {
			if prev, ok := seen[s.ID]; ok {
				if prev != s {
					return nil, fmt.Errorf("trace: server %q differs across merge inputs", s.ID)
				}
				continue
			}
			seen[s.ID] = s
			out.Servers = append(out.Servers, s)
		}
		offset := out.Meta.Days
		for _, r := range t.Records {
			r.Day += offset
			out.Records = append(out.Records, r)
		}
		out.Meta.Days += t.Meta.Days
	}
	out.SortRecords()
	return out, out.Validate()
}

// EstimateSkew implements the paper's offset estimate for server s against
// reference vantage node n:
//
//	epsilon(n,s) = tG_s - tG_n - RTT/2
//
// where tG_n is the node's GMT when it started the query, tG_s the server's
// GMT upon receiving it, and RTT the measured round trip (Section 3.1).
func EstimateSkew(nodeStart, serverRecv, rtt time.Duration) time.Duration {
	return serverRecv - nodeStart - rtt/2
}

// CorrectSkew subtracts a server's estimated offset from a raw server
// timestamp, mapping it onto the reference node's clock.
func CorrectSkew(serverTimestamp, skew time.Duration) time.Duration {
	return serverTimestamp - skew
}
