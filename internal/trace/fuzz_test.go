package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the JSONL reader against arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add(`{"type":"meta","meta":{"days":1,"poll_interval":1}}`)
	f.Add(`{"type":"poll","poll":{"server":"x"}}`)
	f.Add("{{{{")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read of own Write output: %v", err)
		}
		if len(again.Records) != len(tr.Records) || len(again.Servers) != len(tr.Servers) {
			t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
				len(tr.Records), len(tr.Servers), len(again.Records), len(again.Servers))
		}
	})
}

// FuzzParseAccessLog exercises the access-log parser against arbitrary
// input: it must never panic, and anything it accepts must round-trip
// through WriteAccessLog byte-exactly (the accepted trace is sorted and
// fully representable by construction).
func FuzzParseAccessLog(f *testing.F) {
	var seed bytes.Buffer
	st := sampleTrace()
	st.SortRecords()
	if err := WriteAccessLog(&seed, st); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("#cdnlog v1 days=1 daylen=1m0s poll=10s\n")
	f.Add("#cdnlog v1 days=1 daylen=1m0s poll=10s\n#server id=a\npoll day=0 at=1s srv=a via=p rtt=1ms snap=0\n")
	f.Add("#cdnlog v1 days=1 poll=10s days=2\n")
	f.Add("poll day=0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseAccessLog(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteAccessLog(&buf, tr); err != nil {
			t.Fatalf("WriteAccessLog after successful parse: %v", err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		again, err := ParseAccessLog(&buf)
		if err != nil {
			t.Fatalf("ParseAccessLog of own output: %v", err)
		}
		var second bytes.Buffer
		if err := WriteAccessLog(&second, again); err != nil {
			t.Fatalf("WriteAccessLog second pass: %v", err)
		}
		if !bytes.Equal(first, second.Bytes()) {
			t.Fatal("access log round trip is not byte-stable")
		}
	})
}

// FuzzReadCSV exercises the CSV record reader the same way.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("day,server\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadCSVRecords(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, &Trace{Records: recs}); err != nil {
			t.Fatalf("WriteCSV after successful read: %v", err)
		}
		again, err := ReadCSVRecords(&buf)
		if err != nil {
			t.Fatalf("ReadCSVRecords of own output: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed count: %d vs %d", len(recs), len(again))
		}
	})
}
