package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the JSONL reader against arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add(`{"type":"meta","meta":{"days":1,"poll_interval":1}}`)
	f.Add(`{"type":"poll","poll":{"server":"x"}}`)
	f.Add("{{{{")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read of own Write output: %v", err)
		}
		if len(again.Records) != len(tr.Records) || len(again.Servers) != len(tr.Servers) {
			t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
				len(tr.Records), len(tr.Servers), len(again.Records), len(again.Servers))
		}
	})
}

// FuzzReadCSV exercises the CSV record reader the same way.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("day,server\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadCSVRecords(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, &Trace{Records: recs}); err != nil {
			t.Fatalf("WriteCSV after successful read: %v", err)
		}
		again, err := ReadCSVRecords(&buf)
		if err != nil {
			t.Fatalf("ReadCSVRecords of own output: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed count: %d vs %d", len(recs), len(again))
		}
	})
}
