package sim

import (
	"testing"
	"time"
)

// nopEvent is a static FuncHandler; scheduling it must not allocate.
func nopEvent(*Engine, any, int64) {}

// TestSteadyStateScheduleRunAllocFree pins the engine's core guarantee: once
// the slot table and heap have warmed up, a schedule+fire cycle allocates
// nothing — for both the Handler form (with a pre-built func value) and the
// closure-free FuncHandler form.
func TestSteadyStateScheduleRunAllocFree(t *testing.T) {
	e := NewEngine(1)
	var h Handler = func(*Engine) {}
	// Warm up: grow the heap, slot table, and free list to steady state.
	for i := 0; i < 128; i++ {
		e.ScheduleAfter(time.Duration(i), h)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		e.ScheduleAfter(time.Microsecond, h)
		e.ScheduleAfterFunc(time.Microsecond, nopEvent, e, 7)
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+run costs %v allocs/op, want 0", avg)
	}
}

// TestCancelAllocFree pins Cancel's O(1), allocation-free path.
func TestCancelAllocFree(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 128; i++ {
		e.ScheduleAfterFunc(time.Duration(i), nopEvent, e, 0)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		tm := e.ScheduleAfterFunc(time.Hour, nopEvent, e, 0)
		if !e.Cancel(tm) {
			t.Fatal("cancel of a live timer failed")
		}
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel costs %v allocs/op, want 0", avg)
	}
}

// TestCancelChurnBoundsQueue is the regression test for unbounded dead-event
// retention: scheduling and immediately cancelling events over and over must
// not grow the heap, because compaction strips tombstones once they dominate.
// (Before lazy-cancellation compaction, each round left its tombstones in the
// heap until Run drained past them, so maxQ here grew to rounds*batch.)
func TestCancelChurnBoundsQueue(t *testing.T) {
	e := NewEngine(1)
	const rounds, batch = 2000, 10
	var timers [batch]Timer
	maxQ := 0
	for round := 0; round < rounds; round++ {
		for i := range timers {
			timers[i] = e.ScheduleAfterFunc(time.Hour, nopEvent, e, 0)
		}
		for _, tm := range timers {
			e.Cancel(tm)
		}
		if q := e.queueLen(); q > maxQ {
			maxQ = q
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancelling everything, want 0", e.Pending())
	}
	// Live events never exceed batch; the physical queue may additionally
	// hold up to ~compactMinQueue+batch tombstones between compactions.
	if limit := 2*compactMinQueue + batch; maxQ > limit {
		t.Fatalf("queue grew to %d under cancel churn (limit %d): tombstones are being retained", maxQ, limit)
	}
}

// TestEveryCancelChurnBoundsQueue exercises the same property through the
// public periodic API: a driver loop that stops its Every ticker and starts
// a fresh one on each firing, thousands of times, must keep the heap small.
func TestEveryCancelChurnBoundsQueue(t *testing.T) {
	e := NewEngine(1)
	const cycles = 5000
	var (
		stop  func()
		fired int
		maxQ  int
	)
	rearm := func(en *Engine) {
		fired++
		stop()
		if q := en.queueLen(); q > maxQ {
			maxQ = q
		}
		var err error
		stop, err = en.Every(time.Hour, func(*Engine) {}) // never fires within the horizon
		if err != nil {
			t.Fatal(err)
		}
	}
	var err error
	stop, err = e.Every(time.Hour, func(*Engine) {})
	if err != nil {
		t.Fatal(err)
	}
	var drive Handler
	drive = func(en *Engine) {
		rearm(en)
		if fired < cycles {
			en.ScheduleAfter(time.Second, drive)
		}
	}
	e.ScheduleAfter(time.Second, drive)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != cycles {
		t.Fatalf("driver fired %d times, want %d", fired, cycles)
	}
	if limit := 2 * compactMinQueue; maxQ > limit {
		t.Fatalf("queue grew to %d under Every+Cancel churn (limit %d)", maxQ, limit)
	}
}

// BenchmarkEngineScheduleFire measures the steady-state cost of one
// closure-free schedule+fire cycle. The CI bench gate tracks it.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfterFunc(time.Microsecond, nopEvent, e, int64(i))
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEveryCancelChurn measures arming, briefly running, and
// stopping a periodic loop — the pattern the pull/heartbeat/audit loops
// produce under failover churn.
func BenchmarkEngineEveryCancelChurn(b *testing.B) {
	e := NewEngine(1)
	n := 0
	tick := func(*Engine) { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop, err := e.Every(time.Second, tick)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(e.Now() + 10*time.Second); err != nil {
			b.Fatal(err)
		}
		stop()
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}
