// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is virtual: a simulation run consumes no wall-clock time beyond the
// CPU needed to execute event handlers. Events scheduled for the same
// timestamp fire in scheduling (FIFO) order, which makes runs with the same
// seed bit-for-bit reproducible.
//
// The event loop is the hot path of every figure in the paper, so the engine
// is built to schedule and fire events without allocating: events are stored
// by value in a manually-managed binary heap (no container/heap interface
// boxing), cancellation is lazy through per-slot generation counters instead
// of a live-event map, and the closure-free scheduling variants
// (ScheduleAtFunc, ScheduleAtCall) let periodic loops run with zero
// allocations per cycle. None of this changes observable behavior: events
// fire in exactly the same (timestamp, scheduling-order) sequence as the
// naive implementation, so pooling cannot perturb a deterministic run.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Handler is the callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// FuncHandler is the closure-free handler form: a static function (package
// function or method expression) receiving an explicit receiver and one
// packed integer argument. Scheduling one allocates nothing as long as recv
// is pointer-shaped (a pointer, or a func value for ScheduleAtCall).
type FuncHandler func(e *Engine, recv any, arg int64)

// heapItem is one heap entry: the ordering key (at, seq) plus the slot
// reference resolving to the event's handler. It deliberately contains no
// pointers, so heap sift operations are barrier-free 24-byte moves.
type heapItem struct {
	at   time.Duration
	seq  uint64
	slot uint32
	gen  uint32
}

// payload holds a scheduled event's handler state, parked in the slot table
// (not the heap) so it is written once at schedule time and read once at
// fire time, never copied by sift operations. Exactly one of h and fn is
// set.
type payload struct {
	h    Handler
	fn   FuncHandler
	recv any
	arg  int64
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now time.Duration
	// queue is a binary min-heap of (at, seq, slot) keys ordered by
	// (at, seq), managed manually so pushes and pops never box events into
	// interfaces.
	queue []heapItem
	// seq is the single monotonic counter: it orders same-timestamp events
	// FIFO and makes the heap comparator a total order (so the pop sequence
	// is independent of internal heap layout, including after compaction).
	seq uint64
	// slotGen and payloads hold the current generation and handler of every
	// event slot. A Timer packs (slot, generation); firing or cancelling
	// bumps the slot's generation, which simultaneously invalidates the
	// Timer and turns any heap entry still referencing it into a tombstone.
	// Slots are recycled through freeSlots, so steady-state scheduling
	// allocates nothing.
	slotGen   []uint32
	payloads  []payload
	freeSlots []uint32
	// live counts scheduled-but-not-yet-fired-or-cancelled events (Pending
	// stays O(1)); dead counts tombstones still sitting in the heap.
	dead    int
	live    int
	rng     *rand.Rand
	stopped bool

	// lastAt is the timestamp of the last event actually executed — unlike
	// now, it never moves forward on an empty run to a horizon, so ClampNow
	// can tell a harmless clock overshoot from a rewind across real work.
	lastAt time.Duration

	// processed counts events executed, for diagnostics and loop guards.
	processed uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64

	// tick, when set, runs every tickStride processed events. It exists for
	// externally-imposed concerns — context cancellation checks and liveness
	// probes — that must not perturb the simulation itself: a tick returning
	// a non-nil error aborts Run with that error, and a tick must never
	// schedule events or draw from the engine's RNG.
	tick       func(e *Engine) error
	tickStride uint64
}

// defaultTickStride balances tick latency against per-event overhead: a
// cancelled context is noticed within a few thousand events (microseconds of
// wall time) while the hot loop pays one counter comparison per event.
const defaultTickStride = 4096

// SetTick installs fn to run every stride processed events (stride <= 0
// selects the default). A non-nil error from fn aborts Run with that error.
// The tick observes the engine (Now, Processed) but must not mutate it;
// cancellation checks and progress probes are the intended uses. A nil fn
// removes the hook.
func (e *Engine) SetTick(stride uint64, fn func(e *Engine) error) {
	if stride == 0 {
		stride = defaultTickStride
	}
	e.tick = fn
	e.tickStride = stride
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Handlers must use
// this source (never the global one) so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetMaxEvents sets an execution cap; Run returns ErrEventLimit when
// exceeded. A limit of 0 disables the cap.
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// ErrEventLimit is returned by Run when the configured event cap is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// Timer identifies a scheduled event so it can be cancelled. It packs the
// event's slot and the slot's generation at scheduling time; either firing
// or cancelling bumps the generation, so a stale Timer can never cancel the
// slot's next occupant. (A single slot would have to fire 2^32 times for a
// held Timer to alias a later generation — beyond any run the 200M-event cap
// admits.)
type Timer uint64

func makeTimer(slot, gen uint32) Timer {
	return Timer(uint64(slot)<<32 | uint64(gen))
}

// less orders the heap by (at, seq); seq is unique, so this is a total order.
func (e *Engine) less(i, j int) bool {
	if e.queue[i].at != e.queue[j].at {
		return e.queue[i].at < e.queue[j].at
	}
	return e.queue[i].seq < e.queue[j].seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			return
		}
		e.queue[i], e.queue[m] = e.queue[m], e.queue[i]
		i = m
	}
}

// popTop removes queue[0].
func (e *Engine) popTop() {
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue = e.queue[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// schedule parks p in a recycled slot and inserts its (at, seq, slot) key
// into the heap.
func (e *Engine) schedule(at time.Duration, p payload) (Timer, error) {
	if at < e.now {
		return 0, fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	e.seq++
	var slot uint32
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		slot = uint32(len(e.slotGen))
		// Generations start at 1 so a zero Timer is never valid.
		e.slotGen = append(e.slotGen, 1)
		e.payloads = append(e.payloads, payload{})
	}
	e.payloads[slot] = p
	e.queue = append(e.queue, heapItem{at: at, seq: e.seq, slot: slot, gen: e.slotGen[slot]})
	e.siftUp(len(e.queue) - 1)
	e.live++
	return makeTimer(slot, e.slotGen[slot]), nil
}

// retire invalidates a fired or cancelled event's slot, releases its
// payload's references, and recycles the slot.
func (e *Engine) retire(slot uint32) {
	e.slotGen[slot]++
	e.payloads[slot] = payload{}
	e.freeSlots = append(e.freeSlots, slot)
	e.live--
}

// ScheduleAt schedules h to run at absolute virtual time at. Scheduling in
// the past (before Now) is an error that would break causality.
func (e *Engine) ScheduleAt(at time.Duration, h Handler) (Timer, error) {
	return e.schedule(at, payload{h: h})
}

// ScheduleAfter schedules h to run d after the current virtual time.
// A negative d is clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, h Handler) Timer {
	if d < 0 {
		d = 0
	}
	t, _ := e.ScheduleAt(e.now+d, h) // never in the past by construction
	return t
}

// ScheduleAtFunc schedules fn(e, recv, arg) at absolute virtual time at.
// It is the zero-allocation variant of ScheduleAt: fn is a static function
// (or method expression), recv carries the state a closure would capture,
// and arg packs any small integers the handler needs. When recv is a pointer
// the call allocates nothing.
func (e *Engine) ScheduleAtFunc(at time.Duration, fn FuncHandler, recv any, arg int64) (Timer, error) {
	return e.schedule(at, payload{fn: fn, recv: recv, arg: arg})
}

// ScheduleAfterFunc schedules fn(e, recv, arg) to run d after the current
// virtual time; a negative d is clamped to zero. See ScheduleAtFunc.
func (e *Engine) ScheduleAfterFunc(d time.Duration, fn FuncHandler, recv any, arg int64) Timer {
	if d < 0 {
		d = 0
	}
	t, _ := e.ScheduleAtFunc(e.now+d, fn, recv, arg) // never in the past
	return t
}

// callThunk adapts a plain func() stored as the receiver. Func values are
// pointer-shaped, so storing one in recv does not allocate.
func callThunk(_ *Engine, recv any, _ int64) { recv.(func())() }

// ScheduleAtCall schedules f() at absolute virtual time at, without the
// wrapper-closure allocation ScheduleAt(at, func(*Engine){ f() }) would pay.
// f itself may of course be a closure; only the engine side is free.
func (e *Engine) ScheduleAtCall(at time.Duration, f func()) (Timer, error) {
	return e.schedule(at, payload{fn: callThunk, recv: f})
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op and reports false.
// The cancelled event stays in the heap as a tombstone and is skipped (or
// compacted away) lazily, so Cancel is O(1).
func (e *Engine) Cancel(t Timer) bool {
	slot := uint32(uint64(t) >> 32)
	gen := uint32(uint64(t))
	if int(slot) >= len(e.slotGen) || e.slotGen[slot] != gen {
		return false
	}
	e.retire(slot)
	e.dead++
	e.maybeCompact()
	return true
}

// compactMinQueue is the heap size below which compaction is never worth it.
const compactMinQueue = 64

// maybeCompact rebuilds the heap without its tombstones once they make up
// more than half of it, so unbounded cancel/reschedule churn (a long-horizon
// Every loop being cancelled and re-armed repeatedly) cannot grow memory
// without bound. The comparator is a total order, so rebuilding cannot
// change the pop sequence.
func (e *Engine) maybeCompact() {
	if len(e.queue) < compactMinQueue || e.dead*2 <= len(e.queue) {
		return
	}
	kept := e.queue[:0]
	for _, it := range e.queue {
		if e.slotGen[it.slot] == it.gen {
			kept = append(kept, it)
		}
	}
	e.queue = kept
	e.dead = 0
	for i := len(e.queue)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Stop makes the current Run return after the current handler completes.
// Calling Stop before Run makes that Run return immediately, before
// processing any event — a cancellation that races engine start is never
// lost. Each Run (or RunUntil) consumes the pending stop on return, so a
// stopped engine can be resumed by calling Run again.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live (not cancelled) scheduled events.
func (e *Engine) Pending() int { return e.live }

// queueLen reports the heap's physical size including tombstones; tests use
// it to assert that cancel churn stays bounded.
func (e *Engine) queueLen() int { return len(e.queue) }

// PeekTime reports the timestamp of the earliest live scheduled event,
// skimming any cancellation tombstones off the top of the heap on the way.
// ok is false when no live events remain. The windowed (sharded) executor
// uses it to pick the next synchronization window's start.
func (e *Engine) PeekTime() (at time.Duration, ok bool) {
	for len(e.queue) > 0 {
		top := &e.queue[0]
		if e.slotGen[top.slot] == top.gen {
			return top.at, true
		}
		e.popTop()
		e.dead--
	}
	return 0, false
}

// ClampNow lowers the engine's clock to t after a run overshot it. It exists
// for windowed executors whose final window boundary may exceed the requested
// horizon (the sharded engine's horizon+1ns clamp): after such a run the
// clock reads past the horizon even though no event beyond it executed, and
// ClampNow pulls it back so every cell reports the same end time.
//
// A t at or after the current clock is a no-op. A t before the last executed
// event's timestamp is an error: rewinding across real work would fabricate
// an inconsistent timeline.
func (e *Engine) ClampNow(t time.Duration) error {
	if t >= e.now {
		return nil
	}
	if t < e.lastAt {
		return fmt.Errorf("sim: ClampNow(%v) before last executed event at %v", t, e.lastAt)
	}
	e.now = t
	return nil
}

// Run executes events in timestamp order until the queue drains, the horizon
// is passed, Stop is called, or the event cap is hit. A horizon of 0 means
// run until the queue is empty. Events scheduled exactly at the horizon
// still fire; later ones remain queued.
//
// When the event cap is hit, Run returns ErrEventLimit before consuming the
// limiting event: Processed() equals the cap, Now() is the timestamp of the
// last event that actually ran, and the unrun event is still Pending — the
// post-mortem state is consistent.
func (e *Engine) Run(horizon time.Duration) error {
	return e.run(horizon, runInclusive)
}

// RunUntil executes events with timestamps strictly before end, then
// advances the clock to end. It is the window-execution primitive of the
// sharded engine: a conservative synchronizer runs each shard up to the
// window boundary, exchanges cross-shard events, and repeats. Stop, tick,
// and the event cap behave exactly as in Run.
func (e *Engine) RunUntil(end time.Duration) error {
	if end < e.now {
		return fmt.Errorf("sim: RunUntil(%v) before now %v", end, e.now)
	}
	return e.run(end, runExclusive)
}

// run bounds for the shared event loop: Run fires events at the limit
// (horizon inclusive, 0 = none), RunUntil stops strictly before it.
type runBound int

const (
	runInclusive runBound = iota
	runExclusive
)

func (e *Engine) run(limit time.Duration, bound runBound) error {
	// A pre-armed Stop (called before Run) halts immediately; any stop is
	// consumed when the run returns so a later Run can resume.
	defer func() { e.stopped = false }()
	for len(e.queue) > 0 && !e.stopped {
		top := &e.queue[0]
		if e.slotGen[top.slot] != top.gen {
			// Tombstone of a cancelled event: discard and move on.
			e.popTop()
			e.dead--
			continue
		}
		if bound == runInclusive {
			if limit > 0 && top.at > limit {
				// Advance the clock to the horizon so callers observe a
				// consistent end time.
				e.now = limit
				return nil
			}
		} else if top.at >= limit {
			break
		}
		if e.maxEvents > 0 && e.processed >= e.maxEvents {
			// Cap check before the event is consumed: the limiting event
			// stays queued and the clock stays at the last-run event.
			return ErrEventLimit
		}
		it := *top // copy out: the handler may grow or reorder the heap
		p := e.payloads[it.slot]
		e.popTop()
		e.retire(it.slot)
		e.now = it.at
		e.lastAt = it.at
		e.processed++
		if e.tick != nil && e.processed%e.tickStride == 0 {
			if err := e.tick(e); err != nil {
				return err
			}
		}
		if p.h != nil {
			p.h(e)
		} else {
			p.fn(e, p.recv, p.arg)
		}
	}
	if limit > 0 && e.now < limit {
		e.now = limit
	}
	return nil
}

// Every schedules h to run now+d, then every d thereafter, until the
// returned stop function is called. The period must be positive. The loop
// re-arms through the engine's recycled event storage, so a long-running
// periodic loop allocates only its one closure up front.
func (e *Engine) Every(d time.Duration, h Handler) (stop func(), err error) {
	if d <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", d)
	}
	var (
		cancelled bool
		cur       Timer
	)
	var tick Handler
	tick = func(en *Engine) {
		if cancelled {
			return
		}
		h(en)
		if cancelled {
			return
		}
		cur = en.ScheduleAfter(d, tick)
	}
	cur = e.ScheduleAfter(d, tick)
	return func() {
		cancelled = true
		e.Cancel(cur)
	}, nil
}
