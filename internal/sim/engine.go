// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is virtual: a simulation run consumes no wall-clock time beyond the
// CPU needed to execute event handlers. Events scheduled for the same
// timestamp fire in scheduling (FIFO) order, which makes runs with the same
// seed bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Handler is the callback executed when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled handler. seq breaks timestamp ties FIFO.
type event struct {
	at      time.Duration
	seq     uint64
	handler Handler
	id      uint64
	dead    bool
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	nextID  uint64
	live    map[uint64]*event
	rng     *rand.Rand
	stopped bool

	// processed counts events executed, for diagnostics and loop guards.
	processed uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64

	// tick, when set, runs every tickStride processed events. It exists for
	// externally-imposed concerns — context cancellation checks and liveness
	// probes — that must not perturb the simulation itself: a tick returning
	// a non-nil error aborts Run with that error, and a tick must never
	// schedule events or draw from the engine's RNG.
	tick       func(e *Engine) error
	tickStride uint64
}

// defaultTickStride balances tick latency against per-event overhead: a
// cancelled context is noticed within a few thousand events (microseconds of
// wall time) while the hot loop pays one counter comparison per event.
const defaultTickStride = 4096

// SetTick installs fn to run every stride processed events (stride <= 0
// selects the default). A non-nil error from fn aborts Run with that error.
// The tick observes the engine (Now, Processed) but must not mutate it;
// cancellation checks and progress probes are the intended uses. A nil fn
// removes the hook.
func (e *Engine) SetTick(stride uint64, fn func(e *Engine) error) {
	if stride == 0 {
		stride = defaultTickStride
	}
	e.tick = fn
	e.tickStride = stride
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		live: make(map[uint64]*event),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Handlers must use
// this source (never the global one) so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetMaxEvents sets an execution cap; Run returns ErrEventLimit when
// exceeded. A limit of 0 disables the cap.
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// ErrEventLimit is returned by Run when the configured event cap is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// Timer identifies a scheduled event so it can be cancelled.
type Timer uint64

// ScheduleAt schedules h to run at absolute virtual time at. Scheduling in
// the past (before Now) is an error that would break causality.
func (e *Engine) ScheduleAt(at time.Duration, h Handler) (Timer, error) {
	if at < e.now {
		return 0, fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	e.nextSeq++
	e.nextID++
	ev := &event{at: at, seq: e.nextSeq, handler: h, id: e.nextID}
	heap.Push(&e.queue, ev)
	e.live[ev.id] = ev
	return Timer(ev.id), nil
}

// ScheduleAfter schedules h to run d after the current virtual time.
// A negative d is clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, h Handler) Timer {
	if d < 0 {
		d = 0
	}
	t, _ := e.ScheduleAt(e.now+d, h) // never in the past by construction
	return t
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op and reports false.
func (e *Engine) Cancel(t Timer) bool {
	ev, ok := e.live[uint64(t)]
	if !ok {
		return false
	}
	ev.dead = true
	delete(e.live, uint64(t))
	return true
}

// Stop makes Run return after the current handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live (not cancelled) scheduled events.
func (e *Engine) Pending() int { return len(e.live) }

// Run executes events in timestamp order until the queue drains, the horizon
// is passed, Stop is called, or the event cap is hit. A horizon of 0 means
// run until the queue is empty. Events scheduled exactly at the horizon
// still fire; later ones remain queued.
func (e *Engine) Run(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if horizon > 0 && ev.at > horizon {
			// Advance the clock to the horizon so callers observe a
			// consistent end time.
			e.now = horizon
			return nil
		}
		heap.Pop(&e.queue)
		delete(e.live, ev.id)
		e.now = ev.at
		e.processed++
		if e.maxEvents > 0 && e.processed > e.maxEvents {
			return ErrEventLimit
		}
		if e.tick != nil && e.processed%e.tickStride == 0 {
			if err := e.tick(e); err != nil {
				return err
			}
		}
		ev.handler(e)
	}
	if horizon > 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Every schedules h to run now+d, then every d thereafter, until the
// returned stop function is called. The period must be positive.
func (e *Engine) Every(d time.Duration, h Handler) (stop func(), err error) {
	if d <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", d)
	}
	var (
		cancelled bool
		cur       Timer
	)
	var tick Handler
	tick = func(en *Engine) {
		if cancelled {
			return
		}
		h(en)
		if cancelled {
			return
		}
		cur = en.ScheduleAfter(d, tick)
	}
	cur = e.ScheduleAfter(d, tick)
	return func() {
		cancelled = true
		e.Cancel(cur)
	}, nil
}
