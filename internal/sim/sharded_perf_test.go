package sim

import (
	"testing"
	"time"
)

// shardedRing wires a cross-cell ring workload onto sh: every active cell
// forwards one send per hop to its neighbor, lookahead apart. The returned
// step runs one horizon chunk; calling it repeatedly keeps the ring going
// with no per-call setup (closures are built once), which is what the
// steady-state alloc test and the barrier benchmarks need.
func shardedRing(sh *Sharded, activeCells int, chunk time.Duration) (step func() error) {
	cells := sh.Cells()
	lookahead := sh.Lookahead()
	fns := make([]func(), cells)
	for i := 0; i < activeCells; i++ {
		src := i % cells
		dst := (src + 1) % activeCells % cells
		fns[src] = func() {
			at := sh.Cell(src).Now() + lookahead
			sh.Send(src, dst, at, fns[dst]) //nolint:errcheck // surfaced by Run
		}
	}
	for i := 0; i < activeCells; i++ {
		i := i
		sh.Cell(i).ScheduleAfter(time.Duration(i+1)*time.Millisecond, func(*Engine) { fns[i]() })
	}
	var horizon time.Duration
	return func() error {
		horizon += chunk
		return sh.Run(horizon)
	}
}

// TestShardedSteadyStateBarrierAllocFree pins the zero-alloc barrier: once
// the merge buffer, outboxes, and cell heaps have warmed up, a full
// windows-and-barriers Run cycle allocates nothing. The single-worker
// coordinator path is the one measured — the pooled path additionally pays
// O(workers) goroutine launches per Run (not per window), which
// testing.AllocsPerRun would count against every iteration.
func TestShardedSteadyStateBarrierAllocFree(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			sh, err := NewSharded(ShardedConfig{
				Seed: 7, Cells: 4, Lookahead: time.Millisecond, Workers: 1,
				AdaptiveWindow: adaptive,
			})
			if err != nil {
				t.Fatal(err)
			}
			step := shardedRing(sh, 4, 50*time.Millisecond)
			for i := 0; i < 8; i++ { // warm up buffers, slots, and outboxes
				if err := step(); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := step(); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state sharded Run costs %v allocs/op, want 0", avg)
			}
		})
	}
}

// benchBarrier measures the windows-and-barriers machinery itself: the ring
// events do nothing but forward, so ns/op is dominated by window planning,
// dispatch, and flush. dense keeps every cell active each window; sparse
// leaves most cells idle so the run is all barrier overhead over one live
// chain — the regime idle-cell skipping and adaptive windowing target.
func benchBarrier(b *testing.B, cells, activeCells, workers int, adaptive bool) {
	sh, err := NewSharded(ShardedConfig{
		Seed: 7, Cells: cells, Lookahead: time.Millisecond, Workers: workers,
		AdaptiveWindow: adaptive,
	})
	if err != nil {
		b.Fatal(err)
	}
	step := shardedRing(sh, activeCells, 100*time.Millisecond)
	for i := 0; i < 4; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sh.Processed())/float64(b.N), "events/op")
}

func BenchmarkShardedBarrier(b *testing.B) {
	b.Run("dense", func(b *testing.B) { benchBarrier(b, 8, 8, 1, false) })
	b.Run("dense-adaptive", func(b *testing.B) { benchBarrier(b, 8, 8, 1, true) })
	b.Run("sparse", func(b *testing.B) { benchBarrier(b, 8, 1, 1, false) })
	b.Run("sparse-adaptive", func(b *testing.B) { benchBarrier(b, 8, 1, 1, true) })
}
