// Conservative parallel execution: a Sharded engine runs several independent
// Engines ("cells"), one per topology partition, under a time-window barrier.
//
// The synchronizer is the classic conservative (CMB-style) scheme specialized
// to a static lookahead: every cross-cell interaction has a known minimum
// latency L (the minimum network propagation delay between endpoints in
// different cells, computed at partition time), so an event executing at or
// after time m can only schedule work in another cell at or after m+L. Each
// round computes a per-cell window boundary from the cells' pending event
// times, runs every cell that has work inside its boundary, and only then
// exchanges the cross-cell sends buffered during the window.
//
// Three properties keep the barrier cheap without giving up determinism:
//
//   - Idle-cell skipping: a cell whose next event lies at or beyond its
//     boundary is not dispatched at all — its clock lags and is advanced
//     lazily (deliveries carry their own timestamps; the final horizon pass
//     catches the clock up), so a sparse window costs O(active cells).
//
//   - Adaptive windowing (opt-in via ShardedConfig.AdaptiveWindow): the
//     boundary for cell j is the tightest bound derivable from the pending
//     event times alone, B_j = min(min_{k≠j} t_k, t_j+L) + L, which fuses up
//     to two static windows into one when the earliest cell runs ahead of
//     the rest. The bound is a pure function of the per-cell event streams
//     observed at the barrier — never of worker scheduling — so results
//     remain bit-identical at any worker count.
//
//   - Zero-alloc barriers: the merge buffer, active list, and per-cell bound
//     slices persist across windows, the (at, src, seq) sort is skipped when
//     the concatenated outboxes are already ordered, and multi-worker runs
//     park a persistent worker pool on an epoch counter instead of paying
//     2×cells channel operations per window.
//
// Determinism does not depend on how many worker goroutines execute the
// window: cells never share mutable state mid-window (each owns its heap, its
// RNG, and its outbox), and the buffered cross-cell sends are merged in a
// total order — (timestamp, source cell, per-source sequence) — by a single
// goroutine at the barrier. Results are a pure function of
// (seed, partition, windowing mode); the worker count only changes wall-clock
// time.
package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedConfig configures a Sharded engine.
type ShardedConfig struct {
	// Seed is the base seed; each cell's RNG is seeded with
	// CellSeed(Seed, cell) so cells draw independent, reproducible streams.
	Seed int64
	// Cells is the number of partition cells (independent event heaps).
	// The partition is part of the simulation's identity: changing Cells
	// changes results; changing Workers never does.
	Cells int
	// Lookahead is the conservative window length: the minimum virtual-time
	// latency of any cross-cell interaction. Must be positive. A cross-cell
	// send scheduled to arrive sooner than the destination cell's current
	// window boundary is a lookahead violation and aborts the run.
	Lookahead time.Duration
	// Workers bounds the goroutines executing cells within a window; values
	// outside [1, Cells] are clamped.
	Workers int
	// MaxEventsPerCell caps each cell's executed events (0 = no cap).
	MaxEventsPerCell uint64
	// AdaptiveWindow fuses windows using per-cell boundaries computed from
	// the pending event times (see the package comment). Results stay
	// invariant across worker counts in either mode, but the two modes are
	// distinct simulations: window fusion changes which cross-cell sends
	// share a barrier batch, which can reorder same-timestamp arrivals from
	// different source cells. Pick a mode per run, not per worker count.
	AdaptiveWindow bool
}

// ErrLookaheadViolation reports a cross-cell send scheduled to arrive before
// the destination cell's window boundary — the model's minimum cross-cell
// latency (the configured Lookahead) was overstated.
var ErrLookaheadViolation = errors.New("sim: cross-cell send inside the conservative window")

// crossEvent is one buffered cross-cell send, keyed for the deterministic
// barrier merge.
type crossEvent struct {
	at  time.Duration
	src int
	seq uint64
	dst int
	fn  func()
}

// compareCross orders buffered sends by (at, src, seq) — a total order, so
// the merged delivery sequence is independent of outbox concatenation order.
func compareCross(a, b crossEvent) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.src != b.src:
		return a.src - b.src
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// infTime marks "no pending event" in the per-cell peek table.
const infTime = time.Duration(math.MaxInt64)

// Sharded executes a fixed partition of cells under a conservative
// time-window barrier. Construct with NewSharded, populate the cells (during
// setup, or from events running inside them), then call Run once.
type Sharded struct {
	cells     []*Engine
	lookahead time.Duration
	workers   int
	adaptive  bool

	// Per-source-cell outboxes and sequence counters. During a window each
	// is touched only by the goroutine running that cell, so no locking is
	// needed; the pool's epoch handshake provides the happens-before edges.
	outbox  [][]crossEvent
	outSeq  []uint64
	sendErr []error

	// Persistent per-window scratch, written by the coordinator between
	// windows and read by workers inside one: peek holds each cell's next
	// event time (infTime when empty), cellEnd each cell's window boundary
	// (read by Send for lookahead validation), active the indices of cells
	// dispatched this window, errs each dispatched cell's RunUntil error.
	peek     []time.Duration
	cellEnd  []time.Duration
	active   []int
	errs     []error
	mergeBuf []crossEvent

	// hook, when set, runs at every window barrier (see SetBarrierHook).
	hook func(next time.Duration) error

	// processedSnap is the event-count snapshot published by the coordinator
	// at each barrier and at the end of Run, so Processed is safe to read
	// from other goroutines while a run is in flight.
	processedSnap atomic.Uint64

	// Worker pool state. Workers park on cond waiting for epoch to advance,
	// drain the active list through the lock-free nextIdx cursor, then
	// decrement pending and signal done. All fields except nextIdx are
	// guarded by mu; the mutex hand-offs give workers a happens-before edge
	// covering the coordinator's writes to peek/cellEnd/active/outbox.
	mu       sync.Mutex
	cond     *sync.Cond
	done     *sync.Cond
	epoch    uint64
	pending  int
	poolStop bool
	nextIdx  atomic.Int64
}

// CellSeed derives cell's deterministic RNG seed from the base seed
// (splitmix64 over the pair, so nearby seeds and cell indices decorrelate).
func CellSeed(seed int64, cell int) int64 {
	z := uint64(seed) + uint64(cell+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewSharded builds a Sharded engine with cfg.Cells fresh cells.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs >= 1 cell, got %d", cfg.Cells)
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v", cfg.Lookahead)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Cells {
		workers = cfg.Cells
	}
	sh := &Sharded{
		cells:     make([]*Engine, cfg.Cells),
		lookahead: cfg.Lookahead,
		workers:   workers,
		adaptive:  cfg.AdaptiveWindow,
		outbox:    make([][]crossEvent, cfg.Cells),
		outSeq:    make([]uint64, cfg.Cells),
		sendErr:   make([]error, cfg.Cells),
		peek:      make([]time.Duration, cfg.Cells),
		cellEnd:   make([]time.Duration, cfg.Cells),
		active:    make([]int, 0, cfg.Cells),
		errs:      make([]error, cfg.Cells),
	}
	sh.cond = sync.NewCond(&sh.mu)
	sh.done = sync.NewCond(&sh.mu)
	for i := range sh.cells {
		sh.cells[i] = NewEngine(CellSeed(cfg.Seed, i))
		sh.cells[i].SetMaxEvents(cfg.MaxEventsPerCell)
	}
	return sh, nil
}

// Cell returns cell i's engine, for setup-time scheduling and for handlers
// running inside that cell. Scheduling on another cell's engine from a
// running handler is a data race; cross-cell work must go through Send.
func (sh *Sharded) Cell(i int) *Engine { return sh.cells[i] }

// Cells reports the number of partition cells.
func (sh *Sharded) Cells() int { return len(sh.cells) }

// Lookahead reports the conservative window length.
func (sh *Sharded) Lookahead() time.Duration { return sh.lookahead }

// Workers reports the clamped worker count.
func (sh *Sharded) Workers() int { return sh.workers }

// Processed reports executed events across cells. It is safe to call from
// any goroutine, including while Run is in flight: the value is the
// coordinator's snapshot from the most recent window barrier (events of the
// window currently executing are not yet counted). After Run returns the
// count is exact.
func (sh *Sharded) Processed() uint64 { return sh.processedSnap.Load() }

// snapshotProcessed publishes the current cross-cell event count. Called
// only by the coordinator between windows, when cells are quiescent.
func (sh *Sharded) snapshotProcessed() {
	var n uint64
	for _, c := range sh.cells {
		n += c.Processed()
	}
	sh.processedSnap.Store(n)
}

// SetBarrierHook installs fn to run at every window barrier: after the
// previous window's buffered sends have been delivered and before the next
// window's cells are dispatched. next is the upcoming window's start — the
// globally earliest pending event time, up to which all simulation state is
// final. The hook runs on the coordinator goroutine while every cell is
// quiescent, so it may read cell state freely, but it must not schedule
// events, draw from cell RNGs, or otherwise mutate cells. A non-nil error
// aborts Run with that error. A nil fn removes the hook.
func (sh *Sharded) SetBarrierHook(fn func(next time.Duration) error) { sh.hook = fn }

// Send schedules fn to run in cell dst at absolute virtual time at. It must
// be called from the goroutine currently executing cell src (or from
// single-threaded setup before Run). A same-cell send schedules directly; a
// cross-cell send is buffered in src's outbox and delivered at the next
// window barrier, so at must not precede the destination cell's window
// boundary — that would mean the configured lookahead overstated the model's
// minimum cross-cell latency. The violation is returned and also aborts Run
// at the barrier, so fire-and-forget callers are still safe.
func (sh *Sharded) Send(src, dst int, at time.Duration, fn func()) error {
	if src == dst {
		_, err := sh.cells[dst].ScheduleAtCall(at, fn)
		return err
	}
	if at < sh.cellEnd[dst] {
		err := fmt.Errorf("%w: cell %d -> %d at %v, cell %d's window ends %v",
			ErrLookaheadViolation, src, dst, at, dst, sh.cellEnd[dst])
		if sh.sendErr[src] == nil {
			sh.sendErr[src] = err
		}
		return err
	}
	sh.outSeq[src]++
	sh.outbox[src] = append(sh.outbox[src], crossEvent{
		at: at, src: src, seq: sh.outSeq[src], dst: dst, fn: fn,
	})
	return nil
}

// flush delivers every buffered cross-cell event in (at, src, seq) order.
// Single-threaded: runs only between windows. Insertion order is total and
// deterministic, so each destination engine assigns the same FIFO sequence
// numbers regardless of worker count or goroutine interleaving. The merge
// buffer persists across barriers and the sort is skipped when the
// concatenated outboxes are already ordered (the common case: sources fill
// their outboxes in timestamp order), so a steady-state flush allocates
// nothing.
func (sh *Sharded) flush() error {
	n := 0
	for _, box := range sh.outbox {
		n += len(box)
	}
	if n == 0 {
		return nil
	}
	all := sh.mergeBuf[:0]
	for _, box := range sh.outbox {
		all = append(all, box...)
	}
	for i := range sh.outbox {
		sh.outbox[i] = sh.outbox[i][:0]
	}
	if !slices.IsSortedFunc(all, compareCross) {
		slices.SortFunc(all, compareCross)
	}
	var err error
	for _, ev := range all {
		if _, serr := sh.cells[ev.dst].ScheduleAtCall(ev.at, ev.fn); serr != nil {
			err = serr
			break
		}
	}
	clear(all) // release the fn closures; the spine is reused next barrier
	sh.mergeBuf = all[:0]
	return err
}

// planWindow computes the next window from the cells' pending event times:
// it fills peek, cellEnd, and active, and returns the window's start (the
// globally earliest pending event). ok is false when no cell holds an event
// at or before the horizon, i.e. the run is complete.
//
// The static boundary is m+L for every cell, where m is the window start and
// L the lookahead: an event executing at u >= m can only produce a
// cross-cell arrival at u+L >= m+L. In adaptive mode the boundary for cell j
// is instead the tightest bound derivable from the peeks alone,
//
//	B_j = min( min_{k!=j} t_k, t_j + L ) + L
//
// — the earliest possible arrival into j is either a direct send from the
// earliest other cell (t_k + L) or an echo of j's own earliest send routed
// back through a neighbor (t_j + 2L). Every cell that can execute an event
// strictly before its boundary is dispatched; the rest are skipped and their
// clocks lag until a later window (or the final horizon pass) advances them.
func (sh *Sharded) planWindow(horizon time.Duration) (start time.Duration, ok bool) {
	m, m2 := infTime, infTime
	mIdx := -1
	for i, c := range sh.cells {
		t, tok := c.PeekTime()
		if !tok {
			sh.peek[i] = infTime
			continue
		}
		sh.peek[i] = t
		if t < m {
			m2 = m
			m, mIdx = t, i
		} else if t < m2 {
			m2 = t
		}
	}
	if mIdx < 0 || (horizon > 0 && m > horizon) {
		return 0, false
	}
	base := m + sh.lookahead
	if horizon > 0 && base > horizon {
		base = horizon + 1
	}
	sh.active = sh.active[:0]
	for i := range sh.cells {
		end := base
		if sh.adaptive {
			// min over the other cells' peeks: m unless i is the argmin.
			other := m
			if i == mIdx {
				other = m2
			}
			if sh.peek[i] < infTime {
				if own := sh.peek[i] + sh.lookahead; own < other {
					other = own
				}
			}
			if other > m { // strictly later than the static bound's base
				end = other + sh.lookahead
				if horizon > 0 && end > horizon {
					end = horizon + 1
				}
			}
		}
		sh.cellEnd[i] = end
		if sh.peek[i] < end {
			sh.active = append(sh.active, i)
		}
	}
	return m, true
}

// runWindow executes every active cell up to its boundary — inline when a
// single worker (or a single active cell) makes goroutines pointless,
// through the parked worker pool otherwise — then folds per-cell run errors
// and buffered lookahead violations into the deterministic lowest-cell-index
// error.
func (sh *Sharded) runWindow() error {
	if sh.workers == 1 || len(sh.active) == 1 {
		for _, i := range sh.active {
			sh.errs[i] = sh.cells[i].RunUntil(sh.cellEnd[i])
		}
	} else {
		sh.dispatch()
	}
	for i := range sh.cells {
		err := sh.errs[i]
		if err == nil {
			err = sh.sendErr[i]
		}
		if err != nil {
			return fmt.Errorf("sim: cell %d: %w", i, err)
		}
	}
	return nil
}

// dispatch hands the active list to the parked worker pool and blocks until
// every cell has run. The epoch bump under the mutex publishes the
// coordinator's writes (peek, cellEnd, active, delivered events) to the
// workers; the final pending decrement publishes the workers' writes back.
func (sh *Sharded) dispatch() {
	sh.mu.Lock()
	sh.nextIdx.Store(0)
	sh.pending = sh.workers
	sh.epoch++
	sh.cond.Broadcast()
	for sh.pending > 0 {
		sh.done.Wait()
	}
	sh.mu.Unlock()
}

// worker is one pool goroutine: it parks on the condition variable until the
// coordinator opens a new epoch, claims active cells through the shared
// atomic cursor, runs each to its boundary, and reports completion. It exits
// when poolStop is set. epoch is the pool-start epoch, captured before any
// window can be dispatched, so a worker that is slow to start still sees the
// first dispatch as a fresh epoch.
func (sh *Sharded) worker(epoch uint64) {
	sh.mu.Lock()
	for {
		for sh.epoch == epoch && !sh.poolStop {
			sh.cond.Wait()
		}
		if sh.poolStop {
			sh.mu.Unlock()
			return
		}
		epoch = sh.epoch
		sh.mu.Unlock()
		for {
			i := int(sh.nextIdx.Add(1)) - 1
			if i >= len(sh.active) {
				break
			}
			cell := sh.active[i]
			sh.errs[cell] = sh.cells[cell].RunUntil(sh.cellEnd[cell])
		}
		sh.mu.Lock()
		sh.pending--
		if sh.pending == 0 {
			sh.done.Signal()
		}
	}
}

// startPool launches the persistent worker pool for one Run and returns its
// shutdown function. The pool allocates O(workers) once per Run, not per
// window.
func (sh *Sharded) startPool() (stop func()) {
	sh.mu.Lock()
	sh.poolStop = false
	base := sh.epoch
	sh.mu.Unlock()
	for w := 0; w < sh.workers; w++ {
		go sh.worker(base)
	}
	return func() {
		sh.mu.Lock()
		sh.poolStop = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// Run executes all cells to completion (or to the horizon, inclusive, when
// horizon > 0), window by window. On return every cell's clock is at the
// horizon (when one is set) or at its last event. Run reports the first
// error by cell index — deterministic regardless of which worker hit it
// first.
func (sh *Sharded) Run(horizon time.Duration) error {
	defer sh.snapshotProcessed()
	for i := range sh.errs {
		sh.errs[i] = nil
	}
	if sh.workers > 1 {
		defer sh.startPool()()
	}
	for {
		if err := sh.flush(); err != nil {
			return err
		}
		start, ok := sh.planWindow(horizon)
		if !ok {
			break
		}
		if sh.hook != nil {
			if err := sh.hook(start); err != nil {
				return err
			}
		}
		if err := sh.runWindow(); err != nil {
			return err
		}
		sh.snapshotProcessed()
	}
	if err := sh.flush(); err != nil { // nothing pending unless the horizon cut the run short
		return err
	}
	if horizon > 0 {
		for _, c := range sh.cells {
			if c.Now() < horizon {
				// An idle-skipped (or simply drained) cell lags; replay its
				// empty tail so the clock lands exactly on the horizon.
				if err := c.Run(horizon); err != nil {
					return err
				}
			} else if err := c.ClampNow(horizon); err != nil {
				// The final window's +1ns clamp overshot; timestamps are
				// integral, so no event sits between horizon and now.
				return err
			}
		}
	}
	return nil
}
