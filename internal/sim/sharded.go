// Conservative parallel execution: a Sharded engine runs several independent
// Engines ("cells"), one per topology partition, under a time-window barrier.
//
// The synchronizer is the classic conservative (CMB-style) scheme specialized
// to a static lookahead: every cross-cell interaction has a known minimum
// latency L (the minimum network propagation delay between endpoints in
// different cells, computed at partition time), so an event executing at or
// after time m can only schedule work in another cell at or after m+L. Each
// round therefore picks the globally earliest pending event time m, runs every
// cell independently up to the window boundary m+L, and only then exchanges
// the cross-cell sends buffered during the window.
//
// Determinism does not depend on how many worker goroutines execute the
// window: cells never share mutable state mid-window (each owns its heap, its
// RNG, and its outbox), and the buffered cross-cell sends are merged in a
// total order — (timestamp, source cell, per-source sequence) — by a single
// goroutine at the barrier. Results are a pure function of (seed, partition);
// the worker count only changes wall-clock time.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ShardedConfig configures a Sharded engine.
type ShardedConfig struct {
	// Seed is the base seed; each cell's RNG is seeded with
	// CellSeed(Seed, cell) so cells draw independent, reproducible streams.
	Seed int64
	// Cells is the number of partition cells (independent event heaps).
	// The partition is part of the simulation's identity: changing Cells
	// changes results; changing Workers never does.
	Cells int
	// Lookahead is the conservative window length: the minimum virtual-time
	// latency of any cross-cell interaction. Must be positive. A cross-cell
	// send scheduled to arrive sooner than the current window's end is a
	// lookahead violation and aborts the run.
	Lookahead time.Duration
	// Workers bounds the goroutines executing cells within a window; values
	// outside [1, Cells] are clamped.
	Workers int
	// MaxEventsPerCell caps each cell's executed events (0 = no cap).
	MaxEventsPerCell uint64
}

// ErrLookaheadViolation reports a cross-cell send scheduled to arrive before
// the end of the window in which it was issued — the model's minimum
// cross-cell latency (the configured Lookahead) was overstated.
var ErrLookaheadViolation = errors.New("sim: cross-cell send inside the conservative window")

// crossEvent is one buffered cross-cell send, keyed for the deterministic
// barrier merge.
type crossEvent struct {
	at  time.Duration
	src int
	seq uint64
	dst int
	fn  func()
}

// Sharded executes a fixed partition of cells under a conservative
// time-window barrier. Construct with NewSharded, populate the cells (during
// setup, or from events running inside them), then call Run once.
type Sharded struct {
	cells     []*Engine
	lookahead time.Duration
	workers   int

	// Per-source-cell outboxes and sequence counters. During a window each
	// is touched only by the goroutine running that cell, so no locking is
	// needed; the barrier's WaitGroup provides the happens-before edges.
	outbox  [][]crossEvent
	outSeq  []uint64
	sendErr []error

	// windowEnd is the current window's boundary, written by the
	// coordinator before workers start and read by Send for lookahead
	// validation.
	windowEnd time.Duration
}

// CellSeed derives cell's deterministic RNG seed from the base seed
// (splitmix64 over the pair, so nearby seeds and cell indices decorrelate).
func CellSeed(seed int64, cell int) int64 {
	z := uint64(seed) + uint64(cell+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewSharded builds a Sharded engine with cfg.Cells fresh cells.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs >= 1 cell, got %d", cfg.Cells)
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v", cfg.Lookahead)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Cells {
		workers = cfg.Cells
	}
	sh := &Sharded{
		cells:     make([]*Engine, cfg.Cells),
		lookahead: cfg.Lookahead,
		workers:   workers,
		outbox:    make([][]crossEvent, cfg.Cells),
		outSeq:    make([]uint64, cfg.Cells),
		sendErr:   make([]error, cfg.Cells),
	}
	for i := range sh.cells {
		sh.cells[i] = NewEngine(CellSeed(cfg.Seed, i))
		sh.cells[i].SetMaxEvents(cfg.MaxEventsPerCell)
	}
	return sh, nil
}

// Cell returns cell i's engine, for setup-time scheduling and for handlers
// running inside that cell. Scheduling on another cell's engine from a
// running handler is a data race; cross-cell work must go through Send.
func (sh *Sharded) Cell(i int) *Engine { return sh.cells[i] }

// Cells reports the number of partition cells.
func (sh *Sharded) Cells() int { return len(sh.cells) }

// Lookahead reports the conservative window length.
func (sh *Sharded) Lookahead() time.Duration { return sh.lookahead }

// Workers reports the clamped worker count.
func (sh *Sharded) Workers() int { return sh.workers }

// Processed sums executed events across cells.
func (sh *Sharded) Processed() uint64 {
	var n uint64
	for _, c := range sh.cells {
		n += c.Processed()
	}
	return n
}

// Send schedules fn to run in cell dst at absolute virtual time at. It must
// be called from the goroutine currently executing cell src (or from
// single-threaded setup before Run). A same-cell send schedules directly; a
// cross-cell send is buffered in src's outbox and delivered at the next
// window barrier, so at must not precede the current window's end — that
// would mean the configured lookahead overstated the model's minimum
// cross-cell latency. The violation is returned and also aborts Run at the
// barrier, so fire-and-forget callers are still safe.
func (sh *Sharded) Send(src, dst int, at time.Duration, fn func()) error {
	if src == dst {
		_, err := sh.cells[dst].ScheduleAtCall(at, fn)
		return err
	}
	if at < sh.windowEnd {
		err := fmt.Errorf("%w: cell %d -> %d at %v, window ends %v",
			ErrLookaheadViolation, src, dst, at, sh.windowEnd)
		if sh.sendErr[src] == nil {
			sh.sendErr[src] = err
		}
		return err
	}
	sh.outSeq[src]++
	sh.outbox[src] = append(sh.outbox[src], crossEvent{
		at: at, src: src, seq: sh.outSeq[src], dst: dst, fn: fn,
	})
	return nil
}

// flush delivers every buffered cross-cell event in (at, src, seq) order.
// Single-threaded: runs only between windows. Insertion order is total and
// deterministic, so each destination engine assigns the same FIFO sequence
// numbers regardless of worker count or goroutine interleaving.
func (sh *Sharded) flush() error {
	n := 0
	for _, box := range sh.outbox {
		n += len(box)
	}
	if n == 0 {
		return nil
	}
	all := make([]crossEvent, 0, n)
	for _, box := range sh.outbox {
		all = append(all, box...)
	}
	for i := range sh.outbox {
		sh.outbox[i] = sh.outbox[i][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].src != all[j].src {
			return all[i].src < all[j].src
		}
		return all[i].seq < all[j].seq
	})
	for _, ev := range all {
		if _, err := sh.cells[ev.dst].ScheduleAtCall(ev.at, ev.fn); err != nil {
			return err
		}
	}
	return nil
}

// Run executes all cells to completion (or to the horizon, inclusive, when
// horizon > 0), window by window. On return every cell's clock is at the
// horizon (when one is set) or at its last event. Run reports the first
// error by cell index — deterministic regardless of which worker hit it
// first.
func (sh *Sharded) Run(horizon time.Duration) error {
	work := make(chan int, len(sh.cells))
	type cellDone struct {
		idx int
		err error
	}
	done := make(chan cellDone, len(sh.cells))
	if sh.workers > 1 {
		for w := 0; w < sh.workers; w++ {
			go func() {
				for idx := range work {
					// The channel receive orders this read of windowEnd
					// after the coordinator's write.
					done <- cellDone{idx, sh.cells[idx].RunUntil(sh.windowEnd)}
				}
			}()
		}
		defer close(work)
	}

	errs := make([]error, len(sh.cells))
	for {
		if err := sh.flush(); err != nil {
			return err
		}
		var m time.Duration
		none := true
		for _, c := range sh.cells {
			if t, ok := c.PeekTime(); ok && (none || t < m) {
				m, none = t, false
			}
		}
		if none || (horizon > 0 && m > horizon) {
			break
		}
		// The window [m, m+L): any event executing at u >= m can only
		// produce a cross-cell arrival at u+L >= m+L, i.e. in a later
		// window — so cells are causally independent inside it. Events
		// exactly at the horizon still fire (matching Engine.Run), hence
		// the +1ns clamp.
		windowEnd := m + sh.lookahead
		if horizon > 0 && windowEnd > horizon {
			windowEnd = horizon + 1
		}
		sh.windowEnd = windowEnd

		if sh.workers == 1 {
			for i, c := range sh.cells {
				errs[i] = c.RunUntil(windowEnd)
			}
		} else {
			for i := range sh.cells {
				work <- i
			}
			for range sh.cells {
				d := <-done
				errs[d.idx] = d.err
			}
		}
		for i, err := range errs {
			if err == nil {
				err = sh.sendErr[i]
			}
			if err != nil {
				return fmt.Errorf("sim: cell %d: %w", i, err)
			}
		}
	}
	if err := sh.flush(); err != nil { // nothing pending unless the horizon cut the run short
		return err
	}
	if horizon > 0 {
		for _, c := range sh.cells {
			if c.Now() < horizon {
				if err := c.Run(horizon); err != nil {
					return err
				}
			} else if c.now > horizon {
				// The final window's +1ns clamp overshot; timestamps are
				// integral, so no event can sit between horizon and now.
				c.now = horizon
			}
		}
	}
	return nil
}
