package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleAtOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	times := []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 2 * time.Second}
	for _, at := range times {
		at := at
		if _, err := e.ScheduleAt(at, func(*Engine) { got = append(got, at) }); err != nil {
			t.Fatalf("ScheduleAt(%v): %v", at, err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := append([]time.Duration(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFIFOForEqualTimestamps(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		if _, err := e.ScheduleAt(time.Second, func(*Engine) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d: got %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine(1)
	e.ScheduleAfter(10*time.Second, func(en *Engine) {
		if _, err := en.ScheduleAt(5*time.Second, func(*Engine) {}); err == nil {
			t.Error("scheduling in the past succeeded, want error")
		}
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	timer := e.ScheduleAfter(time.Second, func(*Engine) { fired = true })
	if !e.Cancel(timer) {
		t.Fatal("Cancel reported false for a live timer")
	}
	if e.Cancel(timer) {
		t.Error("second Cancel reported true")
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestHorizonStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.ScheduleAfter(time.Second, func(*Engine) { fired++ })
	e.ScheduleAfter(10*time.Second, func(*Engine) { fired++ })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
	// The remaining event still fires on a later Run.
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2 after second Run", fired)
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.ScheduleAfter(5*time.Second, func(*Engine) { fired = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event at exactly the horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.ScheduleAfter(time.Second, func(en *Engine) {
		count++
		en.Stop()
	})
	e.ScheduleAfter(2*time.Second, func(*Engine) { count++ })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop did not halt the run)", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	var at []time.Duration
	stop, err := e.Every(time.Second, func(en *Engine) {
		at = append(at, en.Now())
		if len(at) == 3 {
			// stop is captured below; cancel from inside the tick.
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.ScheduleAfter(3500*time.Millisecond, func(*Engine) { stop() })
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestEveryRejectsNonPositive(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.Every(0, func(*Engine) {}); err == nil {
		t.Error("Every(0) succeeded, want error")
	}
	if _, err := e.Every(-time.Second, func(*Engine) {}); err == nil {
		t.Error("Every(-1s) succeeded, want error")
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetMaxEvents(10)
	var tick Handler
	tick = func(en *Engine) { en.ScheduleAfter(time.Second, tick) }
	e.ScheduleAfter(time.Second, tick)
	if err := e.Run(0); err != ErrEventLimit {
		t.Errorf("Run = %v, want ErrEventLimit", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			e.ScheduleAfter(time.Duration(e.Rand().Intn(1000))*time.Millisecond, func(en *Engine) {
				out = append(out, en.Now())
			})
		}
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the engine clock never goes backwards.
func TestPropertyTimeMonotone(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		e := NewEngine(7)
		var fireTimes []time.Duration
		for _, d := range delaysMS {
			e.ScheduleAfter(time.Duration(d)*time.Millisecond, func(en *Engine) {
				fireTimes = append(fireTimes, en.Now())
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delaysMS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling preserves causality — a handler scheduling a
// follow-up at +d always observes the follow-up at a time >= its own.
func TestPropertyCausality(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		var spawn Handler
		remaining := int(n)
		spawn = func(en *Engine) {
			if remaining <= 0 {
				return
			}
			remaining--
			parent := en.Now()
			d := time.Duration(rng.Intn(100)) * time.Millisecond
			en.ScheduleAfter(d, func(en2 *Engine) {
				if en2.Now() < parent {
					ok = false
				}
				spawn(en2)
			})
		}
		e.ScheduleAfter(0, spawn)
		if err := e.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulePop(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(time.Duration(i%1000)*time.Millisecond, func(*Engine) {})
	}
	if err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

func TestEventLimitStateConsistent(t *testing.T) {
	// Regression: the cap used to be checked after the limiting event was
	// popped, retired, and had advanced the clock — leaving Processed one
	// past the cap, the unrun event gone from Pending, and Now at a time
	// no executed event reached. The cap must be checked before the event
	// is consumed.
	e := NewEngine(1)
	e.SetMaxEvents(3)
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		at := time.Duration(i) * time.Second
		if _, err := e.ScheduleAt(at, func(en *Engine) { fired = append(fired, en.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != ErrEventLimit {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
	if got := e.Processed(); got != 3 {
		t.Errorf("Processed = %d, want 3 (the cap)", got)
	}
	if got := e.Now(); got != 3*time.Second {
		t.Errorf("Now = %v, want 3s (last event that actually ran)", got)
	}
	if got := e.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2 (the limiting event must stay queued)", got)
	}
	// The post-limit state is resumable: lifting the cap runs the rest.
	e.SetMaxEvents(0)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestStopBeforeRun(t *testing.T) {
	// Regression: Run used to clear the stopped flag on entry, so a Stop
	// racing engine start was silently ignored. A pre-armed Stop must make
	// the next Run return immediately; the stop is consumed, so a later
	// Run resumes normally.
	e := NewEngine(1)
	fired := 0
	e.ScheduleAfter(time.Second, func(*Engine) { fired++ })
	e.Stop()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("fired = %d, want 0: pre-armed Stop was ignored", fired)
	}
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 after resumed Run", fired)
	}
}

func TestPeekTime(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime ok on empty engine")
	}
	early := e.ScheduleAfter(time.Second, func(*Engine) {})
	e.ScheduleAfter(3*time.Second, func(*Engine) {})
	if at, ok := e.PeekTime(); !ok || at != time.Second {
		t.Fatalf("PeekTime = %v, %v; want 1s, true", at, ok)
	}
	// Cancelling the head leaves a tombstone; PeekTime must skim past it.
	e.Cancel(early)
	if at, ok := e.PeekTime(); !ok || at != 3*time.Second {
		t.Fatalf("PeekTime after cancel = %v, %v; want 3s, true", at, ok)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if _, err := e.ScheduleAt(at, func(en *Engine) { fired = append(fired, en.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	// Strictly-before semantics: the event at exactly the boundary stays.
	if err := e.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != time.Second {
		t.Fatalf("fired = %v, want [1s]", fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s (clock advances to the window end)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Going backwards is a causality error.
	if err := e.RunUntil(time.Second); err == nil {
		t.Error("RunUntil before now succeeded")
	}
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || e.Now() != 10*time.Second {
		t.Fatalf("fired = %v, Now = %v; want 3 events and 10s", fired, e.Now())
	}
}

func TestClampNow(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.ScheduleAt(2*time.Second, func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	// RunUntil overshoots the last executed event; ClampNow pulls the clock
	// back anywhere in the dead zone between them.
	if err := e.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.ClampNow(6 * time.Second); err != nil || e.Now() != 5*time.Second {
		t.Errorf("ClampNow above now: err=%v Now=%v, want no-op at 5s", err, e.Now())
	}
	if err := e.ClampNow(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	// Clamping to exactly the last executed event is allowed...
	if err := e.ClampNow(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	// ...but rewinding across it would fabricate an inconsistent timeline.
	if err := e.ClampNow(time.Second); err == nil {
		t.Error("ClampNow before the last executed event succeeded")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v after rejected clamp, want 2s", e.Now())
	}
	// A fresh engine that never ran an event can clamp to zero only.
	f := NewEngine(1)
	if err := f.ClampNow(0); err != nil {
		t.Errorf("ClampNow(0) on fresh engine: %v", err)
	}
}
