package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestCellSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for cell := 0; cell < 16; cell++ {
			s := CellSeed(seed, cell)
			if seen[s] {
				t.Fatalf("CellSeed(%d, %d) = %d collides", seed, cell, s)
			}
			seen[s] = true
		}
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Cells: 0, Lookahead: time.Second}); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: 0}); err == nil {
		t.Error("zero lookahead accepted")
	}
	sh, err := NewSharded(ShardedConfig{Cells: 3, Lookahead: time.Second, Workers: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Workers() != 3 {
		t.Errorf("Workers = %d, want clamp to 3 cells", sh.Workers())
	}
}

func TestShardedSameCellSendIsDirect(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := sh.Send(1, 1, 10*time.Millisecond, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("same-cell send never ran")
	}
}

func TestShardedLookaheadViolation(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c0 := sh.Cell(0)
	if _, err := c0.ScheduleAt(time.Second, func(e *Engine) {
		// Window is [1s, 2s); an arrival at 1.5s claims a cross-cell
		// latency below the configured lookahead.
		sh.Send(0, 1, 1500*time.Millisecond, func() {}) //nolint:errcheck // surfaced by Run
	}); err != nil {
		t.Fatal(err)
	}
	err = sh.Run(0)
	if !errors.Is(err, ErrLookaheadViolation) {
		t.Fatalf("Run = %v, want ErrLookaheadViolation", err)
	}
}

func TestShardedEventLimitSurfaces(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second, MaxEventsPerCell: 3})
	if err != nil {
		t.Fatal(err)
	}
	var chain Handler
	chain = func(e *Engine) { e.ScheduleAfter(time.Millisecond, chain) }
	sh.Cell(0).ScheduleAfter(time.Millisecond, chain)
	if err := sh.Run(0); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
}

func TestShardedHorizonClocks(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 3, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	atHorizon := false
	// One event exactly at the horizon (must fire, matching Engine.Run) and
	// one beyond it (must stay queued).
	sh.Cell(1).ScheduleAfter(5*time.Second, func(*Engine) { atHorizon = true })
	sh.Cell(2).ScheduleAfter(7*time.Second, func(*Engine) {})
	if err := sh.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !atHorizon {
		t.Error("event at exactly the horizon did not fire")
	}
	for i := 0; i < sh.Cells(); i++ {
		if now := sh.Cell(i).Now(); now != 5*time.Second {
			t.Errorf("cell %d Now = %v, want 5s", i, now)
		}
	}
	if sh.Cell(2).Pending() != 1 {
		t.Errorf("cell 2 Pending = %d, want 1 (event beyond horizon)", sh.Cell(2).Pending())
	}
}

func TestShardedMergeOrderSameTimestamp(t *testing.T) {
	// Cross-cell sends from different source cells arriving at the same
	// destination timestamp must run in source-cell order, then per-source
	// send order — regardless of worker count.
	for _, workers := range []int{1, 2, 4} {
		sh, err := NewSharded(ShardedConfig{Cells: 4, Lookahead: time.Second, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		arrival := 3 * time.Second
		for _, src := range []int{3, 1, 2} {
			src := src
			sh.Cell(src).ScheduleAfter(time.Second, func(*Engine) {
				for k := 0; k < 2; k++ {
					k := k
					sh.Send(src, 0, arrival, func() { //nolint:errcheck // surfaced by Run
						got = append(got, fmt.Sprintf("src%d.%d", src, k))
					})
				}
			})
		}
		if err := sh.Run(0); err != nil {
			t.Fatal(err)
		}
		want := []string{"src1.0", "src1.1", "src2.0", "src2.1", "src3.0", "src3.1"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: merge order %v, want %v", workers, got, want)
		}
	}
}

// shardedTrace runs a fixed cross-cell ping-pong workload (with per-cell RNG
// draws, so RNG state is part of what must be invariant) and returns each
// cell's event trace.
func shardedTrace(t *testing.T, workers int, adaptive bool) ([][]string, uint64) {
	t.Helper()
	const (
		cells     = 4
		lookahead = 100 * time.Millisecond
		horizon   = 20 * time.Second
	)
	sh, err := NewSharded(ShardedConfig{Seed: 42, Cells: cells, Lookahead: lookahead, Workers: workers, AdaptiveWindow: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]string, cells) // each written only by its own cell's handlers
	var loop func(cell, hop int) func()
	loop = func(cell, hop int) func() {
		return func() {
			e := sh.Cell(cell)
			jitter := time.Duration(e.Rand().Int63n(int64(50 * time.Millisecond)))
			traces[cell] = append(traces[cell], fmt.Sprintf("%v hop%d j%v", e.Now(), hop, jitter))
			if hop >= 40 {
				return
			}
			dst := (cell + 1 + hop%3) % cells
			at := e.Now() + lookahead + jitter
			sh.Send(cell, dst, at, loop(dst, hop+1)) //nolint:errcheck // surfaced by Run
		}
	}
	for c := 0; c < cells; c++ {
		c := c
		sh.Cell(c).ScheduleAfter(time.Duration(c+1)*time.Second, func(*Engine) { loop(c, 0)() })
	}
	if err := sh.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return traces, sh.Processed()
}

func TestShardedWorkerCountInvariance(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			base, baseN := shardedTrace(t, 1, adaptive)
			for _, workers := range []int{2, 4, 8} {
				got, n := shardedTrace(t, workers, adaptive)
				if n != baseN {
					t.Errorf("workers=%d: processed %d events, want %d", workers, n, baseN)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("workers=%d: traces diverge from single-worker run", workers)
				}
			}
		})
	}
}

func TestShardedAdaptiveLookaheadViolation(t *testing.T) {
	// Adaptive bounds must still catch an overstated lookahead: with events
	// at 1s (cell 0) and 1.2s (cell 1), cell 1's boundary is
	// min(1s, 1.2s+1s) + 1s = 2s, so an arrival at 1.5s is a violation.
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second, AdaptiveWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	sh.Cell(1).ScheduleAfter(1200*time.Millisecond, func(*Engine) {})
	if _, err := sh.Cell(0).ScheduleAt(time.Second, func(e *Engine) {
		sh.Send(0, 1, 1500*time.Millisecond, func() {}) //nolint:errcheck // surfaced by Run
	}); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run(0); !errors.Is(err, ErrLookaheadViolation) {
		t.Fatalf("Run = %v, want ErrLookaheadViolation", err)
	}
}

// barrierCount runs a lone self-rescheduling chain in cell 0 (cell 1 stays
// empty) and reports how many window barriers the run needed.
func barrierCount(t *testing.T, adaptive bool) int {
	t.Helper()
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second, AdaptiveWindow: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	var chain Handler
	chain = func(e *Engine) {
		if e.Now() < 9*time.Second {
			e.ScheduleAfter(time.Second, chain)
		}
	}
	sh.Cell(0).ScheduleAfter(time.Second, chain)
	barriers := 0
	sh.SetBarrierHook(func(time.Duration) error { barriers++; return nil })
	if err := sh.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return barriers
}

func TestShardedAdaptiveFusesWindows(t *testing.T) {
	static := barrierCount(t, false)
	adaptive := barrierCount(t, true)
	if adaptive >= static {
		t.Errorf("adaptive run used %d barriers, static %d; want fewer", adaptive, static)
	}
	// The lone-cell bound is t+2L, so adaptive needs about half the windows.
	if want := static/2 + 1; adaptive > want {
		t.Errorf("adaptive run used %d barriers, want <= %d (static %d)", adaptive, want, static)
	}
}

func TestShardedBarrierHook(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var chain Handler
	chain = func(e *Engine) {
		if e.Now() < 5*time.Second {
			e.ScheduleAfter(time.Second, chain)
		}
	}
	sh.Cell(0).ScheduleAfter(time.Second, chain)
	var starts []time.Duration
	sh.SetBarrierHook(func(next time.Duration) error {
		starts = append(starts, next)
		return nil
	})
	if err := sh.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(starts) == 0 {
		t.Fatal("barrier hook never ran")
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Errorf("barrier starts not increasing: %v", starts)
		}
	}

	// A hook error aborts the run with that error.
	sh2, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sh2.Cell(0).ScheduleAfter(time.Second, func(*Engine) {})
	boom := errors.New("boom")
	sh2.SetBarrierHook(func(time.Duration) error { return boom })
	if err := sh2.Run(0); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want hook error", err)
	}
}

func TestShardedIdleCellClockLags(t *testing.T) {
	// An idle cell is never dispatched: its clock stays put across barriers
	// (the hook observes it lagging) and only the final horizon pass lands it
	// on the horizon.
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var chain Handler
	chain = func(e *Engine) {
		if e.Now() < 8*time.Second {
			e.ScheduleAfter(time.Second, chain)
		}
	}
	sh.Cell(0).ScheduleAfter(time.Second, chain)
	lagged := false
	sh.SetBarrierHook(func(next time.Duration) error {
		if next > 2*time.Second && sh.Cell(1).Now() == 0 {
			lagged = true
		}
		return nil
	})
	if err := sh.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !lagged {
		t.Error("idle cell's clock advanced eagerly; want lazy (skipped) advance")
	}
	if now := sh.Cell(1).Now(); now != 10*time.Second {
		t.Errorf("idle cell Now = %v after Run, want horizon", now)
	}
}

func TestShardedProcessedConcurrent(t *testing.T) {
	// Processed must be safe to read while Run is in flight (barrier-level
	// snapshots) and exact once Run returns.
	sh, err := NewSharded(ShardedConfig{Cells: 4, Lookahead: 10 * time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const hops = 200
	var chain func(cell, hop int) func()
	chain = func(cell, hop int) func() {
		return func() {
			if hop >= hops {
				return
			}
			dst := (cell + 1) % 4
			at := sh.Cell(cell).Now() + 10*time.Millisecond
			sh.Send(cell, dst, at, chain(dst, hop+1)) //nolint:errcheck // surfaced by Run
		}
	}
	sh.Cell(0).ScheduleAfter(time.Millisecond, func(*Engine) { chain(0, 0)() })
	stop := make(chan struct{})
	read := make(chan struct{})
	go func() {
		defer close(read)
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := sh.Processed()
			if n < last {
				t.Errorf("Processed went backwards: %d after %d", n, last)
				return
			}
			last = n
		}
	}()
	if err := sh.Run(0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-read
	var want uint64
	for i := 0; i < sh.Cells(); i++ {
		want += sh.Cell(i).Processed()
	}
	if got := sh.Processed(); got != want {
		t.Errorf("Processed = %d after Run, want exact %d", got, want)
	}
}
