package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestCellSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for cell := 0; cell < 16; cell++ {
			s := CellSeed(seed, cell)
			if seen[s] {
				t.Fatalf("CellSeed(%d, %d) = %d collides", seed, cell, s)
			}
			seen[s] = true
		}
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Cells: 0, Lookahead: time.Second}); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: 0}); err == nil {
		t.Error("zero lookahead accepted")
	}
	sh, err := NewSharded(ShardedConfig{Cells: 3, Lookahead: time.Second, Workers: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Workers() != 3 {
		t.Errorf("Workers = %d, want clamp to 3 cells", sh.Workers())
	}
}

func TestShardedSameCellSendIsDirect(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := sh.Send(1, 1, 10*time.Millisecond, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("same-cell send never ran")
	}
}

func TestShardedLookaheadViolation(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c0 := sh.Cell(0)
	if _, err := c0.ScheduleAt(time.Second, func(e *Engine) {
		// Window is [1s, 2s); an arrival at 1.5s claims a cross-cell
		// latency below the configured lookahead.
		sh.Send(0, 1, 1500*time.Millisecond, func() {}) //nolint:errcheck // surfaced by Run
	}); err != nil {
		t.Fatal(err)
	}
	err = sh.Run(0)
	if !errors.Is(err, ErrLookaheadViolation) {
		t.Fatalf("Run = %v, want ErrLookaheadViolation", err)
	}
}

func TestShardedEventLimitSurfaces(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 2, Lookahead: time.Second, MaxEventsPerCell: 3})
	if err != nil {
		t.Fatal(err)
	}
	var chain Handler
	chain = func(e *Engine) { e.ScheduleAfter(time.Millisecond, chain) }
	sh.Cell(0).ScheduleAfter(time.Millisecond, chain)
	if err := sh.Run(0); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
}

func TestShardedHorizonClocks(t *testing.T) {
	sh, err := NewSharded(ShardedConfig{Cells: 3, Lookahead: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	atHorizon := false
	// One event exactly at the horizon (must fire, matching Engine.Run) and
	// one beyond it (must stay queued).
	sh.Cell(1).ScheduleAfter(5*time.Second, func(*Engine) { atHorizon = true })
	sh.Cell(2).ScheduleAfter(7*time.Second, func(*Engine) {})
	if err := sh.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !atHorizon {
		t.Error("event at exactly the horizon did not fire")
	}
	for i := 0; i < sh.Cells(); i++ {
		if now := sh.Cell(i).Now(); now != 5*time.Second {
			t.Errorf("cell %d Now = %v, want 5s", i, now)
		}
	}
	if sh.Cell(2).Pending() != 1 {
		t.Errorf("cell 2 Pending = %d, want 1 (event beyond horizon)", sh.Cell(2).Pending())
	}
}

func TestShardedMergeOrderSameTimestamp(t *testing.T) {
	// Cross-cell sends from different source cells arriving at the same
	// destination timestamp must run in source-cell order, then per-source
	// send order — regardless of worker count.
	for _, workers := range []int{1, 2, 4} {
		sh, err := NewSharded(ShardedConfig{Cells: 4, Lookahead: time.Second, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		arrival := 3 * time.Second
		for _, src := range []int{3, 1, 2} {
			src := src
			sh.Cell(src).ScheduleAfter(time.Second, func(*Engine) {
				for k := 0; k < 2; k++ {
					k := k
					sh.Send(src, 0, arrival, func() { //nolint:errcheck // surfaced by Run
						got = append(got, fmt.Sprintf("src%d.%d", src, k))
					})
				}
			})
		}
		if err := sh.Run(0); err != nil {
			t.Fatal(err)
		}
		want := []string{"src1.0", "src1.1", "src2.0", "src2.1", "src3.0", "src3.1"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: merge order %v, want %v", workers, got, want)
		}
	}
}

// shardedTrace runs a fixed cross-cell ping-pong workload (with per-cell RNG
// draws, so RNG state is part of what must be invariant) and returns each
// cell's event trace.
func shardedTrace(t *testing.T, workers int) ([][]string, uint64) {
	t.Helper()
	const (
		cells     = 4
		lookahead = 100 * time.Millisecond
		horizon   = 20 * time.Second
	)
	sh, err := NewSharded(ShardedConfig{Seed: 42, Cells: cells, Lookahead: lookahead, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]string, cells) // each written only by its own cell's handlers
	var loop func(cell, hop int) func()
	loop = func(cell, hop int) func() {
		return func() {
			e := sh.Cell(cell)
			jitter := time.Duration(e.Rand().Int63n(int64(50 * time.Millisecond)))
			traces[cell] = append(traces[cell], fmt.Sprintf("%v hop%d j%v", e.Now(), hop, jitter))
			if hop >= 40 {
				return
			}
			dst := (cell + 1 + hop%3) % cells
			at := e.Now() + lookahead + jitter
			sh.Send(cell, dst, at, loop(dst, hop+1)) //nolint:errcheck // surfaced by Run
		}
	}
	for c := 0; c < cells; c++ {
		c := c
		sh.Cell(c).ScheduleAfter(time.Duration(c+1)*time.Second, func(*Engine) { loop(c, 0)() })
	}
	if err := sh.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return traces, sh.Processed()
}

func TestShardedWorkerCountInvariance(t *testing.T) {
	base, baseN := shardedTrace(t, 1)
	for _, workers := range []int{2, 4, 8} {
		got, n := shardedTrace(t, workers)
		if n != baseN {
			t.Errorf("workers=%d: processed %d events, want %d", workers, n, baseN)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: traces diverge from single-worker run", workers)
		}
	}
}
