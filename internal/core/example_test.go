package core_test

import (
	"fmt"
	"time"

	"cdnconsistency/internal/core"
	"cdnconsistency/internal/workload"
)

// Running one of the paper's named systems takes a handful of options; the
// result carries the figures' metrics.
func ExampleRun() {
	game := workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "live", Duration: 5 * time.Minute, MeanGap: 30 * time.Second},
		},
		SizeKB: 1,
	}
	res, err := core.Run(core.SystemPush,
		core.WithServers(10),
		core.WithUsersPerServer(1),
		core.WithGame(game),
		core.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("push staleness under 1s: %v\n", res.MeanServerInconsistency() < 1)
	fmt.Printf("one update message per server per update: %v\n",
		res.UpdateMsgsToServers == res.UpdateMsgsFromProvider)
	// Output:
	// push staleness under 1s: true
	// one update message per server per update: true
}

func ExampleSystemByName() {
	sys, err := core.SystemByName("HAT")
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.Method, "on", sys.Infra)
	// Output:
	// Self on Hybrid
}
