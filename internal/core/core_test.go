package core

import (
	"testing"
	"time"

	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

func quickGame() workload.GameConfig {
	return workload.GameConfig{
		Phases: []workload.Phase{
			{Name: "play", Duration: 4 * time.Minute, MeanGap: 20 * time.Second},
			{Name: "break", Duration: 3 * time.Minute, MeanGap: 0},
			{Name: "play", Duration: 4 * time.Minute, MeanGap: 20 * time.Second},
		},
		SizeKB: 1,
	}
}

func quickOpts(extra ...Option) []Option {
	return append([]Option{
		WithServers(30),
		WithUsersPerServer(2),
		WithGame(quickGame()),
		WithSeed(3),
		WithClusters(5),
	}, extra...)
}

func TestSystemsMatchPaperOrder(t *testing.T) {
	want := []string{"Push", "Invalidation", "TTL", "Self", "Hybrid", "HAT"}
	got := Systems()
	if len(got) != len(want) {
		t.Fatalf("systems = %d", len(got))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("system %d = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestSystemByName(t *testing.T) {
	s, err := SystemByName("HAT")
	if err != nil {
		t.Fatal(err)
	}
	if s.Method != consistency.MethodSelfAdaptive || s.Infra != consistency.InfraHybrid {
		t.Errorf("HAT = %+v", s)
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestRunAppliesOptions(t *testing.T) {
	res, err := Run(SystemTTL, quickOpts(WithServerTTL(20*time.Second), WithUserTTL(15*time.Second))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerAvgInconsistency) != 30 {
		t.Errorf("servers = %d, want 30", len(res.ServerAvgInconsistency))
	}
	if len(res.UserAvgInconsistency) != 60 {
		t.Errorf("users = %d, want 60", len(res.UserAvgInconsistency))
	}
	// TTL 20s -> mean catch-up ~10s.
	m := res.MeanServerInconsistency()
	if m < 5 || m > 20 {
		t.Errorf("mean inconsistency %.1fs, want ~10s for TTL=20s", m)
	}
}

func TestRunHAT(t *testing.T) {
	res, err := RunHAT(quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supernodes != 5 {
		t.Errorf("supernodes = %d, want 5", res.Supernodes)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	if _, err := Run(System{Name: "bad"}, quickOpts()...); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := Run(SystemTTL, WithServers(-1)); err == nil {
		t.Error("negative servers accepted")
	}
}

func TestRunAllSharedInputs(t *testing.T) {
	comps, err := RunAll(quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 6 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	// Shared topology: every run reports the same server count.
	for _, c := range comps {
		if len(c.Result.ServerAvgInconsistency) != 30 {
			t.Errorf("%s servers = %d", c.System.Name, len(c.Result.ServerAvgInconsistency))
		}
	}
	// The headline orderings of Figures 22(a)/23 hold on the matrix.
	byName := map[string]*Comparison{}
	for i := range comps {
		byName[comps[i].System.Name] = &comps[i]
	}
	push := byName["Push"].Result.UpdateMsgsToServers
	ttl := byName["TTL"].Result.UpdateMsgsToServers
	self := byName["Self"].Result.UpdateMsgsToServers
	hat := byName["HAT"].Result.UpdateMsgsToServers
	if !(push > ttl && ttl > hat && hat > self) {
		t.Errorf("message ordering violated: Push=%d TTL=%d HAT=%d Self=%d", push, ttl, hat, self)
	}
	hatKm := byName["HAT"].Result.Accounting.ByClass[netmodel.ClassUpdate].Km
	ttlKm := byName["TTL"].Result.Accounting.ByClass[netmodel.ClassUpdate].Km
	if hatKm >= ttlKm {
		t.Errorf("HAT update km %.0f not below TTL %.0f", hatKm, ttlKm)
	}
}

func TestRunAllWithPrebuiltTopology(t *testing.T) {
	topo, err := topology.Generate(topology.Config{Servers: 20, UsersPerServer: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := RunAll(WithTopology(topo), WithGame(quickGame()), WithSeed(4), WithClusters(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if len(c.Result.ServerAvgInconsistency) != 20 {
			t.Errorf("%s used wrong topology: %d servers", c.System.Name, len(c.Result.ServerAvgInconsistency))
		}
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := Run(SystemHAT, quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SystemHAT, quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.UpdateMsgsToServers != b.UpdateMsgsToServers {
		t.Error("identical runs diverged")
	}
}

func TestAllOptionsApply(t *testing.T) {
	// Exercise every option end to end on one small run.
	res, err := Run(
		System{Name: "Lease", Method: consistency.MethodLease, Infra: consistency.InfraUnicast},
		quickOpts(
			WithUpdateSizeKB(4),
			WithLeaseDuration(45*time.Second),
			WithNetConfig(netmodel.Config{DefaultUplinkKBps: 5000}),
		)...,
	)
	if err != nil {
		t.Fatal(err)
	}
	up := res.Accounting.ByClass[netmodel.ClassUpdate]
	if up.Messages > 0 && up.KB/float64(up.Messages) != 4 {
		t.Errorf("update size option not applied: %.1f KB/msg", up.KB/float64(up.Messages))
	}

	res, err = Run(SystemTTL, quickOpts(
		WithDNSRouting(20*time.Second),
		WithFailures(3, false),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.DNSVisits == 0 || res.FailedServers != 3 {
		t.Errorf("DNS/failure options not applied: visits=%d failed=%d", res.DNSVisits, res.FailedServers)
	}

	res, err = Run(SystemTTL, quickOpts(WithUserSwitching())...)
	if err != nil {
		t.Fatal(err)
	}
	if res.UserObservations == 0 {
		t.Error("switching run had no observations")
	}

	multi, err := Run(
		System{Name: "m", Method: consistency.MethodTTL, Infra: consistency.InfraMulticast},
		quickOpts(WithTreeDegree(6))...,
	)
	if err != nil {
		t.Fatal(err)
	}
	binary, err := Run(
		System{Name: "m", Method: consistency.MethodTTL, Infra: consistency.InfraMulticast},
		quickOpts(WithTreeDegree(2))...,
	)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TreeDepth >= binary.TreeDepth {
		t.Errorf("degree-6 depth %d not below degree-2 depth %d", multi.TreeDepth, binary.TreeDepth)
	}

	hat, err := RunHAT(quickOpts(WithSupernodeDegree(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if hat.Supernodes != 5 {
		t.Errorf("supernodes = %d", hat.Supernodes)
	}
}
