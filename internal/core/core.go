// Package core is the library facade: it names the consistency-maintenance
// systems the paper compares (Section 5.3), provides a functional-options
// runner over the cdn simulation, and packages the paper's proposal — HAT,
// the Hybrid and self-AdapTive update system (Section 5) — as a first-class
// configuration.
package core

import (
	"context"
	"fmt"
	"time"

	"cdnconsistency/internal/cdn"
	"cdnconsistency/internal/consistency"
	"cdnconsistency/internal/fault"
	"cdnconsistency/internal/federation"
	"cdnconsistency/internal/netmodel"
	"cdnconsistency/internal/topology"
	"cdnconsistency/internal/workload"
)

// System is one consistency-maintenance system under test: an update method
// on an update infrastructure.
type System struct {
	// Name is the label the paper's figures use.
	Name   string
	Method consistency.Method
	Infra  consistency.Infra
}

// The six systems of the paper's Section 5.3 comparison.
var (
	// SystemPush pushes every update over unicast.
	SystemPush = System{Name: "Push", Method: consistency.MethodPush, Infra: consistency.InfraUnicast}
	// SystemInvalidation invalidates over unicast, fetch on visit.
	SystemInvalidation = System{Name: "Invalidation", Method: consistency.MethodInvalidation, Infra: consistency.InfraUnicast}
	// SystemTTL polls the provider over unicast (what the measured CDN does).
	SystemTTL = System{Name: "TTL", Method: consistency.MethodTTL, Infra: consistency.InfraUnicast}
	// SystemSelf is the self-adaptive method (Algorithm 1) over unicast.
	SystemSelf = System{Name: "Self", Method: consistency.MethodSelfAdaptive, Infra: consistency.InfraUnicast}
	// SystemHybrid is the hybrid infrastructure with plain TTL inside
	// clusters.
	SystemHybrid = System{Name: "Hybrid", Method: consistency.MethodTTL, Infra: consistency.InfraHybrid}
	// SystemHAT is the paper's proposal: hybrid infrastructure plus the
	// self-adaptive method inside clusters.
	SystemHAT = System{Name: "HAT", Method: consistency.MethodSelfAdaptive, Infra: consistency.InfraHybrid}
)

// Systems returns the Section 5.3 comparison set in the paper's order.
func Systems() []System {
	return []System{SystemPush, SystemInvalidation, SystemTTL, SystemSelf, SystemHybrid, SystemHAT}
}

// SystemByName resolves a figure label ("Push", "HAT", ...).
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("core: unknown system %q", name)
}

// Option customizes an experiment run.
type Option func(*cdn.Config)

// WithServers sets the content-server count (paper Section 4: 170).
func WithServers(n int) Option {
	return func(c *cdn.Config) { c.Topology.Servers = n }
}

// WithUsersPerServer sets the simulated end-users per server (paper: 5).
func WithUsersPerServer(n int) Option {
	return func(c *cdn.Config) { c.Topology.UsersPerServer = n }
}

// WithServerTTL sets the content servers' poll period.
func WithServerTTL(d time.Duration) Option {
	return func(c *cdn.Config) { c.ServerTTL = d }
}

// WithUserTTL sets the end-users' visit period.
func WithUserTTL(d time.Duration) Option {
	return func(c *cdn.Config) { c.UserTTL = d }
}

// WithUpdateSizeKB sets the update payload size.
func WithUpdateSizeKB(kb float64) Option {
	return func(c *cdn.Config) { c.UpdateSizeKB = kb }
}

// WithUpdates replaces the publication schedule.
func WithUpdates(updates []workload.Update) Option {
	return func(c *cdn.Config) { c.Updates = updates }
}

// WithGame draws the publication schedule from a game config using the
// run's seed.
func WithGame(game workload.GameConfig) Option {
	return func(c *cdn.Config) {
		updates, err := workload.Schedule(game, c.Seed)
		if err == nil {
			c.Updates = updates
		}
	}
}

// WithSeed sets the deterministic seed.
func WithSeed(seed int64) Option {
	return func(c *cdn.Config) {
		c.Seed = seed
		c.Topology.Seed = seed
	}
}

// WithClusters sets the hybrid cluster count (paper: 20).
func WithClusters(n int) Option {
	return func(c *cdn.Config) { c.Clusters = n }
}

// WithTreeDegree sets the multicast arity (paper: 2).
func WithTreeDegree(d int) Option {
	return func(c *cdn.Config) { c.TreeDegree = d }
}

// WithSupernodeDegree sets the hybrid supernode tree arity (paper: 4).
func WithSupernodeDegree(d int) Option {
	return func(c *cdn.Config) { c.SupernodeDegree = d }
}

// WithNetConfig overrides the network model.
func WithNetConfig(nc netmodel.Config) Option {
	return func(c *cdn.Config) { c.Net = nc }
}

// WithUserSwitching makes every visit hit a random server (Figure 24).
func WithUserSwitching() Option {
	return func(c *cdn.Config) { c.UserSwitchEveryVisit = true }
}

// WithUserModel selects the end-user simulation model:
// cdn.UserModelExplicit (one actor per user, the default) or
// cdn.UserModelCohort (weighted per-server cohorts with exact aggregate
// accounting; requires WithPopulation).
func WithUserModel(model string) Option {
	return func(c *cdn.Config) { c.UserModel = model }
}

// WithPopulation pins the user population to weighted per-server cohorts
// (counts, start offsets, periods). Both user models honor it: explicit
// expands it to individual actors, cohort simulates it in aggregate.
func WithPopulation(p *workload.Population) Option {
	return func(c *cdn.Config) { c.Population = p }
}

// WithVisitAccounting books every end-user request into the traffic ledger
// as a zero-distance content-class message (batched under the cohort model).
func WithVisitAccounting() Option {
	return func(c *cdn.Config) { c.AccountVisits = true }
}

// WithTopology supplies a prebuilt topology shared across runs, keeping the
// comparison matrix apples-to-apples.
func WithTopology(t *topology.Topology) Option {
	return func(c *cdn.Config) { c.Topo = t }
}

// WithDNSRouting routes visits through the modeled DNS plane (local
// resolver caches + authoritative nearest-k load balancing) with the given
// resolver cache TTL.
func WithDNSRouting(resolverTTL time.Duration) Option {
	return func(c *cdn.Config) {
		c.UseDNSRouting = true
		c.ResolverTTL = resolverTTL
	}
}

// WithFailures crash-stops n random servers mid-run; repair controls
// whether the multicast tree re-attaches orphaned subtrees.
func WithFailures(n int, repair bool) Option {
	return func(c *cdn.Config) {
		c.FailServers = n
		c.RepairTree = repair
	}
}

// WithLeaseDuration sets the cooperative-lease lifetime for MethodLease.
func WithLeaseDuration(d time.Duration) Option {
	return func(c *cdn.Config) { c.LeaseDuration = d }
}

// WithFaults injects a declarative fault scenario (crash-stop,
// crash-recovery, provider outages, ISP partitions, overload, regional
// failures) compiled deterministically against the run's topology. See
// internal/fault for the spec language and fault.Scenario for the built-in
// named scenarios.
func WithFaults(spec fault.Spec) Option {
	return func(c *cdn.Config) {
		s := spec
		c.Faults = &s
	}
}

// WithFederation runs the simulation against a multi-CDN federation: N
// provider origins with distinct TTLs and propagation delays, anycast
// nearest-provider homing, inter-CDN peering hand-off while a home provider
// is down, an optional meta-CDN broker with hysteresis and dwell, and
// graceful serve-stale degradation when every provider is unreachable. See
// internal/federation for the spec language; serial-only.
func WithFederation(spec federation.Spec) Option {
	return func(c *cdn.Config) {
		s := spec
		c.Federation = &s
	}
}

// WithFailover enables failure-aware protocol reactions: timeout-driven
// dead-parent detection with bounded backoff, orphan reparenting, user
// re-resolution/re-homing after failed visits, TTL fallback during provider
// outages, and persistent re-sync of crash-recovered servers.
func WithFailover() Option {
	return func(c *cdn.Config) { c.Failover = true }
}

// WithFailWindow positions the WithFailures crash window as horizon
// fractions (default: the middle third).
func WithFailWindow(start, frac float64) Option {
	return func(c *cdn.Config) {
		c.FailWindowStart = start
		c.FailWindowFrac = frac
	}
}

// WithContext makes the run cancellable: the event loop polls ctx at a fixed
// stride and aborts promptly with the context's error once cancelled.
func WithContext(ctx context.Context) Option {
	return func(c *cdn.Config) { c.Ctx = ctx }
}

// WithAudit enables the runtime invariant auditor at the given sweep cadence
// (0 selects the default). The first violated conservation property aborts
// the run as its error; metrics are unchanged by auditing. Composes with
// WithShards: a sharded run sweeps at its window barriers.
func WithAudit(cadence time.Duration) Option {
	return func(c *cdn.Config) { c.Audit = &cdn.AuditOptions{Cadence: cadence} }
}

// WithAuditSelfTest arms a named deliberate corruption (after WithAudit) so a
// run proves the auditor tripwire fires end-to-end; the run must then fail
// with the matching property. Valid names: cdn.AuditSelfTestNames.
func WithAuditSelfTest(name string) Option {
	return func(c *cdn.Config) {
		if c.Audit == nil {
			c.Audit = &cdn.AuditOptions{}
		}
		c.Audit.SelfTest = name
	}
}

// WithShards runs the simulation on the sharded multi-core engine with n
// worker goroutines draining a fixed partition of the server topology
// (conservative time-window synchronization; see internal/sim.Sharded).
// Results are a pure function of (seed, partition): any n >= 1 produces
// bit-identical output, so the worker count is free to follow the machine.
// Serial-only options (DNS routing, per-visit switching, multicast repair)
// are rejected under sharding; the runtime auditor composes (its sweeps run
// at window barriers).
func WithShards(n int) Option {
	return func(c *cdn.Config) { c.Shards = n }
}

// WithShardCells fixes the partition granularity for WithShards: the server
// topology is split into this many cells (default 8). The cell count — not
// the worker count — is part of the simulation's identity: changing it
// changes the partition and therefore the (still deterministic) results.
func WithShardCells(n int) Option {
	return func(c *cdn.Config) { c.ShardCells = n }
}

// WithTick installs a progress probe invoked from the event loop at a fixed
// event stride with the current virtual time and processed-event count; it
// backs stuck-job watchdogs and must not touch simulation state.
func WithTick(fn func(now time.Duration, events uint64)) Option {
	return func(c *cdn.Config) { c.OnTick = fn }
}

// defaultConfig mirrors the paper's Section 4 setup: 170 servers, 5 users
// each, provider in Atlanta, 1 KB packets, end-users polling every 10 s.
func defaultConfig(sys System) cdn.Config {
	return cdn.Config{
		Method:   sys.Method,
		Infra:    sys.Infra,
		Topology: topology.Config{Servers: 170, UsersPerServer: 5, Seed: 1},
		Seed:     1,
	}
}

// Run executes one system with the given options.
func Run(sys System, opts ...Option) (*cdn.Result, error) {
	cfg := defaultConfig(sys)
	for _, opt := range opts {
		opt(&cfg)
	}
	res, err := cdn.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", sys.Name, err)
	}
	return res, nil
}

// RunHAT runs the paper's proposed system.
func RunHAT(opts ...Option) (*cdn.Result, error) {
	return Run(SystemHAT, opts...)
}

// Comparison holds one system's result in a matrix run.
type Comparison struct {
	System System
	Result *cdn.Result
}

// RunAll executes every Section 5.3 system over a shared topology and
// update schedule so the results are directly comparable.
func RunAll(opts ...Option) ([]Comparison, error) {
	// Materialize the shared inputs once.
	base := defaultConfig(SystemTTL)
	for _, opt := range opts {
		opt(&base)
	}
	topo := base.Topo
	if topo == nil {
		var err error
		topo, err = topology.Generate(base.Topology)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	updates := base.Updates
	if len(updates) == 0 {
		var err error
		updates, err = workload.Schedule(workload.DefaultGame(), base.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	out := make([]Comparison, 0, len(Systems()))
	for _, sys := range Systems() {
		res, err := Run(sys, append(append([]Option(nil), opts...),
			WithTopology(topo), WithUpdates(updates))...)
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{System: sys, Result: res})
	}
	return out, nil
}
