package federation

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cdnconsistency/internal/fault"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := `{
	  "providers": [
	    {"name": "atlanta", "lat": 33.75, "lon": -84.39},
	    {"name": "frankfurt", "lat": 50.11, "lon": 8.68, "ttl": "30s", "propagation": 2}
	  ],
	  "broker": {"period": "1m", "hysteresis": 0.2, "min_dwell": "3m"},
	  "stale_cap": "10m"
	}`
	s, err := ParseSpec([]byte(in))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(s.Providers) != 2 {
		t.Fatalf("providers = %d, want 2", len(s.Providers))
	}
	if got := s.Providers[1].TTL.D(); got != 30*time.Second {
		t.Errorf("frankfurt ttl = %v, want 30s", got)
	}
	if got := s.Providers[1].Propagation.D(); got != 2*time.Second {
		t.Errorf("frankfurt propagation = %v, want 2s (numeric seconds)", got)
	}
	if s.Broker == nil || s.Broker.Period.D() != time.Minute || s.Broker.Hysteresis != 0.2 {
		t.Errorf("broker = %+v, want period 1m hysteresis 0.2", s.Broker)
	}
	if s.StaleCap.D() != 10*time.Minute {
		t.Errorf("stale_cap = %v, want 10m", s.StaleCap.D())
	}

	out, err := s.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed spec:\n  first:  %+v\n  second: %+v", s, back)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"unknown field", `{"providers": [{"name": "a", "lat": 0, "lon": 0}], "bogus": 1}`, "bogus"},
		{"trailing data", `{"providers": [{"name": "a", "lat": 0, "lon": 0}]} {}`, "trailing"},
		{"no providers", `{"providers": []}`, "at least one"},
		{"bad name", `{"providers": [{"name": "9bad", "lat": 0, "lon": 0}]}`, "name"},
		{"dup name", `{"providers": [{"name": "a", "lat": 0, "lon": 0}, {"name": "a", "lat": 1, "lon": 1}]}`, "duplicate"},
		{"bad lat", `{"providers": [{"name": "a", "lat": 91, "lon": 0}]}`, "lat"},
		{"bad lon", `{"providers": [{"name": "a", "lat": 0, "lon": -181}]}`, "lon"},
		{"negative ttl", `{"providers": [{"name": "a", "lat": 0, "lon": 0, "ttl": -1}]}`, "ttl"},
		{"negative propagation", `{"providers": [{"name": "a", "lat": 0, "lon": 0, "propagation": -1}]}`, "propagation"},
		{"negative stale cap", `{"providers": [{"name": "a", "lat": 0, "lon": 0}], "stale_cap": -1}`, "stale_cap"},
		{"broker no period", `{"providers": [{"name": "a", "lat": 0, "lon": 0}], "broker": {}}`, "period"},
		{"broker bad hysteresis", `{"providers": [{"name": "a", "lat": 0, "lon": 0}], "broker": {"period": "1m", "hysteresis": -0.1}}`, "hysteresis"},
		{"broker bad dwell", `{"providers": [{"name": "a", "lat": 0, "lon": 0}], "broker": {"period": "1m", "min_dwell": -1}}`, "min_dwell"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(tc.in)); err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.in)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecRejectsTooManyProviders(t *testing.T) {
	s := Spec{}
	for i := 0; i < maxProviders+1; i++ {
		s.Providers = append(s.Providers, Provider{Name: "p" + string(rune('a'+i)), Lat: float64(i), Lon: float64(i)})
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted too many providers")
	} else if !strings.Contains(err.Error(), "maximum") {
		t.Errorf("error %q does not mention the maximum", err)
	}
}

func TestDefaultSpec(t *testing.T) {
	for _, n := range []int{-3, 0, 1, 3, 8, 99} {
		s := DefaultSpec(n)
		if err := s.Validate(); err != nil {
			t.Errorf("DefaultSpec(%d) invalid: %v", n, err)
		}
		want := n
		if want < 1 {
			want = 1
		}
		if want > 8 {
			want = 8
		}
		if len(s.Providers) != want {
			t.Errorf("DefaultSpec(%d) has %d providers, want %d", n, len(s.Providers), want)
		}
	}
	if got := DefaultSpec(3).Providers[0].Name; got != "atlanta" {
		t.Errorf("provider 0 = %q, want atlanta (the paper's origin)", got)
	}
}

func TestDurationsAcceptNumericSeconds(t *testing.T) {
	s, err := ParseSpec([]byte(`{"providers": [{"name": "a", "lat": 0, "lon": 0, "ttl": 45}], "stale_cap": 120}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Providers[0].TTL != fault.Duration(45*time.Second) {
		t.Errorf("ttl = %v, want 45s", s.Providers[0].TTL.D())
	}
	if s.StaleCap.D() != 2*time.Minute {
		t.Errorf("stale_cap = %v, want 2m", s.StaleCap.D())
	}
}
