// Package federation describes a multi-provider (multi-CDN) origin layer
// for the cdn simulation: N provider origins with distinct poll TTLs and
// publication-propagation lags, anycast-style nearest-alive provider
// selection, inter-CDN peering hand-off for servers whose home provider is
// down, and an optional meta-CDN broker that re-homes servers mid-run with
// hysteresis to suppress flapping. When every provider is unreachable the
// cdn layer degrades gracefully: servers serve stale content under the
// spec's staleness cap and the degradation interval is recorded instead of
// stalling the run.
//
// A Spec is declarative and strict-JSON (unknown fields and trailing data
// are rejected, like fault.Spec and workload.Population); the runtime
// semantics live in internal/cdn. The scenario family follows "A Case for
// Peering of Content Delivery Networks" and "Characterizing a Meta-CDN"
// (see PAPERS.md): real deployments re-home users across providers
// mid-stream, which is exactly what the paper's single-origin evaluation
// could not exercise.
package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"

	"cdnconsistency/internal/fault"
)

// Provider is one federated origin. Provider 0 plays the paper's single
// origin (the simulation keeps its traffic-ledger endpoint name
// "provider"); providers 1..N-1 are additional origins at their own
// locations.
type Provider struct {
	// Name labels the provider in figures and errors.
	Name string `json:"name"`
	// Lat/Lon place the origin for anycast distance ranking and traffic
	// accounting (degrees).
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	// TTL overrides the run's server poll period for servers homed to this
	// provider (0 = use the run's ServerTTL). Distinct per-provider TTLs
	// model CDNs with different freshness contracts.
	TTL fault.Duration `json:"ttl,omitempty"`
	// Propagation is the lag between a publication and this provider
	// serving the new version — distinct propagation behavior per origin
	// (0 = immediate, the paper's single-origin behavior).
	Propagation fault.Duration `json:"propagation,omitempty"`
}

// Broker configures the meta-CDN broker: a periodic controller that
// re-homes each server to its nearest alive provider, with hysteresis so a
// marginal distance advantage (or a briefly-flapping provider) does not
// cause oscillating switches.
type Broker struct {
	// Period is the broker's evaluation cadence in simulated time.
	Period fault.Duration `json:"period"`
	// Hysteresis is the relative distance advantage a candidate provider
	// must hold over the current home before the broker switches
	// (e.g. 0.2 = candidate must be ≥20% closer). 0 switches on any
	// improvement.
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// MinDwell is the minimum time a server stays on a broker-chosen
	// provider before the broker may switch it again (0 = no dwell floor).
	MinDwell fault.Duration `json:"min_dwell,omitempty"`
}

// Spec is the strict-JSON federation description.
type Spec struct {
	// Providers lists the federated origins; at least one. Provider 0 is
	// the primary (the paper's origin).
	Providers []Provider `json:"providers"`
	// Broker, when present, runs the meta-CDN broker controller.
	Broker *Broker `json:"broker,omitempty"`
	// StaleCap bounds graceful degradation: while every provider is down,
	// servers keep serving their last-known content for at most this long
	// per degradation interval; beyond the cap, visits fail (and users
	// fail over). 0 = serve stale indefinitely, guaranteeing zero
	// permanently-stranded users through any all-providers-down storm.
	StaleCap fault.Duration `json:"stale_cap,omitempty"`
}

var providerNameRE = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_-]*$`)

// maxProviders bounds the federation size; fault storms iterate providers
// and the broker ranks all of them per server, so the cap keeps compiled
// schedules small.
const maxProviders = 16

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if len(s.Providers) == 0 {
		return fmt.Errorf("federation: providers must list at least one provider")
	}
	if len(s.Providers) > maxProviders {
		return fmt.Errorf("federation: %d providers exceeds the maximum %d", len(s.Providers), maxProviders)
	}
	seen := make(map[string]bool, len(s.Providers))
	for i, p := range s.Providers {
		if !providerNameRE.MatchString(p.Name) {
			return fmt.Errorf("federation: provider %d name %q must match %s", i, p.Name, providerNameRE)
		}
		if seen[p.Name] {
			return fmt.Errorf("federation: duplicate provider name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Lat < -90 || p.Lat > 90 {
			return fmt.Errorf("federation: provider %q lat %v out of [-90, 90]", p.Name, p.Lat)
		}
		if p.Lon < -180 || p.Lon > 180 {
			return fmt.Errorf("federation: provider %q lon %v out of [-180, 180]", p.Name, p.Lon)
		}
		if p.TTL < 0 {
			return fmt.Errorf("federation: provider %q ttl must be >= 0", p.Name)
		}
		if p.Propagation < 0 {
			return fmt.Errorf("federation: provider %q propagation must be >= 0", p.Name)
		}
	}
	if s.StaleCap < 0 {
		return fmt.Errorf("federation: stale_cap must be >= 0")
	}
	if b := s.Broker; b != nil {
		if b.Period <= 0 {
			return fmt.Errorf("federation: broker period must be > 0")
		}
		if b.Hysteresis < 0 {
			return fmt.Errorf("federation: broker hysteresis must be >= 0")
		}
		if b.MinDwell < 0 {
			return fmt.Errorf("federation: broker min_dwell must be >= 0")
		}
	}
	return nil
}

// ParseSpec decodes a strict-JSON federation spec: unknown fields, trailing
// data, and invalid values are all errors.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("federation: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("federation: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Marshal renders the spec as indented JSON that ParseSpec round-trips.
func (s *Spec) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// defaultSites are real CDN points of presence used by DefaultSpec; site 0
// is Atlanta, the paper's provider location.
var defaultSites = []Provider{
	{Name: "atlanta", Lat: 33.75, Lon: -84.39},
	{Name: "frankfurt", Lat: 50.11, Lon: 8.68},
	{Name: "singapore", Lat: 1.35, Lon: 103.82},
	{Name: "saopaulo", Lat: -23.55, Lon: -46.63},
	{Name: "sydney", Lat: -33.87, Lon: 151.21},
	{Name: "tokyo", Lat: 35.68, Lon: 139.69},
	{Name: "london", Lat: 51.51, Lon: -0.13},
	{Name: "virginia", Lat: 38.95, Lon: -77.45},
}

// DefaultSpec builds an n-provider federation over real city sites
// (provider 0 = Atlanta, the paper's origin), no broker, and unlimited
// serve-stale degradation. n is clamped to [1, 8].
func DefaultSpec(n int) Spec {
	if n < 1 {
		n = 1
	}
	if n > len(defaultSites) {
		n = len(defaultSites)
	}
	return Spec{Providers: append([]Provider(nil), defaultSites[:n]...)}
}
