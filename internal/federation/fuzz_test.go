package federation

import (
	"reflect"
	"testing"
)

// FuzzParseFederation asserts the strict-JSON federation parser never
// panics, and that any accepted spec survives a Marshal/reparse round trip
// unchanged — the same contract FuzzParsePlan and FuzzParsePopulation pin
// for their parsers.
func FuzzParseFederation(f *testing.F) {
	seeds := []string{
		`{"providers": [{"name": "atlanta", "lat": 33.75, "lon": -84.39}]}`,
		`{"providers": [
		   {"name": "atlanta", "lat": 33.75, "lon": -84.39},
		   {"name": "frankfurt", "lat": 50.11, "lon": 8.68, "ttl": "30s", "propagation": "2s"}
		 ],
		 "broker": {"period": "1m", "hysteresis": 0.2, "min_dwell": "3m"},
		 "stale_cap": "10m"}`,
		`{"providers": [{"name": "a", "lat": 0, "lon": 0, "ttl": 45}], "stale_cap": 120}`,
		`{"providers": []}`,
		`{"providers": [{"name": "a", "lat": 91, "lon": 0}]}`,
		`{"providers": [{"name": "a", "lat": 0, "lon": 0}], "broker": {"period": 0}}`,
		`not json`,
		`{}`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v\nspec: %+v", err, spec)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("marshaled spec failed to reparse: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round trip changed spec:\n first:  %+v\n second: %+v", spec, back)
		}
	})
}
