package netmodel

import (
	"fmt"
	"testing"
	"time"

	"cdnconsistency/internal/geo"
)

// TestSendRecycledPathAllocFree pins Send's hot-path guarantee: once both
// endpoints are interned and their distance is cached (after the first
// message on the pair), a deterministic Send allocates nothing — the
// busy-port, overload, distance, and both ledger updates are all dense
// slice operations.
func TestSendRecycledPathAllocFree(t *testing.T) {
	n := mustNew(Config{}, nil)
	now := time.Duration(0)
	// First sends intern the endpoints, grow the ledgers, and warm the
	// distance cache.
	now += n.Send(atlanta, london, 1, ClassUpdate, now)
	now += n.Send(london, atlanta, 1, ClassLight, now)
	avg := testing.AllocsPerRun(200, func() {
		now += n.Send(atlanta, london, 1, ClassUpdate, now)
	})
	if avg != 0 {
		t.Fatalf("recycled-path Send costs %v allocs/op, want 0", avg)
	}
}

// TestViewAllocFree pins the copy-free accounting window: reading totals
// through the View must not materialize anything, regardless of how many
// senders the ledger tracks.
func TestViewAllocFree(t *testing.T) {
	n := mustNew(Config{}, nil)
	for i := 0; i < 500; i++ {
		ep := Endpoint{ID: fmt.Sprintf("srv%d", i), Loc: geo.Point{Lat: float64(i % 90), Lon: float64(i % 180)}, ISP: i % 7}
		n.Send(ep, atlanta, 1, ClassLight, 0)
	}
	v := n.View()
	var sink ClassTotals
	avg := testing.AllocsPerRun(100, func() {
		sink = v.Total()
		sink = v.Class(ClassLight)
		v.EachSender(func(_ string, t ClassTotals) { sink.Messages += t.Messages })
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("View reads cost %v allocs/op across 500 senders, want 0", avg)
	}
}

// BenchmarkNetworkSendSteadyState measures the recycled Send path the
// simulation pays millions of times per figure. The CI bench gate tracks it.
func BenchmarkNetworkSendSteadyState(b *testing.B) {
	n := mustNew(Config{}, nil)
	now := time.Duration(0)
	now += n.Send(atlanta, london, 1, ClassUpdate, now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += n.Send(atlanta, london, 1, ClassUpdate, now)
	}
}

// BenchmarkNetworkSendFirstContact measures the cold path: every message
// introduces a new endpoint pair, paying interning, ledger growth, and the
// haversine. It bounds what topology setup costs.
func BenchmarkNetworkSendFirstContact(b *testing.B) {
	n := mustNew(Config{}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := Endpoint{ID: fmt.Sprintf("s%d", i), Loc: geo.Point{Lat: float64(i % 90), Lon: float64(i % 180)}}
		n.Send(from, atlanta, 1, ClassLight, 0)
	}
}
