// Package netmodel models message delivery between CDN nodes: propagation
// delay from great-circle distance, transmission delay from message size and
// uplink bandwidth, FIFO queuing at each sender's output port, and an
// inter-ISP penalty. It also accounts traffic the way the paper reports it:
// traffic cost in km*KB (Figure 16/17) and network load in km split by
// message class (Figure 23).
//
// The output-port queue is the mechanism behind the paper's scalability
// results: a provider pushing a large update to 170 unicast children
// serializes 170 transmissions on one uplink, so the last child's delay
// grows with fanout x size (Figures 19 and 20).
package netmodel

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/geo"
)

// Class categorizes messages for accounting. The paper distinguishes bulky
// update messages from light messages (polls, invalidations, maintenance).
type Class int

// Message classes.
const (
	ClassUpdate  Class = iota + 1 // content update payloads
	ClassLight                    // polls, invalidations, tree maintenance
	ClassContent                  // end-user content requests/responses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassUpdate:
		return "update"
	case ClassLight:
		return "light"
	case ClassContent:
		return "content"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Endpoint identifies one communicating node.
type Endpoint struct {
	ID         string
	Loc        geo.Point
	ISP        int
	UplinkKBps float64 // output-port capacity; <=0 means the network default
}

// Config tunes the delay model. Zero fields take the documented defaults.
type Config struct {
	// PropagationKmPerSec is the signal speed; default 200000 km/s
	// (roughly 2/3 c, typical for fiber).
	PropagationKmPerSec float64
	// BaseDelay is fixed per-message overhead (processing, last-mile);
	// default 2 ms.
	BaseDelay time.Duration
	// InterISPDelay is added when source and destination ISPs differ;
	// default 15 ms. This reproduces the paper's Section 3.4.3 finding
	// that inter-ISP traffic inflates inconsistency. A negative value is
	// the explicit-zero sentinel: "no inter-ISP penalty", as opposed to
	// the zero value which means "use the default".
	InterISPDelay time.Duration
	// DefaultUplinkKBps is used when an endpoint does not set its own;
	// default 12500 KB/s (100 Mbit/s).
	DefaultUplinkKBps float64
	// JitterFrac adds uniform random jitter in [0, JitterFrac] of the
	// propagation delay; default 0 (deterministic).
	JitterFrac float64
	// LossProb is the per-transmission loss probability; a lost
	// transmission is retried after RetransmitTimeout (geometric number
	// of retries), modeling reliable delivery over a lossy path. Default
	// 0 (lossless). Requires a non-nil rng.
	LossProb float64
	// RetransmitTimeout is the added delay per lost transmission;
	// default 1 s.
	RetransmitTimeout time.Duration
	// DisableQueuing turns off output-port serialization. Used only by
	// the ablation benchmarks; the realistic model keeps it on.
	DisableQueuing bool
}

func (c Config) withDefaults() (Config, error) {
	if c.LossProb < 0 {
		return c, fmt.Errorf("netmodel: negative LossProb %v", c.LossProb)
	}
	if c.LossProb >= 1 {
		return c, fmt.Errorf("netmodel: LossProb %v would never deliver; must be < 1", c.LossProb)
	}
	if c.PropagationKmPerSec <= 0 {
		c.PropagationKmPerSec = 200000
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 2 * time.Millisecond
	}
	if c.InterISPDelay == 0 {
		c.InterISPDelay = 15 * time.Millisecond
	} else if c.InterISPDelay < 0 {
		c.InterISPDelay = 0 // explicit "no penalty"
	}
	if c.DefaultUplinkKBps <= 0 {
		c.DefaultUplinkKBps = 12500
	}
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = time.Second
	}
	return c, nil
}

// Network computes delivery delays and accumulates traffic accounting.
// It is not safe for concurrent use; the discrete-event simulation is
// single-threaded by design.
//
// Per-endpoint state (output-port queue, overload factor, per-sender ledger)
// is held in dense slices indexed by an interned endpoint id assigned at
// first use, so the per-Send bookkeeping costs one string-map lookup and a
// handful of slice writes instead of several map operations. The interning
// order is the deterministic first-send order, so dense indexing cannot leak
// nondeterminism into any output.
type Network struct {
	cfg Config
	rng *rand.Rand

	// senderIdx interns endpoint IDs; ids is the inverse mapping. The
	// busyUntil, overload, and bySender columns are all indexed by the
	// interned id and grown in lockstep.
	senderIdx map[string]int
	ids       []string
	busyUntil []time.Duration
	overload  []float64 // service-delay multiplier; <= 1 means none

	// byClass and bySender are the two independent ledgers over the same
	// message stream (see Accounting). byClass is indexed by Class, which is
	// a small dense enum; classMax pre-sizes it.
	byClass  []ClassTotals
	bySender []ClassTotals

	// distKm caches the great-circle distance between interned endpoint
	// pairs (key fromIdx<<32|toIdx): the haversine trigonometry is a large
	// fraction of Send's cost and a simulation sends along a bounded set of
	// pairs millions of times. The cache assumes an endpoint ID names a
	// stable location, which is how the simulation uses the model.
	distKm map[uint64]float64

	partitions map[int]map[int]bool // partition group -> isolated ISP set
}

// classMax pre-sizes the per-class ledger for the known message classes.
const classMax = int(ClassContent) + 1

// New returns a Network with the given configuration, or an error when the
// configuration is invalid (e.g. LossProb outside [0, 1)). rng may be nil
// for a fully deterministic model (no jitter even if JitterFrac is set).
func New(cfg Config, rng *rand.Rand) (*Network, error) {
	eff, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Network{
		cfg:       eff,
		rng:       rng,
		senderIdx: make(map[string]int),
		byClass:   make([]ClassTotals, classMax),
		distKm:    make(map[uint64]float64),
	}, nil
}

// distance returns the cached great-circle km between two interned
// endpoints, computing it on first use.
func (n *Network) distance(fi, ti int, from, to Endpoint) float64 {
	key := uint64(fi)<<32 | uint64(uint32(ti))
	if km, ok := n.distKm[key]; ok {
		return km
	}
	km := geo.DistanceKm(from.Loc, to.Loc)
	n.distKm[key] = km
	return km
}

// intern returns the dense index of the endpoint id, assigning one (and
// growing every per-endpoint column) on first use.
func (n *Network) intern(id string) int {
	if i, ok := n.senderIdx[id]; ok {
		return i
	}
	i := len(n.ids)
	n.senderIdx[id] = i
	n.ids = append(n.ids, id)
	n.busyUntil = append(n.busyUntil, 0)
	n.overload = append(n.overload, 0)
	n.bySender = append(n.bySender, ClassTotals{})
	return i
}

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// SetPartitionGroup installs an ISP-level partition: the listed ISPs are cut
// off from every ISP outside the set until ClearPartitionGroup(group). ISPs
// inside the set still reach each other. Groups are independent, so
// overlapping partitions compose (a path is cut if any group cuts it).
func (n *Network) SetPartitionGroup(group int, isps []int) {
	if n.partitions == nil {
		n.partitions = make(map[int]map[int]bool)
	}
	set := make(map[int]bool, len(isps))
	for _, i := range isps {
		set[i] = true
	}
	n.partitions[group] = set
}

// ClearPartitionGroup heals the partition installed under group.
func (n *Network) ClearPartitionGroup(group int) { delete(n.partitions, group) }

// Reachable reports whether a message from one endpoint can currently reach
// the other, i.e. no active partition separates their ISPs.
func (n *Network) Reachable(from, to Endpoint) bool {
	for _, set := range n.partitions {
		if set[from.ISP] != set[to.ISP] {
			return false
		}
	}
	return true
}

// SetOverload multiplies the named endpoint's service delay — its uplink
// serialization and per-message processing overhead — by factor until
// ClearOverload. Factors <= 1 are ignored. Models transient overload that
// slows a replica without killing it (paper Section 3.4.5).
func (n *Network) SetOverload(id string, factor float64) {
	if factor <= 1 {
		return
	}
	n.overload[n.intern(id)] = factor
}

// ClearOverload restores the named endpoint's normal service delay.
func (n *Network) ClearOverload(id string) {
	if i, ok := n.senderIdx[id]; ok {
		n.overload[i] = 0
	}
}

// PropagationDelay returns the one-way propagation component between two
// endpoints, excluding transmission and queuing.
func (n *Network) PropagationDelay(from, to Endpoint) time.Duration {
	return n.propagationFromKm(geo.DistanceKm(from.Loc, to.Loc), from, to)
}

// propagationFromKm is PropagationDelay with the distance already in hand,
// so Send computes (or cache-loads) the great-circle distance exactly once
// per message for both delay and accounting.
func (n *Network) propagationFromKm(km float64, from, to Endpoint) time.Duration {
	d := time.Duration(km / n.cfg.PropagationKmPerSec * float64(time.Second))
	d += n.cfg.BaseDelay
	if from.ISP != to.ISP {
		d += n.cfg.InterISPDelay
	}
	return d
}

// transmissionDelay is size/bandwidth on the sender's uplink.
func (n *Network) transmissionDelay(from Endpoint, sizeKB float64) time.Duration {
	bw := from.UplinkKBps
	if bw <= 0 {
		bw = n.cfg.DefaultUplinkKBps
	}
	return time.Duration(sizeKB / bw * float64(time.Second))
}

// Send records a message of sizeKB from one endpoint to another at virtual
// time now, and returns its arrival time. Queuing at the sender's output
// port is modeled: the transmission starts when the uplink frees up.
// Once the sender's id is interned (its first send), Send allocates nothing.
func (n *Network) Send(from, to Endpoint, sizeKB float64, class Class, now time.Duration) time.Duration {
	if sizeKB < 0 {
		sizeKB = 0
	}
	si := n.intern(from.ID)
	ti := n.intern(to.ID)
	km := n.distance(si, ti, from, to)
	tx := n.transmissionDelay(from, sizeKB)
	var slowdown time.Duration
	if factor := n.overload[si]; factor > 1 {
		// An overloaded sender serializes slower and adds processing lag.
		tx = time.Duration(float64(tx) * factor)
		slowdown = time.Duration(float64(n.cfg.BaseDelay) * (factor - 1))
	}
	start := now
	if !n.cfg.DisableQueuing {
		if busy := n.busyUntil[si]; busy > start {
			start = busy
		}
		n.busyUntil[si] = start + tx
	}
	prop := n.propagationFromKm(km, from, to)
	if n.cfg.JitterFrac > 0 && n.rng != nil {
		prop += time.Duration(n.rng.Float64() * n.cfg.JitterFrac * float64(prop))
	}
	arrival := start + tx + prop + slowdown

	n.record(class, si, km, sizeKB)

	// Lossy path: each lost transmission costs a retransmission timeout
	// and is re-sent (and re-accounted — the bytes really crossed the
	// wire again).
	if n.cfg.LossProb > 0 && n.rng != nil {
		for n.rng.Float64() < n.cfg.LossProb {
			arrival += n.cfg.RetransmitTimeout + tx
			n.record(class, si, km, sizeKB)
		}
	}
	return arrival
}

// Account books count identical messages of sizeKB from ep into both ledgers
// without entering the delivery path: no queuing, no delay, zero distance.
// It batches the end-user request traffic of the cohort user model — users
// are modeled co-located with their edge server, and their requests must not
// serialize on the server's update uplink — while keeping the dual-ledger
// write, so the auditor's per-sender vs per-class conservation cross-check
// still covers batched traffic. Once the endpoint id is interned (its first
// send or account), Account allocates nothing.
func (n *Network) Account(ep Endpoint, sizeKB float64, class Class, count int) {
	if count <= 0 {
		return
	}
	if sizeKB < 0 {
		sizeKB = 0
	}
	si := n.intern(ep.ID)
	for int(class) >= len(n.byClass) {
		n.byClass = append(n.byClass, ClassTotals{})
	}
	kb := sizeKB * float64(count)
	t := &n.byClass[class]
	t.Messages += count
	t.KB += kb
	s := &n.bySender[si]
	s.Messages += count
	s.KB += kb
}

// record books one transmission into both ledgers. The two aggregations are
// written independently on purpose: the auditor cross-checks them against
// each other, so a message dropped from one ledger is detectable.
func (n *Network) record(class Class, sender int, km, kb float64) {
	for int(class) >= len(n.byClass) {
		n.byClass = append(n.byClass, ClassTotals{})
	}
	t := &n.byClass[class]
	t.Messages++
	t.KB += kb
	t.Km += km
	t.KmKB += km * kb

	s := &n.bySender[sender]
	s.Messages++
	s.KB += kb
	s.Km += km
	s.KmKB += km * kb
}

// Accounting materializes a snapshot of the traffic accounting so far. The
// snapshot is an independent copy, safe to hold across further sends; for
// copy-free reads on the hot path (the auditor's per-sweep conservation
// checks) use View instead.
func (n *Network) Accounting() Accounting {
	out := newAccounting()
	for c, t := range n.byClass {
		if t.Messages != 0 {
			out.ByClass[Class(c)] = t
		}
	}
	for i, t := range n.bySender {
		if t.Messages != 0 {
			out.BySender[n.ids[i]] = t
		}
	}
	return out
}

// View returns a copy-free read-only view over the live ledgers. The view
// observes subsequent sends; it must not be read concurrently with them.
func (n *Network) View() AccountingView { return AccountingView{n: n} }

// ResetAccounting zeroes the traffic accounting (queue state is preserved).
func (n *Network) ResetAccounting() {
	for i := range n.byClass {
		n.byClass[i] = ClassTotals{}
	}
	for i := range n.bySender {
		n.bySender[i] = ClassTotals{}
	}
}

// AccountingView is a read-only window onto a Network's live traffic
// ledgers. Unlike Accounting it copies nothing: Total and Class sum in
// place, and EachSender iterates the dense per-sender ledger in interning
// (first-send) order — a deterministic order, since the simulation is
// single-threaded. It implements the same reader shape Accounting does, so
// the audit predicates accept either.
type AccountingView struct{ n *Network }

// Total sums all classes.
func (v AccountingView) Total() ClassTotals {
	var t ClassTotals
	for _, c := range v.n.byClass {
		t.Messages += c.Messages
		t.KB += c.KB
		t.Km += c.Km
		t.KmKB += c.KmKB
	}
	return t
}

// Class returns the totals recorded for one message class.
func (v AccountingView) Class(c Class) ClassTotals {
	if int(c) < 0 || int(c) >= len(v.n.byClass) {
		return ClassTotals{}
	}
	return v.n.byClass[c]
}

// Senders reports how many distinct endpoints have sent at least once.
func (v AccountingView) Senders() int {
	count := 0
	for _, t := range v.n.bySender {
		if t.Messages != 0 {
			count++
		}
	}
	return count
}

// EachSender calls fn for every endpoint that has sent at least one message,
// in interning order, without copying the ledger.
func (v AccountingView) EachSender(fn func(id string, t ClassTotals)) {
	for i, t := range v.n.bySender {
		if t.Messages != 0 {
			fn(v.n.ids[i], t)
		}
	}
}

// ClassTotals aggregates traffic for one message class.
type ClassTotals struct {
	Messages int     // number of messages sent
	KB       float64 // total payload
	Km       float64 // total transmission distance (network load, Fig. 23)
	KmKB     float64 // traffic cost (Fig. 16/17), sum of distance*size
}

// Accounting aggregates traffic twice over the same message stream: per
// message class (the figures' breakdown) and per sending endpoint (the
// per-server ledger). The two aggregations are maintained independently so
// the invariant auditor can cross-check them — per-sender totals must sum to
// the per-class totals, or a message was dropped from one ledger.
type Accounting struct {
	ByClass  map[Class]ClassTotals
	BySender map[string]ClassTotals
}

func newAccounting() Accounting {
	return Accounting{
		ByClass:  make(map[Class]ClassTotals),
		BySender: make(map[string]ClassTotals),
	}
}

// Merge folds other's totals into a, per class and per sender. It combines
// the independent per-shard ledgers of a partitioned simulation into one
// run-level snapshot: every message is booked in exactly one shard (by its
// sender's owner cell), so summing is exact.
func (a Accounting) Merge(other Accounting) {
	for c, t := range other.ByClass {
		cur := a.ByClass[c]
		cur.Messages += t.Messages
		cur.KB += t.KB
		cur.Km += t.Km
		cur.KmKB += t.KmKB
		a.ByClass[c] = cur
	}
	for id, t := range other.BySender {
		cur := a.BySender[id]
		cur.Messages += t.Messages
		cur.KB += t.KB
		cur.Km += t.Km
		cur.KmKB += t.KmKB
		a.BySender[id] = cur
	}
}

// Total sums all classes.
func (a Accounting) Total() ClassTotals {
	var t ClassTotals
	for _, v := range a.ByClass {
		t.Messages += v.Messages
		t.KB += v.KB
		t.Km += v.Km
		t.KmKB += v.KmKB
	}
	return t
}

// Classes returns the classes present, sorted, for stable output.
func (a Accounting) Classes() []Class {
	out := make([]Class, 0, len(a.ByClass))
	for c := range a.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Senders returns the sending endpoint IDs present, sorted, for stable
// iteration.
func (a Accounting) Senders() []string {
	out := make([]string, 0, len(a.BySender))
	for id := range a.BySender {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EachSender calls fn for every sending endpoint in sorted-id order. It
// mirrors AccountingView.EachSender so snapshots and live views satisfy the
// same reader shape.
func (a Accounting) EachSender(fn func(id string, t ClassTotals)) {
	for _, id := range a.Senders() {
		fn(id, a.BySender[id])
	}
}
