// Package netmodel models message delivery between CDN nodes: propagation
// delay from great-circle distance, transmission delay from message size and
// uplink bandwidth, FIFO queuing at each sender's output port, and an
// inter-ISP penalty. It also accounts traffic the way the paper reports it:
// traffic cost in km*KB (Figure 16/17) and network load in km split by
// message class (Figure 23).
//
// The output-port queue is the mechanism behind the paper's scalability
// results: a provider pushing a large update to 170 unicast children
// serializes 170 transmissions on one uplink, so the last child's delay
// grows with fanout x size (Figures 19 and 20).
package netmodel

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cdnconsistency/internal/geo"
)

// Class categorizes messages for accounting. The paper distinguishes bulky
// update messages from light messages (polls, invalidations, maintenance).
type Class int

// Message classes.
const (
	ClassUpdate  Class = iota + 1 // content update payloads
	ClassLight                    // polls, invalidations, tree maintenance
	ClassContent                  // end-user content requests/responses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassUpdate:
		return "update"
	case ClassLight:
		return "light"
	case ClassContent:
		return "content"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Endpoint identifies one communicating node.
type Endpoint struct {
	ID         string
	Loc        geo.Point
	ISP        int
	UplinkKBps float64 // output-port capacity; <=0 means the network default
}

// Config tunes the delay model. Zero fields take the documented defaults.
type Config struct {
	// PropagationKmPerSec is the signal speed; default 200000 km/s
	// (roughly 2/3 c, typical for fiber).
	PropagationKmPerSec float64
	// BaseDelay is fixed per-message overhead (processing, last-mile);
	// default 2 ms.
	BaseDelay time.Duration
	// InterISPDelay is added when source and destination ISPs differ;
	// default 15 ms. This reproduces the paper's Section 3.4.3 finding
	// that inter-ISP traffic inflates inconsistency. A negative value is
	// the explicit-zero sentinel: "no inter-ISP penalty", as opposed to
	// the zero value which means "use the default".
	InterISPDelay time.Duration
	// DefaultUplinkKBps is used when an endpoint does not set its own;
	// default 12500 KB/s (100 Mbit/s).
	DefaultUplinkKBps float64
	// JitterFrac adds uniform random jitter in [0, JitterFrac] of the
	// propagation delay; default 0 (deterministic).
	JitterFrac float64
	// LossProb is the per-transmission loss probability; a lost
	// transmission is retried after RetransmitTimeout (geometric number
	// of retries), modeling reliable delivery over a lossy path. Default
	// 0 (lossless). Requires a non-nil rng.
	LossProb float64
	// RetransmitTimeout is the added delay per lost transmission;
	// default 1 s.
	RetransmitTimeout time.Duration
	// DisableQueuing turns off output-port serialization. Used only by
	// the ablation benchmarks; the realistic model keeps it on.
	DisableQueuing bool
}

func (c Config) withDefaults() (Config, error) {
	if c.LossProb < 0 {
		return c, fmt.Errorf("netmodel: negative LossProb %v", c.LossProb)
	}
	if c.LossProb >= 1 {
		return c, fmt.Errorf("netmodel: LossProb %v would never deliver; must be < 1", c.LossProb)
	}
	if c.PropagationKmPerSec <= 0 {
		c.PropagationKmPerSec = 200000
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 2 * time.Millisecond
	}
	if c.InterISPDelay == 0 {
		c.InterISPDelay = 15 * time.Millisecond
	} else if c.InterISPDelay < 0 {
		c.InterISPDelay = 0 // explicit "no penalty"
	}
	if c.DefaultUplinkKBps <= 0 {
		c.DefaultUplinkKBps = 12500
	}
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = time.Second
	}
	return c, nil
}

// Network computes delivery delays and accumulates traffic accounting.
// It is not safe for concurrent use; the discrete-event simulation is
// single-threaded by design.
type Network struct {
	cfg        Config
	rng        *rand.Rand
	busyUntil  map[string]time.Duration
	acct       Accounting
	partitions map[int]map[int]bool // partition group -> isolated ISP set
	overload   map[string]float64   // endpoint ID -> service-delay multiplier
}

// New returns a Network with the given configuration, or an error when the
// configuration is invalid (e.g. LossProb outside [0, 1)). rng may be nil
// for a fully deterministic model (no jitter even if JitterFrac is set).
func New(cfg Config, rng *rand.Rand) (*Network, error) {
	eff, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Network{
		cfg:       eff,
		rng:       rng,
		busyUntil: make(map[string]time.Duration),
		acct:      newAccounting(),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// SetPartitionGroup installs an ISP-level partition: the listed ISPs are cut
// off from every ISP outside the set until ClearPartitionGroup(group). ISPs
// inside the set still reach each other. Groups are independent, so
// overlapping partitions compose (a path is cut if any group cuts it).
func (n *Network) SetPartitionGroup(group int, isps []int) {
	if n.partitions == nil {
		n.partitions = make(map[int]map[int]bool)
	}
	set := make(map[int]bool, len(isps))
	for _, i := range isps {
		set[i] = true
	}
	n.partitions[group] = set
}

// ClearPartitionGroup heals the partition installed under group.
func (n *Network) ClearPartitionGroup(group int) { delete(n.partitions, group) }

// Reachable reports whether a message from one endpoint can currently reach
// the other, i.e. no active partition separates their ISPs.
func (n *Network) Reachable(from, to Endpoint) bool {
	for _, set := range n.partitions {
		if set[from.ISP] != set[to.ISP] {
			return false
		}
	}
	return true
}

// SetOverload multiplies the named endpoint's service delay — its uplink
// serialization and per-message processing overhead — by factor until
// ClearOverload. Factors <= 1 are ignored. Models transient overload that
// slows a replica without killing it (paper Section 3.4.5).
func (n *Network) SetOverload(id string, factor float64) {
	if factor <= 1 {
		return
	}
	if n.overload == nil {
		n.overload = make(map[string]float64)
	}
	n.overload[id] = factor
}

// ClearOverload restores the named endpoint's normal service delay.
func (n *Network) ClearOverload(id string) { delete(n.overload, id) }

// PropagationDelay returns the one-way propagation component between two
// endpoints, excluding transmission and queuing.
func (n *Network) PropagationDelay(from, to Endpoint) time.Duration {
	km := geo.DistanceKm(from.Loc, to.Loc)
	d := time.Duration(km / n.cfg.PropagationKmPerSec * float64(time.Second))
	d += n.cfg.BaseDelay
	if from.ISP != to.ISP {
		d += n.cfg.InterISPDelay
	}
	return d
}

// transmissionDelay is size/bandwidth on the sender's uplink.
func (n *Network) transmissionDelay(from Endpoint, sizeKB float64) time.Duration {
	bw := from.UplinkKBps
	if bw <= 0 {
		bw = n.cfg.DefaultUplinkKBps
	}
	return time.Duration(sizeKB / bw * float64(time.Second))
}

// Send records a message of sizeKB from one endpoint to another at virtual
// time now, and returns its arrival time. Queuing at the sender's output
// port is modeled: the transmission starts when the uplink frees up.
func (n *Network) Send(from, to Endpoint, sizeKB float64, class Class, now time.Duration) time.Duration {
	if sizeKB < 0 {
		sizeKB = 0
	}
	tx := n.transmissionDelay(from, sizeKB)
	var slowdown time.Duration
	if factor, ok := n.overload[from.ID]; ok {
		// An overloaded sender serializes slower and adds processing lag.
		tx = time.Duration(float64(tx) * factor)
		slowdown = time.Duration(float64(n.cfg.BaseDelay) * (factor - 1))
	}
	start := now
	if !n.cfg.DisableQueuing {
		if busy := n.busyUntil[from.ID]; busy > start {
			start = busy
		}
		n.busyUntil[from.ID] = start + tx
	}
	prop := n.PropagationDelay(from, to)
	if n.cfg.JitterFrac > 0 && n.rng != nil {
		prop += time.Duration(n.rng.Float64() * n.cfg.JitterFrac * float64(prop))
	}
	arrival := start + tx + prop + slowdown

	km := geo.DistanceKm(from.Loc, to.Loc)
	n.acct.record(class, from.ID, km, sizeKB)

	// Lossy path: each lost transmission costs a retransmission timeout
	// and is re-sent (and re-accounted — the bytes really crossed the
	// wire again).
	if n.cfg.LossProb > 0 && n.rng != nil {
		for n.rng.Float64() < n.cfg.LossProb {
			arrival += n.cfg.RetransmitTimeout + tx
			n.acct.record(class, from.ID, km, sizeKB)
		}
	}
	return arrival
}

// Accounting returns a snapshot of the traffic accounting so far.
func (n *Network) Accounting() Accounting { return n.acct.clone() }

// ResetAccounting zeroes the traffic accounting (queue state is preserved).
func (n *Network) ResetAccounting() { n.acct = newAccounting() }

// ClassTotals aggregates traffic for one message class.
type ClassTotals struct {
	Messages int     // number of messages sent
	KB       float64 // total payload
	Km       float64 // total transmission distance (network load, Fig. 23)
	KmKB     float64 // traffic cost (Fig. 16/17), sum of distance*size
}

// Accounting aggregates traffic twice over the same message stream: per
// message class (the figures' breakdown) and per sending endpoint (the
// per-server ledger). The two aggregations are maintained independently so
// the invariant auditor can cross-check them — per-sender totals must sum to
// the per-class totals, or a message was dropped from one ledger.
type Accounting struct {
	ByClass  map[Class]ClassTotals
	BySender map[string]ClassTotals
}

func newAccounting() Accounting {
	return Accounting{
		ByClass:  make(map[Class]ClassTotals),
		BySender: make(map[string]ClassTotals),
	}
}

func (a *Accounting) record(class Class, sender string, km, kb float64) {
	t := a.ByClass[class]
	t.Messages++
	t.KB += kb
	t.Km += km
	t.KmKB += km * kb
	a.ByClass[class] = t

	s := a.BySender[sender]
	s.Messages++
	s.KB += kb
	s.Km += km
	s.KmKB += km * kb
	a.BySender[sender] = s
}

func (a Accounting) clone() Accounting {
	out := newAccounting()
	for k, v := range a.ByClass {
		out.ByClass[k] = v
	}
	for k, v := range a.BySender {
		out.BySender[k] = v
	}
	return out
}

// Total sums all classes.
func (a Accounting) Total() ClassTotals {
	var t ClassTotals
	for _, v := range a.ByClass {
		t.Messages += v.Messages
		t.KB += v.KB
		t.Km += v.Km
		t.KmKB += v.KmKB
	}
	return t
}

// Classes returns the classes present, sorted, for stable output.
func (a Accounting) Classes() []Class {
	out := make([]Class, 0, len(a.ByClass))
	for c := range a.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Senders returns the sending endpoint IDs present, sorted, for stable
// iteration.
func (a Accounting) Senders() []string {
	out := make([]string, 0, len(a.BySender))
	for id := range a.BySender {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
