package netmodel

import (
	"math"
	"testing"
)

func TestAccountBatchesBothLedgers(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.Account(atlanta, 1, ClassContent, 1000)
	n.Account(atlanta, 0.5, ClassContent, 4)
	n.Account(london, 1, ClassContent, 1)

	acct := n.Accounting()
	content := acct.ByClass[ClassContent]
	if content.Messages != 1005 || math.Abs(content.KB-1003) > 1e-9 {
		t.Errorf("content totals = %+v, want 1005 msgs, 1003 KB", content)
	}
	if content.Km != 0 || content.KmKB != 0 {
		t.Errorf("accounted traffic has nonzero distance: %+v", content)
	}
	if got := acct.BySender[atlanta.ID]; got.Messages != 1004 {
		t.Errorf("atlanta sender ledger = %+v, want 1004 msgs", got)
	}
	if got := acct.BySender[london.ID]; got.Messages != 1 {
		t.Errorf("london sender ledger = %+v, want 1 msg", got)
	}
	// The dual-ledger conservation property the auditor cross-checks must
	// hold for batched traffic exactly as for per-message sends: per-sender
	// totals and per-class totals describe the same message stream.
	var senders ClassTotals
	for _, st := range acct.BySender {
		senders.Messages += st.Messages
		senders.KB += st.KB
	}
	total := acct.Total()
	if senders.Messages != total.Messages || math.Abs(senders.KB-total.KB) > 1e-9 {
		t.Errorf("sender ledger %+v diverges from class ledger %+v", senders, total)
	}
}

func TestAccountMatchesRepeatedSendsOnCounts(t *testing.T) {
	// Message and KB totals must be the same whether a sender books one
	// batch of k or k individual zero-distance accounts.
	a := mustNew(Config{}, nil)
	b := mustNew(Config{}, nil)
	a.Account(atlanta, 2, ClassContent, 7)
	for i := 0; i < 7; i++ {
		b.Account(atlanta, 2, ClassContent, 1)
	}
	at, bt := a.Accounting().ByClass[ClassContent], b.Accounting().ByClass[ClassContent]
	if at.Messages != bt.Messages || math.Abs(at.KB-bt.KB) > 1e-9 {
		t.Errorf("batched %+v != repeated %+v", at, bt)
	}
}

func TestAccountIgnoresDegenerateInput(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.Account(atlanta, 1, ClassContent, 0)
	n.Account(atlanta, 1, ClassContent, -5)
	if got := n.Accounting().Total().Messages; got != 0 {
		t.Errorf("degenerate counts booked %d messages", got)
	}
	n.Account(atlanta, -3, ClassContent, 2)
	if got := n.Accounting().ByClass[ClassContent]; got.Messages != 2 || got.KB != 0 {
		t.Errorf("negative size not clamped: %+v", got)
	}
}

func TestAccountDoesNotTouchQueueState(t *testing.T) {
	// Accounted traffic must not delay real sends: the uplink queue is
	// reserved for modeled transmissions.
	plain := mustNew(Config{}, nil)
	mixed := mustNew(Config{}, nil)
	mixed.Account(atlanta, 1e6, ClassContent, 1000)
	if plain.Send(atlanta, london, 100, ClassUpdate, 0) != mixed.Send(atlanta, london, 100, ClassUpdate, 0) {
		t.Error("Account changed a later Send's arrival time")
	}
}
