package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cdnconsistency/internal/geo"
)

var (
	atlanta = Endpoint{ID: "atl", Loc: geo.Point{Lat: 33.749, Lon: -84.388}, ISP: 1}
	london  = Endpoint{ID: "lon", Loc: geo.Point{Lat: 51.5074, Lon: -0.1278}, ISP: 1}
	tokyo   = Endpoint{ID: "tyo", Loc: geo.Point{Lat: 35.6762, Lon: 139.6503}, ISP: 2}
)

func mustNew(cfg Config, rng *rand.Rand) *Network {
	n, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return n
}

func TestPropagationDelayGrowsWithDistance(t *testing.T) {
	n := mustNew(Config{}, nil)
	near := n.PropagationDelay(atlanta, atlanta)
	mid := n.PropagationDelay(atlanta, london)
	if mid <= near {
		t.Errorf("delay to london %v not greater than local %v", mid, near)
	}
	// ~6760 km at 200000 km/s is ~33.8 ms + 2 ms base.
	want := 36 * time.Millisecond
	if d := mid - want; d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Errorf("atlanta-london delay = %v, want about %v", mid, want)
	}
}

func TestInterISPPenalty(t *testing.T) {
	n := mustNew(Config{InterISPDelay: 15 * time.Millisecond}, nil)
	sameISP := Endpoint{ID: "x", Loc: tokyo.Loc, ISP: atlanta.ISP}
	intra := n.PropagationDelay(atlanta, sameISP)
	inter := n.PropagationDelay(atlanta, tokyo)
	if inter-intra != 15*time.Millisecond {
		t.Errorf("inter-ISP penalty = %v, want 15ms", inter-intra)
	}
}

func TestInterISPPenaltyExplicitlyDisabled(t *testing.T) {
	// A negative InterISPDelay is the explicit-zero sentinel: no penalty,
	// instead of the 15 ms default that plain zero selects.
	n := mustNew(Config{InterISPDelay: -1}, nil)
	if got := n.Config().InterISPDelay; got != 0 {
		t.Errorf("sentinel InterISPDelay resolved to %v, want 0", got)
	}
	inter := n.PropagationDelay(atlanta, tokyo)
	intra := n.PropagationDelay(atlanta, Endpoint{ID: "x", Loc: tokyo.Loc, ISP: atlanta.ISP})
	if inter != intra {
		t.Errorf("disabled penalty still applied: inter %v intra %v", inter, intra)
	}
	if def := mustNew(Config{}, nil).Config().InterISPDelay; def != 15*time.Millisecond {
		t.Errorf("zero InterISPDelay default = %v, want 15ms", def)
	}
}

func TestOutputPortQueuing(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100}, nil) // 100 KB/s: 100 KB takes 1 s
	const size = 100.0
	a1 := n.Send(atlanta, london, size, ClassUpdate, 0)
	a2 := n.Send(atlanta, london, size, ClassUpdate, 0)
	a3 := n.Send(atlanta, london, size, ClassUpdate, 0)
	// Each transmission serializes behind the previous on atlanta's uplink.
	if d := a2 - a1; d != time.Second {
		t.Errorf("second message delayed by %v, want 1s", d)
	}
	if d := a3 - a2; d != time.Second {
		t.Errorf("third message delayed by %v, want 1s", d)
	}
}

func TestQueueDrains(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100}, nil)
	n.Send(atlanta, london, 100, ClassUpdate, 0)
	// After the uplink frees (1s), a later send is not queued.
	a := n.Send(atlanta, london, 100, ClassUpdate, 5*time.Second)
	b := n.Send(atlanta, london, 100, ClassUpdate, 10*time.Second)
	base := n.PropagationDelay(atlanta, london) + time.Second
	if a != 5*time.Second+base {
		t.Errorf("drained queue send arrived %v, want %v", a, 5*time.Second+base)
	}
	if b != 10*time.Second+base {
		t.Errorf("drained queue send arrived %v, want %v", b, 10*time.Second+base)
	}
}

func TestDisableQueuing(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100, DisableQueuing: true}, nil)
	a1 := n.Send(atlanta, london, 100, ClassUpdate, 0)
	a2 := n.Send(atlanta, london, 100, ClassUpdate, 0)
	if a1 != a2 {
		t.Errorf("with queuing disabled arrivals differ: %v vs %v", a1, a2)
	}
}

func TestQueuingSeparatePerSender(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100}, nil)
	n.Send(atlanta, london, 1000, ClassUpdate, 0) // 10s on atlanta's uplink
	// tokyo's uplink is independent.
	a := n.Send(tokyo, london, 100, ClassUpdate, 0)
	want := n.PropagationDelay(tokyo, london) + time.Second
	if a != want {
		t.Errorf("independent sender arrival %v, want %v", a, want)
	}
}

func TestEndpointUplinkOverride(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100}, nil)
	fast := atlanta
	fast.ID = "fast"
	fast.UplinkKBps = 10000
	slow := n.Send(atlanta, london, 100, ClassUpdate, 0)
	quickA := n.Send(fast, london, 100, ClassUpdate, 0)
	if quickA >= slow {
		t.Errorf("fast uplink arrival %v not before default %v", quickA, slow)
	}
}

func TestAccounting(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.Send(atlanta, london, 2, ClassUpdate, 0)
	n.Send(atlanta, london, 1, ClassLight, 0)
	n.Send(atlanta, london, 1, ClassLight, 0)
	acct := n.Accounting()
	km := geo.DistanceKm(atlanta.Loc, london.Loc)

	up := acct.ByClass[ClassUpdate]
	if up.Messages != 1 || math.Abs(up.KmKB-2*km) > 1e-6 {
		t.Errorf("update totals = %+v, want 1 msg, %.1f km*KB", up, 2*km)
	}
	light := acct.ByClass[ClassLight]
	if light.Messages != 2 || math.Abs(light.Km-2*km) > 1e-6 {
		t.Errorf("light totals = %+v, want 2 msgs, %.1f km", light, 2*km)
	}
	tot := acct.Total()
	if tot.Messages != 3 || math.Abs(tot.KB-4) > 1e-9 {
		t.Errorf("total = %+v", tot)
	}

	n.ResetAccounting()
	if n.Accounting().Total().Messages != 0 {
		t.Error("ResetAccounting did not clear totals")
	}
}

func TestAccountingSnapshotIsolated(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.Send(atlanta, london, 1, ClassUpdate, 0)
	snap := n.Accounting()
	n.Send(atlanta, london, 1, ClassUpdate, 0)
	if snap.ByClass[ClassUpdate].Messages != 1 {
		t.Error("snapshot mutated by later sends")
	}
}

func TestClassesSortedAndString(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.Send(atlanta, london, 1, ClassContent, 0)
	n.Send(atlanta, london, 1, ClassUpdate, 0)
	got := n.Accounting().Classes()
	if len(got) != 2 || got[0] != ClassUpdate || got[1] != ClassContent {
		t.Errorf("Classes() = %v", got)
	}
	if ClassUpdate.String() != "update" || ClassLight.String() != "light" ||
		ClassContent.String() != "content" || Class(9).String() != "class(9)" {
		t.Error("Class.String values wrong")
	}
}

func TestJitterBoundedAndDeterministicWithSeed(t *testing.T) {
	mk := func() *Network {
		return mustNew(Config{JitterFrac: 0.2}, rand.New(rand.NewSource(5)))
	}
	n1, n2 := mk(), mk()
	base := mustNew(Config{}, nil).PropagationDelay(atlanta, london)
	for i := 0; i < 100; i++ {
		a1 := n1.Send(atlanta, london, 1, ClassLight, time.Duration(i)*time.Second)
		a2 := n2.Send(atlanta, london, 1, ClassLight, time.Duration(i)*time.Second)
		if a1 != a2 {
			t.Fatalf("jittered sends diverge with same seed: %v vs %v", a1, a2)
		}
		prop := a1 - time.Duration(i)*time.Second
		if prop < base {
			t.Fatalf("jitter reduced delay below base: %v < %v", prop, base)
		}
		if prop > base+time.Duration(0.25*float64(base)) {
			t.Fatalf("jitter exceeded bound: %v vs base %v", prop, base)
		}
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	n := mustNew(Config{}, nil)
	a := n.Send(atlanta, london, -5, ClassLight, 0)
	if a < 0 {
		t.Errorf("negative-size send arrived at %v", a)
	}
	if n.Accounting().Total().KB != 0 {
		t.Error("negative size accounted as nonzero KB")
	}
}

// Property: arrival is never before now + propagation, and messages from the
// same sender arrive in FIFO order per destination when sizes are equal.
func TestPropertySendCausalAndMonotone(t *testing.T) {
	f := func(sizes []uint8) bool {
		n := mustNew(Config{DefaultUplinkKBps: 50}, nil)
		var prev time.Duration
		for i, s := range sizes {
			now := time.Duration(i) * time.Millisecond
			a := n.Send(atlanta, london, float64(s), ClassUpdate, now)
			if a < now+n.PropagationDelay(atlanta, london) {
				return false
			}
			if a < prev { // uplink FIFO implies non-decreasing arrivals
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSend(b *testing.B) {
	n := mustNew(Config{}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Send(atlanta, london, 1, ClassUpdate, time.Duration(i)*time.Microsecond)
	}
}

func TestLossyPathRetransmits(t *testing.T) {
	lossless := mustNew(Config{}, nil)
	lossy := mustNew(Config{LossProb: 0.5, RetransmitTimeout: time.Second}, rand.New(rand.NewSource(7)))

	var slower, n int
	base := lossless.Send(atlanta, london, 1, ClassUpdate, 0)
	for i := 0; i < 200; i++ {
		now := time.Duration(i) * 10 * time.Second
		a := lossy.Send(atlanta, london, 1, ClassUpdate, now) - now
		n++
		if a > base {
			slower++
		}
		if a < base {
			t.Fatalf("lossy delivery %v faster than lossless %v", a, base)
		}
	}
	// With p=0.5, about half the sends should see at least one retry.
	if frac := float64(slower) / float64(n); frac < 0.3 || frac > 0.7 {
		t.Errorf("retry fraction = %.2f, want ~0.5", frac)
	}
	// Retransmissions are accounted: more than one message per Send.
	msgs := lossy.Accounting().Total().Messages
	if msgs <= n {
		t.Errorf("accounted %d messages for %d sends, want more (retries)", msgs, n)
	}
}

func TestLossProbOutOfRangeRejected(t *testing.T) {
	for _, p := range []float64{1, 1.5, 5, -0.1, -1} {
		if _, err := New(Config{LossProb: p}, rand.New(rand.NewSource(8))); err == nil {
			t.Errorf("LossProb %v accepted", p)
		}
	}
	if _, err := New(Config{LossProb: 0.99}, rand.New(rand.NewSource(8))); err != nil {
		t.Errorf("LossProb 0.99 rejected: %v", err)
	}
}

func TestLossWithoutRngIsLossless(t *testing.T) {
	n := mustNew(Config{LossProb: 0.9}, nil)
	base := mustNew(Config{}, nil)
	if n.Send(atlanta, london, 1, ClassLight, 0) != base.Send(atlanta, london, 1, ClassLight, 0) {
		t.Error("loss applied without an rng")
	}
}

func TestPartitionGroupsCutAndHeal(t *testing.T) {
	n := mustNew(Config{}, nil)
	if !n.Reachable(atlanta, tokyo) {
		t.Fatal("unpartitioned endpoints unreachable")
	}
	n.SetPartitionGroup(1, []int{tokyo.ISP})
	if n.Reachable(atlanta, tokyo) || n.Reachable(tokyo, atlanta) {
		t.Error("partition did not cut cross-ISP path")
	}
	if !n.Reachable(atlanta, london) {
		t.Error("partition cut a path between two outside ISPs")
	}
	inTokyo := Endpoint{ID: "tyo2", Loc: tokyo.Loc, ISP: tokyo.ISP}
	if !n.Reachable(tokyo, inTokyo) {
		t.Error("partition cut a path inside the partitioned set")
	}
	n.ClearPartitionGroup(1)
	if !n.Reachable(atlanta, tokyo) {
		t.Error("healed partition still cutting")
	}
}

func TestPartitionGroupsCompose(t *testing.T) {
	n := mustNew(Config{}, nil)
	n.SetPartitionGroup(1, []int{atlanta.ISP})
	n.SetPartitionGroup(2, []int{tokyo.ISP})
	if n.Reachable(atlanta, tokyo) {
		t.Error("path across two partitions reachable")
	}
	n.ClearPartitionGroup(1)
	if n.Reachable(atlanta, tokyo) {
		t.Error("remaining partition no longer cutting")
	}
	if !n.Reachable(atlanta, london) {
		t.Error("unrelated path cut")
	}
}

func TestOverloadInflatesServiceDelay(t *testing.T) {
	mk := func() *Network { return mustNew(Config{DefaultUplinkKBps: 100}, nil) }
	base := mk().Send(atlanta, london, 100, ClassUpdate, 0) // 1 s tx

	n := mk()
	n.SetOverload(atlanta.ID, 4)
	slow := n.Send(atlanta, london, 100, ClassUpdate, 0)
	// 4x the 1 s transmission plus 3x the 2 ms base processing delay.
	want := base + 3*time.Second + 6*time.Millisecond
	if slow != want {
		t.Errorf("overloaded send arrived %v, want %v (base %v)", slow, want, base)
	}
	// Receiving is unaffected; only the overloaded sender's uplink slows.
	if got := n.Send(london, atlanta, 100, ClassUpdate, 0); got != base {
		t.Errorf("send toward overloaded server took %v, want %v", got, base)
	}

	n.ClearOverload(atlanta.ID)
	if got := n.Send(atlanta, london, 100, ClassUpdate, 20*time.Second) - 20*time.Second; got != base {
		t.Errorf("cleared overload still slow: %v vs %v", got, base)
	}
}

func TestOverloadIgnoresBadFactor(t *testing.T) {
	n := mustNew(Config{DefaultUplinkKBps: 100}, nil)
	n.SetOverload(atlanta.ID, 1)
	n.SetOverload(atlanta.ID, 0.5)
	base := mustNew(Config{DefaultUplinkKBps: 100}, nil).Send(atlanta, london, 100, ClassUpdate, 0)
	if got := n.Send(atlanta, london, 100, ClassUpdate, 0); got != base {
		t.Errorf("factor <= 1 changed delay: %v vs %v", got, base)
	}
}
